//! Cooperative Scans on a bandwidth-limited device: relevance scheduling vs
//! attach vs naive LRU, over real compressed packs.
//!
//! Run with: `cargo run --release --example cooperative_io`

use std::sync::Arc;
use std::time::Instant;
use vectorwise::common::{ColData, Field, Schema, TypeId};
use vectorwise::coopscan::{Abm, ScanPolicy, TableChunkSource};
use vectorwise::storage::{BufferPool, DiskConfig, Layout, SimulatedDisk, TableStorage};

fn main() {
    // A table that is much larger than the chunk cache, on a simulated
    // 200 MB/s disk — the regime where scan scheduling decides throughput.
    let disk = SimulatedDisk::new(DiskConfig::hdd_like());
    let schema = Schema::new(vec![
        Field::not_null("k", TypeId::I64),
        Field::not_null("payload", TypeId::Str),
    ])
    .unwrap();
    let mut table = TableStorage::new(disk.clone(), schema.clone(), Layout::Dsm);
    let n = 400_000;
    let keys = ColData::I64((0..n as i64).collect());
    // Mildly compressible payloads so packs stay a realistic size.
    let payload =
        ColData::Str((0..n).map(|i| format!("payload-{:06}-{}", i, "x".repeat(i % 17))).collect());
    table.append_columns(&[keys, payload], &[None, None], 16 * 1024).unwrap();
    let table = Arc::new(table);
    println!("table: {} packs, {} KiB on disk", table.n_packs(), table.stored_bytes() >> 10);

    let scans = 4;
    for policy in [ScanPolicy::Naive, ScanPolicy::Attach, ScanPolicy::Relevance] {
        // Fresh pool per run so cache state doesn't leak between policies.
        let pool = BufferPool::new(disk.clone(), 1 << 20);
        let source = TableChunkSource::new(table.clone(), pool, vec![0, 1]);
        // Cache only a third of the table: sharing is forced.
        let abm = Abm::new(source, table.n_packs() / 3, policy);
        let before = disk.stats();
        let t0 = Instant::now();
        let mut handles = Vec::new();
        for s in 0..scans {
            let abm = abm.clone();
            handles.push(std::thread::spawn(move || {
                // Staggered arrivals, like queries in a real workload.
                std::thread::sleep(std::time::Duration::from_millis(5 * s));
                let mut h = abm.register();
                let mut checksum = 0i64;
                while let Some((_, chunk)) = h.next_chunk().unwrap() {
                    checksum += chunk[0].0.as_i64().iter().sum::<i64>();
                }
                checksum
            }));
        }
        let checksums: Vec<i64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let elapsed = t0.elapsed();
        assert!(checksums.windows(2).all(|w| w[0] == w[1]), "scans must agree");
        let after = disk.stats();
        let (loads, cached) = abm.io_stats();
        println!(
            "{:<10}  wall {:>7.1?}  chunk loads {:>3} (cache hits {:>3})  bytes read {:>9}",
            policy.name(),
            elapsed,
            loads,
            cached,
            after.bytes_read - before.bytes_read,
        );
    }
    println!("\nexpected shape: relevance < attach < naive in both time and I/O");
}
