//! System monitoring and query cancellation — the production features the
//! paper says researchers forget: query listing, event logs, and `KILL`.
//!
//! Run with: `cargo run --release --example monitoring_and_cancellation`

use std::time::{Duration, Instant};
use vectorwise::common::VwError;
use vectorwise::core::monitor::QueryState;
use vectorwise::core::Database;
use vw_bench::tpch;

fn main() {
    let db = Database::open_in_memory();
    tpch::load_lineitem(&db, 250_000, 7);

    // A few quick queries to populate the registry.
    db.execute("SELECT COUNT(*) FROM lineitem").unwrap();
    let _ = db.execute("SELECT 1 / 0"); // fails — and is logged

    // Launch an expensive self-join on another thread, in its own session —
    // `Database::execute` serializes through the shared default session, so
    // concurrent statements (like the KILL below) need their own `Session`.
    let mut session = db.session();
    let worker = std::thread::spawn(move || {
        session
            .execute("SELECT COUNT(*) FROM lineitem a JOIN lineitem b ON a.l_partkey = b.l_partkey")
    });

    // ...find it in the query list...
    let qid = loop {
        if let Some(q) =
            db.monitor.list_queries().into_iter().find(|q| q.state == QueryState::Running)
        {
            break q.id;
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    println!("found running query #{qid}; letting it burn 20ms, then KILL");
    std::thread::sleep(Duration::from_millis(20));

    // ...and kill it. Cancellation is cooperative at vector granularity, so
    // the latency is bounded by one vector's work per pipeline stage.
    let t0 = Instant::now();
    db.execute(&format!("KILL {qid}")).unwrap();
    let result = worker.join().unwrap();
    println!("query returned after {:?}: {result:?}", t0.elapsed());
    assert!(matches!(result, Err(VwError::Cancelled)));

    // The registry remembers everything.
    println!("\nquery registry:");
    for q in db.monitor.list_queries() {
        println!(
            "  #{:<3} {:<30} {:?} ({} rows, {:?})",
            q.id,
            if q.sql.len() > 30 { &q.sql[..30] } else { &q.sql },
            q.state,
            q.rows,
            q.elapsed
        );
    }

    println!("\nevent log tail:");
    for e in db.monitor.events().iter().rev().take(5) {
        println!("  [{:?} +{}ms] {}", e.level, e.at_ms, e.message);
    }

    let (total, failed) = db.monitor.totals();
    println!("\ntotals: {total} queries, {failed} failed/cancelled");
}
