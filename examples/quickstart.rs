//! Quickstart: the embedded engine in five minutes.
//!
//! Run with: `cargo run --example quickstart`

use vectorwise::common::Value;
use vectorwise::core::Database;

fn main() {
    let db = Database::open_in_memory();

    // DDL: the default table type is VECTORWISE (compressed column store);
    // WITH TYPE = HEAP gives the classic row store, exactly the two table
    // kinds of the paper's Figure 1.
    db.execute(
        "CREATE TABLE employees (
            id BIGINT NOT NULL,
            name VARCHAR NOT NULL,
            dept VARCHAR,
            salary DOUBLE,
            hired DATE)",
    )
    .unwrap();

    db.execute(
        "INSERT INTO employees VALUES
            (1, 'Ada',    'eng',   120000.0, DATE '2019-03-01'),
            (2, 'Edsger', 'eng',   115000.0, DATE '2020-07-15'),
            (3, 'Grace',  'eng',   130000.0, DATE '2018-01-20'),
            (4, 'Tony',   'sales',  90000.0, DATE '2021-05-30'),
            (5, 'Barbara', NULL,    95000.0, DATE '2022-11-11')",
    )
    .unwrap();

    // Vectorized analytics: filters, expressions, grouping, ordering.
    let r = db
        .execute(
            "SELECT dept, COUNT(*) AS n, AVG(salary) AS avg_salary
             FROM employees
             WHERE EXTRACT(YEAR FROM hired) >= 2019
             GROUP BY dept
             ORDER BY n DESC",
        )
        .unwrap();
    println!("dept stats:");
    for row in r.rows() {
        println!("  {:?}", row);
    }

    // NULL handling: COALESCE is expanded by the rewriter into CASE, the
    // two-column NULL representation keeps kernels branch-free.
    let r = db
        .execute("SELECT name, COALESCE(dept, 'unassigned') FROM employees ORDER BY name")
        .unwrap();
    println!("\nwith defaults:");
    for row in r.rows() {
        println!("  {} -> {}", row[0], row[1]);
    }

    // Updates go through Positional Delta Trees; the stable storage is
    // immutable until CHECKPOINT merges the deltas.
    db.execute("UPDATE employees SET salary = salary * 1.1 WHERE dept = 'eng'").unwrap();
    db.execute("DELETE FROM employees WHERE name = 'Tony'").unwrap();
    let r = db.execute("SELECT COUNT(*), MAX(salary) FROM employees").unwrap();
    println!("\nafter raise+departure: {:?}", r.rows()[0]);
    assert_eq!(r.rows()[0][0], Value::I64(4));

    db.execute("CHECKPOINT employees").unwrap();
    println!("\ncheckpoint done; deltas merged into fresh stable storage");

    // EXPLAIN shows the Figure-1 pipeline output (optimizer + rewriter).
    let r = db
        .execute("EXPLAIN SELECT dept, SUM(salary) FROM employees WHERE salary > 0 GROUP BY dept")
        .unwrap();
    println!("\nplan:\n{}", r.text.unwrap());

    // The monitor saw everything.
    println!("query log:");
    for q in db.monitor.list_queries().iter().take(5) {
        println!("  #{} [{:?}] {}", q.id, q.state, q.sql);
    }
}
