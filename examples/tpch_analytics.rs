//! TPC-H-like analytics: bulk load, pruning, Q1/Q6-style queries, and the
//! vectorized-vs-tuple-at-a-time comparison from benchmark C1.
//!
//! Run with: `cargo run --release --example tpch_analytics`

use std::time::Instant;
use vectorwise::core::Database;
use vw_bench::tpch;

fn main() {
    let db = Database::open_in_memory();
    let n = 200_000;
    let t0 = Instant::now();
    tpch::load_lineitem(&db, n, 42);
    println!("loaded {n} lineitem rows in {:?}", t0.elapsed());

    // Q6-like: selective scan + aggregation. The optimizer pushes the date
    // range into MinMax scan hints; shipdate-clustered packs get pruned.
    let q6 = "SELECT SUM(l_extendedprice * l_discount) AS revenue
              FROM lineitem
              WHERE l_shipdate >= DATE '1994-01-01'
                AND l_shipdate < DATE '1995-01-01'
                AND l_discount BETWEEN 0.05 AND 0.07
                AND l_quantity < 24";
    let t0 = Instant::now();
    let r = db.execute(q6).unwrap();
    println!("\nQ6 revenue = {} ({:?})", r.rows()[0][0], t0.elapsed());

    // Q1-like: the classic multi-aggregate GROUP BY.
    let q1 = "SELECT l_returnflag, l_linestatus,
                     SUM(l_quantity) AS sum_qty,
                     SUM(l_extendedprice) AS sum_base,
                     AVG(l_discount) AS avg_disc,
                     COUNT(*) AS count_order
              FROM lineitem
              WHERE l_shipdate <= DATE '1998-09-02'
              GROUP BY l_returnflag, l_linestatus
              ORDER BY l_returnflag, l_linestatus";
    let t0 = Instant::now();
    let r = db.execute(q1).unwrap();
    println!("\nQ1 ({:?}):", t0.elapsed());
    for row in r.rows() {
        println!("  {:?}", row);
    }

    // The headline claim: same Q6 on the tuple-at-a-time baseline engine.
    use vw_bench::experiments::{q6_projection, q6_schema, q6_vectorized, q6_volcano, BatchSource};
    let cols = q6_projection(&tpch::gen_lineitem(n, 42).into_columns());
    let rows = std::sync::Arc::new(
        (0..n).map(|i| cols.iter().map(|c| c.get_value(i)).collect()).collect::<Vec<_>>(),
    );
    let src = BatchSource::new(q6_schema(), &cols, 1024);
    let t0 = Instant::now();
    let rv = q6_vectorized(src.reopen(), 1024);
    let vec_time = t0.elapsed();
    let t0 = Instant::now();
    let rt = q6_volcano(&rows);
    let tuple_time = t0.elapsed();
    assert!((rv - rt).abs() < 1e-6 * rv.abs());
    println!(
        "\nC1 head-to-head on Q6: vectorized {:?} vs tuple-at-a-time {:?} ({:.1}x)",
        vec_time,
        tuple_time,
        tuple_time.as_secs_f64() / vec_time.as_secs_f64()
    );
}
