//! Transactions on Positional Delta Trees: snapshot isolation, write-write
//! conflict detection, and checkpoint propagation.
//!
//! Run with: `cargo run --example concurrent_updates`

use vectorwise::common::{Value, VwError};
use vectorwise::core::Database;

fn main() {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE accounts (id BIGINT NOT NULL, owner VARCHAR, balance BIGINT)")
        .unwrap();
    db.execute("INSERT INTO accounts VALUES (1, 'alice', 100), (2, 'bob', 50), (3, 'carol', 75)")
        .unwrap();

    // Two sessions, snapshot isolation.
    let mut alice = db.session();
    let mut bob = db.session();

    alice.execute("BEGIN").unwrap();
    alice.execute("UPDATE accounts SET balance = balance - 30 WHERE id = 1").unwrap();
    alice.execute("UPDATE accounts SET balance = balance + 30 WHERE id = 2").unwrap();

    // Bob reads while Alice's transaction is open: he sees the old state.
    let r = bob.execute("SELECT SUM(balance) FROM accounts").unwrap();
    println!("bob sees total = {} (Alice uncommitted)", r.rows()[0][0]);
    assert_eq!(r.rows()[0][0], Value::I64(225));

    alice.execute("COMMIT").unwrap();
    let r = bob.execute("SELECT balance FROM accounts WHERE id = 2").unwrap();
    println!("after Alice commits, bob's balance = {}", r.rows()[0][0]);
    assert_eq!(r.rows()[0][0], Value::I64(80));

    // Write-write conflict: both update the same row position.
    let mut s1 = db.session();
    let mut s2 = db.session();
    s1.execute("BEGIN").unwrap();
    s2.execute("BEGIN").unwrap();
    s1.execute("UPDATE accounts SET balance = 0 WHERE id = 3").unwrap();
    s2.execute("UPDATE accounts SET balance = 999 WHERE id = 3").unwrap();
    s1.execute("COMMIT").unwrap();
    match s2.execute("COMMIT") {
        Err(VwError::TxnConflict(msg)) => {
            println!("second writer correctly aborted: {msg}");
        }
        other => panic!("expected a conflict, got {other:?}"),
    }

    // The PDT accumulates deltas; CHECKPOINT merges them into fresh stable
    // storage (the paper's background update propagation, run on demand).
    for i in 0..1000 {
        db.execute(&format!("INSERT INTO accounts VALUES ({}, 'gen', {})", 10 + i, i % 100))
            .unwrap();
    }
    let r = db.execute("SELECT COUNT(*) FROM accounts").unwrap();
    println!("rows before checkpoint: {}", r.rows()[0][0]);
    db.execute("CHECKPOINT accounts").unwrap();
    let r = db.execute("SELECT COUNT(*), SUM(balance) FROM accounts").unwrap();
    println!("after checkpoint: count={}, sum={}", r.rows()[0][0], r.rows()[0][1]);

    // Deleting our own inserts within a transaction cancels them for free.
    let mut s = db.session();
    s.execute("BEGIN").unwrap();
    s.execute("INSERT INTO accounts VALUES (9999, 'temp', 1)").unwrap();
    s.execute("DELETE FROM accounts WHERE id = 9999").unwrap();
    s.execute("COMMIT").unwrap();
    let r = db.execute("SELECT COUNT(*) FROM accounts WHERE id = 9999").unwrap();
    assert_eq!(r.rows()[0][0], Value::I64(0));
    println!("insert+delete in one txn cancelled out, as expected");
}
