//! # vw-storage — compressed PAX/DSM column storage
//!
//! The "Compressed PAX/DSM storage" box of the paper's Figure 1, following
//! *Balancing vectorized query execution with bandwidth-optimized storage*
//! (Zukowski, 2009 — reference \[6\]).
//!
//! Architecture:
//!
//! * a [simulated disk](disk) is the bandwidth-limited device all table data
//!   lives on (substitution for the paper's disk arrays — see DESIGN.md §2),
//! * tables are split into row ranges called **packs** (the compression
//!   granule); each pack's columns are compressed with [`vw_compress`]
//!   (auto-selected per chunk) and laid out either
//!   **DSM** — one block per column chunk, scans read only the touched
//!   columns — or **PAX** — one block per pack holding all its column
//!   chunks, trading scan selectivity for single-block row access,
//! * a [buffer pool](buffer) caches raw (still compressed) blocks with CLOCK
//!   eviction; decompression happens per scan into cache-resident vectors,
//!   which is the X100 execution model,
//! * per-pack [MinMax summaries](table) support scan-range pruning,
//! * [table statistics](stats) (row counts, distinct estimates, equi-depth
//!   histograms) feed the Ingres-style optimizer.

pub mod buffer;
pub mod disk;
pub mod pack;
pub mod stats;
pub mod table;

pub use buffer::BufferPool;
pub use disk::{BlockId, DiskConfig, DiskStats, SimulatedDisk, SpillFile};
pub use pack::{decode_chunk, decode_spill_batch, encode_chunk, encode_spill_batch};
pub use stats::{ColumnStats, Histogram, TableStats};
pub use table::{Layout, PackMeta, ScanRange, TableStorage};
