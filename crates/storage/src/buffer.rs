//! Buffer pool: caches raw (compressed) blocks with CLOCK eviction.
//!
//! X100 keeps *compressed* pages in memory and decompresses per scan into
//! small cache-resident vectors, so the pool caches the raw block bytes.
//! CLOCK approximates LRU with O(1) access bookkeeping and no list
//! maintenance on the hit path — the standard production compromise.

use crate::disk::{retry_io, BlockId, SimulatedDisk};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vw_common::Result;

struct Frame {
    block: BlockId,
    data: Arc<Vec<u8>>,
    referenced: bool,
}

struct PoolInner {
    frames: Vec<Frame>,
    by_block: HashMap<BlockId, usize>,
    clock_hand: usize,
    used_bytes: usize,
}

/// A shared, thread-safe buffer pool over a [`SimulatedDisk`].
pub struct BufferPool {
    disk: Arc<SimulatedDisk>,
    capacity_bytes: usize,
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufferPool {
    /// Pool of `capacity_bytes` over `disk`.
    pub fn new(disk: Arc<SimulatedDisk>, capacity_bytes: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool {
            disk,
            capacity_bytes,
            inner: Mutex::new(PoolInner {
                frames: Vec::new(),
                by_block: HashMap::new(),
                clock_hand: 0,
                used_bytes: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The underlying device.
    pub fn disk(&self) -> &Arc<SimulatedDisk> {
        &self.disk
    }

    /// Fetch a block through the cache.
    ///
    /// A miss reads from the device under the [`retry_io`] policy and
    /// verifies the bytes against the stored block before they are
    /// cached, so a transient fault or an in-flight corruption can never
    /// poison the pool: either pristine data is inserted, or the error
    /// surfaces and the pool state is exactly as before the call.
    pub fn get(&self, block: BlockId) -> Result<Arc<Vec<u8>>> {
        {
            let mut inner = self.inner.lock();
            if let Some(&idx) = inner.by_block.get(&block) {
                inner.frames[idx].referenced = true;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(inner.frames[idx].data.clone());
            }
        }
        // Miss: read outside the lock (the simulated read may sleep).
        self.misses.fetch_add(1, Ordering::Relaxed);
        let data = retry_io(&self.disk, || {
            let d = self.disk.read(block)?;
            self.disk.verify(block, &d)?;
            Ok(d)
        })?;
        let mut inner = self.inner.lock();
        // Re-check: another thread may have inserted while we slept.
        if let Some(&idx) = inner.by_block.get(&block) {
            inner.frames[idx].referenced = true;
            return Ok(inner.frames[idx].data.clone());
        }
        self.evict_to_fit(&mut inner, data.len());
        inner.used_bytes += data.len();
        let idx = inner.frames.len();
        inner.frames.push(Frame { block, data: data.clone(), referenced: true });
        inner.by_block.insert(block, idx);
        Ok(data)
    }

    /// True if `block` is currently cached (no side effects).
    pub fn contains(&self, block: BlockId) -> bool {
        self.inner.lock().by_block.contains_key(&block)
    }

    /// Drop a block from the cache if present (table drop, checkpoint).
    pub fn invalidate(&self, block: BlockId) {
        let mut inner = self.inner.lock();
        if let Some(idx) = inner.by_block.remove(&block) {
            let last = inner.frames.len() - 1;
            inner.used_bytes -= inner.frames[idx].data.len();
            inner.frames.swap_remove(idx);
            if idx <= last && idx < inner.frames.len() {
                let moved = inner.frames[idx].block;
                inner.by_block.insert(moved, idx);
            }
            if inner.clock_hand >= inner.frames.len() {
                inner.clock_hand = 0;
            }
        }
    }

    /// (hits, misses) counters.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().used_bytes
    }

    fn evict_to_fit(&self, inner: &mut PoolInner, incoming: usize) {
        // CLOCK sweep: clear reference bits until a victim is found. Bounded
        // to two full sweeps; beyond that we allow temporary overflow rather
        // than loop (pathological case: everything referenced repeatedly).
        let mut sweeps = 0usize;
        while inner.used_bytes + incoming > self.capacity_bytes && !inner.frames.is_empty() {
            if sweeps > 2 * inner.frames.len() {
                break;
            }
            sweeps += 1;
            let hand = inner.clock_hand % inner.frames.len();
            if inner.frames[hand].referenced {
                inner.frames[hand].referenced = false;
                inner.clock_hand = hand + 1;
                continue;
            }
            let victim = inner.frames.swap_remove(hand);
            inner.used_bytes -= victim.data.len();
            inner.by_block.remove(&victim.block);
            if hand < inner.frames.len() {
                let moved = inner.frames[hand].block;
                inner.by_block.insert(moved, hand);
            }
            if inner.clock_hand >= inner.frames.len() {
                inner.clock_hand = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::SimulatedDisk;

    fn setup(
        nblocks: usize,
        block_size: usize,
        pool_bytes: usize,
    ) -> (Arc<BufferPool>, Vec<BlockId>) {
        let disk = SimulatedDisk::instant();
        let ids: Vec<BlockId> =
            (0..nblocks).map(|i| disk.write_new(vec![i as u8; block_size]).unwrap()).collect();
        (BufferPool::new(disk, pool_bytes), ids)
    }

    #[test]
    fn hit_after_miss() {
        let (pool, ids) = setup(4, 100, 1000);
        pool.get(ids[0]).unwrap();
        pool.get(ids[0]).unwrap();
        let (hits, misses) = pool.hit_stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn eviction_respects_capacity() {
        let (pool, ids) = setup(10, 100, 350);
        for &id in &ids {
            pool.get(id).unwrap();
        }
        assert!(pool.used_bytes() <= 350, "used {}", pool.used_bytes());
        // The last block touched should still be cached.
        assert!(pool.contains(ids[9]));
    }

    #[test]
    fn clock_keeps_rereferenced_blocks() {
        let (pool, ids) = setup(4, 100, 250);
        pool.get(ids[0]).unwrap();
        pool.get(ids[1]).unwrap();
        // Re-reference block 0, then stream the rest through.
        pool.get(ids[0]).unwrap();
        pool.get(ids[2]).unwrap();
        pool.get(ids[3]).unwrap();
        let (hits, _) = pool.hit_stats();
        assert!(hits >= 1);
        assert!(pool.used_bytes() <= 250);
    }

    #[test]
    fn invalidate_removes() {
        let (pool, ids) = setup(3, 10, 100);
        pool.get(ids[1]).unwrap();
        assert!(pool.contains(ids[1]));
        pool.invalidate(ids[1]);
        assert!(!pool.contains(ids[1]));
        // And a fresh get is a miss again.
        pool.get(ids[1]).unwrap();
        assert_eq!(pool.hit_stats().1, 2);
    }

    #[test]
    fn data_integrity_through_cache() {
        let (pool, ids) = setup(5, 64, 200);
        for (i, &id) in ids.iter().enumerate() {
            let d = pool.get(id).unwrap();
            assert!(d.iter().all(|&b| b == i as u8));
        }
        // Stream again (some hits, some evict-refills) — data must match.
        for (i, &id) in ids.iter().enumerate() {
            let d = pool.get(id).unwrap();
            assert!(d.iter().all(|&b| b == i as u8));
        }
    }

    #[test]
    fn faulted_get_leaves_no_partial_entry() {
        use vw_common::{FaultConfig, VwError};
        let (pool, ids) = setup(2, 64, 1000);
        // Every read fails: get must error and cache nothing.
        pool.disk().arm_faults(FaultConfig { seed: 9, read_err: 1.0, ..Default::default() });
        let err = pool.get(ids[0]).unwrap_err();
        assert!(matches!(err, VwError::Io { transient: true, .. }));
        assert!(!pool.contains(ids[0]), "failed get must not leave a cache entry");
        assert_eq!(pool.used_bytes(), 0);
        let (hits, misses) = pool.hit_stats();
        assert_eq!((hits, misses), (0, 1), "the failed fetch counts as one miss");
        // Disarm: the same block fetches clean and caches.
        pool.disk().disarm_faults();
        assert!(pool.get(ids[0]).unwrap().iter().all(|&b| b == 0));
        assert!(pool.contains(ids[0]));
        assert_eq!(pool.hit_stats(), (0, 2));
    }

    #[test]
    fn corruption_never_poisons_the_cache() {
        use vw_common::FaultConfig;
        let (pool, ids) = setup(4, 64, 1000);
        // 40% of reads return corrupted bytes; verify-before-insert plus
        // retry must always surface pristine data (p_fail^5 per get).
        pool.disk().arm_faults(FaultConfig { seed: 21, corrupt: 0.4, ..Default::default() });
        for round in 0..8 {
            for (i, &id) in ids.iter().enumerate() {
                let d = pool.get(id).unwrap();
                assert!(d.iter().all(|&b| b == i as u8), "round {round}: corrupt bytes cached");
                pool.invalidate(id); // force a fresh faulted read next round
            }
        }
        assert!(pool.disk().stats().io_retries > 0, "corruption was actually injected");
    }

    #[test]
    fn invalidate_during_concurrent_faulted_reads_is_safe() {
        use vw_common::FaultConfig;
        let (pool, ids) = setup(8, 128, 4096);
        pool.disk().arm_faults(FaultConfig {
            seed: 33,
            read_err: 0.2,
            corrupt: 0.2,
            ..Default::default()
        });
        let mut handles = Vec::new();
        for t in 0..4usize {
            let pool = pool.clone();
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..100 {
                    let i = (t * 5 + round * 3) % ids.len();
                    if t == 0 && round % 7 == 0 {
                        pool.invalidate(ids[i]);
                        continue;
                    }
                    // A get may fail (p^5 with read_err=0.2 is rare but
                    // possible); it must never return wrong bytes.
                    if let Ok(d) = pool.get(ids[i]) {
                        assert!(d.iter().all(|&b| b == i as u8));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        pool.disk().disarm_faults();
        let (hits, misses) = pool.hit_stats();
        assert!(hits + misses > 0);
        assert!(pool.used_bytes() <= 4096 + 128, "capacity bound held under faults");
    }

    #[test]
    fn concurrent_access_is_safe() {
        let (pool, ids) = setup(20, 128, 1024);
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = pool.clone();
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..50 {
                    let id = ids[(t * 7 + round * 3) % ids.len()];
                    let _ = pool.get(id).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(pool.used_bytes() <= 1024 + 128);
    }
}
