//! Table storage: packs of compressed column chunks in DSM or PAX layout,
//! with per-pack MinMax summaries for scan pruning.
//!
//! * **DSM** (decomposed storage model): every column chunk is its own disk
//!   block; a scan touching `k` of `N` columns reads only `k` blocks per
//!   pack. This is the favourable layout for wide analytical tables.
//! * **PAX** (partition attributes across): all column chunks of a pack
//!   share one disk block (column-wise *within* the block); any access reads
//!   the whole pack block, but a row range is always one I/O.
//!
//! Vectorwise storage is a hybrid of these; benchmark C9 measures the
//! trade-off by scanning varying column subsets under both layouts.

use crate::buffer::BufferPool;
use crate::disk::{BlockId, SimulatedDisk};
use crate::pack::{decode_chunk, encode_chunk};
use std::sync::Arc;
use vw_common::{ColData, Result, Schema, Value, VwError};

/// Physical layout of a table's packs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// One block per column chunk.
    Dsm,
    /// One block per pack holding all column chunks.
    Pax,
}

/// Location and summary of one column chunk.
#[derive(Debug, Clone)]
pub struct ChunkMeta {
    /// Block holding the chunk bytes (the pack's shared block under PAX).
    pub block: BlockId,
    /// Byte offset within the block.
    pub offset: usize,
    /// Byte length of the chunk.
    pub length: usize,
    /// Minimum non-NULL value, if any non-NULL values exist.
    pub min: Option<Value>,
    /// Maximum non-NULL value, if any non-NULL values exist.
    pub max: Option<Value>,
    /// Number of NULLs in the chunk.
    pub null_count: usize,
}

/// Metadata of one pack (a horizontal partition of `n_rows` rows).
#[derive(Debug, Clone)]
pub struct PackMeta {
    /// First row id covered by this pack.
    pub row_start: u64,
    /// Rows in this pack.
    pub n_rows: usize,
    /// Per-column chunk locations, in schema order.
    pub columns: Vec<ChunkMeta>,
}

/// A contiguous row range produced by pruning, handed to scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanRange {
    /// Pack index within the table.
    pub pack: usize,
    /// First row id of the pack.
    pub row_start: u64,
    /// Rows in the pack.
    pub n_rows: usize,
}

/// Columnar storage of one table on a simulated disk.
pub struct TableStorage {
    schema: Schema,
    layout: Layout,
    disk: Arc<SimulatedDisk>,
    packs: Vec<PackMeta>,
    n_rows: u64,
}

fn minmax(data: &ColData, nulls: Option<&[bool]>) -> (Option<Value>, Option<Value>, usize) {
    let mut min: Option<Value> = None;
    let mut max: Option<Value> = None;
    let mut null_count = 0usize;
    for i in 0..data.len() {
        if nulls.is_some_and(|m| m[i]) {
            null_count += 1;
            continue;
        }
        let v = data.get_value(i);
        match &min {
            None => {
                min = Some(v.clone());
                max = Some(v);
                continue;
            }
            Some(m) => {
                if v.sql_cmp(m) == Some(std::cmp::Ordering::Less) {
                    min = Some(v.clone());
                }
            }
        }
        if let Some(m) = &max {
            if v.sql_cmp(m) == Some(std::cmp::Ordering::Greater) {
                max = Some(v);
            }
        }
    }
    (min, max, null_count)
}

impl TableStorage {
    /// Empty table storage.
    pub fn new(disk: Arc<SimulatedDisk>, schema: Schema, layout: Layout) -> TableStorage {
        TableStorage { schema, layout, disk, packs: Vec::new(), n_rows: 0 }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The physical layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Total stored rows.
    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }

    /// Number of packs.
    pub fn n_packs(&self) -> usize {
        self.packs.len()
    }

    /// Metadata of pack `i`.
    pub fn pack_meta(&self, i: usize) -> &PackMeta {
        &self.packs[i]
    }

    /// The device this table lives on.
    pub fn disk(&self) -> &Arc<SimulatedDisk> {
        &self.disk
    }

    /// Append one pack from per-column data (+ optional NULL indicators).
    ///
    /// All columns must have identical lengths matching the schema order and
    /// types. One call creates exactly one pack; bulk loaders chunk their
    /// input to the configured pack size before calling this.
    pub fn append_pack(&mut self, columns: &[ColData], nulls: &[Option<Vec<bool>>]) -> Result<()> {
        if columns.len() != self.schema.len() || nulls.len() != self.schema.len() {
            return Err(VwError::Storage(format!(
                "append_pack got {} columns, schema has {}",
                columns.len(),
                self.schema.len()
            )));
        }
        let n = columns.first().map_or(0, |c| c.len());
        if n == 0 {
            return Ok(());
        }
        for (i, col) in columns.iter().enumerate() {
            let field = self.schema.field(i);
            if col.len() != n {
                return Err(VwError::Storage("ragged column lengths in pack".into()));
            }
            if col.type_id() != field.ty {
                return Err(VwError::Storage(format!(
                    "column {} has type {}, schema says {}",
                    field.name,
                    col.type_id(),
                    field.ty
                )));
            }
            if let Some(mask) = &nulls[i] {
                if mask.len() != n {
                    return Err(VwError::Storage("null mask length mismatch".into()));
                }
                if !field.nullable && mask.iter().any(|&b| b) {
                    return Err(VwError::Storage(format!(
                        "NULL in NOT NULL column {}",
                        field.name
                    )));
                }
            }
        }

        let encoded: Vec<Vec<u8>> =
            columns.iter().zip(nulls).map(|(c, m)| encode_chunk(c, m.as_deref())).collect();

        let mut metas = Vec::with_capacity(columns.len());
        match self.layout {
            Layout::Dsm => {
                for ((col, nul), bytes) in columns.iter().zip(nulls).zip(encoded) {
                    let (min, max, null_count) = minmax(col, nul.as_deref());
                    let length = bytes.len();
                    let block = self.disk.write_new_retrying(bytes)?;
                    metas.push(ChunkMeta { block, offset: 0, length, min, max, null_count });
                }
            }
            Layout::Pax => {
                let mut blob = Vec::new();
                let mut offsets = Vec::with_capacity(encoded.len());
                for bytes in &encoded {
                    offsets.push((blob.len(), bytes.len()));
                    blob.extend_from_slice(bytes);
                }
                let block = self.disk.write_new_retrying(blob)?;
                for ((col, nul), (offset, length)) in columns.iter().zip(nulls).zip(offsets) {
                    let (min, max, null_count) = minmax(col, nul.as_deref());
                    metas.push(ChunkMeta { block, offset, length, min, max, null_count });
                }
            }
        }
        self.packs.push(PackMeta { row_start: self.n_rows, n_rows: n, columns: metas });
        self.n_rows += n as u64;
        Ok(())
    }

    /// Convenience loader: splits whole columns into packs of `pack_size`.
    pub fn append_columns(
        &mut self,
        columns: &[ColData],
        nulls: &[Option<Vec<bool>>],
        pack_size: usize,
    ) -> Result<()> {
        let n = columns.first().map_or(0, |c| c.len());
        let mut start = 0;
        while start < n {
            let end = (start + pack_size).min(n);
            let cols: Vec<ColData> = columns
                .iter()
                .map(|c| {
                    let mut out = ColData::with_capacity(c.type_id(), end - start);
                    out.extend_from_range(c, start, end);
                    out
                })
                .collect();
            let nls: Vec<Option<Vec<bool>>> =
                nulls.iter().map(|m| m.as_ref().map(|m| m[start..end].to_vec())).collect();
            self.append_pack(&cols, &nls)?;
            start = end;
        }
        Ok(())
    }

    /// Read the listed columns of pack `pack_idx` through `pool`.
    ///
    /// Under PAX this fetches the single pack block once; under DSM it
    /// fetches one block per requested column.
    pub fn read_pack(
        &self,
        pool: &BufferPool,
        pack_idx: usize,
        col_indices: &[usize],
    ) -> Result<Vec<(ColData, Option<Vec<bool>>)>> {
        let pack = self
            .packs
            .get(pack_idx)
            .ok_or_else(|| VwError::Storage(format!("pack {pack_idx} out of range")))?;
        let mut out = Vec::with_capacity(col_indices.len());
        for &ci in col_indices {
            let meta = pack.columns.get(ci).ok_or_else(|| {
                VwError::Storage(format!("column {ci} out of range in pack {pack_idx}"))
            })?;
            let block = pool.get(meta.block)?;
            let bytes = block
                .get(meta.offset..meta.offset + meta.length)
                .ok_or_else(|| VwError::Corruption("chunk extent outside block".into()))?;
            out.push(decode_chunk(bytes, self.schema.field(ci).ty, pack.n_rows)?);
        }
        Ok(out)
    }

    /// [`TableStorage::read_pack`], but preserving on-disk encodings the
    /// engine can execute on directly (`SET compressed_exec = 1`): PDICT
    /// string chunks come back as codes + shared dictionary, RLE integer
    /// chunks carry their run list. Same block fetch path (and therefore
    /// the same retry/fault accounting) as the flat reader.
    pub fn read_pack_encoded(
        &self,
        pool: &BufferPool,
        pack_idx: usize,
        col_indices: &[usize],
    ) -> Result<Vec<crate::pack::EncodedChunk>> {
        let pack = self
            .packs
            .get(pack_idx)
            .ok_or_else(|| VwError::Storage(format!("pack {pack_idx} out of range")))?;
        let mut out = Vec::with_capacity(col_indices.len());
        for &ci in col_indices {
            let meta = pack.columns.get(ci).ok_or_else(|| {
                VwError::Storage(format!("column {ci} out of range in pack {pack_idx}"))
            })?;
            let block = pool.get(meta.block)?;
            let bytes = block
                .get(meta.offset..meta.offset + meta.length)
                .ok_or_else(|| VwError::Corruption("chunk extent outside block".into()))?;
            out.push(crate::pack::decode_chunk_encoded(
                bytes,
                self.schema.field(ci).ty,
                pack.n_rows,
            )?);
        }
        Ok(out)
    }

    /// Pack indices whose MinMax ranges may satisfy
    /// `lo <= column <= hi` (either bound optional). NULL-only chunks are
    /// pruned when a bound is present (NULL never satisfies a comparison).
    pub fn prune(&self, col: usize, lo: Option<&Value>, hi: Option<&Value>) -> Vec<ScanRange> {
        use std::cmp::Ordering::*;
        self.packs
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                let m = &p.columns[col];
                if lo.is_none() && hi.is_none() {
                    return true;
                }
                let (Some(cmin), Some(cmax)) = (&m.min, &m.max) else {
                    return false; // all-NULL chunk cannot satisfy a bound
                };
                if let Some(lo) = lo {
                    // keep if cmax >= lo
                    if cmax.sql_cmp(lo) == Some(Less) {
                        return false;
                    }
                }
                if let Some(hi) = hi {
                    if cmin.sql_cmp(hi) == Some(Greater) {
                        return false;
                    }
                }
                true
            })
            .map(|(i, p)| ScanRange { pack: i, row_start: p.row_start, n_rows: p.n_rows })
            .collect()
    }

    /// All packs as scan ranges (full scan).
    pub fn all_ranges(&self) -> Vec<ScanRange> {
        self.packs
            .iter()
            .enumerate()
            .map(|(i, p)| ScanRange { pack: i, row_start: p.row_start, n_rows: p.n_rows })
            .collect()
    }

    /// Total bytes this table occupies on the device.
    pub fn stored_bytes(&self) -> usize {
        match self.layout {
            Layout::Dsm => self.packs.iter().flat_map(|p| p.columns.iter().map(|c| c.length)).sum(),
            Layout::Pax => {
                // One block per pack; sum unique block sizes.
                self.packs.iter().map(|p| p.columns.iter().map(|c| c.length).sum::<usize>()).sum()
            }
        }
    }

    /// Adopt another storage's pack metadata (block payloads are shared on
    /// the same device). Stable storage is immutable between checkpoints,
    /// so this produces a consistent point-in-time snapshot for scans that
    /// must not hold the catalog lock.
    pub fn adopt_packs(&mut self, src: &TableStorage) {
        debug_assert!(Arc::ptr_eq(&self.disk, &src.disk), "snapshot across devices");
        self.packs = src.packs.clone();
        self.n_rows = src.n_rows;
    }

    /// Free every block belonging to this table (DROP TABLE / checkpoint
    /// replacement). The storage object must not be used afterwards.
    pub fn free_all(&self, pool: Option<&BufferPool>) {
        for p in &self.packs {
            match self.layout {
                Layout::Pax => {
                    if let Some(c) = p.columns.first() {
                        if let Some(pool) = pool {
                            pool.invalidate(c.block);
                        }
                        self.disk.free(c.block);
                    }
                }
                Layout::Dsm => {
                    for c in &p.columns {
                        if let Some(pool) = pool {
                            pool.invalidate(c.block);
                        }
                        self.disk.free(c.block);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::{Field, TypeId};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::not_null("id", TypeId::I64),
            Field::nullable("qty", TypeId::I32),
            Field::nullable("flag", TypeId::Str),
        ])
        .unwrap()
    }

    fn sample_columns(n: usize, offset: i64) -> (Vec<ColData>, Vec<Option<Vec<bool>>>) {
        let ids = ColData::I64((0..n as i64).map(|i| i + offset).collect());
        let qty = ColData::I32((0..n).map(|i| (i % 50) as i32).collect());
        let flags = ColData::Str((0..n).map(|i| ["A", "N", "R"][i % 3].to_string()).collect());
        let qty_nulls: Vec<bool> = (0..n).map(|i| i % 10 == 0).collect();
        (vec![ids, qty, flags], vec![None, Some(qty_nulls), None])
    }

    fn load(layout: Layout, n: usize, pack: usize) -> (TableStorage, Arc<BufferPool>) {
        let disk = SimulatedDisk::instant();
        let pool = BufferPool::new(disk.clone(), 16 << 20);
        let mut t = TableStorage::new(disk, schema(), layout);
        let (cols, nulls) = sample_columns(n, 0);
        t.append_columns(&cols, &nulls, pack).unwrap();
        (t, pool)
    }

    #[test]
    fn roundtrip_dsm() {
        let (t, pool) = load(Layout::Dsm, 1000, 256);
        assert_eq!(t.n_rows(), 1000);
        assert_eq!(t.n_packs(), 4);
        let chunks = t.read_pack(&pool, 1, &[0, 2]).unwrap();
        assert_eq!(chunks[0].0.get_value(0), Value::I64(256));
        // Global row 258 → flag index 258 % 3 == 0 → "A".
        assert_eq!(chunks[1].0.get_value(2), Value::Str("A".into()));
    }

    #[test]
    fn roundtrip_pax() {
        let (t, pool) = load(Layout::Pax, 1000, 300);
        assert_eq!(t.n_packs(), 4);
        let chunks = t.read_pack(&pool, 3, &[1]).unwrap();
        let (qty, nulls) = &chunks[0];
        assert_eq!(qty.len(), 100); // last pack = 1000 - 3*300
        assert!(nulls.is_some());
    }

    #[test]
    fn pax_reads_one_block_dsm_reads_k() {
        let (t_dsm, pool_dsm) = load(Layout::Dsm, 512, 512);
        let (t_pax, pool_pax) = load(Layout::Pax, 512, 512);
        t_dsm.read_pack(&pool_dsm, 0, &[0]).unwrap();
        t_pax.read_pack(&pool_pax, 0, &[0]).unwrap();
        let dsm_bytes = pool_dsm.disk().stats().bytes_read;
        let pax_bytes = pool_pax.disk().stats().bytes_read;
        assert!(
            pax_bytes > dsm_bytes * 2,
            "PAX single-column scan must read the whole pack block ({pax_bytes} vs {dsm_bytes})"
        );
    }

    #[test]
    fn minmax_pruning() {
        let (t, _pool) = load(Layout::Dsm, 1000, 100);
        // id ranges per pack: [0..99], [100..199], ...
        let ranges = t.prune(0, Some(&Value::I64(250)), Some(&Value::I64(420)));
        let packs: Vec<usize> = ranges.iter().map(|r| r.pack).collect();
        assert_eq!(packs, vec![2, 3, 4]);
        // Unbounded keeps everything.
        assert_eq!(t.prune(0, None, None).len(), 10);
        // Out-of-domain range prunes everything.
        assert!(t.prune(0, Some(&Value::I64(5000)), None).is_empty());
    }

    #[test]
    fn schema_violations_rejected() {
        let disk = SimulatedDisk::instant();
        let mut t = TableStorage::new(disk, schema(), Layout::Dsm);
        // Wrong arity.
        assert!(t.append_pack(&[ColData::I64(vec![1])], &[None]).is_err());
        // Wrong type.
        let bad =
            vec![ColData::I32(vec![1]), ColData::I32(vec![1]), ColData::Str(vec!["x".into()])];
        assert!(t.append_pack(&bad, &[None, None, None]).is_err());
        // NULL in NOT NULL column.
        let cols =
            vec![ColData::I64(vec![1]), ColData::I32(vec![1]), ColData::Str(vec!["x".into()])];
        let nulls = vec![Some(vec![true]), None, None];
        assert!(t.append_pack(&cols, &nulls).is_err());
        // Ragged lengths.
        let cols =
            vec![ColData::I64(vec![1, 2]), ColData::I32(vec![1]), ColData::Str(vec!["x".into()])];
        assert!(t.append_pack(&cols, &[None, None, None]).is_err());
    }

    #[test]
    fn all_null_chunk_pruned_under_bounds() {
        let disk = SimulatedDisk::instant();
        let mut t = TableStorage::new(disk, schema(), Layout::Dsm);
        let cols = vec![
            ColData::I64(vec![1, 2]),
            ColData::I32(vec![0, 0]),
            ColData::Str(vec!["a".into(), "b".into()]),
        ];
        let nulls = vec![None, Some(vec![true, true]), None];
        t.append_pack(&cols, &nulls).unwrap();
        assert!(t.prune(1, Some(&Value::I32(0)), None).is_empty());
        assert_eq!(t.prune(1, None, None).len(), 1);
    }

    #[test]
    fn free_all_releases_blocks() {
        let (t, pool) = load(Layout::Dsm, 500, 100);
        let disk = t.disk().clone();
        assert!(disk.used_bytes() > 0);
        t.free_all(Some(&pool));
        assert_eq!(disk.used_bytes(), 0);
    }

    #[test]
    fn empty_append_is_noop() {
        let disk = SimulatedDisk::instant();
        let mut t = TableStorage::new(disk, schema(), Layout::Dsm);
        let cols =
            vec![ColData::new(TypeId::I64), ColData::new(TypeId::I32), ColData::new(TypeId::Str)];
        t.append_pack(&cols, &[None, None, None]).unwrap();
        assert_eq!(t.n_packs(), 0);
        assert_eq!(t.n_rows(), 0);
    }
}
