//! Table statistics: row counts, distinct estimates and equi-depth
//! histograms.
//!
//! The paper keeps Ingres' "solid, histogram-based query estimation" rather
//! than writing a new optimizer. This module provides the equivalent
//! statistics substrate: per-column equi-depth histograms built at load
//! time, with the selectivity estimators the optimizer calls.

use vw_common::hash::FxHashSet;
use vw_common::{ColData, TypeId, Value};

/// An equi-depth histogram over a numeric-comparable column.
///
/// `bounds` holds `k+1` boundary values delimiting `k` buckets of (roughly)
/// equal row counts. Values are projected to `f64` for bucket arithmetic
/// (dates via day number, strings via a 8-byte prefix projection).
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Bucket boundaries, ascending, length = buckets + 1.
    pub bounds: Vec<f64>,
    /// Rows represented (excluding NULLs).
    pub total: u64,
}

/// Project a value onto the histogram domain.
pub fn project(v: &Value) -> Option<f64> {
    Some(match v {
        Value::Null => return None,
        Value::Bool(b) => *b as u8 as f64,
        Value::I8(x) => *x as f64,
        Value::I16(x) => *x as f64,
        Value::I32(x) => *x as f64,
        Value::I64(x) => *x as f64,
        Value::F64(x) => *x,
        Value::Date(d) => d.0 as f64,
        Value::Str(s) => {
            // Order-preserving 8-byte prefix projection.
            let mut acc = 0.0f64;
            for (i, b) in s.bytes().take(8).enumerate() {
                acc += (b as f64) * 256f64.powi(6 - i as i32);
            }
            acc
        }
    })
}

impl Histogram {
    /// Build an equi-depth histogram with up to `buckets` buckets from
    /// sampled projections.
    pub fn build(mut samples: Vec<f64>, buckets: usize, total: u64) -> Option<Histogram> {
        if samples.is_empty() || buckets == 0 {
            return None;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let k = buckets.min(samples.len());
        let mut bounds = Vec::with_capacity(k + 1);
        for i in 0..=k {
            let idx = (i * (samples.len() - 1)) / k;
            bounds.push(samples[idx]);
        }
        // Duplicate boundaries are kept on purpose: for skewed data several
        // equal-depth buckets collapse onto one value, and that multiplicity
        // is exactly what encodes the skew.
        Some(Histogram { bounds, total })
    }

    /// Estimated selectivity of `column < x` (fraction in \[0,1\]).
    pub fn sel_lt(&self, x: f64) -> f64 {
        let k = (self.bounds.len() - 1) as f64;
        if x <= self.bounds[0] {
            return 0.0;
        }
        // Infallible: `build` only constructs a Histogram with >= 2 bounds.
        if x > *self.bounds.last().unwrap() {
            return 1.0;
        }
        // Each bucket holds 1/k of the rows; sum full buckets below x and
        // interpolate inside the bucket containing x. Zero-width buckets
        // (duplicate boundaries) count as full when below x.
        let mut acc = 0.0;
        for w in self.bounds.windows(2) {
            let (b0, b1) = (w[0], w[1]);
            if b1 < x {
                acc += 1.0;
            } else if b0 < x {
                acc += if b1 > b0 { (x - b0) / (b1 - b0) } else { 1.0 };
                break;
            } else {
                break;
            }
        }
        (acc / k).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of `lo <= column <= hi`.
    pub fn sel_range(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        let a = lo.map_or(0.0, |v| self.sel_lt(v));
        let b = hi.map_or(1.0, |v| self.sel_lt(v));
        (b - a).clamp(0.0, 1.0)
    }
}

/// Statistics of one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Column type.
    pub ty: TypeId,
    /// Distinct-value estimate.
    pub n_distinct: u64,
    /// NULL count.
    pub null_count: u64,
    /// Histogram over non-NULL values, if buildable.
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Estimated selectivity of an equality predicate `column = const`.
    pub fn sel_eq(&self) -> f64 {
        if self.n_distinct == 0 {
            return 0.0;
        }
        1.0 / self.n_distinct as f64
    }
}

/// Statistics of a whole table.
///
/// Built at bulk load and at CHECKPOINT (the only points where the full
/// stable column image is in hand); UPDATE/DELETE mark the snapshot
/// [stale](TableStats::stale) instead of rebuilding, and the cost model
/// falls back to structural defaults until the next rebuild clears it.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Row count.
    pub n_rows: u64,
    /// Per-column stats, schema order.
    pub columns: Vec<ColumnStats>,
    /// `true` after DML has mutated the table since these statistics were
    /// built: distinct counts and histograms may describe deleted or
    /// overwritten rows, so estimators must not trust them. Cleared by
    /// [`TableStats::build`] (CHECKPOINT / bulk load rebuild stats).
    pub stale: bool,
}

/// Maximum values sampled per column when building statistics.
const SAMPLE_LIMIT: usize = 64 * 1024;

impl TableStats {
    /// Build statistics from full-column data (bulk-load path). Sampling
    /// caps the work on very large tables.
    pub fn build(columns: &[ColData], nulls: &[Option<Vec<bool>>], buckets: usize) -> TableStats {
        let n_rows = columns.first().map_or(0, |c| c.len()) as u64;
        let cols = columns
            .iter()
            .zip(nulls)
            .map(|(col, mask)| {
                let n = col.len();
                let step = (n / SAMPLE_LIMIT).max(1);
                let mut distinct: FxHashSet<u64> = FxHashSet::default();
                let mut samples = Vec::with_capacity(n.min(SAMPLE_LIMIT));
                let mut null_count = 0u64;
                for i in (0..n).step_by(step) {
                    if mask.as_ref().is_some_and(|m| m[i]) {
                        null_count += 1;
                        continue;
                    }
                    let v = col.get_value(i);
                    if let Some(p) = project(&v) {
                        distinct.insert(p.to_bits());
                        samples.push(p);
                    }
                }
                // Scale the sampled counts back up.
                let scale = step as u64;
                let n_distinct = (distinct.len() as u64).saturating_mul(1).max(1);
                let histogram = Histogram::build(samples, buckets, n_rows - null_count * scale);
                ColumnStats {
                    ty: col.type_id(),
                    n_distinct,
                    null_count: null_count * scale,
                    histogram,
                }
            })
            .collect();
        TableStats { n_rows, columns: cols, stale: false }
    }

    /// Empty-table statistics with the right arity.
    pub fn empty(types: &[TypeId]) -> TableStats {
        TableStats {
            n_rows: 0,
            columns: types
                .iter()
                .map(|&ty| ColumnStats { ty, n_distinct: 0, null_count: 0, histogram: None })
                .collect(),
            stale: false,
        }
    }

    /// Mark the snapshot stale after DML (UPDATE/DELETE): the distinct
    /// counts and histograms may now describe dead rows, so the planner
    /// must stop consuming them until the next rebuild.
    pub fn mark_stale(&mut self) {
        self.stale = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equidepth_uniform() {
        let samples: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let h = Histogram::build(samples, 10, 10_000).unwrap();
        // Uniform data: sel_lt(5000) ≈ 0.5.
        let s = h.sel_lt(5000.0);
        assert!((s - 0.5).abs() < 0.05, "sel {s}");
        assert_eq!(h.sel_lt(-1.0), 0.0);
        assert_eq!(h.sel_lt(1e18), 1.0);
    }

    #[test]
    fn equidepth_skewed() {
        // 90% zeros, 10% spread: sel_lt(1) should be ≈ 0.9.
        let mut samples = vec![0.0; 9000];
        samples.extend((0..1000).map(|i| (i + 1) as f64));
        let h = Histogram::build(samples, 20, 10_000).unwrap();
        let s = h.sel_lt(1.0);
        assert!(s > 0.7, "skew underestimated: {s}");
    }

    #[test]
    fn range_selectivity() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::build(samples, 10, 1000).unwrap();
        let s = h.sel_range(Some(250.0), Some(750.0));
        assert!((s - 0.5).abs() < 0.1, "range sel {s}");
        assert_eq!(h.sel_range(None, None), 1.0);
    }

    #[test]
    fn constant_column() {
        let h = Histogram::build(vec![5.0; 100], 10, 100).unwrap();
        assert_eq!(h.sel_lt(5.0), 0.0);
        assert_eq!(h.sel_lt(6.0), 1.0);
    }

    #[test]
    fn string_projection_preserves_order() {
        let a = project(&Value::Str("apple".into())).unwrap();
        let b = project(&Value::Str("banana".into())).unwrap();
        let c = project(&Value::Str("cherry".into())).unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn table_stats_distincts_and_nulls() {
        let col = ColData::I32((0..1000).map(|i| i % 10).collect());
        let mask: Vec<bool> = (0..1000).map(|i| i % 4 == 0).collect();
        let stats = TableStats::build(&[col], &[Some(mask)], 8);
        assert_eq!(stats.n_rows, 1000);
        let c = &stats.columns[0];
        assert!(c.n_distinct <= 10);
        assert_eq!(c.null_count, 250);
        assert!((c.sel_eq() - 0.1).abs() < 0.05);
    }

    #[test]
    fn empty_stats() {
        let s = TableStats::empty(&[TypeId::I32, TypeId::Str]);
        assert_eq!(s.n_rows, 0);
        assert_eq!(s.columns.len(), 2);
        assert_eq!(s.columns[0].sel_eq(), 0.0);
    }

    #[test]
    fn staleness_set_by_dml_cleared_by_rebuild() {
        let col = ColData::I32((0..100).collect());
        let mut s = TableStats::build(std::slice::from_ref(&col), &[None], 8);
        assert!(!s.stale, "fresh build starts trusted");
        s.mark_stale();
        assert!(s.stale);
        // A rebuild (the CHECKPOINT path) produces a trusted snapshot again.
        let s = TableStats::build(&[col], &[None], 8);
        assert!(!s.stale);
    }
}
