//! A simulated block device with configurable bandwidth and seek latency.
//!
//! Cooperative Scans (reference \[7\]) is about *scheduling policy* on a
//! bandwidth-limited device. Running the experiments on the page cache of
//! the build machine would measure nothing; this simulated disk makes I/O
//! cost explicit and deterministic:
//!
//! * reading a block costs `seek_latency` (if non-sequential) plus
//!   `len / bandwidth`, charged by sleeping, so concurrent scans genuinely
//!   compete for the device,
//! * all traffic is counted in [`DiskStats`], which the C3/C9 benches report
//!   (I/O volume is the policy-independent ground truth).
//!
//! With `DiskConfig::instant()` the device is free, which unit tests use.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use vw_common::{Result, VwError};

/// Identifies one block on the simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// Performance model of the device.
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// Sustained transfer rate in bytes/second.
    pub bandwidth_bytes_per_sec: u64,
    /// Cost of a non-sequential access.
    pub seek_latency: Duration,
}

impl DiskConfig {
    /// A zero-cost device (unit tests; pure in-memory operation).
    pub fn instant() -> DiskConfig {
        DiskConfig { bandwidth_bytes_per_sec: 0, seek_latency: Duration::ZERO }
    }

    /// A small HDD-ish device: 200 MB/s, 1 ms seeks. Benchmarks use this so
    /// that scan scheduling effects dominate CPU noise.
    pub fn hdd_like() -> DiskConfig {
        DiskConfig { bandwidth_bytes_per_sec: 200 << 20, seek_latency: Duration::from_millis(1) }
    }
}

/// Monotonic traffic counters.
#[derive(Debug, Default, Clone)]
pub struct DiskStats {
    /// Blocks read.
    pub reads: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Non-sequential reads (predecessor block differs).
    pub seeks: u64,
    /// Blocks written.
    pub writes: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

struct DiskInner {
    blocks: HashMap<u64, Arc<Vec<u8>>>,
    last_read: Option<u64>,
}

/// The simulated device. Cheap to clone (`Arc` inside); thread-safe.
pub struct SimulatedDisk {
    inner: Mutex<DiskInner>,
    config: DiskConfig,
    next_id: AtomicU64,
    reads: AtomicU64,
    bytes_read: AtomicU64,
    seeks: AtomicU64,
    writes: AtomicU64,
    bytes_written: AtomicU64,
}

impl SimulatedDisk {
    /// Create a device with the given performance model.
    pub fn new(config: DiskConfig) -> Arc<SimulatedDisk> {
        Arc::new(SimulatedDisk {
            inner: Mutex::new(DiskInner { blocks: HashMap::new(), last_read: None }),
            config,
            next_id: AtomicU64::new(1),
            reads: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            seeks: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        })
    }

    /// Create an instant (cost-free) device.
    pub fn instant() -> Arc<SimulatedDisk> {
        SimulatedDisk::new(DiskConfig::instant())
    }

    /// Allocate a fresh block id and store `data` under it.
    pub fn write_new(&self, data: Vec<u8>) -> BlockId {
        let id = BlockId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.inner.lock().blocks.insert(id.0, Arc::new(data));
        id
    }

    /// Overwrite an existing block (checkpoint propagation).
    pub fn rewrite(&self, id: BlockId, data: Vec<u8>) -> Result<()> {
        let mut inner = self.inner.lock();
        if !inner.blocks.contains_key(&id.0) {
            return Err(VwError::Storage(format!("rewrite of unknown block {id:?}")));
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(data.len() as u64, Ordering::Relaxed);
        inner.blocks.insert(id.0, Arc::new(data));
        Ok(())
    }

    /// Read a block, charging simulated I/O time *outside* the lock so
    /// concurrent readers serialize on the device only logically (the
    /// bandwidth model is per-device: we hold a short lock to fetch, then
    /// sleep for the transfer time).
    pub fn read(&self, id: BlockId) -> Result<Arc<Vec<u8>>> {
        let (data, sequential) = {
            let mut inner = self.inner.lock();
            let data = inner
                .blocks
                .get(&id.0)
                .cloned()
                .ok_or_else(|| VwError::Storage(format!("read of unknown block {id:?}")))?;
            let sequential = inner.last_read == Some(id.0.wrapping_sub(1));
            inner.last_read = Some(id.0);
            (data, sequential)
        };
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(data.len() as u64, Ordering::Relaxed);
        if !sequential {
            self.seeks.fetch_add(1, Ordering::Relaxed);
        }
        let mut cost = Duration::ZERO;
        if !sequential {
            cost += self.config.seek_latency;
        }
        if self.config.bandwidth_bytes_per_sec > 0 {
            cost += Duration::from_secs_f64(
                data.len() as f64 / self.config.bandwidth_bytes_per_sec as f64,
            );
        }
        if cost > Duration::ZERO {
            std::thread::sleep(cost);
        }
        Ok(data)
    }

    /// Drop a block (table drop / checkpoint garbage collection).
    pub fn free(&self, id: BlockId) {
        self.inner.lock().blocks.remove(&id.0);
    }

    /// Size of a block in bytes without charging a read.
    pub fn block_size(&self, id: BlockId) -> Result<usize> {
        self.inner
            .lock()
            .blocks
            .get(&id.0)
            .map(|b| b.len())
            .ok_or_else(|| VwError::Storage(format!("size of unknown block {id:?}")))
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.reads.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Total bytes currently stored.
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().blocks.values().map(|b| b.len()).sum()
    }
}

/// A temp spill file: an ordered run of blocks on the simulated device,
/// owned by one operator. The grace-spilling hash operators
/// (`vw-exec::spill`) append encoded batches during build/probe and read
/// them back chunk-by-chunk when a spilled partition is rehydrated.
///
/// Dropping the file frees every block — temp space is reclaimed whether
/// the query completes, errors, or is `KILL`ed mid-spill.
pub struct SpillFile {
    disk: Arc<SimulatedDisk>,
    chunks: Vec<BlockId>,
    bytes: u64,
}

impl SpillFile {
    /// An empty spill file on `disk`.
    pub fn new(disk: Arc<SimulatedDisk>) -> SpillFile {
        SpillFile { disk, chunks: Vec::new(), bytes: 0 }
    }

    /// Append one encoded chunk; returns its size in bytes.
    pub fn append(&mut self, data: Vec<u8>) -> usize {
        let n = data.len();
        self.bytes += n as u64;
        self.chunks.push(self.disk.write_new(data));
        n
    }

    /// Number of chunks appended so far.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// True when nothing was ever appended.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Total bytes written (the rehydration cost estimate).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Read chunk `i` back (charges simulated I/O like any block read).
    pub fn read_chunk(&self, i: usize) -> Result<Arc<Vec<u8>>> {
        self.disk.read(self.chunks[i])
    }

    /// The device this file lives on.
    pub fn disk(&self) -> &Arc<SimulatedDisk> {
        &self.disk
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        for id in self.chunks.drain(..) {
            self.disk.free(id);
        }
    }
}

impl std::fmt::Debug for SpillFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillFile")
            .field("chunks", &self.chunks.len())
            .field("bytes", &self.bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let disk = SimulatedDisk::instant();
        let id = disk.write_new(vec![1, 2, 3]);
        assert_eq!(*disk.read(id).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn unknown_block_errors() {
        let disk = SimulatedDisk::instant();
        assert!(disk.read(BlockId(999)).is_err());
        assert!(disk.rewrite(BlockId(999), vec![]).is_err());
        assert!(disk.block_size(BlockId(999)).is_err());
    }

    #[test]
    fn stats_count_traffic() {
        let disk = SimulatedDisk::instant();
        let a = disk.write_new(vec![0; 100]);
        let b = disk.write_new(vec![0; 50]);
        disk.read(a).unwrap();
        disk.read(b).unwrap(); // sequential (b = a+1)
        disk.read(a).unwrap(); // seek back
        let s = disk.stats();
        assert_eq!(s.reads, 3);
        assert_eq!(s.bytes_read, 250);
        assert_eq!(s.seeks, 2, "first read and the jump back are seeks");
        assert_eq!(s.writes, 2);
        assert_eq!(s.bytes_written, 150);
    }

    #[test]
    fn rewrite_replaces() {
        let disk = SimulatedDisk::instant();
        let id = disk.write_new(vec![1]);
        disk.rewrite(id, vec![9, 9]).unwrap();
        assert_eq!(*disk.read(id).unwrap(), vec![9, 9]);
    }

    #[test]
    fn free_releases_space() {
        let disk = SimulatedDisk::instant();
        let id = disk.write_new(vec![0; 1000]);
        assert_eq!(disk.used_bytes(), 1000);
        disk.free(id);
        assert_eq!(disk.used_bytes(), 0);
        assert!(disk.read(id).is_err());
    }

    #[test]
    fn spill_file_appends_reads_and_frees_on_drop() {
        let disk = SimulatedDisk::instant();
        let mut f = SpillFile::new(disk.clone());
        assert!(f.is_empty());
        assert_eq!(f.append(vec![1, 2, 3]), 3);
        assert_eq!(f.append(vec![4, 5]), 2);
        assert_eq!(f.n_chunks(), 2);
        assert_eq!(f.bytes_written(), 5);
        assert_eq!(*f.read_chunk(0).unwrap(), vec![1, 2, 3]);
        assert_eq!(*f.read_chunk(1).unwrap(), vec![4, 5]);
        assert_eq!(disk.used_bytes(), 5);
        drop(f);
        assert_eq!(disk.used_bytes(), 0, "temp blocks reclaimed on drop");
    }

    #[test]
    fn simulated_cost_is_charged() {
        let disk = SimulatedDisk::new(DiskConfig {
            bandwidth_bytes_per_sec: 1 << 20,
            seek_latency: Duration::from_millis(2),
        });
        let id = disk.write_new(vec![0; 1 << 18]); // 256 KiB = 250 ms at 1 MiB/s
        let t0 = std::time::Instant::now();
        disk.read(id).unwrap();
        let elapsed = t0.elapsed();
        assert!(elapsed >= Duration::from_millis(200), "read too fast: {elapsed:?}");
    }
}
