//! A simulated block device with configurable bandwidth, seek latency, and
//! deterministic fault injection.
//!
//! Cooperative Scans (reference \[7\]) is about *scheduling policy* on a
//! bandwidth-limited device. Running the experiments on the page cache of
//! the build machine would measure nothing; this simulated disk makes I/O
//! cost explicit and deterministic:
//!
//! * reading a block costs `seek_latency` (if non-sequential) plus
//!   `len / bandwidth`, charged by sleeping, so concurrent scans genuinely
//!   compete for the device,
//! * all traffic is counted in [`DiskStats`], which the C3/C9 benches report
//!   (I/O volume is the policy-independent ground truth).
//!
//! With `DiskConfig::instant()` the device is free, which unit tests use.
//!
//! # Fault injection
//!
//! [`SimulatedDisk::arm_faults`] installs a seeded [`FaultConfig`]: per-op
//! read/write error probability, bit-flip/truncation corruption on read,
//! added latency, and a "fail the Nth write" trigger. Injection is
//! deterministic for a given (seed, operation sequence). When no faults are
//! armed the only cost is one relaxed atomic load per operation — none of
//! the machinery is constructed.
//!
//! Consumers detect in-flight corruption through [`SimulatedDisk::verify`]
//! (the stand-in for a real on-disk block checksum) and absorb transient
//! faults through [`retry_io`], the engine-wide bounded retry-with-backoff
//! policy. Retries are counted in [`DiskStats::io_retries`]. The full error
//! taxonomy, retry policy, and reclamation invariants are documented in the
//! repo-root ARCHITECTURE.md ("Failure model").

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use vw_common::{FaultConfig, Result, VwError};

/// Identifies one block on the simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// Performance model of the device.
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// Sustained transfer rate in bytes/second.
    pub bandwidth_bytes_per_sec: u64,
    /// Cost of a non-sequential access.
    pub seek_latency: Duration,
}

impl DiskConfig {
    /// A zero-cost device (unit tests; pure in-memory operation).
    pub fn instant() -> DiskConfig {
        DiskConfig { bandwidth_bytes_per_sec: 0, seek_latency: Duration::ZERO }
    }

    /// A small HDD-ish device: 200 MB/s, 1 ms seeks. Benchmarks use this so
    /// that scan scheduling effects dominate CPU noise.
    pub fn hdd_like() -> DiskConfig {
        DiskConfig { bandwidth_bytes_per_sec: 200 << 20, seek_latency: Duration::from_millis(1) }
    }
}

/// Monotonic traffic counters.
#[derive(Debug, Default, Clone)]
pub struct DiskStats {
    /// Blocks read.
    pub reads: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Non-sequential reads (predecessor block differs).
    pub seeks: u64,
    /// Blocks written.
    pub writes: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Retry attempts absorbed by the [`retry_io`] policy (transient
    /// injected faults that never surfaced to a query).
    pub io_retries: u64,
    /// Faults the injector has fired (errors + corruptions + Nth-write).
    pub faults_injected: u64,
}

struct DiskInner {
    blocks: HashMap<u64, Arc<Vec<u8>>>,
    last_read: Option<u64>,
}

/// The seeded fault state: a splitmix64 stream plus the write counter the
/// Nth-write trigger watches. Constructed only by [`SimulatedDisk::arm_faults`].
struct FaultInjector {
    cfg: FaultConfig,
    /// splitmix64 state; Mutex keeps the draw sequence deterministic under
    /// concurrency (one lock per *armed* operation only).
    rng: Mutex<u64>,
    writes_seen: AtomicU64,
}

impl FaultInjector {
    fn new(cfg: FaultConfig) -> FaultInjector {
        let seed = cfg.seed;
        FaultInjector { cfg, rng: Mutex::new(seed), writes_seen: AtomicU64::new(0) }
    }

    /// Next 64 pseudo-random bits (splitmix64 — deterministic per seed).
    fn next_u64(&self) -> u64 {
        let mut s = self.rng.lock();
        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Bernoulli trial with probability `p`.
    fn roll(&self, p: f64) -> bool {
        p > 0.0 && ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Corrupt a copy of `data`: flip one bit or truncate the tail, at a
    /// position drawn from the seeded stream. Empty blocks truncate to
    /// empty (still a fresh allocation, so verification catches it).
    fn corrupt(&self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        let r = self.next_u64();
        if out.is_empty() {
            return out;
        }
        if r & 1 == 0 {
            let pos = (r >> 1) as usize % out.len();
            out[pos] ^= 1 << ((r >> 57) & 7);
        } else {
            out.truncate((r >> 1) as usize % out.len());
        }
        out
    }
}

/// The simulated device. Cheap to clone (`Arc` inside); thread-safe.
pub struct SimulatedDisk {
    inner: Mutex<DiskInner>,
    config: DiskConfig,
    next_id: AtomicU64,
    reads: AtomicU64,
    bytes_read: AtomicU64,
    seeks: AtomicU64,
    writes: AtomicU64,
    bytes_written: AtomicU64,
    io_retries: AtomicU64,
    faults_injected: AtomicU64,
    /// Fast gate: the fault-free path pays exactly this one relaxed load.
    fault_active: AtomicBool,
    fault: Mutex<Option<FaultInjector>>,
}

/// Retry attempts (after the first) the [`retry_io`] policy grants a
/// transient fault before surfacing it.
pub const MAX_IO_RETRIES: u32 = 4;

/// Engine-wide bounded retry-with-backoff for transient device faults:
/// up to [`MAX_IO_RETRIES`] retries with exponential backoff (50 µs
/// doubling), counting every retry in [`DiskStats::io_retries`]. Only
/// `VwError::Io { transient: true, .. }` is retried — terminal I/O errors,
/// `Storage` (unknown block), and everything else surface immediately.
///
/// The buffer pool wraps block reads (plus [`SimulatedDisk::verify`]) in
/// this; [`SpillFile`] wraps both directions; table/heap writers wrap
/// their block writes via [`SimulatedDisk::write_new_retrying`].
pub fn retry_io<T>(disk: &SimulatedDisk, mut f: impl FnMut() -> Result<T>) -> Result<T> {
    let mut attempt = 0u32;
    loop {
        match f() {
            Err(VwError::Io { transient: true, .. }) if attempt < MAX_IO_RETRIES => {
                attempt += 1;
                disk.io_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(50u64 << (attempt - 1)));
            }
            other => return other,
        }
    }
}

impl SimulatedDisk {
    /// Create a device with the given performance model.
    pub fn new(config: DiskConfig) -> Arc<SimulatedDisk> {
        Arc::new(SimulatedDisk {
            inner: Mutex::new(DiskInner { blocks: HashMap::new(), last_read: None }),
            config,
            next_id: AtomicU64::new(1),
            reads: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            seeks: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            io_retries: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            fault_active: AtomicBool::new(false),
            fault: Mutex::new(None),
        })
    }

    /// Create an instant (cost-free) device.
    pub fn instant() -> Arc<SimulatedDisk> {
        SimulatedDisk::new(DiskConfig::instant())
    }

    /// Install a fault injector (no-op for an inactive config). Arming
    /// resets the injector's RNG and write counter, so a fixed seed
    /// reproduces the same fault sequence from this point.
    pub fn arm_faults(&self, cfg: FaultConfig) {
        if !cfg.is_active() {
            return;
        }
        *self.fault.lock() = Some(FaultInjector::new(cfg));
        self.fault_active.store(true, Ordering::Release);
    }

    /// Remove the fault injector; subsequent operations are fault-free.
    pub fn disarm_faults(&self) {
        self.fault_active.store(false, Ordering::Release);
        *self.fault.lock() = None;
    }

    /// True while a fault injector is armed.
    pub fn faults_armed(&self) -> bool {
        self.fault_active.load(Ordering::Acquire)
    }

    /// Fire the armed write faults, if any. `Ok(())` = let the write through.
    fn inject_write_fault(&self) -> Result<()> {
        if !self.fault_active.load(Ordering::Relaxed) {
            return Ok(());
        }
        let guard = self.fault.lock();
        let Some(f) = guard.as_ref() else { return Ok(()) };
        if f.cfg.latency_us > 0 {
            std::thread::sleep(Duration::from_micros(f.cfg.latency_us));
        }
        let nth = f.writes_seen.fetch_add(1, Ordering::Relaxed) + 1;
        if f.cfg.fail_nth_write == Some(nth) {
            self.faults_injected.fetch_add(1, Ordering::Relaxed);
            return Err(VwError::Io {
                transient: false,
                msg: format!("injected terminal fault on write #{nth}"),
            });
        }
        if f.roll(f.cfg.write_err) {
            self.faults_injected.fetch_add(1, Ordering::Relaxed);
            return Err(VwError::Io {
                transient: true,
                msg: format!("injected write fault (write #{nth})"),
            });
        }
        Ok(())
    }

    /// Allocate a fresh block id and store `data` under it. Fails only
    /// under armed write faults; the fault-free path cannot fail.
    pub fn write_new(&self, data: Vec<u8>) -> Result<BlockId> {
        self.inject_write_fault()?;
        let id = BlockId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.inner.lock().blocks.insert(id.0, Arc::new(data));
        Ok(id)
    }

    /// [`write_new`](Self::write_new) under the [`retry_io`] policy — the
    /// data never has to be re-supplied, so writers that cannot cheaply
    /// clone their payload retry here instead of wrapping the call.
    pub fn write_new_retrying(&self, data: Vec<u8>) -> Result<BlockId> {
        let mut attempt = 0u32;
        loop {
            match self.inject_write_fault() {
                Ok(()) => break,
                Err(VwError::Io { transient: true, .. }) if attempt < MAX_IO_RETRIES => {
                    attempt += 1;
                    self.io_retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_micros(50u64 << (attempt - 1)));
                }
                Err(e) => return Err(e),
            }
        }
        let id = BlockId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.inner.lock().blocks.insert(id.0, Arc::new(data));
        Ok(id)
    }

    /// Overwrite an existing block (checkpoint propagation). Subject to
    /// write faults like [`write_new`](Self::write_new); checkpoint callers
    /// wrap it in [`retry_io`].
    pub fn rewrite(&self, id: BlockId, data: Vec<u8>) -> Result<()> {
        self.inject_write_fault()?;
        let mut inner = self.inner.lock();
        if !inner.blocks.contains_key(&id.0) {
            return Err(VwError::Storage(format!("rewrite of unknown block {id:?}")));
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(data.len() as u64, Ordering::Relaxed);
        inner.blocks.insert(id.0, Arc::new(data));
        Ok(())
    }

    /// Read a block, charging simulated I/O time *outside* the lock so
    /// concurrent readers serialize on the device only logically (the
    /// bandwidth model is per-device: we hold a short lock to fetch, then
    /// sleep for the transfer time).
    ///
    /// Under armed faults a read may fail with a transient
    /// [`VwError::Io`] or return a *corrupted copy*
    /// of the block — callers that cache or decode bytes pair this with
    /// [`verify`](Self::verify) inside a [`retry_io`] loop.
    pub fn read(&self, id: BlockId) -> Result<Arc<Vec<u8>>> {
        let (mut data, sequential) = {
            let mut inner = self.inner.lock();
            let data = inner
                .blocks
                .get(&id.0)
                .cloned()
                .ok_or_else(|| VwError::Storage(format!("read of unknown block {id:?}")))?;
            let sequential = inner.last_read == Some(id.0.wrapping_sub(1));
            inner.last_read = Some(id.0);
            (data, sequential)
        };
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(data.len() as u64, Ordering::Relaxed);
        if !sequential {
            self.seeks.fetch_add(1, Ordering::Relaxed);
        }
        if self.fault_active.load(Ordering::Relaxed) {
            let guard = self.fault.lock();
            if let Some(f) = guard.as_ref() {
                if f.cfg.latency_us > 0 {
                    std::thread::sleep(Duration::from_micros(f.cfg.latency_us));
                }
                if f.roll(f.cfg.read_err) {
                    self.faults_injected.fetch_add(1, Ordering::Relaxed);
                    return Err(VwError::Io {
                        transient: true,
                        msg: format!("injected read fault on block {id:?}"),
                    });
                }
                if f.roll(f.cfg.corrupt) {
                    self.faults_injected.fetch_add(1, Ordering::Relaxed);
                    data = Arc::new(f.corrupt(&data));
                }
            }
        }
        let mut cost = Duration::ZERO;
        if !sequential {
            cost += self.config.seek_latency;
        }
        if self.config.bandwidth_bytes_per_sec > 0 {
            cost += Duration::from_secs_f64(
                data.len() as f64 / self.config.bandwidth_bytes_per_sec as f64,
            );
        }
        if cost > Duration::ZERO {
            std::thread::sleep(cost);
        }
        Ok(data)
    }

    /// Validate that `data` is the pristine content of block `id` — the
    /// simulation stand-in for an on-disk block checksum (the device holds
    /// the pristine copy, so the common case is an `Arc` pointer compare;
    /// an injected corruption allocates and therefore memcmps). Returns a
    /// *transient* [`VwError::Io`] on mismatch: the
    /// stored block is intact, so a re-read inside [`retry_io`] recovers.
    /// A block freed concurrently verifies clean (staleness is the block
    /// owner's protocol, not a device-integrity failure). Free when no
    /// faults are armed.
    pub fn verify(&self, id: BlockId, data: &Arc<Vec<u8>>) -> Result<()> {
        if !self.fault_active.load(Ordering::Relaxed) {
            return Ok(());
        }
        let inner = self.inner.lock();
        match inner.blocks.get(&id.0) {
            Some(pristine) if Arc::ptr_eq(pristine, data) || **pristine == **data => Ok(()),
            None => Ok(()),
            Some(_) => Err(VwError::Io {
                transient: true,
                msg: format!("checksum mismatch on block {id:?}"),
            }),
        }
    }

    /// Drop a block (table drop / checkpoint garbage collection).
    pub fn free(&self, id: BlockId) {
        self.inner.lock().blocks.remove(&id.0);
    }

    /// Size of a block in bytes without charging a read.
    pub fn block_size(&self, id: BlockId) -> Result<usize> {
        self.inner
            .lock()
            .blocks
            .get(&id.0)
            .map(|b| b.len())
            .ok_or_else(|| VwError::Storage(format!("size of unknown block {id:?}")))
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.reads.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            io_retries: self.io_retries.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
        }
    }

    /// Total bytes currently stored.
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().blocks.values().map(|b| b.len()).sum()
    }
}

/// A temp spill file: an ordered run of blocks on the simulated device,
/// owned by one operator. The grace-spilling hash operators
/// (`vw-exec::spill`) append encoded batches during build/probe and read
/// them back chunk-by-chunk when a spilled partition is rehydrated.
///
/// Both directions run under the [`retry_io`] policy, and reads are
/// verified against the stored block, so transient injected faults are
/// absorbed and corruption is detected before decode.
///
/// Dropping the file frees every block — temp space is reclaimed whether
/// the query completes, errors, or is `KILL`ed mid-spill.
pub struct SpillFile {
    disk: Arc<SimulatedDisk>,
    chunks: Vec<BlockId>,
    bytes: u64,
}

impl SpillFile {
    /// An empty spill file on `disk`.
    pub fn new(disk: Arc<SimulatedDisk>) -> SpillFile {
        SpillFile { disk, chunks: Vec::new(), bytes: 0 }
    }

    /// Append one encoded chunk; returns its size in bytes. Transient
    /// write faults are retried; a terminal fault surfaces (and the file
    /// still frees every successfully written chunk on drop).
    pub fn append(&mut self, data: Vec<u8>) -> Result<usize> {
        let n = data.len();
        let id = self.disk.write_new_retrying(data)?;
        self.bytes += n as u64;
        self.chunks.push(id);
        Ok(n)
    }

    /// Number of chunks appended so far.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// True when nothing was ever appended.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Total bytes written (the rehydration cost estimate).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Read chunk `i` back (charges simulated I/O like any block read).
    /// The returned bytes are verified against the stored block; transient
    /// faults and detected corruption are retried before surfacing.
    pub fn read_chunk(&self, i: usize) -> Result<Arc<Vec<u8>>> {
        let id = *self
            .chunks
            .get(i)
            .ok_or_else(|| VwError::Storage(format!("spill chunk {i} out of range")))?;
        retry_io(&self.disk, || {
            let data = self.disk.read(id)?;
            self.disk.verify(id, &data)?;
            Ok(data)
        })
    }

    /// The device this file lives on.
    pub fn disk(&self) -> &Arc<SimulatedDisk> {
        &self.disk
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        for id in self.chunks.drain(..) {
            self.disk.free(id);
        }
    }
}

impl std::fmt::Debug for SpillFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillFile")
            .field("chunks", &self.chunks.len())
            .field("bytes", &self.bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let disk = SimulatedDisk::instant();
        let id = disk.write_new(vec![1, 2, 3]).unwrap();
        assert_eq!(*disk.read(id).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn unknown_block_errors() {
        let disk = SimulatedDisk::instant();
        assert!(disk.read(BlockId(999)).is_err());
        assert!(disk.rewrite(BlockId(999), vec![]).is_err());
        assert!(disk.block_size(BlockId(999)).is_err());
    }

    #[test]
    fn stats_count_traffic() {
        let disk = SimulatedDisk::instant();
        let a = disk.write_new(vec![0; 100]).unwrap();
        let b = disk.write_new(vec![0; 50]).unwrap();
        disk.read(a).unwrap();
        disk.read(b).unwrap(); // sequential (b = a+1)
        disk.read(a).unwrap(); // seek back
        let s = disk.stats();
        assert_eq!(s.reads, 3);
        assert_eq!(s.bytes_read, 250);
        assert_eq!(s.seeks, 2, "first read and the jump back are seeks");
        assert_eq!(s.writes, 2);
        assert_eq!(s.bytes_written, 150);
        assert_eq!(s.io_retries, 0);
        assert_eq!(s.faults_injected, 0);
    }

    #[test]
    fn rewrite_replaces() {
        let disk = SimulatedDisk::instant();
        let id = disk.write_new(vec![1]).unwrap();
        disk.rewrite(id, vec![9, 9]).unwrap();
        assert_eq!(*disk.read(id).unwrap(), vec![9, 9]);
    }

    #[test]
    fn free_releases_space() {
        let disk = SimulatedDisk::instant();
        let id = disk.write_new(vec![0; 1000]).unwrap();
        assert_eq!(disk.used_bytes(), 1000);
        disk.free(id);
        assert_eq!(disk.used_bytes(), 0);
        assert!(disk.read(id).is_err());
    }

    #[test]
    fn spill_file_appends_reads_and_frees_on_drop() {
        let disk = SimulatedDisk::instant();
        let mut f = SpillFile::new(disk.clone());
        assert!(f.is_empty());
        assert_eq!(f.append(vec![1, 2, 3]).unwrap(), 3);
        assert_eq!(f.append(vec![4, 5]).unwrap(), 2);
        assert_eq!(f.n_chunks(), 2);
        assert_eq!(f.bytes_written(), 5);
        assert_eq!(*f.read_chunk(0).unwrap(), vec![1, 2, 3]);
        assert_eq!(*f.read_chunk(1).unwrap(), vec![4, 5]);
        assert!(f.read_chunk(2).is_err(), "out-of-range chunk is a typed error");
        assert_eq!(disk.used_bytes(), 5);
        drop(f);
        assert_eq!(disk.used_bytes(), 0, "temp blocks reclaimed on drop");
    }

    #[test]
    fn simulated_cost_is_charged() {
        let disk = SimulatedDisk::new(DiskConfig {
            bandwidth_bytes_per_sec: 1 << 20,
            seek_latency: Duration::from_millis(2),
        });
        let id = disk.write_new(vec![0; 1 << 18]).unwrap(); // 256 KiB = 250 ms at 1 MiB/s
        let t0 = std::time::Instant::now();
        disk.read(id).unwrap();
        let elapsed = t0.elapsed();
        assert!(elapsed >= Duration::from_millis(200), "read too fast: {elapsed:?}");
    }

    #[test]
    fn injected_read_faults_are_deterministic_and_counted() {
        let faults = FaultConfig { seed: 7, read_err: 0.5, ..Default::default() };
        let outcomes = |seed: u64| {
            let disk = SimulatedDisk::instant();
            let id = disk.write_new(vec![1; 16]).unwrap();
            disk.arm_faults(FaultConfig { seed, ..faults.clone() });
            (0..64).map(|_| disk.read(id).is_ok()).collect::<Vec<_>>()
        };
        let a = outcomes(7);
        assert_eq!(a, outcomes(7), "same seed, same fault sequence");
        assert_ne!(a, outcomes(8), "different seed diverges");
        assert!(a.iter().any(|ok| !ok) && a.iter().any(|ok| *ok), "p=0.5 mixes");

        let disk = SimulatedDisk::instant();
        let id = disk.write_new(vec![1; 16]).unwrap();
        disk.arm_faults(FaultConfig { seed: 7, read_err: 1.0, ..Default::default() });
        assert!(matches!(disk.read(id), Err(VwError::Io { transient: true, .. })));
        assert!(disk.stats().faults_injected >= 1);
        disk.disarm_faults();
        assert!(disk.read(id).is_ok(), "disarm restores fault-free operation");
    }

    #[test]
    fn corruption_is_caught_by_verify_and_recovered_by_retry() {
        let disk = SimulatedDisk::instant();
        let id = disk.write_new((0..255).collect()).unwrap();
        disk.arm_faults(FaultConfig { seed: 3, corrupt: 1.0, ..Default::default() });
        // Every read corrupts; verify must flag every one of them.
        for _ in 0..16 {
            let data = disk.read(id).unwrap();
            assert!(matches!(disk.verify(id, &data), Err(VwError::Io { transient: true, .. })));
        }
        // At p=0.3 a verified retry loop recovers (pristine reads pass).
        disk.arm_faults(FaultConfig { seed: 3, corrupt: 0.3, ..Default::default() });
        for _ in 0..16 {
            let data = retry_io(&disk, || {
                let d = disk.read(id)?;
                disk.verify(id, &d)?;
                Ok(d)
            })
            .unwrap();
            assert_eq!(*data, (0..255).collect::<Vec<u8>>());
        }
        assert!(disk.stats().io_retries > 0, "recovery retries are counted");
    }

    #[test]
    fn fail_nth_write_is_terminal_and_not_retried() {
        let disk = SimulatedDisk::instant();
        disk.arm_faults(FaultConfig { seed: 1, fail_nth_write: Some(2), ..Default::default() });
        assert!(disk.write_new(vec![1]).is_ok());
        let retries_before = disk.stats().io_retries;
        let err = disk.write_new_retrying(vec![2]).unwrap_err();
        assert!(matches!(err, VwError::Io { transient: false, .. }));
        assert_eq!(disk.stats().io_retries, retries_before, "terminal faults never retry");
        assert!(disk.write_new(vec![3]).is_ok(), "only the Nth write fails");
    }

    #[test]
    fn transient_write_faults_absorbed_by_retrying_writer() {
        let disk = SimulatedDisk::instant();
        disk.arm_faults(FaultConfig { seed: 11, write_err: 0.4, ..Default::default() });
        let mut written = Vec::new();
        for i in 0..64u8 {
            // At p=0.4 a write may exhaust its retry budget (p^5 per
            // write) — that must be a typed transient error, never a
            // panic or a half-written block.
            match disk.write_new_retrying(vec![i]) {
                Ok(id) => written.push((id, i)),
                Err(e) => assert!(matches!(e, VwError::Io { transient: true, .. })),
            }
        }
        disk.disarm_faults();
        assert!(written.len() > 48, "retries absorb most faults: {}", written.len());
        assert!(disk.stats().io_retries > 0);
        for (id, i) in written {
            assert_eq!(*disk.read(id).unwrap(), vec![i], "retried writes landed intact");
        }
    }

    #[test]
    fn spill_file_survives_faulted_device() {
        let disk = SimulatedDisk::instant();
        disk.arm_faults(FaultConfig {
            seed: 5,
            read_err: 0.2,
            write_err: 0.2,
            corrupt: 0.2,
            ..Default::default()
        });
        let mut f = SpillFile::new(disk.clone());
        for i in 0..32u8 {
            f.append(vec![i; 64]).unwrap();
        }
        for i in 0..32usize {
            assert_eq!(*f.read_chunk(i).unwrap(), vec![i as u8; 64]);
        }
        drop(f);
        disk.disarm_faults();
        assert_eq!(disk.used_bytes(), 0, "temp blocks reclaimed even under faults");
    }

    #[test]
    fn latency_fault_slows_reads() {
        let disk = SimulatedDisk::instant();
        let id = disk.write_new(vec![0; 8]).unwrap();
        disk.arm_faults(FaultConfig { seed: 1, latency_us: 2000, ..Default::default() });
        let t0 = std::time::Instant::now();
        for _ in 0..5 {
            disk.read(id).unwrap();
        }
        assert!(t0.elapsed() >= Duration::from_millis(10), "latency charged per op");
    }
}
