//! Column-chunk serialization: `ColData` (+ optional NULL indicator) ⇄ bytes.
//!
//! Chunk layout:
//!
//! ```text
//! chunk      := null_part value_part
//! null_part  := 0x00                          -- no NULLs
//!             | 0x01 ints_block               -- indicator as 0/1 ints
//! value_part := 0x00 ints_block               -- fixed-width types, widened
//!             | 0x01 string_dict_block        -- PDICT strings
//!             | 0x02 raw_strings_block        -- high-cardinality strings
//! ints_block := tag u8, len u32, nbytes u32, payload
//! ```
//!
//! Integer-like data (including dates, bools, f64-bits) goes through
//! [`vw_compress::compress_auto`]; strings pick PDICT when the dictionary
//! pays for itself (ratio heuristic), raw otherwise.

use std::sync::Arc;
use vw_common::{ColData, Result, TypeId, VwError};
use vw_compress::dict::{decode_codes, decode_strings, encode_strings, StringDict};
use vw_compress::io::{ByteReader, ByteWriter};
use vw_compress::{compress_auto, decompress_into, rle, Compressed, Encoding};

fn put_ints(c: &Compressed, w: &mut ByteWriter) {
    w.put_u8(c.encoding.tag());
    w.put_u32(c.len as u32);
    w.put_u32(c.bytes.len() as u32);
    w.put_bytes(&c.bytes);
}

fn get_ints(r: &mut ByteReader) -> Result<Compressed> {
    let encoding = Encoding::from_tag(r.get_u8()?)?;
    let len = r.get_u32()? as usize;
    let nbytes = r.get_u32()? as usize;
    let bytes = r.get_bytes(nbytes)?.to_vec();
    Ok(Compressed { encoding, len, bytes })
}

fn put_strings(values: &[String], w: &mut ByteWriter) {
    let sd = encode_strings(values);
    let raw_size: usize = values.iter().map(|s| s.len() + 4).sum();
    if sd.compressed_bytes() * 2 < raw_size {
        w.put_u8(1);
        w.put_u32(sd.dict.len() as u32);
        for s in &sd.dict {
            w.put_u32(s.len() as u32);
            w.put_bytes(s.as_bytes());
        }
        w.put_u32(sd.bytes.len() as u32);
        w.put_bytes(&sd.bytes);
    } else {
        w.put_u8(2);
        w.put_u32(values.len() as u32);
        for s in values {
            w.put_u32(s.len() as u32);
            w.put_bytes(s.as_bytes());
        }
    }
}

fn get_string(r: &mut ByteReader) -> Result<String> {
    let len = r.get_u32()? as usize;
    let bytes = r.get_bytes(len)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| VwError::Corruption("invalid UTF-8 in string block".into()))
}

fn get_strings(r: &mut ByteReader, n: usize) -> Result<Vec<String>> {
    match r.get_u8()? {
        1 => {
            let dict_len = r.get_u32()? as usize;
            let mut dict = Vec::with_capacity(dict_len.min(1 << 20));
            for _ in 0..dict_len {
                dict.push(get_string(r)?);
            }
            let nbytes = r.get_u32()? as usize;
            let bytes = r.get_bytes(nbytes)?.to_vec();
            let sd = StringDict { dict, bytes, len: n };
            let mut out = Vec::new();
            decode_strings(&sd, &mut out)?;
            Ok(out)
        }
        2 => {
            let cnt = r.get_u32()? as usize;
            if cnt != n {
                return Err(VwError::Corruption(format!(
                    "raw string block has {cnt} values, expected {n}"
                )));
            }
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(get_string(r)?);
            }
            Ok(out)
        }
        t => Err(VwError::Corruption(format!("unknown string block tag {t}"))),
    }
}

/// Serialize one column chunk (values + optional NULL indicator).
///
/// `nulls`, when present, must have the same length as `data`; positions
/// flagged true are NULL and `data` holds safe defaults there.
pub fn encode_chunk(data: &ColData, nulls: Option<&[bool]>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match nulls {
        Some(mask) if mask.iter().any(|&b| b) => {
            debug_assert_eq!(mask.len(), data.len());
            w.put_u8(1);
            let ints: Vec<i64> = mask.iter().map(|&b| b as i64).collect();
            put_ints(&compress_auto(&ints), &mut w);
        }
        _ => w.put_u8(0),
    }
    match data {
        ColData::Str(values) => {
            w.put_u8(1); // value_part kind: strings (dict/raw decided inside)
            put_strings(values, &mut w);
        }
        other => {
            w.put_u8(0);
            let mut ints = Vec::new();
            other.to_i64s(&mut ints);
            put_ints(&compress_auto(&ints), &mut w);
        }
    }
    w.into_bytes()
}

/// Deserialize a chunk of `n` rows of type `ty`.
/// Returns the values and the NULL indicator (None = no NULLs in chunk).
pub fn decode_chunk(bytes: &[u8], ty: TypeId, n: usize) -> Result<(ColData, Option<Vec<bool>>)> {
    let mut r = ByteReader::new(bytes);
    let nulls = match r.get_u8()? {
        0 => None,
        1 => {
            let c = get_ints(&mut r)?;
            if c.len != n {
                return Err(VwError::Corruption(format!(
                    "null indicator has {} rows, expected {n}",
                    c.len
                )));
            }
            let mut ints = Vec::new();
            decompress_into(&c, &mut ints)?;
            Some(ints.into_iter().map(|v| v != 0).collect())
        }
        t => return Err(VwError::Corruption(format!("unknown null part tag {t}"))),
    };
    let data = match r.get_u8()? {
        0 => {
            let c = get_ints(&mut r)?;
            if c.len != n {
                return Err(VwError::Corruption(format!(
                    "value block has {} rows, expected {n}",
                    c.len
                )));
            }
            let mut ints = Vec::new();
            decompress_into(&c, &mut ints)?;
            ColData::from_i64s(ty, &ints)?
        }
        1 => {
            if ty != TypeId::Str {
                return Err(VwError::Corruption(format!(
                    "string block for {} column",
                    ty.sql_name()
                )));
            }
            ColData::Str(get_strings(&mut r, n)?)
        }
        t => return Err(VwError::Corruption(format!("unknown value part tag {t}"))),
    };
    Ok((data, nulls))
}

/// One column chunk decoded *preserving its on-disk encoding* where the
/// execution engine has a kernel for it — the compressed execution entry
/// point (`SET compressed_exec`). Chunks whose encoding has no encoded
/// kernel come back [`EncodedChunk::Flat`], identical to [`decode_chunk`].
#[derive(Debug, Clone)]
pub enum EncodedChunk {
    /// Fully inflated values (the only form `compressed_exec = 0` produces).
    Flat(ColData, Option<Vec<bool>>),
    /// PDICT strings kept as codes over a shared dictionary. The dictionary
    /// is decoded once per pack and shared by `Arc` with every batch sliced
    /// from it.
    Dict { codes: Vec<u32>, dict: Arc<Vec<String>>, nulls: Option<Vec<bool>> },
    /// RLE integers: fully inflated values *plus* the run list, so
    /// predicates can accept/reject whole runs while everything downstream
    /// still sees flat data.
    Rle { data: ColData, runs: Vec<(i64, u32)>, nulls: Option<Vec<bool>> },
}

impl EncodedChunk {
    /// Inflate to the flat `(data, nulls)` pair [`decode_chunk`] returns.
    pub fn into_flat(self) -> Result<(ColData, Option<Vec<bool>>)> {
        match self {
            EncodedChunk::Flat(data, nulls) => Ok((data, nulls)),
            EncodedChunk::Rle { data, nulls, .. } => Ok((data, nulls)),
            EncodedChunk::Dict { codes, dict, nulls } => {
                let mut out = Vec::with_capacity(codes.len());
                vw_compress::dict::materialize_codes(&codes, &dict, &mut out);
                Ok((ColData::Str(out), nulls))
            }
        }
    }
}

/// Like [`decode_chunk`], but PDICT string blocks come back as codes over a
/// shared dictionary and RLE integer blocks carry their run list. Decoding
/// the same bytes through [`decode_chunk`] yields exactly
/// `EncodedChunk::into_flat` — the two paths are differential-tested.
pub fn decode_chunk_encoded(bytes: &[u8], ty: TypeId, n: usize) -> Result<EncodedChunk> {
    let mut r = ByteReader::new(bytes);
    let nulls = match r.get_u8()? {
        0 => None,
        1 => {
            let c = get_ints(&mut r)?;
            if c.len != n {
                return Err(VwError::Corruption(format!(
                    "null indicator has {} rows, expected {n}",
                    c.len
                )));
            }
            let mut ints = Vec::new();
            decompress_into(&c, &mut ints)?;
            Some(ints.into_iter().map(|v| v != 0).collect())
        }
        t => return Err(VwError::Corruption(format!("unknown null part tag {t}"))),
    };
    match r.get_u8()? {
        0 => {
            let c = get_ints(&mut r)?;
            if c.len != n {
                return Err(VwError::Corruption(format!(
                    "value block has {} rows, expected {n}",
                    c.len
                )));
            }
            let mut ints = Vec::new();
            decompress_into(&c, &mut ints)?;
            let data = ColData::from_i64s(ty, &ints)?;
            // Per-run predicate evaluation compares the widened i64 run
            // value, so any integer-like type qualifies; the run list only
            // pays off when runs are long, so thin run lists are dropped.
            if c.encoding == Encoding::Rle {
                let runs = rle::decode_runs(&mut ByteReader::new(&c.bytes), c.len)?;
                if runs.len() * 4 <= n {
                    return Ok(EncodedChunk::Rle { data, runs, nulls });
                }
            }
            Ok(EncodedChunk::Flat(data, nulls))
        }
        1 => {
            if ty != TypeId::Str {
                return Err(VwError::Corruption(format!(
                    "string block for {} column",
                    ty.sql_name()
                )));
            }
            match r.get_u8()? {
                1 => {
                    let dict_len = r.get_u32()? as usize;
                    let mut dict = Vec::with_capacity(dict_len.min(1 << 20));
                    for _ in 0..dict_len {
                        dict.push(get_string(&mut r)?);
                    }
                    let nbytes = r.get_u32()? as usize;
                    let sd_bytes = r.get_bytes(nbytes)?.to_vec();
                    let sd = StringDict { dict, bytes: sd_bytes, len: n };
                    let mut codes = Vec::with_capacity(n);
                    decode_codes(&sd, &mut codes)?;
                    Ok(EncodedChunk::Dict { codes, dict: Arc::new(sd.dict), nulls })
                }
                2 => {
                    let cnt = r.get_u32()? as usize;
                    if cnt != n {
                        return Err(VwError::Corruption(format!(
                            "raw string block has {cnt} values, expected {n}"
                        )));
                    }
                    let mut out = Vec::with_capacity(n);
                    for _ in 0..n {
                        out.push(get_string(&mut r)?);
                    }
                    Ok(EncodedChunk::Flat(ColData::Str(out), nulls))
                }
                t => Err(VwError::Corruption(format!("unknown string block tag {t}"))),
            }
        }
        t => Err(VwError::Corruption(format!("unknown value part tag {t}"))),
    }
}

/// Serialize one multi-column spill batch: a row-count header followed by
/// one [`encode_chunk`]-format chunk per column. This is the on-disk unit
/// of the grace-spilling hash operators (`vw-exec::spill`) — the same
/// compressed block format the pack writer uses, so spilled build/probe
/// rows ride the existing codecs.
///
/// All columns must have the same length.
pub fn encode_spill_batch(cols: &[(&ColData, Option<&[bool]>)]) -> Vec<u8> {
    let rows = cols.first().map_or(0, |(d, _)| d.len());
    debug_assert!(cols.iter().all(|(d, _)| d.len() == rows));
    // The chunk format carries u32 lengths; a silent wrap would corrupt
    // the spill run, so oversized chunks fail loudly instead. (Spilled
    // runs are bounded by the memory budget per flush, so hitting this
    // means a >4 GiB single flush — re-chunk at the caller.)
    assert!(rows <= u32::MAX as usize, "spill batch exceeds u32 rows");
    let mut w = ByteWriter::new();
    w.put_u32(cols.len() as u32);
    w.put_u32(rows as u32);
    for (data, nulls) in cols {
        let chunk = encode_chunk(data, *nulls);
        assert!(
            chunk.len() <= u32::MAX as usize,
            "spill column chunk exceeds the 4 GiB block format limit"
        );
        w.put_u32(chunk.len() as u32);
        w.put_bytes(&chunk);
    }
    w.into_bytes()
}

/// Deserialize a spill batch produced by [`encode_spill_batch`]. `types`
/// must match the encoded column count and types.
pub fn decode_spill_batch(
    bytes: &[u8],
    types: &[TypeId],
) -> Result<Vec<(ColData, Option<Vec<bool>>)>> {
    let mut r = ByteReader::new(bytes);
    let ncols = r.get_u32()? as usize;
    if ncols != types.len() {
        return Err(VwError::Corruption(format!(
            "spill batch has {ncols} columns, expected {}",
            types.len()
        )));
    }
    let rows = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(ncols);
    for &ty in types {
        let nbytes = r.get_u32()? as usize;
        let chunk = r.get_bytes(nbytes)?;
        out.push(decode_chunk(chunk, ty, rows)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::Value;

    fn roundtrip(data: ColData, nulls: Option<Vec<bool>>) {
        let bytes = encode_chunk(&data, nulls.as_deref());
        let (out, out_nulls) = decode_chunk(&bytes, data.type_id(), data.len()).unwrap();
        assert_eq!(out, data);
        let had_nulls = nulls.map(|m| m.iter().any(|&b| b)).unwrap_or(false);
        assert_eq!(out_nulls.is_some(), had_nulls);
    }

    #[test]
    fn fixed_types_roundtrip() {
        roundtrip(ColData::I32((0..1000).collect()), None);
        roundtrip(ColData::I64((0..1000).map(|i| i * 1_000_000).collect()), None);
        roundtrip(ColData::I8((0..100).map(|i| (i % 7) as i8).collect()), None);
        roundtrip(ColData::Bool((0..100).map(|i| i % 3 == 0).collect()), None);
        roundtrip(ColData::Date((0..100).map(|i| 9000 + i).collect()), None);
        roundtrip(ColData::F64((0..100).map(|i| i as f64 * 0.25).collect()), None);
    }

    #[test]
    fn nulls_roundtrip() {
        let data = ColData::I32((0..100).collect());
        let mask: Vec<bool> = (0..100).map(|i| i % 10 == 0).collect();
        let bytes = encode_chunk(&data, Some(&mask));
        let (_, out_nulls) = decode_chunk(&bytes, TypeId::I32, 100).unwrap();
        assert_eq!(out_nulls.unwrap(), mask);
    }

    #[test]
    fn all_false_null_mask_is_elided() {
        let data = ColData::I32(vec![1, 2, 3]);
        let mask = vec![false, false, false];
        let bytes = encode_chunk(&data, Some(&mask));
        let (_, out_nulls) = decode_chunk(&bytes, TypeId::I32, 3).unwrap();
        assert!(out_nulls.is_none());
    }

    #[test]
    fn low_cardinality_strings_use_dict() {
        let values: Vec<String> = (0..1000).map(|i| ["A", "N", "R"][i % 3].into()).collect();
        let data = ColData::Str(values);
        let bytes = encode_chunk(&data, None);
        assert!(bytes.len() < 1000, "dict should shrink 1000 flags to ~250 bytes");
        roundtrip(data, None);
    }

    #[test]
    fn unique_strings_stay_raw() {
        let values: Vec<String> = (0..200).map(|i| format!("customer#{i:09}")).collect();
        roundtrip(ColData::Str(values), None);
    }

    #[test]
    fn empty_chunk() {
        for ty in [TypeId::I32, TypeId::Str, TypeId::F64] {
            let data = ColData::new(ty);
            roundtrip(data, None);
        }
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let values = vec!["héllo".to_string(), "мир".into(), "日本".into(), String::new()];
        roundtrip(ColData::Str(values), None);
    }

    #[test]
    fn corrupted_chunk_detected() {
        let data = ColData::I32((0..50).collect());
        let mut bytes = encode_chunk(&data, None);
        bytes.truncate(bytes.len() / 2);
        assert!(decode_chunk(&bytes, TypeId::I32, 50).is_err());
    }

    #[test]
    fn wrong_row_count_detected() {
        let data = ColData::I32((0..50).collect());
        let bytes = encode_chunk(&data, None);
        assert!(decode_chunk(&bytes, TypeId::I32, 51).is_err());
    }

    #[test]
    fn spill_batch_roundtrips_multiple_columns() {
        let a = ColData::I64((0..100).collect());
        let b = ColData::Str((0..100).map(|i| format!("s{}", i % 7)).collect());
        let b_nulls: Vec<bool> = (0..100).map(|i| i % 9 == 0).collect();
        let bytes = encode_spill_batch(&[(&a, None), (&b, Some(&b_nulls))]);
        let cols = decode_spill_batch(&bytes, &[TypeId::I64, TypeId::Str]).unwrap();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].0, a);
        assert!(cols[0].1.is_none());
        assert_eq!(cols[1].0, b);
        assert_eq!(cols[1].1.as_deref(), Some(&b_nulls[..]));
    }

    #[test]
    fn spill_batch_empty_and_corrupt() {
        let a = ColData::new(TypeId::I64);
        let bytes = encode_spill_batch(&[(&a, None)]);
        let cols = decode_spill_batch(&bytes, &[TypeId::I64]).unwrap();
        assert_eq!(cols[0].0.len(), 0);
        // Wrong arity is detected, not misread.
        assert!(decode_spill_batch(&bytes, &[TypeId::I64, TypeId::I64]).is_err());
        let mut broken = encode_spill_batch(&[(&ColData::I64(vec![1, 2, 3]), None)]);
        broken.truncate(broken.len() / 2);
        assert!(decode_spill_batch(&broken, &[TypeId::I64]).is_err());
    }

    #[test]
    fn encoded_decode_matches_flat_decode() {
        // Dict strings, raw strings, RLE ints, plain ints, with and
        // without NULLs: the encoded path must inflate to byte-identical
        // flat data.
        let cases: Vec<(ColData, Option<Vec<bool>>)> = vec![
            (ColData::Str((0..1000).map(|i| ["A", "N", "R"][i % 3].into()).collect()), None),
            (
                ColData::Str((0..300).map(|i| ["X", "Y"][i % 2].into()).collect()),
                Some((0..300).map(|i| i % 11 == 0).collect()),
            ),
            (ColData::Str((0..200).map(|i| format!("cust#{i:06}")).collect()), None),
            (ColData::I64(vec![7; 2000]), None),
            (ColData::I64((0..500).collect()), Some((0..500).map(|i| i % 13 == 0).collect())),
            (ColData::I32((0..100).map(|i| i / 25).collect()), None),
        ];
        for (data, nulls) in cases {
            let bytes = encode_chunk(&data, nulls.as_deref());
            let flat = decode_chunk(&bytes, data.type_id(), data.len()).unwrap();
            let enc = decode_chunk_encoded(&bytes, data.type_id(), data.len()).unwrap();
            assert_eq!(enc.into_flat().unwrap(), flat);
        }
    }

    #[test]
    fn encoded_decode_preserves_encodings() {
        let dict_strs = ColData::Str((0..1000).map(|i| ["A", "N", "R"][i % 3].into()).collect());
        let bytes = encode_chunk(&dict_strs, None);
        match decode_chunk_encoded(&bytes, TypeId::Str, 1000).unwrap() {
            EncodedChunk::Dict { codes, dict, nulls } => {
                assert_eq!(codes.len(), 1000);
                assert_eq!(dict.as_slice(), ["A".to_string(), "N".into(), "R".into()]);
                assert!(nulls.is_none());
            }
            other => panic!("expected dict chunk, got {other:?}"),
        }
        // Long runs of wide, non-monotonic values: PFOR needs ~40 bits per
        // value and PFOR-DELTA's sorted gate fails, so the chooser picks RLE.
        let mut vals = Vec::new();
        for i in 0..20i64 {
            let v = if i % 2 == 0 { 1_000_000_000_000 + i } else { i };
            vals.extend(std::iter::repeat_n(v, 250));
        }
        let rle_ints = ColData::I64(vals);
        let bytes = encode_chunk(&rle_ints, None);
        match decode_chunk_encoded(&bytes, TypeId::I64, 5000).unwrap() {
            EncodedChunk::Rle { data, runs, .. } => {
                assert_eq!(data.len(), 5000);
                assert_eq!(runs.len(), 20);
                assert_eq!(runs[0], (1_000_000_000_000, 250));
            }
            other => panic!("expected rle chunk, got {other:?}"),
        }
    }

    #[test]
    fn values_under_null_positions_are_safe() {
        let mut data = ColData::new(TypeId::I64);
        data.push_value(&Value::I64(5)).unwrap();
        data.push_value(&Value::Null).unwrap();
        let mask = vec![false, true];
        let bytes = encode_chunk(&data, Some(&mask));
        let (out, _) = decode_chunk(&bytes, TypeId::I64, 2).unwrap();
        assert_eq!(out.get_value(1), Value::I64(0));
    }
}
