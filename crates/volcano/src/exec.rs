//! Tuple-at-a-time Volcano execution — the baseline the X100 papers measure
//! conventional engines against.
//!
//! Every operator produces one row per `next()` call through a virtual
//! call; expressions are interpreted per tuple over boxed [`Value`]s. This
//! is deliberately the "conventional query engine" of the paper's >10×
//! claim: correctness-equivalent to the vectorized kernel, but paying
//! interpretation overhead per *value* instead of per *vector*.

use crate::store::RowStore;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;
use vw_common::{Result, Schema, TypeId, Value, VwError};
use vw_storage::BufferPool;

/// A materialized row.
pub type Row = Vec<Value>;

/// Per-tuple interpreted scalar expression.
#[derive(Debug, Clone)]
pub enum ScalarExpr {
    /// Column reference.
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Arithmetic (`+ - * / %`) with SQL NULL propagation and checking.
    Arith(char, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Comparison (`= != < <= > >=`) with three-valued logic.
    Cmp(&'static str, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Conjunction.
    And(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Disjunction.
    Or(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Negation.
    Not(Box<ScalarExpr>),
}

impl ScalarExpr {
    /// Evaluate against one row.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            ScalarExpr::Col(i) => Ok(row[*i].clone()),
            ScalarExpr::Lit(v) => Ok(v.clone()),
            ScalarExpr::Arith(op, l, r) => {
                let a = l.eval(row)?;
                let b = r.eval(row)?;
                if a.is_null() || b.is_null() {
                    return Ok(Value::Null);
                }
                // Numeric promotion, exactly as the vectorized kernel.
                if a.type_id() == Some(TypeId::F64) || b.type_id() == Some(TypeId::F64) {
                    let (x, y) = (a.as_f64()?, b.as_f64()?);
                    if (*op == '/' || *op == '%') && y == 0.0 {
                        return Err(VwError::DivideByZero);
                    }
                    Ok(Value::F64(match op {
                        '+' => x + y,
                        '-' => x - y,
                        '*' => x * y,
                        '/' => x / y,
                        '%' => x % y,
                        _ => return Err(VwError::Exec(format!("bad op {op}"))),
                    }))
                } else {
                    let (x, y) = (a.as_i64()?, b.as_i64()?);
                    let r = match op {
                        '+' => x.checked_add(y),
                        '-' => x.checked_sub(y),
                        '*' => x.checked_mul(y),
                        '/' => {
                            if y == 0 {
                                return Err(VwError::DivideByZero);
                            }
                            x.checked_div(y)
                        }
                        '%' => {
                            if y == 0 {
                                return Err(VwError::DivideByZero);
                            }
                            Some(x.wrapping_rem(y))
                        }
                        _ => return Err(VwError::Exec(format!("bad op {op}"))),
                    };
                    r.map(Value::I64).ok_or(VwError::Overflow("arith"))
                }
            }
            ScalarExpr::Cmp(op, l, r) => {
                let a = l.eval(row)?;
                let b = r.eval(row)?;
                Ok(match a.sql_cmp(&b) {
                    None => Value::Null,
                    Some(o) => Value::Bool(match *op {
                        "=" => o == Ordering::Equal,
                        "!=" => o != Ordering::Equal,
                        "<" => o == Ordering::Less,
                        "<=" => o != Ordering::Greater,
                        ">" => o == Ordering::Greater,
                        ">=" => o != Ordering::Less,
                        _ => return Err(VwError::Exec(format!("bad cmp {op}"))),
                    }),
                })
            }
            ScalarExpr::And(l, r) => {
                let a = l.eval(row)?;
                let b = r.eval(row)?;
                Ok(match (bool3(&a)?, bool3(&b)?) {
                    (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                    (Some(true), Some(true)) => Value::Bool(true),
                    _ => Value::Null,
                })
            }
            ScalarExpr::Or(l, r) => {
                let a = l.eval(row)?;
                let b = r.eval(row)?;
                Ok(match (bool3(&a)?, bool3(&b)?) {
                    (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                    (Some(false), Some(false)) => Value::Bool(false),
                    _ => Value::Null,
                })
            }
            ScalarExpr::Not(e) => Ok(match bool3(&e.eval(row)?)? {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            }),
        }
    }

    /// Predicate helper: TRUE or not (NULL = false).
    pub fn eval_pred(&self, row: &Row) -> Result<bool> {
        Ok(matches!(self.eval(row)?, Value::Bool(true)))
    }
}

fn bool3(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => Err(VwError::Exec(format!("expected boolean, got {other:?}"))),
    }
}

/// The Volcano iterator interface: one row per call.
pub trait TupleIterator: Send {
    /// Output schema.
    fn schema(&self) -> &Schema;
    /// Produce the next row.
    fn next(&mut self) -> Result<Option<Row>>;
}

/// Boxed iterator.
pub type BoxedIter = Box<dyn TupleIterator>;

/// Heap-table scan.
pub struct TupleScan {
    store: Arc<RowStore>,
    pool: Arc<BufferPool>,
    page: usize,
    buffer: Vec<Row>,
    pos: usize,
}

impl TupleScan {
    /// Scan all rows of `store`.
    pub fn new(store: Arc<RowStore>, pool: Arc<BufferPool>) -> TupleScan {
        TupleScan { store, pool, page: 0, buffer: Vec::new(), pos: 0 }
    }
}

impl TupleIterator for TupleScan {
    fn schema(&self) -> &Schema {
        self.store.schema()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if self.pos < self.buffer.len() {
                let row = std::mem::take(&mut self.buffer[self.pos]);
                self.pos += 1;
                return Ok(Some(row));
            }
            if self.page >= self.store.n_pages() {
                return Ok(None);
            }
            self.buffer = self.store.read_page(&self.pool, self.page)?;
            self.page += 1;
            self.pos = 0;
        }
    }
}

/// In-memory row source (baseline benches over pre-materialized data).
pub struct TupleValues {
    schema: Schema,
    rows: std::vec::IntoIter<Row>,
}

impl TupleValues {
    /// Source over `rows`.
    pub fn new(schema: Schema, rows: Vec<Row>) -> TupleValues {
        TupleValues { schema, rows: rows.into_iter() }
    }
}

impl TupleIterator for TupleValues {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        Ok(self.rows.next())
    }
}

/// Tuple-at-a-time filter.
pub struct TupleFilter {
    input: BoxedIter,
    predicate: ScalarExpr,
}

impl TupleFilter {
    /// Filter `input` by `predicate`.
    pub fn new(input: BoxedIter, predicate: ScalarExpr) -> TupleFilter {
        TupleFilter { input, predicate }
    }
}

impl TupleIterator for TupleFilter {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        while let Some(row) = self.input.next()? {
            if self.predicate.eval_pred(&row)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

/// Tuple-at-a-time projection.
pub struct TupleProject {
    input: BoxedIter,
    exprs: Vec<ScalarExpr>,
    schema: Schema,
}

impl TupleProject {
    /// Map rows through `exprs`.
    pub fn new(input: BoxedIter, exprs: Vec<ScalarExpr>, schema: Schema) -> TupleProject {
        TupleProject { input, exprs, schema }
    }
}

impl TupleIterator for TupleProject {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        match self.input.next()? {
            None => Ok(None),
            Some(row) => {
                let mut out = Vec::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    out.push(e.eval(&row)?);
                }
                Ok(Some(out))
            }
        }
    }
}

/// Aggregate specification for the tuple engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TupleAgg {
    /// COUNT(*).
    CountStar,
    /// SUM(col).
    Sum(usize),
    /// MIN(col).
    Min(usize),
    /// MAX(col).
    Max(usize),
    /// AVG(col).
    Avg(usize),
    /// COUNT(col).
    Count(usize),
}

/// Tuple-at-a-time hash aggregation.
pub struct TupleAggregate {
    input: Option<BoxedIter>,
    group_cols: Vec<usize>,
    aggs: Vec<TupleAgg>,
    schema: Schema,
    out: std::vec::IntoIter<Row>,
    built: bool,
}

impl TupleAggregate {
    /// Group `input` by `group_cols` computing `aggs`.
    pub fn new(
        input: BoxedIter,
        group_cols: Vec<usize>,
        aggs: Vec<TupleAgg>,
        schema: Schema,
    ) -> TupleAggregate {
        TupleAggregate {
            input: Some(input),
            group_cols,
            aggs,
            schema,
            out: Vec::new().into_iter(),
            built: false,
        }
    }

    fn build(&mut self) -> Result<()> {
        let mut input = self.input.take().expect("build once");
        // State per group: (sum f64, sum i64, count, min, max) per agg.
        struct St {
            sum_i: i64,
            sum_f: f64,
            count: i64,
            min: Value,
            max: Value,
            is_float: bool,
        }
        let mut groups: HashMap<Vec<Value>, Vec<St>> = HashMap::new();
        while let Some(row) = input.next()? {
            let key: Vec<Value> = self.group_cols.iter().map(|&c| row[c].clone()).collect();
            let states = groups.entry(key).or_insert_with(|| {
                self.aggs
                    .iter()
                    .map(|_| St {
                        sum_i: 0,
                        sum_f: 0.0,
                        count: 0,
                        min: Value::Null,
                        max: Value::Null,
                        is_float: false,
                    })
                    .collect()
            });
            for (agg, st) in self.aggs.iter().zip(states.iter_mut()) {
                match agg {
                    TupleAgg::CountStar => st.count += 1,
                    TupleAgg::Count(c) => {
                        if !row[*c].is_null() {
                            st.count += 1;
                        }
                    }
                    TupleAgg::Sum(c) | TupleAgg::Avg(c) => {
                        let v = &row[*c];
                        if !v.is_null() {
                            st.count += 1;
                            if v.type_id() == Some(TypeId::F64) {
                                st.is_float = true;
                                st.sum_f += v.as_f64()?;
                            } else {
                                st.sum_i = st
                                    .sum_i
                                    .checked_add(v.as_i64()?)
                                    .ok_or(VwError::Overflow("SUM"))?;
                                st.sum_f += v.as_f64()?;
                            }
                        }
                    }
                    TupleAgg::Min(c) => {
                        let v = &row[*c];
                        if !v.is_null()
                            && (st.min.is_null() || v.sql_cmp(&st.min) == Some(Ordering::Less))
                        {
                            st.min = v.clone();
                        }
                    }
                    TupleAgg::Max(c) => {
                        let v = &row[*c];
                        if !v.is_null()
                            && (st.max.is_null() || v.sql_cmp(&st.max) == Some(Ordering::Greater))
                        {
                            st.max = v.clone();
                        }
                    }
                }
            }
        }
        if self.group_cols.is_empty() && groups.is_empty() {
            groups.insert(Vec::new(), Vec::new());
            // Re-insert default states for the single global group.
            let states = self
                .aggs
                .iter()
                .map(|_| St {
                    sum_i: 0,
                    sum_f: 0.0,
                    count: 0,
                    min: Value::Null,
                    max: Value::Null,
                    is_float: false,
                })
                .collect();
            groups.insert(Vec::new(), states);
        }
        let mut rows = Vec::with_capacity(groups.len());
        for (key, states) in groups {
            let mut row = key;
            for (agg, st) in self.aggs.iter().zip(states) {
                row.push(match agg {
                    TupleAgg::CountStar | TupleAgg::Count(_) => Value::I64(st.count),
                    TupleAgg::Sum(_) => {
                        if st.count == 0 {
                            Value::Null
                        } else if st.is_float {
                            Value::F64(st.sum_f)
                        } else {
                            Value::I64(st.sum_i)
                        }
                    }
                    TupleAgg::Avg(_) => {
                        if st.count == 0 {
                            Value::Null
                        } else {
                            Value::F64(st.sum_f / st.count as f64)
                        }
                    }
                    TupleAgg::Min(_) => st.min,
                    TupleAgg::Max(_) => st.max,
                });
            }
            rows.push(row);
        }
        self.out = rows.into_iter();
        self.built = true;
        Ok(())
    }
}

impl TupleIterator for TupleAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if !self.built {
            self.build()?;
        }
        Ok(self.out.next())
    }
}

/// Join variants of the tuple-at-a-time hash join, mirroring the
/// vectorized kernel's `JoinType` (including the NULL-aware anti join's
/// three-valued `NOT IN` semantics). Serves as the independent reference
/// implementation for differential tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TupleJoinKind {
    /// Emit matching pairs.
    Inner,
    /// Emit matching pairs plus unmatched left rows padded with NULLs.
    LeftOuter,
    /// Emit left rows with at least one match (EXISTS / IN).
    LeftSemi,
    /// Emit left rows with no match (NOT EXISTS).
    LeftAnti,
    /// NOT IN: anti join with three-valued NULL semantics.
    NullAwareLeftAnti,
}

impl TupleJoinKind {
    fn emits_right(self) -> bool {
        matches!(self, TupleJoinKind::Inner | TupleJoinKind::LeftOuter)
    }
}

/// Tuple-at-a-time hash join (all variants; see [`TupleJoinKind`]).
pub struct TupleHashJoin {
    left: BoxedIter,
    right: Option<BoxedIter>,
    left_key: usize,
    right_key: usize,
    kind: TupleJoinKind,
    schema: Schema,
    table: HashMap<Value, Vec<Row>>,
    right_width: usize,
    build_has_null_key: bool,
    build_is_empty: bool,
    pending: Vec<Row>,
    built: bool,
}

impl TupleHashJoin {
    /// Inner equi-join on one key column per side.
    pub fn new(
        left: BoxedIter,
        right: BoxedIter,
        left_key: usize,
        right_key: usize,
    ) -> TupleHashJoin {
        TupleHashJoin::with_kind(left, right, left_key, right_key, TupleJoinKind::Inner)
    }

    /// Equi-join with an explicit join kind. Semi/anti variants emit only
    /// left-side columns.
    pub fn with_kind(
        left: BoxedIter,
        right: BoxedIter,
        left_key: usize,
        right_key: usize,
        kind: TupleJoinKind,
    ) -> TupleHashJoin {
        let schema = if kind.emits_right() {
            left.schema().join(right.schema())
        } else {
            left.schema().clone()
        };
        let right_width = right.schema().len();
        TupleHashJoin {
            left,
            right: Some(right),
            left_key,
            right_key,
            kind,
            schema,
            table: HashMap::new(),
            right_width,
            build_has_null_key: false,
            build_is_empty: true,
            pending: Vec::new(),
            built: false,
        }
    }
}

impl TupleIterator for TupleHashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if !self.built {
            let mut right = self.right.take().expect("build once");
            while let Some(row) = right.next()? {
                self.build_is_empty = false;
                let k = row[self.right_key].clone();
                if k.is_null() {
                    self.build_has_null_key = true;
                } else {
                    self.table.entry(k).or_default().push(row);
                }
            }
            self.built = true;
        }
        loop {
            if let Some(row) = self.pending.pop() {
                return Ok(Some(row));
            }
            let Some(l) = self.left.next()? else {
                return Ok(None);
            };
            let k = &l[self.left_key];
            let matches = if k.is_null() { None } else { self.table.get(k) };
            let matched = matches.is_some_and(|m| !m.is_empty());
            match self.kind {
                TupleJoinKind::Inner => {
                    if let Some(rows) = matches {
                        for r in rows {
                            let mut out = l.clone();
                            out.extend(r.iter().cloned());
                            self.pending.push(out);
                        }
                    }
                }
                TupleJoinKind::LeftOuter => {
                    if let Some(rows) = matches {
                        for r in rows {
                            let mut out = l.clone();
                            out.extend(r.iter().cloned());
                            self.pending.push(out);
                        }
                    } else {
                        let mut out = l.clone();
                        out.extend(std::iter::repeat_n(Value::Null, self.right_width));
                        self.pending.push(out);
                    }
                }
                TupleJoinKind::LeftSemi => {
                    if matched {
                        self.pending.push(l.clone());
                    }
                }
                TupleJoinKind::LeftAnti => {
                    // NOT EXISTS: NULL probe keys never match → emitted.
                    if !matched {
                        self.pending.push(l.clone());
                    }
                }
                TupleJoinKind::NullAwareLeftAnti => {
                    // x NOT IN (empty) is TRUE for all x, NULL included;
                    // any build NULL key makes the predicate never-TRUE;
                    // a NULL probe key is dropped against a non-empty set.
                    let passes = self.build_is_empty
                        || (!self.build_has_null_key && !k.is_null() && !matched);
                    if passes {
                        self.pending.push(l.clone());
                    }
                }
            }
        }
    }
}

/// Materializing sort.
pub struct TupleSort {
    input: Option<BoxedIter>,
    keys: Vec<(usize, bool)>,
    schema: Schema,
    out: std::vec::IntoIter<Row>,
    built: bool,
}

impl TupleSort {
    /// Sort by `(column, ascending)` keys.
    pub fn new(input: BoxedIter, keys: Vec<(usize, bool)>) -> TupleSort {
        let schema = input.schema().clone();
        TupleSort { input: Some(input), keys, schema, out: Vec::new().into_iter(), built: false }
    }
}

impl TupleIterator for TupleSort {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if !self.built {
            let mut input = self.input.take().expect("build once");
            let mut rows = Vec::new();
            while let Some(r) = input.next()? {
                rows.push(r);
            }
            let keys = self.keys.clone();
            rows.sort_by(|a, b| {
                for &(c, asc) in &keys {
                    let o = a[c].sql_cmp(&b[c]).unwrap_or(Ordering::Equal);
                    let o = if asc { o } else { o.reverse() };
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                Ordering::Equal
            });
            self.out = rows.into_iter();
            self.built = true;
        }
        Ok(self.out.next())
    }
}

/// LIMIT.
pub struct TupleLimit {
    input: BoxedIter,
    remaining: usize,
}

impl TupleLimit {
    /// Take the first `limit` rows.
    pub fn new(input: BoxedIter, limit: usize) -> TupleLimit {
        TupleLimit { input, remaining: limit }
    }
}

impl TupleIterator for TupleLimit {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Result<Option<Row>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next()? {
            Some(r) => {
                self.remaining -= 1;
                Ok(Some(r))
            }
            None => Ok(None),
        }
    }
}

/// Drain an iterator to completion.
pub fn collect_rows(it: &mut dyn TupleIterator) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(r) = it.next()? {
        out.push(r);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::Field;
    use vw_storage::SimulatedDisk;

    fn schema() -> Schema {
        Schema::new(vec![Field::not_null("id", TypeId::I64), Field::nullable("grp", TypeId::Str)])
            .unwrap()
    }

    fn values(n: i64) -> BoxedIter {
        let rows = (0..n).map(|i| vec![Value::I64(i), Value::Str(format!("g{}", i % 3))]).collect();
        Box::new(TupleValues::new(schema(), rows))
    }

    #[test]
    fn scan_from_heap_pages() {
        let disk = SimulatedDisk::instant();
        let pool = BufferPool::new(disk.clone(), 1 << 20);
        let mut store = RowStore::new(disk, schema());
        let rows: Vec<Row> =
            (0..500).map(|i| vec![Value::I64(i), Value::Str("x".into())]).collect();
        store.append_rows(&rows).unwrap();
        let mut scan = TupleScan::new(Arc::new(store), pool);
        let got = collect_rows(&mut scan).unwrap();
        assert_eq!(got.len(), 500);
        assert_eq!(got[499][0], Value::I64(499));
    }

    #[test]
    fn filter_project_pipeline() {
        let filter = TupleFilter::new(
            values(100),
            ScalarExpr::Cmp(
                ">=",
                Box::new(ScalarExpr::Col(0)),
                Box::new(ScalarExpr::Lit(Value::I64(95))),
            ),
        );
        let mut proj = TupleProject::new(
            Box::new(filter),
            vec![ScalarExpr::Arith(
                '*',
                Box::new(ScalarExpr::Col(0)),
                Box::new(ScalarExpr::Lit(Value::I64(2))),
            )],
            Schema::new(vec![Field::not_null("x", TypeId::I64)]).unwrap(),
        );
        let rows = collect_rows(&mut proj).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0][0], Value::I64(190));
    }

    #[test]
    fn aggregate_matches_expectation() {
        let mut agg = TupleAggregate::new(
            values(9),
            vec![1],
            vec![TupleAgg::CountStar, TupleAgg::Sum(0)],
            Schema::unchecked(vec![
                Field::nullable("grp", TypeId::Str),
                Field::not_null("cnt", TypeId::I64),
                Field::nullable("sum", TypeId::I64),
            ]),
        );
        let mut rows = collect_rows(&mut agg).unwrap();
        rows.sort_by_key(|r| r[0].to_string());
        assert_eq!(rows.len(), 3);
        // g0: ids 0,3,6 → sum 9; g1: 1,4,7 → 12; g2: 2,5,8 → 15.
        assert_eq!(rows[0][2], Value::I64(9));
        assert_eq!(rows[1][2], Value::I64(12));
        assert_eq!(rows[2][2], Value::I64(15));
    }

    #[test]
    fn join_inner() {
        let left = values(5);
        let right_rows: Vec<Row> = vec![
            vec![Value::I64(2), Value::Str("r2".into())],
            vec![Value::I64(4), Value::Str("r4".into())],
        ];
        let right = Box::new(TupleValues::new(schema(), right_rows));
        let mut join = TupleHashJoin::new(left, right, 0, 0);
        let rows = collect_rows(&mut join).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 4);
    }

    #[test]
    fn sort_and_limit() {
        let mut sorted = TupleSort::new(values(10), vec![(0, false)]);
        let rows = collect_rows(&mut sorted).unwrap();
        assert_eq!(rows[0][0], Value::I64(9));
        let sorted = TupleSort::new(values(10), vec![(0, false)]);
        let mut lim = TupleLimit::new(Box::new(sorted), 3);
        assert_eq!(collect_rows(&mut lim).unwrap().len(), 3);
    }

    #[test]
    fn null_propagation_in_scalar_exprs() {
        let row = vec![Value::Null, Value::I64(5)];
        let e = ScalarExpr::Arith('+', Box::new(ScalarExpr::Col(0)), Box::new(ScalarExpr::Col(1)));
        assert_eq!(e.eval(&row).unwrap(), Value::Null);
        let e = ScalarExpr::Cmp("=", Box::new(ScalarExpr::Col(0)), Box::new(ScalarExpr::Col(1)));
        assert_eq!(e.eval(&row).unwrap(), Value::Null);
        let div = ScalarExpr::Arith(
            '/',
            Box::new(ScalarExpr::Col(1)),
            Box::new(ScalarExpr::Lit(Value::I64(0))),
        );
        assert!(matches!(div.eval(&row), Err(VwError::DivideByZero)));
    }

    #[test]
    fn global_aggregate_empty_input() {
        let empty = Box::new(TupleValues::new(schema(), vec![]));
        let mut agg = TupleAggregate::new(
            empty,
            vec![],
            vec![TupleAgg::CountStar],
            Schema::unchecked(vec![Field::not_null("cnt", TypeId::I64)]),
        );
        let rows = collect_rows(&mut agg).unwrap();
        assert_eq!(rows, vec![vec![Value::I64(0)]]);
    }
}
