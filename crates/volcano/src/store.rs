//! NSM row storage ("classic" Ingres-style heap tables).
//!
//! Rows are serialized contiguously into fixed-capacity pages on the
//! simulated disk. Any column access fetches whole rows — the property that
//! makes NSM the wrong layout for analytical scans (benchmark C9) and the
//! right one for OLTP point access.

use std::sync::Arc;
use vw_common::{Date, Result, Schema, TypeId, Value, VwError};
use vw_storage::{BlockId, BufferPool, SimulatedDisk};

/// Target page payload size in bytes.
const PAGE_BYTES: usize = 64 * 1024;

/// A heap table of serialized rows.
pub struct RowStore {
    schema: Schema,
    disk: Arc<SimulatedDisk>,
    pages: Vec<(BlockId, usize)>, // (block, row count)
    n_rows: u64,
}

fn put_value(buf: &mut Vec<u8>, v: &Value, ty: TypeId) -> Result<()> {
    if v.is_null() {
        buf.push(0);
        return Ok(());
    }
    buf.push(1);
    match (v, ty) {
        (Value::Bool(b), TypeId::Bool) => buf.push(*b as u8),
        (Value::I8(x), TypeId::I8) => buf.extend_from_slice(&x.to_le_bytes()),
        (Value::I16(x), TypeId::I16) => buf.extend_from_slice(&x.to_le_bytes()),
        (Value::I32(x), TypeId::I32) => buf.extend_from_slice(&x.to_le_bytes()),
        (Value::I64(x), TypeId::I64) => buf.extend_from_slice(&x.to_le_bytes()),
        (Value::F64(x), TypeId::F64) => buf.extend_from_slice(&x.to_le_bytes()),
        (Value::Date(d), TypeId::Date) => buf.extend_from_slice(&d.0.to_le_bytes()),
        (Value::Str(s), TypeId::Str) => {
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
        (v, ty) => {
            return Err(VwError::Storage(format!(
                "row value {v:?} does not match column type {}",
                ty.sql_name()
            )))
        }
    }
    Ok(())
}

fn get_value(buf: &[u8], pos: &mut usize, ty: TypeId) -> Result<Value> {
    let eof = || VwError::Corruption("truncated row page".into());
    let tag = *buf.get(*pos).ok_or_else(eof)?;
    *pos += 1;
    if tag == 0 {
        return Ok(Value::Null);
    }
    macro_rules! take {
        ($n:expr) => {{
            let s = buf.get(*pos..*pos + $n).ok_or_else(eof)?;
            *pos += $n;
            s
        }};
    }
    Ok(match ty {
        TypeId::Bool => Value::Bool(take!(1)[0] != 0),
        TypeId::I8 => Value::I8(i8::from_le_bytes(take!(1).try_into().unwrap())),
        TypeId::I16 => Value::I16(i16::from_le_bytes(take!(2).try_into().unwrap())),
        TypeId::I32 => Value::I32(i32::from_le_bytes(take!(4).try_into().unwrap())),
        TypeId::I64 => Value::I64(i64::from_le_bytes(take!(8).try_into().unwrap())),
        TypeId::F64 => Value::F64(f64::from_le_bytes(take!(8).try_into().unwrap())),
        TypeId::Date => Value::Date(Date(i32::from_le_bytes(take!(4).try_into().unwrap()))),
        TypeId::Str => {
            let len = u32::from_le_bytes(take!(4).try_into().unwrap()) as usize;
            let bytes = take!(len);
            Value::Str(
                String::from_utf8(bytes.to_vec())
                    .map_err(|_| VwError::Corruption("invalid UTF-8 in row".into()))?,
            )
        }
    })
}

impl RowStore {
    /// Empty heap table.
    pub fn new(disk: Arc<SimulatedDisk>, schema: Schema) -> RowStore {
        RowStore { disk, schema, pages: Vec::new(), n_rows: 0 }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total rows.
    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }

    /// Number of pages.
    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    /// Append rows, packing them into ~64 KiB pages.
    pub fn append_rows(&mut self, rows: &[Vec<Value>]) -> Result<()> {
        let mut buf: Vec<u8> = Vec::with_capacity(PAGE_BYTES + 1024);
        let mut count = 0usize;
        for row in rows {
            if row.len() != self.schema.len() {
                return Err(VwError::Storage(format!(
                    "row arity {} does not match schema {}",
                    row.len(),
                    self.schema.len()
                )));
            }
            for (v, f) in row.iter().zip(&self.schema.fields) {
                if v.is_null() && !f.nullable {
                    return Err(VwError::Storage(format!("NULL in NOT NULL column {}", f.name)));
                }
                put_value(&mut buf, v, f.ty)?;
            }
            count += 1;
            if buf.len() >= PAGE_BYTES {
                let block = self.disk.write_new_retrying(std::mem::take(&mut buf))?;
                self.pages.push((block, count));
                self.n_rows += count as u64;
                count = 0;
            }
        }
        if count > 0 {
            let block = self.disk.write_new_retrying(buf)?;
            self.pages.push((block, count));
            self.n_rows += count as u64;
        }
        Ok(())
    }

    /// Decode all rows of page `i` through the buffer pool.
    pub fn read_page(&self, pool: &BufferPool, i: usize) -> Result<Vec<Vec<Value>>> {
        let (block, count) =
            *self.pages.get(i).ok_or_else(|| VwError::Storage(format!("page {i} out of range")))?;
        let bytes = pool.get(block)?;
        let mut pos = 0usize;
        let mut rows = Vec::with_capacity(count);
        for _ in 0..count {
            let mut row = Vec::with_capacity(self.schema.len());
            for f in &self.schema.fields {
                row.push(get_value(&bytes, &mut pos, f.ty)?);
            }
            rows.push(row);
        }
        Ok(rows)
    }

    /// Bytes occupied on the device.
    pub fn stored_bytes(&self) -> usize {
        self.pages.iter().map(|(b, _)| self.disk.block_size(*b).unwrap_or(0)).sum()
    }

    /// Release all pages (DROP TABLE).
    pub fn free_all(&self, pool: Option<&BufferPool>) {
        for (b, _) in &self.pages {
            if let Some(pool) = pool {
                pool.invalidate(*b);
            }
            self.disk.free(*b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::not_null("id", TypeId::I64),
            Field::nullable("name", TypeId::Str),
            Field::nullable("d", TypeId::Date),
        ])
        .unwrap()
    }

    fn sample_rows(n: usize) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| {
                vec![
                    Value::I64(i as i64),
                    if i % 5 == 0 { Value::Null } else { Value::Str(format!("name{i}")) },
                    Value::Date(Date(18000 + i as i32)),
                ]
            })
            .collect()
    }

    #[test]
    fn roundtrip_rows() {
        let disk = SimulatedDisk::instant();
        let pool = BufferPool::new(disk.clone(), 1 << 20);
        let mut store = RowStore::new(disk, schema());
        let rows = sample_rows(1000);
        store.append_rows(&rows).unwrap();
        assert_eq!(store.n_rows(), 1000);
        let mut all = Vec::new();
        for p in 0..store.n_pages() {
            all.extend(store.read_page(&pool, p).unwrap());
        }
        assert_eq!(all, rows);
    }

    #[test]
    fn pages_split_on_size() {
        let disk = SimulatedDisk::instant();
        let mut store = RowStore::new(disk, schema());
        // ~30 bytes/row → >1 page for 5000 rows.
        store.append_rows(&sample_rows(5000)).unwrap();
        assert!(store.n_pages() > 1, "expected multiple pages");
    }

    #[test]
    fn constraint_violations() {
        let disk = SimulatedDisk::instant();
        let mut store = RowStore::new(disk, schema());
        assert!(store.append_rows(&[vec![Value::I64(1)]]).is_err());
        assert!(store.append_rows(&[vec![Value::Null, Value::Null, Value::Null]]).is_err());
        assert!(store
            .append_rows(&[vec![Value::Str("x".into()), Value::Null, Value::Null]])
            .is_err());
    }

    #[test]
    fn free_all_releases() {
        let disk = SimulatedDisk::instant();
        let mut store = RowStore::new(disk.clone(), schema());
        store.append_rows(&sample_rows(100)).unwrap();
        assert!(disk.used_bytes() > 0);
        store.free_all(None);
        assert_eq!(disk.used_bytes(), 0);
    }
}
