//! # vw-volcano — the "conventional query engine" baseline
//!
//! Two roles, mirroring the two things Ingres is in Figure 1:
//!
//! 1. **Classic storage** — an NSM (row-slotted) heap store on the same
//!    simulated disk ([`store::RowStore`]), the `HEAP` table type of the
//!    integrated engine, favouring OLTP-style whole-row access;
//! 2. **Classic execution** — a tuple-at-a-time Volcano interpreter
//!    ([`exec`]): every operator's `next()` produces one row; expressions
//!    are interpreted per tuple over boxed [`Value`]s, with all the
//!    per-tuple overhead (dynamic dispatch, branching, no cache locality)
//!    that the X100 papers measured conventional engines to waste >90% of
//!    their cycles on.
//!
//! Benchmark C1 runs identical queries through this engine and the
//! vectorized kernel; the paper's ">10 times faster" claim is reproduced as
//! the ratio of the two.
//!
//! [`Value`]: vw_common::Value

pub mod exec;
pub mod store;

pub use exec::{
    collect_rows, BoxedIter, Row, ScalarExpr, TupleAgg, TupleAggregate, TupleFilter, TupleHashJoin,
    TupleIterator, TupleJoinKind, TupleLimit, TupleProject, TupleScan, TupleSort, TupleValues,
};
pub use store::RowStore;
