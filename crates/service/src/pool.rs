//! The fixed global worker pool.
//!
//! One [`WorkerPool`] per engine, sized by `EngineConfig::workers`
//! (`VW_WORKERS`, default = core count). Parallel plan fragments are
//! submitted as *tasks*; a task is an ordinary closure that must follow
//! two rules, both enforced by the exec-side task implementations rather
//! than by the pool:
//!
//! 1. **Never block on progress owed by another pool task.** A task that
//!    cannot make progress (its output queue is full, its input is empty)
//!    parks itself in its own operator state and *returns*; whoever
//!    removes the obstacle reschedules it. This is what makes a 1-worker
//!    pool able to drive a DOP-4 plan without deadlock.
//! 2. **Yield after a bounded quantum.** Long-running tasks resubmit
//!    themselves to the queue tail every few vectors, interleaving morsel
//!    claims across queries so no query starves the rest.
//!
//! Shutdown (on `Database` drop or explicit close) cancels the tokens of
//! every queued and running task, then *runs* the remaining queue to
//! completion — tasks observe their cancelled token and unwind fast — and
//! joins all worker threads. Submissions that race past shutdown run
//! inline on the caller; combined with tasks checking [`WorkerPool::
//! is_closed`] before yielding, work submitted to a closed pool still
//! finishes (without unbounded inline recursion).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use vw_common::cancel::CancelToken;

/// A unit of work: the query's cancel token (so shutdown can interrupt it)
/// plus the closure to run.
struct Job {
    token: CancelToken,
    run: Box<dyn FnOnce() + Send + 'static>,
}

struct PoolState {
    jobs: VecDeque<Job>,
    /// Token of the job each worker is currently running, by worker index.
    running: Vec<Option<CancelToken>>,
    closed: bool,
}

struct PoolInner {
    m: Mutex<PoolState>,
    cv: Condvar,
    /// Mirror of `PoolState::closed` readable without the lock — tasks
    /// consult it on their yield path.
    closed: AtomicBool,
}

/// Fixed-size worker pool executing plan-fragment tasks.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    workers: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawn a pool of `workers` threads (`workers == 0` is promoted to 1).
    /// Threads are named `vw-worker-<i>`.
    pub fn new(workers: usize) -> Arc<WorkerPool> {
        let workers = workers.max(1);
        let inner = Arc::new(PoolInner {
            m: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                running: vec![None; workers],
                closed: false,
            }),
            cv: Condvar::new(),
            closed: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("vw-worker-{i}"))
                    .spawn(move || worker_loop(&inner, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Arc::new(WorkerPool { inner, workers, handles: Mutex::new(handles) })
    }

    /// The fixed worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// True once [`WorkerPool::shutdown`] has begun. Tasks check this on
    /// their yield path: a closed pool runs submissions inline, so instead
    /// of resubmitting (which would recurse) a task on a closed pool keeps
    /// going until done.
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }

    /// Enqueue a task. `token` is the owning query's cancel token; shutdown
    /// cancels it so queued work drains fast. If the pool is already
    /// closed, the task runs inline on the caller.
    pub fn submit(&self, token: &CancelToken, f: impl FnOnce() + Send + 'static) {
        let job = Job { token: token.clone(), run: Box::new(f) };
        {
            let mut st = self.inner.m.lock().expect("pool mutex poisoned");
            if !st.closed {
                st.jobs.push_back(job);
                drop(st);
                self.inner.cv.notify_one();
                return;
            }
        }
        (job.run)();
    }

    /// How many tasks are queued but not yet claimed by a worker.
    pub fn queued(&self) -> usize {
        self.inner.m.lock().expect("pool mutex poisoned").jobs.len()
    }

    /// Pop one queued task and run it inline on the calling thread.
    /// Returns false if the queue was empty.
    ///
    /// This is the *helping* half of rule 1 in the module docs: code that
    /// must wait for progress owed by pool tasks (a shard barrier, a full
    /// shard queue) donates its own thread instead of sleeping. Without
    /// this, a task blocking on another task deadlocks a 1-worker pool —
    /// the waiter occupies the only worker the awaited task needs.
    pub fn help_run_one(&self) -> bool {
        let job = {
            let mut st = self.inner.m.lock().expect("pool mutex poisoned");
            st.jobs.pop_front()
        };
        match job {
            Some(job) => {
                // Same outer net as the worker loop: task panics are routed
                // into query errors by the task itself.
                let _ = catch_unwind(AssertUnwindSafe(job.run));
                true
            }
            None => false,
        }
    }

    /// Close the pool: cancel every queued and running task's token, run
    /// the queue dry, and join all worker threads. Idempotent; called from
    /// `Database` teardown (ARCHITECTURE.md "Failure model" — no stray
    /// threads, even with queries mid-flight).
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.m.lock().expect("pool mutex poisoned");
            if !st.closed {
                st.closed = true;
                self.inner.closed.store(true, Ordering::Release);
                for j in &st.jobs {
                    j.token.cancel();
                }
                for t in st.running.iter().flatten() {
                    t.cancel();
                }
            }
        }
        self.inner.cv.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().expect("pool handles poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &PoolInner, me: usize) {
    loop {
        let job = {
            let mut st = inner.m.lock().expect("pool mutex poisoned");
            loop {
                if let Some(j) = st.jobs.pop_front() {
                    st.running[me] = Some(j.token.clone());
                    break Some(j);
                }
                if st.closed {
                    break None;
                }
                st = inner.cv.wait(st).expect("pool mutex poisoned");
            }
        };
        let Some(job) = job else { return };
        // Tasks carry their own catch_unwind and route panics into query
        // errors; this outer net only keeps the *pool* alive if that ever
        // fails, so a buggy task cannot take a worker thread down with it.
        let _ = catch_unwind(AssertUnwindSafe(job.run));
        inner.m.lock().expect("pool mutex poisoned").running[me] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_many_tasks_on_few_workers() {
        let pool = WorkerPool::new(2);
        let n = Arc::new(AtomicUsize::new(0));
        let tok = CancelToken::new();
        for _ in 0..64 {
            let n = n.clone();
            pool.submit(&tok, move || {
                n.fetch_add(1, Ordering::SeqCst);
            });
        }
        let t0 = std::time::Instant::now();
        while n.load(Ordering::SeqCst) < 64 {
            assert!(t0.elapsed() < Duration::from_secs(10), "pool stalled");
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.shutdown();
    }

    #[test]
    fn shutdown_cancels_and_drains_queued_tasks() {
        let pool = WorkerPool::new(1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let tok = CancelToken::new();
        // Occupy the single worker until the gate opens.
        let g = gate.clone();
        pool.submit(&tok, move || {
            let (m, cv) = &*g;
            let mut open = m.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        // Queue a task behind it; its token must be cancelled by shutdown,
        // and the task must still run (drain, not drop).
        let queued_tok = CancelToken::new();
        let saw_cancel = Arc::new(AtomicBool::new(false));
        let ran = Arc::new(AtomicBool::new(false));
        let (sc, r, qt) = (saw_cancel.clone(), ran.clone(), queued_tok.clone());
        pool.submit(&queued_tok, move || {
            sc.store(qt.is_cancelled(), Ordering::SeqCst);
            r.store(true, Ordering::SeqCst);
        });
        // Open the gate from a helper thread after shutdown begins; the
        // running task's token is cancelled by shutdown too.
        let g2 = gate.clone();
        let opener = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let (m, cv) = &*g2;
            *m.lock().unwrap() = true;
            cv.notify_all();
        });
        pool.shutdown();
        opener.join().unwrap();
        assert!(ran.load(Ordering::SeqCst), "queued task drained, not dropped");
        assert!(saw_cancel.load(Ordering::SeqCst), "queued task saw its token cancelled");
        assert!(tok.is_cancelled(), "running task's token cancelled");
    }

    #[test]
    fn submit_after_shutdown_runs_inline() {
        let pool = WorkerPool::new(1);
        pool.shutdown();
        assert!(pool.is_closed());
        let ran = Arc::new(AtomicBool::new(false));
        let r = ran.clone();
        pool.submit(&CancelToken::new(), move || r.store(true, Ordering::SeqCst));
        assert!(ran.load(Ordering::SeqCst), "post-shutdown submit completes inline");
        pool.shutdown(); // idempotent
    }

    #[test]
    fn task_panic_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1);
        let tok = CancelToken::new();
        pool.submit(&tok, || panic!("task bug"));
        let ran = Arc::new(AtomicBool::new(false));
        let r = ran.clone();
        pool.submit(&tok, move || r.store(true, Ordering::SeqCst));
        let t0 = std::time::Instant::now();
        while !ran.load(Ordering::SeqCst) {
            assert!(t0.elapsed() < Duration::from_secs(10), "worker died after panic");
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.shutdown();
    }
}
