//! Shared statement-deadline timer.
//!
//! PR 6 enforced `statement_timeout` with one watchdog thread per guarded
//! query (`vw_exec::cancel::TimeoutGuard`) — fine for a library, wrong for
//! a service where the thread budget is O(workers): N concurrent guarded
//! statements would mean N sleeping threads. The [`DeadlineQueue`] keeps
//! the same observable semantics (token marked timed-out, then cancelled,
//! no earlier than its deadline; nothing registered for queries without a
//! timeout) with **one** timer thread for the whole engine, spawned at
//! construction so the engine's thread count is deterministic from open.
//!
//! Registrations are RAII: dropping the [`TimerGuard`] (query finished
//! first) deregisters the token. The heap keeps lazily-invalidated
//! entries — deregistration just removes the live map entry and the timer
//! skips dead heads — so neither side ever rebuilds the heap.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vw_common::cancel::CancelToken;

struct TimerState {
    /// (deadline, id) min-heap; entries may be stale (id no longer live).
    heap: BinaryHeap<Reverse<(Instant, u64)>>,
    /// Tokens still awaiting enforcement, by registration id.
    live: HashMap<u64, CancelToken>,
    next_id: u64,
    shutdown: bool,
}

struct TimerInner {
    m: Mutex<TimerState>,
    cv: Condvar,
}

/// One engine-wide timer enforcing every registered statement deadline.
pub struct DeadlineQueue {
    inner: Arc<TimerInner>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Default for DeadlineQueue {
    fn default() -> DeadlineQueue {
        DeadlineQueue::new()
    }
}

impl DeadlineQueue {
    /// An empty queue with its timer thread started. Eager spawn keeps the
    /// engine's thread count deterministic from open (`workers + 1`), so
    /// leak checks can baseline it before any statement runs; an idle
    /// timer parks on its condvar and costs nothing.
    pub fn new() -> DeadlineQueue {
        let inner = Arc::new(TimerInner {
            m: Mutex::new(TimerState {
                heap: BinaryHeap::new(),
                live: HashMap::new(),
                next_id: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let ti = inner.clone();
        let handle = std::thread::Builder::new()
            .name("vw-deadline-timer".into())
            .spawn(move || timer_loop(&ti))
            .expect("spawn deadline timer");
        DeadlineQueue { inner, handle: Mutex::new(Some(handle)) }
    }

    /// Register `token` for deadline enforcement. Returns `None` when the
    /// token carries no deadline (nothing to enforce) or the queue is shut
    /// down. Drop the guard to deregister.
    pub fn register(&self, token: &CancelToken) -> Option<TimerGuard> {
        let deadline = token.deadline()?;
        let mut st = self.inner.m.lock().expect("timer mutex poisoned");
        if st.shutdown {
            return None;
        }
        let id = st.next_id;
        st.next_id += 1;
        st.heap.push(Reverse((deadline, id)));
        st.live.insert(id, token.clone());
        drop(st);
        self.inner.cv.notify_all();
        Some(TimerGuard { inner: self.inner.clone(), id })
    }

    /// Number of deadlines currently awaiting enforcement.
    pub fn pending(&self) -> usize {
        self.inner.m.lock().expect("timer mutex poisoned").live.len()
    }

    /// Stop and join the timer thread. Idempotent; registrations after
    /// shutdown are refused (the engine is tearing down).
    pub fn shutdown(&self) {
        self.inner.m.lock().expect("timer mutex poisoned").shutdown = true;
        self.inner.cv.notify_all();
        if let Some(h) = self.handle.lock().expect("timer handle poisoned").take() {
            let _ = h.join();
        }
    }
}

impl Drop for DeadlineQueue {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// RAII registration handle: dropping it (the statement finished before
/// its deadline) deregisters the token without waking the timer.
pub struct TimerGuard {
    inner: Arc<TimerInner>,
    id: u64,
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        self.inner.m.lock().expect("timer mutex poisoned").live.remove(&self.id);
    }
}

fn timer_loop(inner: &TimerInner) {
    let mut st = inner.m.lock().expect("timer mutex poisoned");
    loop {
        if st.shutdown {
            return;
        }
        // Fire due heads, skip deregistered ones.
        let mut next_due: Option<Instant> = None;
        while let Some(&Reverse((when, id))) = st.heap.peek() {
            if !st.live.contains_key(&id) {
                st.heap.pop();
                continue;
            }
            if when <= Instant::now() {
                st.heap.pop();
                if let Some(tok) = st.live.remove(&id) {
                    tok.mark_timed_out();
                    tok.cancel();
                }
                continue;
            }
            next_due = Some(when);
            break;
        }
        let wait = match next_due {
            Some(when) => when.saturating_duration_since(Instant::now()),
            // Idle: park until a registration or shutdown notifies. The
            // bound only caps how stale an empty heap's sleep can get.
            None => Duration::from_secs(3600),
        };
        let (guard, _) = inner.cv.wait_timeout(st, wait).expect("timer mutex poisoned");
        st = guard;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_deadline_registers_nothing() {
        let q = DeadlineQueue::new();
        assert!(q.register(&CancelToken::new()).is_none());
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn deadline_fires_and_marks_timeout() {
        let q = DeadlineQueue::new();
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_millis(30));
        let _g = q.register(&t).expect("deadline token registers");
        let t0 = Instant::now();
        while !t.is_cancelled() {
            assert!(t0.elapsed() < Duration::from_secs(5), "timer never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(t.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(25), "fired no earlier than the deadline");
    }

    #[test]
    fn dropping_guard_deregisters() {
        let q = DeadlineQueue::new();
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_millis(20));
        let g = q.register(&t).unwrap();
        drop(g);
        assert_eq!(q.pending(), 0);
        std::thread::sleep(Duration::from_millis(40));
        assert!(!t.is_cancelled(), "deregistered deadline must not fire");
        assert!(!t.timed_out());
    }

    #[test]
    fn many_deadlines_one_thread() {
        let q = DeadlineQueue::new();
        let toks: Vec<CancelToken> = (0..16)
            .map(|i| CancelToken::with_deadline(Instant::now() + Duration::from_millis(10 + i)))
            .collect();
        let guards: Vec<_> = toks.iter().map(|t| q.register(t).unwrap()).collect();
        let t0 = Instant::now();
        while toks.iter().any(|t| !t.is_cancelled()) {
            assert!(t0.elapsed() < Duration::from_secs(5), "some deadline never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(toks.iter().all(|t| t.timed_out()));
        drop(guards);
        q.shutdown();
    }

    #[test]
    fn shutdown_joins_promptly_with_far_deadlines() {
        let q = DeadlineQueue::new();
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        let _g = q.register(&t).unwrap();
        let t0 = Instant::now();
        q.shutdown();
        assert!(t0.elapsed() < Duration::from_secs(5), "shutdown must not wait out the deadline");
        assert!(!t.is_cancelled());
    }
}
