//! # vw-service — the query-service scheduling layer
//!
//! The paper's Vectorwise chapter is about what it takes to turn an
//! X100-style kernel into a *product that serves many concurrent users*.
//! This crate hosts the pieces of that story that sit between the SQL
//! facade (`vw-core`) and the execution kernel (`vw-exec`):
//!
//! * [`pool::WorkerPool`] — one fixed gang of worker threads per engine.
//!   Parallel plan fragments (`Xchg` partitions, `ShardSet` build shards)
//!   are *tasks* scheduled onto this pool instead of per-query thread
//!   gangs, so N concurrent queries cost O(workers) threads, not
//!   O(queries × DOP). Tasks yield cooperatively (requeue after a quantum)
//!   so one query cannot starve the rest.
//! * [`admission::AdmissionController`] — partitions the engine's global
//!   memory limit across admitted queries; overflow waits in a bounded
//!   FIFO queue or is rejected with the typed `E_ADMISSION` error.
//!   `KILL` and statement timeouts dequeue waiting queries promptly.
//! * [`timer::DeadlineQueue`] — one shared timer thread enforcing every
//!   in-flight statement deadline (replacing a watchdog thread per query).
//!
//! Everything here speaks [`vw_common::cancel::CancelToken`] and nothing
//! here knows about SQL, plans, or operators — the dependency points
//! strictly downward (`vw-core` → `vw-exec` → `vw-service` → `vw-common`).
//! The session/admission life cycle (queued → admitted → running →
//! done/killed/timed-out) is documented in ARCHITECTURE.md ("Life of a
//! query").

pub mod admission;
pub mod pool;
pub mod timer;

pub use admission::{AdmissionController, AdmissionGrant};
pub use pool::WorkerPool;
pub use timer::{DeadlineQueue, TimerGuard};
