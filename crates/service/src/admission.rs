//! Admission control: partitioning the global memory limit across queries.
//!
//! The Cambridge Report's point about multi-tenant resource governance:
//! with N concurrent queries and one machine, *uncontrolled* admission
//! means either every query gets an optimistic budget (and the box
//! thrashes) or a static 1/N slice (and a lone query wastes the machine).
//! The [`AdmissionController`] instead hands each query an explicit
//! **memory grant** carved out of one global limit at admission time:
//!
//! * a query whose grant fits the remaining headroom is admitted at once;
//! * otherwise it waits in a strict-FIFO queue (no overtaking — a large
//!   request cannot be starved by a stream of small ones);
//! * the queue is bounded (`admission_queue_depth`); overflow is rejected
//!   with the typed [`VwError::Admission`] (`E_ADMISSION`) so clients can
//!   distinguish "busy, retry" from execution failure;
//! * `KILL` and statement timeouts cancel the waiter's token, which
//!   *dequeues* the query promptly instead of letting it occupy a slot.
//!
//! The grant is RAII ([`AdmissionGrant`]): completion, error, KILL,
//! timeout, and panic-unwind all release it the same way, and release
//! wakes the queue head. The sum of outstanding grants never exceeds the
//! global limit — the stress harness asserts exactly this invariant.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use vw_common::cancel::CancelToken;
use vw_common::{Result, VwError};

struct AdmState {
    /// Sum of outstanding grants, always ≤ `limit`.
    in_use: u64,
    /// Waiting queries in arrival order (ticket ids).
    queue: VecDeque<u64>,
    next_ticket: u64,
    closed: bool,
}

/// FIFO admission controller over one global memory limit.
pub struct AdmissionController {
    limit: u64,
    /// Maximum number of *waiting* queries; SET-able at runtime.
    queue_depth: AtomicUsize,
    m: Mutex<AdmState>,
    cv: Condvar,
}

impl AdmissionController {
    /// A controller over `limit` bytes of global query memory with the
    /// given initial queue depth.
    pub fn new(limit: u64, queue_depth: usize) -> Arc<AdmissionController> {
        Arc::new(AdmissionController {
            limit: limit.max(1),
            queue_depth: AtomicUsize::new(queue_depth),
            m: Mutex::new(AdmState {
                in_use: 0,
                queue: VecDeque::new(),
                next_ticket: 0,
                closed: false,
            }),
            cv: Condvar::new(),
        })
    }

    /// The global memory limit being partitioned.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Sum of currently outstanding grants.
    pub fn in_use(&self) -> u64 {
        self.m.lock().expect("admission mutex poisoned").in_use
    }

    /// Number of queries waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.m.lock().expect("admission mutex poisoned").queue.len()
    }

    /// Change the bound on the waiting queue (the `admission_queue_depth`
    /// knob). Applies to future arrivals; current waiters keep their slot.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Current queue-depth bound.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Request `bytes` of the global limit for one query. Blocks in FIFO
    /// order behind earlier waiters; returns
    ///
    /// * `Ok(grant)` once the request fits the remaining headroom,
    /// * `Err(VwError::Admission)` if the waiting queue is full, and
    /// * `Err(VwError::Cancelled)` when `token` is cancelled while waiting
    ///   (KILL / timeout / shutdown) — the waiter is dequeued promptly.
    ///
    /// Requests are clamped to `[1, limit]`, so an over-limit request
    /// degrades to "run alone with everything" rather than waiting forever.
    pub fn admit(self: &Arc<Self>, bytes: u64, token: &CancelToken) -> Result<AdmissionGrant> {
        let request = bytes.clamp(1, self.limit);
        let mut st = self.m.lock().expect("admission mutex poisoned");
        if st.closed {
            return Err(VwError::Cancelled);
        }
        if token.is_cancelled() {
            return Err(VwError::Cancelled);
        }
        if st.queue.is_empty() && st.in_use + request <= self.limit {
            st.in_use += request;
            return Ok(AdmissionGrant { ctl: self.clone(), bytes: request });
        }
        let depth = self.queue_depth();
        if st.queue.len() >= depth {
            return Err(VwError::Admission(format!(
                "admission queue full ({} waiting, depth {}); retry later or raise \
                 admission_queue_depth",
                st.queue.len(),
                depth
            )));
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(ticket);
        loop {
            if st.closed || token.is_cancelled() {
                st.queue.retain(|&t| t != ticket);
                drop(st);
                // The head may have changed; let the next waiter re-check.
                self.cv.notify_all();
                return Err(VwError::Cancelled);
            }
            if st.queue.front() == Some(&ticket) && st.in_use + request <= self.limit {
                st.queue.pop_front();
                st.in_use += request;
                drop(st);
                self.cv.notify_all();
                return Ok(AdmissionGrant { ctl: self.clone(), bytes: request });
            }
            // Bounded wait so a token cancelled by KILL/timeout (which has
            // no handle on this condvar) is observed within ~1ms.
            let (guard, _) = self
                .cv
                .wait_timeout(st, Duration::from_millis(1))
                .expect("admission mutex poisoned");
            st = guard;
        }
    }

    /// Shut the controller down: wake and fail every waiter. Outstanding
    /// grants drain through their normal RAII release.
    pub fn close(&self) {
        self.m.lock().expect("admission mutex poisoned").closed = true;
        self.cv.notify_all();
    }

    fn release(&self, bytes: u64) {
        let mut st = self.m.lock().expect("admission mutex poisoned");
        debug_assert!(st.in_use >= bytes, "admission release underflow");
        st.in_use = st.in_use.saturating_sub(bytes);
        drop(st);
        self.cv.notify_all();
    }
}

/// An admitted query's memory grant. Dropping it returns the bytes to the
/// global pool and wakes the admission queue — on every exit path.
pub struct AdmissionGrant {
    ctl: Arc<AdmissionController>,
    bytes: u64,
}

impl std::fmt::Debug for AdmissionGrant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionGrant").field("bytes", &self.bytes).finish()
    }
}

impl AdmissionGrant {
    /// Bytes granted to this query (its effective `mem_budget`).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for AdmissionGrant {
    fn drop(&mut self) {
        self.ctl.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn admits_within_limit_and_clamps_oversize() {
        let ctl = AdmissionController::new(1000, 4);
        let tok = CancelToken::new();
        let a = ctl.admit(400, &tok).unwrap();
        let b = ctl.admit(400, &tok).unwrap();
        assert_eq!(ctl.in_use(), 800);
        // 5000 clamps to 1000, which does not fit while a+b hold 800 — so
        // this queues; drop the holders to admit it.
        let ctl2 = ctl.clone();
        let big = std::thread::spawn(move || ctl2.admit(5000, &CancelToken::new()));
        let t0 = Instant::now();
        while ctl.queued() < 1 {
            assert!(t0.elapsed() < Duration::from_secs(5));
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(a);
        drop(b);
        let g = big.join().unwrap().unwrap();
        assert_eq!(g.bytes(), 1000, "over-limit request clamps to the whole limit");
        drop(g);
        assert_eq!(ctl.in_use(), 0);
    }

    #[test]
    fn fifo_order_and_release_wakes_head() {
        let ctl = AdmissionController::new(100, 8);
        let first = ctl.admit(100, &CancelToken::new()).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut joins = Vec::new();
        for i in 0..3 {
            let (ctl, order) = (ctl.clone(), order.clone());
            joins.push(std::thread::spawn(move || {
                // Stagger arrivals so the FIFO order is deterministic.
                std::thread::sleep(Duration::from_millis(20 * (i as u64 + 1)));
                let g = ctl.admit(100, &CancelToken::new()).unwrap();
                order.lock().unwrap().push(i);
                drop(g);
            }));
        }
        std::thread::sleep(Duration::from_millis(100));
        drop(first);
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2], "strict FIFO admission");
    }

    #[test]
    fn bounded_queue_rejects_with_typed_error() {
        let ctl = AdmissionController::new(100, 1);
        let hold = ctl.admit(100, &CancelToken::new()).unwrap();
        let ctl2 = ctl.clone();
        let waiter = std::thread::spawn(move || {
            let tok = CancelToken::new();
            let g = ctl2.admit(50, &tok);
            g.map(|g| g.bytes())
        });
        // Wait for the waiter to occupy the single queue slot.
        let t0 = Instant::now();
        while ctl.queued() < 1 {
            assert!(t0.elapsed() < Duration::from_secs(5));
            std::thread::sleep(Duration::from_millis(1));
        }
        let rejected = ctl.admit(50, &CancelToken::new());
        match rejected {
            Err(VwError::Admission(msg)) => assert!(msg.contains("queue full"), "{msg}"),
            other => panic!("expected E_ADMISSION, got {other:?}"),
        }
        drop(hold);
        assert_eq!(waiter.join().unwrap().unwrap(), 50);
        assert_eq!(ctl.queued(), 0);
        assert_eq!(ctl.in_use(), 0);
    }

    #[test]
    fn cancelling_a_waiter_dequeues_it() {
        let ctl = AdmissionController::new(100, 4);
        let hold = ctl.admit(100, &CancelToken::new()).unwrap();
        let tok = CancelToken::new();
        let (ctl2, tok2) = (ctl.clone(), tok.clone());
        let waiter = std::thread::spawn(move || ctl2.admit(50, &tok2));
        let t0 = Instant::now();
        while ctl.queued() < 1 {
            assert!(t0.elapsed() < Duration::from_secs(5));
            std::thread::sleep(Duration::from_millis(1));
        }
        tok.cancel();
        let res = waiter.join().unwrap();
        assert!(matches!(res, Err(VwError::Cancelled)), "got {res:?}");
        assert_eq!(ctl.queued(), 0, "KILL while queued dequeues cleanly");
        drop(hold);
        assert_eq!(ctl.in_use(), 0);
    }

    #[test]
    fn grant_sum_never_exceeds_limit_under_contention() {
        let ctl = AdmissionController::new(256, 64);
        let peak_ok = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let mut joins = Vec::new();
        for i in 0..8 {
            let (ctl, peak_ok) = (ctl.clone(), peak_ok.clone());
            joins.push(std::thread::spawn(move || {
                for j in 0..20 {
                    let want = 32 + ((i * 7 + j * 13) % 200) as u64;
                    let g = ctl.admit(want, &CancelToken::new()).unwrap();
                    if ctl.in_use() > ctl.limit() {
                        peak_ok.store(false, Ordering::SeqCst);
                    }
                    std::thread::sleep(Duration::from_micros(200));
                    drop(g);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert!(peak_ok.load(Ordering::SeqCst), "sum of grants exceeded the global limit");
        assert_eq!(ctl.in_use(), 0);
        assert_eq!(ctl.queued(), 0);
    }

    #[test]
    fn close_fails_waiters() {
        let ctl = AdmissionController::new(100, 4);
        let hold = ctl.admit(100, &CancelToken::new()).unwrap();
        let ctl2 = ctl.clone();
        let waiter = std::thread::spawn(move || ctl2.admit(10, &CancelToken::new()));
        let t0 = Instant::now();
        while ctl.queued() < 1 {
            assert!(t0.elapsed() < Duration::from_secs(5));
            std::thread::sleep(Duration::from_millis(1));
        }
        ctl.close();
        assert!(matches!(waiter.join().unwrap(), Err(VwError::Cancelled)));
        drop(hold);
    }
}
