//! DML and transaction plumbing: INSERT/UPDATE/DELETE through PDTs,
//! multi-statement transactions, and CHECKPOINT propagation.

use crate::catalog::{TableEntry, TableKind};
use crate::monitor::EventLevel;
use crate::{Database, SessionCore};
use std::collections::HashMap;
use std::sync::Arc;
use vw_common::{ColData, EngineConfig, Result, Schema, Value, VwError};
use vw_exec::expr::ExprCtx;
use vw_exec::op::{Operator, VectorScan};
use vw_exec::program::{ExprProgram, SelectProgram, VectorPool};
use vw_exec::CancelToken;
use vw_pdt::store::items;
use vw_pdt::Transaction;
use vw_sql::ast::Expr;
use vw_sql::binder::{Binder, CatalogView};
use vw_storage::{TableStats, TableStorage};

/// An open multi-statement transaction: one PDT transaction per touched
/// VECTORWISE table.
///
/// Cross-table atomicity caveat (documented in DESIGN.md §6): commit applies
/// per table under the global commit lock; a positional conflict on a later
/// table aborts the remainder but does not undo earlier tables.
#[derive(Default)]
pub struct OpenTxn {
    pub(crate) tables: HashMap<String, Transaction>,
}

impl OpenTxn {
    /// Private image root for `table`, if this txn touched it.
    pub fn image_of(&self, table: &str) -> Option<vw_pdt::treap::Link> {
        self.tables.get(&table.to_ascii_lowercase()).map(|t| t.image().clone())
    }

    fn txn_for<'a>(&'a mut self, table: &str, entry: &TableEntry) -> Result<&'a mut Transaction> {
        let key = table.to_ascii_lowercase();
        if !self.tables.contains_key(&key) {
            let TableKind::Vectorwise { pdt, .. } = &entry.kind else {
                return Err(VwError::Unsupported(
                    "transactional DML requires a VECTORWISE table".into(),
                ));
            };
            self.tables.insert(key.clone(), pdt.begin());
        }
        Ok(self.tables.get_mut(&key).unwrap())
    }
}

/// Evaluate literal INSERT rows (constant expressions only).
pub fn literal_rows(rows: &[Vec<Expr>]) -> Result<Vec<Vec<Value>>> {
    struct NoCatalog;
    impl CatalogView for NoCatalog {
        fn table_schema(&self, _n: &str) -> Option<Schema> {
            None
        }
        fn table_rows(&self, _n: &str) -> Option<u64> {
            None
        }
    }
    let binder = Binder::new(&NoCatalog);
    let empty = Schema::default();
    rows.iter()
        .map(|row| {
            row.iter()
                .map(|e| {
                    let bound = binder.bind_expr_on_schema(e, &empty)?;
                    let folded = vw_sql::optimizer::fold_expr(bound)?;
                    match folded {
                        vw_sql::SqlExpr::Lit(v, _) => Ok(v),
                        other => Err(VwError::Unsupported(format!(
                            "INSERT VALUES must be constants, got {other:?}"
                        ))),
                    }
                })
                .collect()
        })
        .collect()
}

/// Coerce a raw row onto the table schema (casts + NOT NULL checks), with
/// an optional explicit column list.
fn coerce_row(schema: &Schema, columns: Option<&[String]>, row: Vec<Value>) -> Result<Vec<Value>> {
    let mut out = vec![Value::Null; schema.len()];
    match columns {
        None => {
            if row.len() != schema.len() {
                return Err(VwError::Exec(format!(
                    "INSERT provides {} values for {} columns",
                    row.len(),
                    schema.len()
                )));
            }
            for (i, v) in row.into_iter().enumerate() {
                out[i] = v;
            }
        }
        Some(cols) => {
            if row.len() != cols.len() {
                return Err(VwError::Exec("INSERT column/value count mismatch".into()));
            }
            for (name, v) in cols.iter().zip(row) {
                let idx = schema
                    .index_of(name)
                    .ok_or_else(|| VwError::Bind(format!("unknown column '{name}'")))?;
                out[idx] = v;
            }
        }
    }
    for (i, f) in schema.fields.iter().enumerate() {
        if out[i].is_null() {
            if !f.nullable {
                return Err(VwError::Exec(format!("NULL in NOT NULL column {}", f.name)));
            }
        } else {
            out[i] = out[i].cast_to(f.ty)?;
        }
    }
    Ok(out)
}

fn lookup(db: &Arc<Database>, table: &str) -> Result<Arc<TableEntry>> {
    db.catalog.read().get(table).ok_or_else(|| VwError::Catalog(format!("unknown table '{table}'")))
}

/// INSERT rows; returns the row count.
pub(crate) fn insert(
    db: &Arc<Database>,
    core: &mut SessionCore,
    table: &str,
    columns: Option<&[String]>,
    rows: Vec<Vec<Value>>,
) -> Result<u64> {
    let entry = lookup(db, table)?;
    let coerced: Vec<Vec<Value>> =
        rows.into_iter().map(|r| coerce_row(&entry.schema, columns, r)).collect::<Result<_>>()?;
    let n = coerced.len() as u64;
    match &entry.kind {
        TableKind::Heap { store } => {
            store.write().append_rows(&coerced)?;
        }
        TableKind::Vectorwise { .. } => {
            let auto = core.txn.is_none();
            if auto {
                core.txn = Some(OpenTxn::default());
            }
            {
                let txn = core.txn.as_mut().unwrap().txn_for(table, &entry)?;
                for row in coerced {
                    txn.append(row)?;
                }
            }
            if auto {
                commit(db, core.txn.take().unwrap())?;
            }
        }
    }
    Ok(n)
}

/// Shared machinery for UPDATE/DELETE: find the RIDs (and per-row new
/// values for UPDATE) matching `filter` in the transaction's image.
#[allow(clippy::type_complexity)]
fn matching_rows(
    db: &Arc<Database>,
    config: &EngineConfig,
    entry: &TableEntry,
    image: vw_pdt::treap::Link,
    filter: Option<&Expr>,
    sets: Option<&[(String, Expr)]>,
) -> Result<(Vec<u64>, Vec<Vec<(usize, Value)>>)> {
    let TableKind::Vectorwise { storage, .. } = &entry.kind else {
        unreachable!("caller checked");
    };
    let binder_catalog = NoTables;
    let binder = Binder::new(&binder_catalog);
    // The session's config, threaded explicitly: `Database::execute`
    // holds the default-session lock for the whole statement, so DML
    // paths must never read it back through `db.config()`.
    let ctx = ExprCtx { check: config.check_mode, null_mode: config.null_mode };
    // Compile once per statement; the scan loop below only runs programs.
    let predicate = match filter {
        Some(f) => {
            let bound = binder.bind_expr_on_schema(f, &entry.schema)?;
            let nullable: Vec<bool> = entry.schema.fields.iter().map(|x| x.nullable).collect();
            let rewritten = vw_rewriter::engine::rewrite_fixpoint(
                bound,
                &vw_rewriter::rules::default_rules(),
                &nullable,
            );
            Some(SelectProgram::compile(&crate::compile::lower_expr(&rewritten)?, &ctx))
        }
        None => None,
    };
    let set_exprs = match sets {
        Some(sets) => {
            let mut out = Vec::with_capacity(sets.len());
            for (col, e) in sets {
                let idx = entry
                    .schema
                    .index_of(col)
                    .ok_or_else(|| VwError::Bind(format!("unknown column '{col}'")))?;
                let bound = binder.bind_expr_on_schema(e, &entry.schema)?;
                let nullable: Vec<bool> = entry.schema.fields.iter().map(|x| x.nullable).collect();
                let rewritten = vw_rewriter::engine::rewrite_fixpoint(
                    bound,
                    &vw_rewriter::rules::default_rules(),
                    &nullable,
                );
                out.push((
                    idx,
                    ExprProgram::compile(&crate::compile::lower_expr(&rewritten)?, &ctx),
                ));
            }
            Some(out)
        }
        None => None,
    };

    // Scan the image in row order, collecting matches.
    let snapshot = {
        let st = storage.read();
        let mut snap = TableStorage::new(st.disk().clone(), st.schema().clone(), st.layout());
        snap.adopt_packs(&st);
        Arc::new(snap)
    };
    let all_cols: Vec<usize> = (0..entry.schema.len()).collect();
    let mut scan = VectorScan::new(
        snapshot,
        db.pool.clone(),
        all_cols,
        items(&image),
        config.vector_size,
        CancelToken::new(),
    );
    let mut rids: Vec<u64> = Vec::new();
    let mut new_values: Vec<Vec<(usize, Value)>> = Vec::new();
    let mut base = 0u64;
    let mut pool = VectorPool::new();
    while let Some(batch) = scan.next()? {
        let sel = match &predicate {
            Some(p) => Some(p.run(&mut pool, &batch)?),
            None => None,
        };
        let selected: Vec<usize> = match &sel {
            Some(s) => s.iter().collect(),
            None => (0..batch.capacity()).collect(),
        };
        if !selected.is_empty() {
            if let Some(set_exprs) = &set_exprs {
                // Run each SET program over the *selected* lanes only — a
                // WHERE-excluded row must not raise errors from the SET
                // expression (e.g. `SET a = 10 / b WHERE b <> 0`) — then
                // pick the selected positions out of the pooled results.
                let evaluated: Vec<(usize, vw_exec::program::VecRef)> = set_exprs
                    .iter()
                    .map(|(idx, e)| Ok((*idx, e.run_with_sel(&mut pool, &batch, sel.as_ref())?)))
                    .collect::<Result<_>>()?;
                for &pos in &selected {
                    let mut row_sets = Vec::with_capacity(evaluated.len());
                    for (idx, vr) in &evaluated {
                        let v = pool.get(&batch, *vr);
                        let val = v.get(pos).cast_to(entry.schema.field(*idx).ty)?;
                        if val.is_null() && !entry.schema.field(*idx).nullable {
                            return Err(VwError::Exec(format!(
                                "NULL in NOT NULL column {}",
                                entry.schema.field(*idx).name
                            )));
                        }
                        row_sets.push((*idx, val));
                    }
                    new_values.push(row_sets);
                }
            }
            rids.extend(selected.iter().map(|&p| base + p as u64));
        }
        if let Some(s) = sel {
            pool.put_sel(s);
        }
        pool.recycle();
        base += batch.capacity() as u64;
    }
    Ok((rids, new_values))
}

struct NoTables;

impl CatalogView for NoTables {
    fn table_schema(&self, _n: &str) -> Option<Schema> {
        None
    }
    fn table_rows(&self, _n: &str) -> Option<u64> {
        None
    }
}

/// UPDATE; returns affected row count.
pub(crate) fn update(
    db: &Arc<Database>,
    core: &mut SessionCore,
    table: &str,
    sets: &[(String, Expr)],
    filter: Option<&Expr>,
) -> Result<u64> {
    let entry = lookup(db, table)?;
    if matches!(entry.kind, TableKind::Heap { .. }) {
        return heap_update_delete(db, &core.cfg, &entry, Some(sets), filter);
    }
    let auto = core.txn.is_none();
    if auto {
        core.txn = Some(OpenTxn::default());
    }
    let result = (|| {
        let txn = core.txn.as_mut().unwrap().txn_for(table, &entry)?;
        let image = txn.image().clone();
        let (rids, values) = matching_rows(db, &core.cfg, &entry, image, filter, Some(sets))?;
        for (rid, row_sets) in rids.iter().zip(values) {
            for (col, val) in row_sets {
                txn.update_at(*rid, col, val)?;
            }
        }
        Ok(rids.len() as u64)
    })();
    if auto {
        let txn = core.txn.take().unwrap();
        if result.is_ok() {
            commit(db, txn)?;
        }
    }
    // Updated rows invalidate the distinct/histogram snapshot: mark it
    // stale so the cost model stops planning against dead numbers until
    // CHECKPOINT rebuilds it.
    if matches!(result, Ok(n) if n > 0) {
        entry.stats.write().mark_stale();
    }
    result
}

/// DELETE; returns affected row count.
pub(crate) fn delete(
    db: &Arc<Database>,
    core: &mut SessionCore,
    table: &str,
    filter: Option<&Expr>,
) -> Result<u64> {
    let entry = lookup(db, table)?;
    if matches!(entry.kind, TableKind::Heap { .. }) {
        return heap_update_delete(db, &core.cfg, &entry, None, filter);
    }
    let auto = core.txn.is_none();
    if auto {
        core.txn = Some(OpenTxn::default());
    }
    let result = (|| {
        let txn = core.txn.as_mut().unwrap().txn_for(table, &entry)?;
        let image = txn.image().clone();
        let (rids, _) = matching_rows(db, &core.cfg, &entry, image, filter, None)?;
        // Descending order keeps earlier positions stable across deletes.
        for &rid in rids.iter().rev() {
            txn.delete_at(rid)?;
        }
        Ok(rids.len() as u64)
    })();
    if auto {
        let txn = core.txn.take().unwrap();
        if result.is_ok() {
            commit(db, txn)?;
        }
    }
    // Deleted rows invalidate the distinct/histogram snapshot (see
    // `update`): stale until the next CHECKPOINT rebuild.
    if matches!(result, Ok(n) if n > 0) {
        entry.stats.write().mark_stale();
    }
    result
}

/// Heap-table UPDATE/DELETE: rewrite the heap (OLTP-side simplification —
/// the paper's transactional machinery is the PDT path).
fn heap_update_delete(
    db: &Arc<Database>,
    config: &EngineConfig,
    entry: &TableEntry,
    sets: Option<&[(String, Expr)]>,
    filter: Option<&Expr>,
) -> Result<u64> {
    let TableKind::Heap { store } = &entry.kind else { unreachable!() };
    let binder_catalog = NoTables;
    let binder = Binder::new(&binder_catalog);
    let pred = filter.map(|f| binder.bind_expr_on_schema(f, &entry.schema)).transpose()?;
    let set_bound = sets
        .map(|sets| {
            sets.iter()
                .map(|(col, e)| {
                    let idx = entry
                        .schema
                        .index_of(col)
                        .ok_or_else(|| VwError::Bind(format!("unknown column '{col}'")))?;
                    Ok((idx, binder.bind_expr_on_schema(e, &entry.schema)?))
                })
                .collect::<Result<Vec<_>>>()
        })
        .transpose()?;

    // Compile once per statement; rows only pay a one-row program run.
    // The session's configured checking/NULL strategy applies here
    // exactly as on the columnar path.
    let ctx = ExprCtx { check: config.check_mode, null_mode: config.null_mode };
    let mut pred_prog = match &pred {
        Some(p) => Some(ScalarProgram::new(p, &entry.schema, &ctx)?),
        None => None,
    };
    let mut set_progs = match &set_bound {
        Some(sets) => {
            let mut out = Vec::with_capacity(sets.len());
            for (idx, e) in sets {
                out.push((*idx, ScalarProgram::new(e, &entry.schema, &ctx)?));
            }
            Some(out)
        }
        None => None,
    };

    let mut st = store.write();
    let mut all: Vec<Vec<Value>> = Vec::with_capacity(st.n_rows() as usize);
    for p in 0..st.n_pages() {
        all.extend(st.read_page(&db.pool, p)?);
    }
    let mut affected = 0u64;
    let mut kept: Vec<Vec<Value>> = Vec::with_capacity(all.len());
    for row in all {
        let matched = match &mut pred_prog {
            Some(p) => p.eval_row(&row)? == Value::Bool(true),
            None => true,
        };
        if !matched {
            kept.push(row);
            continue;
        }
        affected += 1;
        match &mut set_progs {
            Some(sets) => {
                let mut row = row;
                for (idx, prog) in sets.iter_mut() {
                    let v = prog.eval_row(&row)?.cast_to(entry.schema.field(*idx).ty)?;
                    row[*idx] = v;
                }
                kept.push(row);
            }
            None => { /* delete: drop the row */ }
        }
    }
    st.free_all(Some(&db.pool));
    let mut fresh = vw_volcano::RowStore::new(db.disk.clone(), entry.schema.clone());
    fresh.append_rows(&kept)?;
    *st = fresh;
    if affected > 0 {
        // Same staleness contract as the PDT path: the heap rewrite just
        // changed or removed rows the statistics still describe.
        entry.stats.write().mark_stale();
    }
    Ok(affected)
}

/// A bound scalar expression for the heap DML path: rewrite, lowering,
/// and program compilation happen once at construction; each row then
/// pays only a one-row batch build and a pooled program run.
struct ScalarProgram {
    program: ExprProgram,
    pool: VectorPool,
}

impl ScalarProgram {
    fn new(e: &vw_sql::SqlExpr, schema: &Schema, ctx: &ExprCtx) -> Result<ScalarProgram> {
        let nullable = vec![true; schema.len()];
        let rewritten = vw_rewriter::engine::rewrite_fixpoint(
            e.clone(),
            &vw_rewriter::rules::default_rules(),
            &nullable,
        );
        Ok(ScalarProgram {
            program: ExprProgram::compile(&crate::compile::lower_expr(&rewritten)?, ctx),
            pool: VectorPool::new(),
        })
    }

    /// Evaluate against one heap row. Columns are typed per value (NULLs
    /// default to BIGINT), matching the expression evaluation the old
    /// per-row interpreter performed.
    fn eval_row(&mut self, row: &[Value]) -> Result<Value> {
        use vw_exec::vector::Batch;
        let mut columns = Vec::with_capacity(row.len());
        for v in row {
            let ty = v.type_id().unwrap_or(vw_common::TypeId::I64);
            let mut vec = vw_exec::Vector::new(ColData::with_capacity(ty, 1));
            vec.push(v)?;
            columns.push(vec);
        }
        let batch = Batch::new(columns);
        let vr = self.program.run(&mut self.pool, &batch)?;
        let out = self.pool.get(&batch, vr).get(0);
        self.pool.recycle();
        Ok(out)
    }
}

/// Commit an open transaction (all touched tables, in name order, under the
/// global commit lock).
pub fn commit(db: &Arc<Database>, txn: OpenTxn) -> Result<()> {
    let _guard = db.commit_lock.lock();
    let mut names: Vec<String> = txn.tables.keys().cloned().collect();
    names.sort();
    let mut tables = txn.tables;
    for name in names {
        let entry = lookup(db, &name)?;
        let TableKind::Vectorwise { pdt, .. } = &entry.kind else {
            continue;
        };
        let t = tables.remove(&name).expect("keyed");
        pdt.commit(t)?;
    }
    Ok(())
}

/// CHECKPOINT: merge each table's PDT deltas into fresh stable storage and
/// reset the delta layer ("background update propagation", run on demand).
/// Returns the number of rows materialized.
pub fn checkpoint(db: &Arc<Database>, config: &EngineConfig, table: Option<&str>) -> Result<u64> {
    let names: Vec<String> = match table {
        Some(t) => vec![t.to_string()],
        None => db.catalog.read().names(),
    };
    let mut total = 0u64;
    for name in names {
        let entry = lookup(db, &name)?;
        let TableKind::Vectorwise { storage, pdt } = &entry.kind else {
            continue;
        };
        let _guard = db.commit_lock.lock();
        let (root, _, n_rows) = pdt.snapshot();
        // Materialize the merged image column by column.
        let snapshot = {
            let st = storage.read();
            let mut snap = TableStorage::new(st.disk().clone(), st.schema().clone(), st.layout());
            snap.adopt_packs(&st);
            Arc::new(snap)
        };
        let all_cols: Vec<usize> = (0..entry.schema.len()).collect();
        let mut scan = VectorScan::new(
            snapshot,
            db.pool.clone(),
            all_cols,
            items(&root),
            config.vector_size,
            CancelToken::new(),
        );
        let mut columns: Vec<ColData> = entry
            .schema
            .fields
            .iter()
            .map(|f| ColData::with_capacity(f.ty, n_rows as usize))
            .collect();
        let mut nulls: Vec<Option<Vec<bool>>> = vec![None; entry.schema.len()];
        let mut row_count = 0usize;
        while let Some(batch) = scan.next()? {
            let batch = batch.compact();
            for (i, v) in batch.columns.iter().enumerate() {
                columns[i].extend_from_range(&v.data, 0, v.len());
                let mask_needed = v.nulls.is_some() || nulls[i].is_some();
                if mask_needed {
                    let m = nulls[i].get_or_insert_with(|| vec![false; row_count]);
                    match &v.nulls {
                        Some(vm) => m.extend_from_slice(vm),
                        None => m.extend(std::iter::repeat_n(false, v.len())),
                    }
                }
            }
            row_count += batch.rows();
        }
        let mut fresh =
            TableStorage::new(db.disk.clone(), entry.schema.clone(), storage.read().layout());
        fresh.append_columns(&columns, &nulls, config.pack_size)?;
        {
            let mut st = storage.write();
            st.free_all(Some(&db.pool));
            *st = fresh;
        }
        pdt.reset_after_checkpoint(row_count as u64);
        *entry.stats.write() = TableStats::build(&columns, &nulls, 32);
        db.monitor.log(EventLevel::Info, format!("checkpointed {name}: {row_count} rows"));
        total += row_count as u64;
    }
    Ok(total)
}
