//! The cross compiler — "a fully new component in the Ingres architecture":
//! lowers the rewritten algebra onto X100 kernel operators.
//!
//! Expressions lower 1:1 ([`SqlExpr`] → [`PhysExpr`]); any surviving
//! extended function or IN-list means the rewriter did not run — that is a
//! plan error, not a fallback. Plans lower onto `vw-exec` operators;
//! [`LogicalPlan::Exchange`] spawns one partition pipeline per worker under
//! an `Xchg` operator, with scans partitioned by merge-item row ranges.

use crate::catalog::TableKind;
use crate::dml::OpenTxn;
use crate::Database;
use std::sync::Arc;
use vw_common::{EngineConfig, Result, Value, VwError};
use vw_exec::expr::{ExprCtx, PhysExpr};
use vw_exec::op::scan::partition_items;
use vw_exec::op::{
    AggSpec, BoxedOp, HashAggregate, HashJoin, JoinType, Limit, Project, Select, Sort, SortKey,
    TopN, UnionAll, Values, VectorScan, Xchg,
};
use vw_exec::program::{ExprProgram, SelectProgram};
use vw_exec::CancelToken;
use vw_pdt::store::items;
use vw_sql::plan::{JoinKind, LogicalPlan};
use vw_sql::SqlExpr;

/// Lower a bound+rewritten expression to a kernel expression.
pub fn lower_expr(e: &SqlExpr) -> Result<PhysExpr> {
    Ok(match e {
        SqlExpr::Col(i, ty) => PhysExpr::ColRef(*i, *ty),
        SqlExpr::Lit(v, ty) => PhysExpr::Const(v.clone(), *ty),
        SqlExpr::Arith { op, l, r, ty } => PhysExpr::Arith {
            op: *op,
            lhs: Box::new(lower_expr(l)?),
            rhs: Box::new(lower_expr(r)?),
            ty: *ty,
        },
        SqlExpr::Cmp { op, l, r } => {
            PhysExpr::Cmp { op: *op, lhs: Box::new(lower_expr(l)?), rhs: Box::new(lower_expr(r)?) }
        }
        SqlExpr::And(v) => PhysExpr::And(v.iter().map(lower_expr).collect::<Result<_>>()?),
        SqlExpr::Or(v) => PhysExpr::Or(v.iter().map(lower_expr).collect::<Result<_>>()?),
        SqlExpr::Not(x) => PhysExpr::Not(Box::new(lower_expr(x)?)),
        SqlExpr::Cast { input, to } => {
            PhysExpr::Cast { input: Box::new(lower_expr(input)?), to: *to }
        }
        SqlExpr::IsNull(x) => PhysExpr::IsNull(Box::new(lower_expr(x)?)),
        SqlExpr::IsNotNull(x) => PhysExpr::IsNotNull(Box::new(lower_expr(x)?)),
        SqlExpr::Case { branches, else_expr, ty } => PhysExpr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| Ok((lower_expr(c)?, lower_expr(v)?)))
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(x) => Some(Box::new(lower_expr(x)?)),
                None => None,
            },
            ty: *ty,
        },
        SqlExpr::Func { func, args, ty } => PhysExpr::FuncCall {
            func: *func,
            args: args.iter().map(lower_expr).collect::<Result<_>>()?,
            ty: *ty,
        },
        SqlExpr::Like { input, pattern, negated } => PhysExpr::Like {
            input: Box::new(lower_expr(input)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        SqlExpr::Ext { func, .. } => {
            return Err(VwError::Plan(format!(
                "extended function {} survived the rewriter",
                func.name()
            )))
        }
        SqlExpr::InList { .. } => {
            return Err(VwError::Plan("IN-list survived the rewriter".into()))
        }
    })
}

/// Build the executable operator tree for `plan`.
///
/// `txn` supplies private PDT images for tables touched by an open
/// transaction; `partition` restricts scans to one of N fragments (set by
/// the Exchange lowering).
pub fn build_plan(
    db: &Arc<Database>,
    plan: &LogicalPlan,
    config: &EngineConfig,
    cancel: &CancelToken,
    txn: Option<&OpenTxn>,
    partition: Option<(usize, usize)>,
) -> Result<BoxedOp> {
    build_plan_inner(db, plan, config, cancel, txn, partition, partition.is_some())
}

/// `in_exchange` tracks whether this subtree runs inside an Exchange
/// worker — distinct from `partition`, which is cleared for join build
/// sides (they must see the whole input) while the subtree is still one
/// of `dop` concurrent copies. Operator-level parallel builds gate on it:
/// inside an exchange they would oversubscribe (dop × P threads).
#[allow(clippy::too_many_arguments)]
fn build_plan_inner(
    db: &Arc<Database>,
    plan: &LogicalPlan,
    config: &EngineConfig,
    cancel: &CancelToken,
    txn: Option<&OpenTxn>,
    partition: Option<(usize, usize)>,
    in_exchange: bool,
) -> Result<BoxedOp> {
    let ctx = ExprCtx { check: config.check_mode, null_mode: config.null_mode };
    let vs = config.vector_size;
    Ok(match plan {
        LogicalPlan::Scan { table, projection, schema, hints } => {
            let cat = db.catalog.read();
            let entry = cat
                .get(table)
                .ok_or_else(|| VwError::Catalog(format!("unknown table '{table}'")))?;
            match &entry.kind {
                TableKind::Vectorwise { storage, pdt } => {
                    let storage = storage.read();
                    // The visible image: open-transaction private image, or
                    // the committed snapshot.
                    let image_items = match txn.and_then(|t| t.image_of(table)) {
                        Some(root) => items(&root),
                        None => {
                            let (root, _, _) = pdt.snapshot();
                            items(&root)
                        }
                    };
                    // MinMax pruning only applies when the whole image is
                    // one untouched stable run (hints address stable packs).
                    let image_items = if !hints.is_empty()
                        && image_items.len() == 1
                        && matches!(image_items[0], vw_pdt::MergeItem::Stable { sid: 0, .. })
                    {
                        let mut ranges = storage.all_ranges();
                        for h in hints {
                            let keep = storage.prune(h.col, h.lo.as_ref(), h.hi.as_ref());
                            let keep_set: std::collections::HashSet<usize> =
                                keep.iter().map(|r| r.pack).collect();
                            ranges.retain(|r| keep_set.contains(&r.pack));
                        }
                        VectorScan::items_from_ranges(&ranges)
                    } else {
                        image_items
                    };
                    let image_items = match partition {
                        Some((i, n)) => partition_items(&image_items, i, n),
                        None => image_items,
                    };
                    // Snapshot the storage handle for the operator.
                    drop(storage);
                    let storage_arc = match &entry.kind {
                        TableKind::Vectorwise { storage, .. } => storage.clone(),
                        _ => unreachable!(),
                    };
                    // The scan holds a read-only clone of the storage. The
                    // stable files are immutable between checkpoints, so a
                    // cheap Arc over a cloned TableStorage view would be
                    // ideal; TableStorage is not Clone (block ids are), so
                    // we wrap the lock read in an adapter via Arc::new on a
                    // snapshot of pack metadata. For simplicity the scan
                    // takes an Arc built from the locked value's metadata.
                    let snapshot = Arc::new(storage_snapshot(&storage_arc.read()));
                    Box::new(VectorScan::new(
                        snapshot,
                        db.pool.clone(),
                        projection.clone(),
                        image_items,
                        vs,
                        cancel.clone(),
                    ))
                }
                TableKind::Heap { store } => {
                    // Classic-side table: materialize pages into rows (the
                    // adapter path; the dedicated Volcano engine is used for
                    // baseline benchmarks, not SQL execution).
                    let store = store.read();
                    let mut rows = Vec::with_capacity(store.n_rows() as usize);
                    for p in 0..store.n_pages() {
                        for row in store.read_page(&db.pool, p)? {
                            rows.push(
                                projection.iter().map(|&c| row[c].clone()).collect::<Vec<Value>>(),
                            );
                        }
                    }
                    let rows = match partition {
                        Some((i, n)) => rows
                            .into_iter()
                            .enumerate()
                            .filter(|(idx, _)| idx % n == i)
                            .map(|(_, r)| r)
                            .collect(),
                        None => rows,
                    };
                    Box::new(Values::new(schema.clone(), rows, vs, cancel.clone()))
                }
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let child = build_plan_inner(db, input, config, cancel, txn, partition, in_exchange)?;
            // Compile once per query: the operator only ever runs programs.
            let program = SelectProgram::compile(&lower_expr(predicate)?, &ctx);
            Box::new(Select::new(child, program, cancel.clone()))
        }
        LogicalPlan::Project { input, exprs, schema } => {
            let child = build_plan_inner(db, input, config, cancel, txn, partition, in_exchange)?;
            let programs = exprs
                .iter()
                .map(|e| Ok(ExprProgram::compile(&lower_expr(e)?, &ctx)))
                .collect::<Result<_>>()?;
            Box::new(Project::new(child, programs, schema.clone(), cancel.clone()))
        }
        LogicalPlan::Join { left, right, kind, keys, schema } => {
            // Build side must see the whole input even under partitioning;
            // only the probe side partitions.
            let l = build_plan_inner(db, left, config, cancel, txn, partition, in_exchange)?;
            let r = build_plan_inner(db, right, config, cancel, txn, None, in_exchange)?;
            let lk = keys
                .iter()
                .map(|(a, _)| Ok(ExprProgram::compile(&lower_expr(a)?, &ctx)))
                .collect::<Result<_>>()?;
            let rk = keys
                .iter()
                .map(|(_, b)| Ok(ExprProgram::compile(&lower_expr(b)?, &ctx)))
                .collect::<Result<_>>()?;
            let jt = match kind {
                JoinKind::Inner => JoinType::Inner,
                JoinKind::Left => JoinType::LeftOuter,
                JoinKind::Semi => JoinType::LeftSemi,
                JoinKind::Anti => JoinType::LeftAnti,
                JoinKind::NullAwareAnti => JoinType::NullAwareLeftAnti,
            };
            let mut join = HashJoin::new(l, r, lk, rk, jt, schema.clone(), cancel.clone());
            // Radix-partition the build across threads — but never inside an
            // Exchange worker (even on a build side whose scan `partition`
            // was cleared), where the plan-level DOP already owns the cores
            // (dop × P threads would oversubscribe).
            if config.parallelism > 1 && !in_exchange {
                join =
                    join.with_parallel_build(config.build_partitions(), config.partition_min_rows);
            }
            Box::new(join)
        }
        LogicalPlan::Aggregate { input, group, aggs, schema } => {
            let child = build_plan_inner(db, input, config, cancel, txn, partition, in_exchange)?;
            let g = group
                .iter()
                .map(|e| Ok(ExprProgram::compile(&lower_expr(e)?, &ctx)))
                .collect::<Result<_>>()?;
            let specs = aggs
                .iter()
                .map(|a| {
                    Ok(AggSpec {
                        func: a.func,
                        input: match &a.input {
                            Some(e) => Some(ExprProgram::compile(&lower_expr(e)?, &ctx)),
                            None => None,
                        },
                        out_ty: a.out_ty,
                    })
                })
                .collect::<Result<_>>()?;
            let mut agg = HashAggregate::new(child, g, specs, schema.clone(), vs, cancel.clone())?;
            if config.parallelism > 1 && !in_exchange {
                agg = agg.with_parallel_build(config.build_partitions(), config.partition_min_rows);
            }
            Box::new(agg)
        }
        LogicalPlan::Sort { input, keys } => {
            let child = build_plan_inner(db, input, config, cancel, txn, partition, in_exchange)?;
            // Sort directly under a Limit becomes TopN in `Limit` lowering;
            // standalone Sort materializes.
            let sort_keys: Vec<SortKey> = keys
                .iter()
                .map(|&(col, asc, nulls_first)| SortKey { col, asc, nulls_first })
                .collect();
            Box::new(Sort::new(child, sort_keys, vs, cancel.clone()))
        }
        LogicalPlan::Limit { input, offset, limit } => {
            // Fuse Sort+Limit into TopN when offset is zero.
            if let LogicalPlan::Sort { input: sort_input, keys } = input.as_ref() {
                if *offset == 0 && *limit != u64::MAX {
                    let child = build_plan_inner(
                        db,
                        sort_input,
                        config,
                        cancel,
                        txn,
                        partition,
                        in_exchange,
                    )?;
                    let sort_keys: Vec<SortKey> = keys
                        .iter()
                        .map(|&(col, asc, nulls_first)| SortKey { col, asc, nulls_first })
                        .collect();
                    return Ok(Box::new(TopN::new(
                        child,
                        sort_keys,
                        *limit as usize,
                        vs,
                        cancel.clone(),
                    )));
                }
            }
            let child = build_plan_inner(db, input, config, cancel, txn, partition, in_exchange)?;
            let lim = if *limit == u64::MAX { usize::MAX } else { *limit as usize };
            Box::new(Limit::new(child, *offset as usize, lim, cancel.clone()))
        }
        LogicalPlan::Values { schema, rows } => {
            Box::new(Values::new(schema.clone(), rows.clone(), vs, cancel.clone()))
        }
        LogicalPlan::Exchange { input, dop } => {
            if partition.is_some() {
                return Err(VwError::Plan("nested Exchange".into()));
            }
            let mut parts: Vec<BoxedOp> = Vec::with_capacity(*dop);
            for i in 0..*dop {
                parts.push(build_plan_inner(
                    db,
                    input,
                    config,
                    cancel,
                    txn,
                    Some((i, *dop)),
                    true,
                )?);
            }
            Box::new(Xchg::spawn(parts, cancel.clone()))
        }
    })
}

/// Snapshot a `TableStorage` into an owned value the scan can hold across
/// the lock (pack metadata is copied; block payloads stay on the shared
/// disk). Stable storage only changes at CHECKPOINT, which swaps the whole
/// object, so a metadata copy is a consistent snapshot.
fn storage_snapshot(src: &vw_storage::TableStorage) -> vw_storage::TableStorage {
    let mut snap =
        vw_storage::TableStorage::new(src.disk().clone(), src.schema().clone(), src.layout());
    snap.adopt_packs(src);
    snap
}

/// Build a UnionAll over per-partition plans (used by tests to validate
/// partition coverage without threads).
pub fn build_serial_union(
    db: &Arc<Database>,
    plan: &LogicalPlan,
    config: &EngineConfig,
    cancel: &CancelToken,
    dop: usize,
) -> Result<BoxedOp> {
    let mut parts = Vec::with_capacity(dop);
    for i in 0..dop {
        parts.push(build_plan(db, plan, config, cancel, None, Some((i, dop)))?);
    }
    Ok(Box::new(UnionAll::new(parts, cancel.clone())))
}
