//! The cross compiler — "a fully new component in the Ingres architecture":
//! lowers the rewritten algebra onto X100 kernel operators.
//!
//! Expressions lower 1:1 ([`SqlExpr`] → [`PhysExpr`]); any surviving
//! extended function or IN-list means the rewriter did not run — that is a
//! plan error, not a fallback. Plans lower onto `vw-exec` operators.
//!
//! [`LogicalPlan::Exchange`] runs the **pipeline factory**: the same plan
//! fragment is compiled once per worker, but every partitioned scan the
//! factory visits draws from **one shared
//! [`MorselSource`]** (created by the first
//! worker's build, reused by the rest — the visit order is identical since
//! all workers compile the same plan). Plan-time `dop` only sizes the
//! worker pool; *which rows a worker scans* is decided at run time, claim
//! by claim, so skewed fragments rebalance themselves. Each worker
//! pipeline also threads one [`BatchPool`]
//! through its operators, so steady-state operator outputs recycle instead
//! of allocating.

use crate::catalog::TableKind;
use crate::dml::OpenTxn;
use crate::Database;
use parking_lot::Mutex;
use std::sync::Arc;
use vw_common::{EngineConfig, Result, Value, VwError};
use vw_exec::expr::{ExprCtx, PhysExpr};
use vw_exec::morsel::{BatchPool, MorselSource};
use vw_exec::op::{
    AggSpec, BoxedOp, HashAggregate, HashJoin, JoinType, Limit, Project, Select, SetOp, SetOpMode,
    Sort, SortKey, TopN, UnionAll, Values, VectorScan, Xchg,
};
use vw_exec::partition::{MemBudget, SpillConfig};
use vw_exec::program::{ExprProgram, SelectProgram};
use vw_exec::CancelToken;
use vw_pdt::store::items;
use vw_sql::plan::{JoinKind, LogicalPlan, SetOpKind};
use vw_sql::SqlExpr;

/// Lower a bound+rewritten expression to a kernel expression.
pub fn lower_expr(e: &SqlExpr) -> Result<PhysExpr> {
    Ok(match e {
        SqlExpr::Col(i, ty) => PhysExpr::ColRef(*i, *ty),
        SqlExpr::Lit(v, ty) => PhysExpr::Const(v.clone(), *ty),
        SqlExpr::Arith { op, l, r, ty } => PhysExpr::Arith {
            op: *op,
            lhs: Box::new(lower_expr(l)?),
            rhs: Box::new(lower_expr(r)?),
            ty: *ty,
        },
        SqlExpr::Cmp { op, l, r } => {
            PhysExpr::Cmp { op: *op, lhs: Box::new(lower_expr(l)?), rhs: Box::new(lower_expr(r)?) }
        }
        SqlExpr::And(v) => PhysExpr::And(v.iter().map(lower_expr).collect::<Result<_>>()?),
        SqlExpr::Or(v) => PhysExpr::Or(v.iter().map(lower_expr).collect::<Result<_>>()?),
        SqlExpr::Not(x) => PhysExpr::Not(Box::new(lower_expr(x)?)),
        SqlExpr::Cast { input, to } => {
            PhysExpr::Cast { input: Box::new(lower_expr(input)?), to: *to }
        }
        SqlExpr::IsNull(x) => PhysExpr::IsNull(Box::new(lower_expr(x)?)),
        SqlExpr::IsNotNull(x) => PhysExpr::IsNotNull(Box::new(lower_expr(x)?)),
        SqlExpr::Case { branches, else_expr, ty } => PhysExpr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| Ok((lower_expr(c)?, lower_expr(v)?)))
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(x) => Some(Box::new(lower_expr(x)?)),
                None => None,
            },
            ty: *ty,
        },
        SqlExpr::Func { func, args, ty } => PhysExpr::FuncCall {
            func: *func,
            args: args.iter().map(lower_expr).collect::<Result<_>>()?,
            ty: *ty,
        },
        SqlExpr::Like { input, pattern, negated } => PhysExpr::Like {
            input: Box::new(lower_expr(input)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        SqlExpr::Ext { func, .. } => {
            return Err(VwError::Plan(format!(
                "extended function {} survived the rewriter",
                func.name()
            )))
        }
        SqlExpr::InList { .. } => {
            return Err(VwError::Plan("IN-list survived the rewriter".into()))
        }
    })
}

/// Shared state of one Exchange lowering: the morsel dispensers its
/// partitioned scans share, in scan-visit order. The first worker's build
/// creates each dispenser; the remaining workers attach to it (every
/// worker compiles the same plan, so the visit order is identical).
#[derive(Default)]
struct ExchangeSources {
    sources: Mutex<Vec<Arc<MorselSource>>>,
}

impl ExchangeSources {
    fn get_or_create(
        &self,
        idx: usize,
        make: impl FnOnce() -> Arc<MorselSource>,
    ) -> Arc<MorselSource> {
        let mut v = self.sources.lock();
        if idx < v.len() {
            v[idx].clone()
        } else {
            debug_assert_eq!(idx, v.len(), "scan visit order diverged across workers");
            let s = make();
            v.push(s.clone());
            s
        }
    }

    fn into_sources(self) -> Vec<Arc<MorselSource>> {
        self.sources.into_inner()
    }
}

/// One worker's view while the pipeline factory compiles its clone of an
/// Exchange fragment. Cleared (passed as `None`) for join build sides,
/// which must see the whole input on every worker.
struct Partition<'a> {
    worker: usize,
    dop: usize,
    shared: &'a ExchangeSources,
    /// Scan-visit sequence number within this worker's build.
    seq: usize,
}

/// The query-wide memory governor, created once per plan when
/// `EngineConfig::mem_budget_bytes` is non-zero. Every hash join build
/// side and every aggregation in the plan — Exchange worker clones
/// included — charges the same budget; whichever operator pushes the
/// total over the line spills its own largest shard (grace-style, see
/// `vw_exec::partition`). With no budget configured this is `None` and
/// the operators carry none of the spill machinery (the zero-spill path
/// is byte-for-byte the allocation-free kernel path).
struct QuerySpill {
    budget: Arc<MemBudget>,
    partitions: usize,
}

impl QuerySpill {
    /// A fresh per-operator spill config (own traffic counters, shared
    /// budget and device).
    fn config(&self, db: &Database) -> SpillConfig {
        SpillConfig::new(self.budget.clone(), db.disk.clone(), self.partitions)
    }
}

/// Build the executable operator tree for `plan`.
///
/// `txn` supplies private PDT images for tables touched by an open
/// transaction. [`LogicalPlan::Exchange`] nodes spawn their own worker
/// pipelines internally (see the module docs).
pub fn build_plan(
    db: &Arc<Database>,
    plan: &LogicalPlan,
    config: &EngineConfig,
    cancel: &CancelToken,
    txn: Option<&OpenTxn>,
) -> Result<BoxedOp> {
    let spill = (config.mem_budget_bytes > 0).then(|| QuerySpill {
        budget: MemBudget::new(config.mem_budget_bytes),
        // Grace fan-out: at least 8 partitions so eviction stays
        // fine-grained even at DOP 1 (recursion needs ≥ 2 to split).
        partitions: config.build_partitions().max(8),
    });
    build_plan_inner(db, plan, config, cancel, txn, None, false, &BatchPool::new(), spill.as_ref())
}

/// `in_exchange` tracks whether this subtree runs inside an Exchange
/// worker — distinct from `partition`, which is cleared for join build
/// sides (they must see the whole input) while the subtree is still one
/// of `dop` concurrent copies. Operator-level parallel builds gate on it:
/// inside an exchange they would oversubscribe (dop × P threads).
/// `batch_pool` is this worker pipeline's shared output-batch free-list.
/// `spill` is the query-wide memory governor (None = unlimited memory,
/// no spill machinery constructed).
#[allow(clippy::too_many_arguments)]
fn build_plan_inner(
    db: &Arc<Database>,
    plan: &LogicalPlan,
    config: &EngineConfig,
    cancel: &CancelToken,
    txn: Option<&OpenTxn>,
    partition: Option<&mut Partition<'_>>,
    in_exchange: bool,
    batch_pool: &BatchPool,
    spill: Option<&QuerySpill>,
) -> Result<BoxedOp> {
    let mut op =
        build_plan_node(db, plan, config, cancel, txn, partition, in_exchange, batch_pool, spill)?;
    // Stamp the cost model's row estimate onto the operator's profile so
    // EXPLAIN ANALYZE-style renderings can show estimated vs. actual
    // rows. Rule-only planning (SET optimizer = 0) leaves it unset.
    if config.optimizer {
        if let Some(prof) = op.profile_mut() {
            let cat = crate::CatalogSnapshot { db };
            let est = vw_sql::optimizer::Estimator::new(&cat);
            prof.est_rows = Some(est.rows(plan).round() as u64);
        }
    }
    Ok(op)
}

#[allow(clippy::too_many_arguments)]
fn build_plan_node(
    db: &Arc<Database>,
    plan: &LogicalPlan,
    config: &EngineConfig,
    cancel: &CancelToken,
    txn: Option<&OpenTxn>,
    partition: Option<&mut Partition<'_>>,
    in_exchange: bool,
    batch_pool: &BatchPool,
    spill: Option<&QuerySpill>,
) -> Result<BoxedOp> {
    let ctx = ExprCtx { check: config.check_mode, null_mode: config.null_mode };
    let vs = config.vector_size;
    Ok(match plan {
        LogicalPlan::Scan { table, projection, schema, hints } => {
            let cat = db.catalog.read();
            let entry = cat
                .get(table)
                .ok_or_else(|| VwError::Catalog(format!("unknown table '{table}'")))?;
            match &entry.kind {
                TableKind::Vectorwise { storage, pdt } => {
                    let storage = storage.read();
                    // The visible image: open-transaction private image, or
                    // the committed snapshot.
                    let image_items = match txn.and_then(|t| t.image_of(table)) {
                        Some(root) => items(&root),
                        None => {
                            let (root, _, _) = pdt.snapshot();
                            items(&root)
                        }
                    };
                    // MinMax pruning only applies when the whole image is
                    // one untouched stable run (hints address stable packs).
                    let image_items = if !hints.is_empty()
                        && image_items.len() == 1
                        && matches!(image_items[0], vw_pdt::MergeItem::Stable { sid: 0, .. })
                    {
                        let mut ranges = storage.all_ranges();
                        for h in hints {
                            let keep = storage.prune(h.col, h.lo.as_ref(), h.hi.as_ref());
                            let keep_set: std::collections::HashSet<usize> =
                                keep.iter().map(|r| r.pack).collect();
                            ranges.retain(|r| keep_set.contains(&r.pack));
                        }
                        VectorScan::items_from_ranges(&ranges)
                    } else {
                        image_items
                    };
                    // Run-time work claims instead of plan-time ranges: a
                    // partitioned scan attaches to the Exchange's shared
                    // dispenser (created on first visit); a serial scan
                    // owns a private single-consumer one. Either way the
                    // scan pulls `morsel_rows`-sized claims until dry.
                    let (source, consumer) = match partition {
                        Some(p) => {
                            let idx = p.seq;
                            p.seq += 1;
                            let dop = p.dop;
                            let src = p.shared.get_or_create(idx, || {
                                MorselSource::new(image_items, config.morsel_rows, dop)
                            });
                            (src, p.worker)
                        }
                        None => (MorselSource::new(image_items, config.morsel_rows, 1), 0),
                    };
                    // Snapshot the storage handle for the operator.
                    drop(storage);
                    let storage_arc = match &entry.kind {
                        TableKind::Vectorwise { storage, .. } => storage.clone(),
                        _ => unreachable!(),
                    };
                    // The scan holds a read-only clone of the storage. The
                    // stable files are immutable between checkpoints, so a
                    // cheap Arc over a cloned TableStorage view would be
                    // ideal; TableStorage is not Clone (block ids are), so
                    // we wrap the lock read in an adapter via Arc::new on a
                    // snapshot of pack metadata. For simplicity the scan
                    // takes an Arc built from the locked value's metadata.
                    let snapshot = Arc::new(storage_snapshot(&storage_arc.read()));
                    Box::new(
                        VectorScan::with_source(
                            snapshot,
                            db.pool.clone(),
                            projection.clone(),
                            source,
                            consumer,
                            vs,
                            cancel.clone(),
                        )
                        .with_batch_pool(batch_pool.clone())
                        .with_compressed_exec(config.compressed_exec),
                    )
                }
                TableKind::Heap { store } => {
                    // Classic-side table: materialize pages into rows (the
                    // adapter path; the dedicated Volcano engine is used for
                    // baseline benchmarks, not SQL execution).
                    let store = store.read();
                    let mut rows = Vec::with_capacity(store.n_rows() as usize);
                    for p in 0..store.n_pages() {
                        for row in store.read_page(&db.pool, p)? {
                            rows.push(
                                projection.iter().map(|&c| row[c].clone()).collect::<Vec<Value>>(),
                            );
                        }
                    }
                    let rows = match partition {
                        // Heap rows have no morsel dispenser; a static
                        // modulo split keeps the workers disjoint (heap
                        // tables are the legacy baseline path).
                        Some(p) => rows
                            .into_iter()
                            .enumerate()
                            .filter(|(idx, _)| idx % p.dop == p.worker)
                            .map(|(_, r)| r)
                            .collect(),
                        None => rows,
                    };
                    Box::new(Values::new(schema.clone(), rows, vs, cancel.clone()))
                }
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let child = build_plan_inner(
                db,
                input,
                config,
                cancel,
                txn,
                partition,
                in_exchange,
                batch_pool,
                spill,
            )?;
            // Compile once per query: the operator only ever runs programs.
            let program = SelectProgram::compile(&lower_expr(predicate)?, &ctx);
            Box::new(
                Select::new(child, program, cancel.clone()).with_batch_pool(batch_pool.clone()),
            )
        }
        LogicalPlan::Project { input, exprs, schema } => {
            let child = build_plan_inner(
                db,
                input,
                config,
                cancel,
                txn,
                partition,
                in_exchange,
                batch_pool,
                spill,
            )?;
            let programs = exprs
                .iter()
                .map(|e| Ok(ExprProgram::compile(&lower_expr(e)?, &ctx)))
                .collect::<Result<_>>()?;
            Box::new(
                Project::new(child, programs, schema.clone(), cancel.clone())
                    .with_batch_pool(batch_pool.clone()),
            )
        }
        LogicalPlan::Join { left, right, kind, keys, schema } => {
            // Build side must see the whole input even under partitioning;
            // only the probe side partitions.
            let l = build_plan_inner(
                db,
                left,
                config,
                cancel,
                txn,
                partition,
                in_exchange,
                batch_pool,
                spill,
            )?;
            let r = build_plan_inner(
                db,
                right,
                config,
                cancel,
                txn,
                None,
                in_exchange,
                batch_pool,
                spill,
            )?;
            let lk = keys
                .iter()
                .map(|(a, _)| Ok(ExprProgram::compile(&lower_expr(a)?, &ctx)))
                .collect::<Result<_>>()?;
            let rk = keys
                .iter()
                .map(|(_, b)| Ok(ExprProgram::compile(&lower_expr(b)?, &ctx)))
                .collect::<Result<_>>()?;
            let jt = match kind {
                JoinKind::Inner => JoinType::Inner,
                JoinKind::Left => JoinType::LeftOuter,
                JoinKind::Semi => JoinType::LeftSemi,
                JoinKind::Anti => JoinType::LeftAnti,
                JoinKind::NullAwareAnti => JoinType::NullAwareLeftAnti,
            };
            let mut join = HashJoin::new(l, r, lk, rk, jt, schema.clone(), cancel.clone());
            // Memory-governed builds run the grace-spilling partitioner
            // (serial in-operator; Xchg parallelism still applies above
            // it). Otherwise, radix-partition the build across threads —
            // but never inside an Exchange worker (even on a build side
            // whose scan `partition` was cleared), where the plan-level
            // DOP already owns the cores (dop × P threads would
            // oversubscribe).
            if let Some(qs) = spill {
                join = join.with_spill(qs.config(db));
            } else if config.parallelism > 1 && !in_exchange {
                join = join
                    .with_parallel_build(config.build_partitions(), config.partition_min_rows)
                    .with_task_pool(db.workers.clone());
            }
            Box::new(join.with_batch_pool(batch_pool.clone()))
        }
        LogicalPlan::Aggregate { input, group, aggs, schema } => {
            let child = build_plan_inner(
                db,
                input,
                config,
                cancel,
                txn,
                partition,
                in_exchange,
                batch_pool,
                spill,
            )?;
            let g = group
                .iter()
                .map(|e| Ok(ExprProgram::compile(&lower_expr(e)?, &ctx)))
                .collect::<Result<_>>()?;
            let specs = aggs
                .iter()
                .map(|a| {
                    Ok(AggSpec {
                        func: a.func,
                        input: match &a.input {
                            Some(e) => Some(ExprProgram::compile(&lower_expr(e)?, &ctx)),
                            None => None,
                        },
                        out_ty: a.out_ty,
                    })
                })
                .collect::<Result<_>>()?;
            let mut agg = HashAggregate::new(child, g, specs, schema.clone(), vs, cancel.clone())?;
            if let Some(qs) = spill {
                agg = agg.with_spill(qs.config(db));
            } else if config.parallelism > 1 && !in_exchange {
                agg = agg
                    .with_parallel_build(config.build_partitions(), config.partition_min_rows)
                    .with_task_pool(db.workers.clone());
            }
            Box::new(agg.with_batch_pool(batch_pool.clone()))
        }
        LogicalPlan::Sort { input, keys } => {
            let child = build_plan_inner(
                db,
                input,
                config,
                cancel,
                txn,
                partition,
                in_exchange,
                batch_pool,
                spill,
            )?;
            // Sort directly under a Limit becomes TopN in `Limit` lowering;
            // standalone Sort materializes.
            let sort_keys: Vec<SortKey> = keys
                .iter()
                .map(|&(col, asc, nulls_first)| SortKey { col, asc, nulls_first })
                .collect();
            Box::new(Sort::new(child, sort_keys, vs, cancel.clone()))
        }
        LogicalPlan::Limit { input, offset, limit } => {
            // Fuse Sort+Limit into TopN when offset is zero.
            if let LogicalPlan::Sort { input: sort_input, keys } = input.as_ref() {
                if *offset == 0 && *limit != u64::MAX {
                    let child = build_plan_inner(
                        db,
                        sort_input,
                        config,
                        cancel,
                        txn,
                        partition,
                        in_exchange,
                        batch_pool,
                        spill,
                    )?;
                    let sort_keys: Vec<SortKey> = keys
                        .iter()
                        .map(|&(col, asc, nulls_first)| SortKey { col, asc, nulls_first })
                        .collect();
                    return Ok(Box::new(TopN::new(
                        child,
                        sort_keys,
                        *limit as usize,
                        vs,
                        cancel.clone(),
                    )));
                }
            }
            let child = build_plan_inner(
                db,
                input,
                config,
                cancel,
                txn,
                partition,
                in_exchange,
                batch_pool,
                spill,
            )?;
            let lim = if *limit == u64::MAX { usize::MAX } else { *limit as usize };
            Box::new(Limit::new(child, *offset as usize, lim, cancel.clone()))
        }
        LogicalPlan::Values { schema, rows } => {
            Box::new(Values::new(schema.clone(), rows.clone(), vs, cancel.clone()))
        }
        LogicalPlan::SetOp { op, inputs, .. } => {
            // Inputs compile unpartitioned (like join build sides): the
            // dedup state is per-operator, so partitioned inputs would
            // let workers double-count rows.
            let mut compiled: Vec<BoxedOp> = Vec::with_capacity(inputs.len());
            for child in inputs {
                compiled.push(build_plan_inner(
                    db,
                    child,
                    config,
                    cancel,
                    txn,
                    None,
                    in_exchange,
                    batch_pool,
                    spill,
                )?);
            }
            match op {
                SetOpKind::UnionAll => Box::new(UnionAll::new(compiled, cancel.clone())),
                SetOpKind::Union => {
                    let input = if compiled.len() == 1 {
                        compiled.pop().unwrap()
                    } else {
                        Box::new(UnionAll::new(compiled, cancel.clone())) as BoxedOp
                    };
                    Box::new(SetOp::new(SetOpMode::Union, input, None, cancel.clone()))
                }
                SetOpKind::Intersect | SetOpKind::Except => {
                    if compiled.len() != 2 {
                        return Err(VwError::Plan(format!(
                            "{op:?} expects exactly 2 inputs, got {}",
                            compiled.len()
                        )));
                    }
                    let right = compiled.pop().unwrap();
                    let left = compiled.pop().unwrap();
                    let mode = if *op == SetOpKind::Intersect {
                        SetOpMode::Intersect
                    } else {
                        SetOpMode::Except
                    };
                    Box::new(SetOp::new(mode, left, Some(right), cancel.clone()))
                }
            }
        }
        LogicalPlan::Apply { kind, .. } => {
            return Err(VwError::Plan(format!(
                "Apply {kind:?} survived decorrelation (optimizer did not run?)"
            )))
        }
        LogicalPlan::Exchange { input, dop } => {
            if in_exchange {
                return Err(VwError::Plan("nested Exchange".into()));
            }
            // The pipeline factory: compile `dop` clones of the fragment.
            // Partitioned scans share dispensers through `shared`; each
            // worker gets a private batch free-list (batches cross the
            // exchange channel and never come back, so sharing one across
            // threads would only add contention).
            let shared = ExchangeSources::default();
            let mut parts: Vec<BoxedOp> = Vec::with_capacity(*dop);
            for worker in 0..*dop {
                let worker_pool = BatchPool::new();
                let mut part = Partition { worker, dop: *dop, shared: &shared, seq: 0 };
                parts.push(build_plan_inner(
                    db,
                    input,
                    config,
                    cancel,
                    txn,
                    Some(&mut part),
                    true,
                    &worker_pool,
                    spill,
                )?);
            }
            // Fragments run as cooperative tasks on the engine's shared
            // worker pool: plan-time `dop` sizes the fragment count, the
            // pool bounds actual threads, and interleaved scheduling keeps
            // concurrent queries from starving each other.
            Box::new(
                Xchg::spawn_on(&db.workers, parts, cancel.clone())
                    .with_sources(shared.into_sources()),
            )
        }
    })
}

/// Snapshot a `TableStorage` into an owned value the scan can hold across
/// the lock (pack metadata is copied; block payloads stay on the shared
/// disk). Stable storage only changes at CHECKPOINT, which swaps the whole
/// object, so a metadata copy is a consistent snapshot.
fn storage_snapshot(src: &vw_storage::TableStorage) -> vw_storage::TableStorage {
    let mut snap =
        vw_storage::TableStorage::new(src.disk().clone(), src.schema().clone(), src.layout());
    snap.adopt_packs(src);
    snap
}
