//! # vw-core — the integrated Vectorwise engine
//!
//! (The repo-root `ARCHITECTURE.md` is the cross-crate map — crates, the
//! life of a query, ownership rules, and the knob table.)
//!
//! This crate assembles Figure 1: SQL text flows through the parser and
//! binder (`vw-sql`), the Ingres-style optimizer, the Vectorwise rewriter
//! (`vw-rewriter`), the [cross compiler](compile) that lowers the rewritten
//! algebra onto X100 kernel operators (`vw-exec`), and executes against
//! compressed PAX/DSM storage (`vw-storage`) with PDT-based transactions
//! (`vw-pdt`). "Classic" heap tables (`vw-volcano` storage) coexist in the
//! same catalog, exactly as Ingres and X100 tables did.
//!
//! The public API is [`Database`] (one embedded engine instance) and
//! [`Session`] (connection-like state holding open transactions):
//!
//! ```
//! use vw_core::Database;
//!
//! let db = Database::open_in_memory();
//! db.execute("CREATE TABLE t (id BIGINT NOT NULL, name VARCHAR)").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
//! let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
//! assert_eq!(r.rows()[0][0], vw_common::Value::I64(2));
//! ```
//!
//! Production concerns the paper calls out are first-class:
//! [monitoring](monitor) (event log, query listing, resource gauges),
//! query cancellation (`KILL <id>`), error handling with vectorized lazy
//! checking, and background-free CHECKPOINT propagation of PDT deltas.

pub mod catalog;
pub mod compile;
pub mod dml;
pub mod monitor;

use catalog::{Catalog, TableEntry, TableKind};
use monitor::{EventLevel, Monitor};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;
use vw_common::{ColData, EngineConfig, Result, Schema, TypeId, Value, VwError};
use vw_exec::op::drain;
use vw_exec::CancelToken;
use vw_sql::ast::{InsertSource, Statement, TableType};
use vw_sql::binder::{Binder, CatalogView};
use vw_sql::optimizer;
use vw_sql::plan::LogicalPlan;
use vw_storage::{BufferPool, Layout, SimulatedDisk, TableStats, TableStorage};

/// The result of one statement.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output schema (empty for DDL/DML).
    pub schema: Schema,
    /// Output rows (materialized).
    rows: Vec<Vec<Value>>,
    /// Rows affected by DML.
    pub affected: u64,
    /// EXPLAIN / profile text, when requested.
    pub text: Option<String>,
}

impl QueryResult {
    fn empty() -> QueryResult {
        QueryResult { schema: Schema::default(), rows: Vec::new(), affected: 0, text: None }
    }

    /// The materialized rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// First value of the first row (single-value queries).
    pub fn scalar(&self) -> Result<&Value> {
        self.rows
            .first()
            .and_then(|r| r.first())
            .ok_or_else(|| VwError::Exec("query produced no rows".into()))
    }
}

/// One embedded engine instance.
pub struct Database {
    pub(crate) disk: Arc<SimulatedDisk>,
    pub(crate) pool: Arc<BufferPool>,
    /// The table namespace (read access for tools/benches).
    pub catalog: RwLock<Catalog>,
    pub(crate) config: RwLock<EngineConfig>,
    /// Serializes cross-table commit sequences (see DESIGN.md §6).
    pub(crate) commit_lock: Mutex<()>,
    /// Monitoring subsystem.
    pub monitor: Monitor,
}

impl Database {
    /// Open an engine over an instant (cost-free) simulated disk.
    pub fn open_in_memory() -> Arc<Database> {
        Database::open_with(EngineConfig::default(), SimulatedDisk::instant())
    }

    /// Open with explicit configuration and device. An active
    /// `config.faults` arms the device's fault injector (an inactive one
    /// constructs none of that machinery).
    pub fn open_with(config: EngineConfig, disk: Arc<SimulatedDisk>) -> Arc<Database> {
        if config.faults.is_active() {
            disk.arm_faults(config.faults.clone());
        }
        let pool = BufferPool::new(disk.clone(), config.buffer_pool_bytes);
        let monitor = Monitor::with_capacity(config.event_log_capacity);
        Arc::new(Database {
            disk,
            pool,
            catalog: RwLock::new(Catalog::default()),
            config: RwLock::new(config),
            commit_lock: Mutex::new(()),
            monitor,
        })
    }

    /// Current engine configuration (copy).
    pub fn config(&self) -> EngineConfig {
        self.config.read().clone()
    }

    /// The simulated device this engine stores blocks on (tests use it to
    /// assert spill files are reclaimed; tools read traffic counters).
    pub fn disk(&self) -> &Arc<SimulatedDisk> {
        &self.disk
    }

    /// Execute one or more `;`-separated statements in auto-commit mode,
    /// returning the last statement's result.
    pub fn execute(self: &Arc<Self>, sql: &str) -> Result<QueryResult> {
        let mut session = Session::new(self.clone());
        session.execute(sql)
    }

    /// Open a session (holds transaction state across statements).
    pub fn session(self: &Arc<Self>) -> Session {
        Session::new(self.clone())
    }

    /// Cancel a running query by id (the `KILL` statement calls this).
    pub fn kill(&self, query_id: u64) -> Result<()> {
        self.monitor.kill(query_id)
    }

    fn create_table(
        &self,
        name: &str,
        columns: &[(String, TypeId, bool)],
        table_type: TableType,
    ) -> Result<()> {
        let fields = columns
            .iter()
            .map(|(n, ty, nullable)| vw_common::Field {
                name: n.clone(),
                ty: *ty,
                nullable: *nullable,
            })
            .collect();
        let schema = Schema::new(fields)?;
        let mut cat = self.catalog.write();
        if cat.get(name).is_some() {
            return Err(VwError::Catalog(format!("table '{name}' already exists")));
        }
        let kind = match table_type {
            TableType::Vectorwise => TableKind::new_vectorwise(TableStorage::new(
                self.disk.clone(),
                schema.clone(),
                Layout::Dsm,
            )),
            TableType::Heap => {
                TableKind::new_heap(vw_volcano::RowStore::new(self.disk.clone(), schema.clone()))
            }
        };
        let types: Vec<TypeId> = schema.fields.iter().map(|f| f.ty).collect();
        cat.insert(TableEntry {
            name: name.to_string(),
            schema,
            kind,
            stats: Arc::new(RwLock::new(TableStats::empty(&types))),
        });
        self.monitor.log(EventLevel::Info, format!("created table {name} ({table_type:?})"));
        Ok(())
    }

    fn drop_table(&self, name: &str, if_exists: bool) -> Result<()> {
        let mut cat = self.catalog.write();
        match cat.remove(name) {
            Some(entry) => {
                match &entry.kind {
                    TableKind::Vectorwise { storage, .. } => {
                        storage.read().free_all(Some(&self.pool));
                    }
                    TableKind::Heap { store } => store.read().free_all(Some(&self.pool)),
                }
                self.monitor.log(EventLevel::Info, format!("dropped table {name}"));
                Ok(())
            }
            None if if_exists => Ok(()),
            None => Err(VwError::Catalog(format!("unknown table '{name}'"))),
        }
    }

    fn apply_set(&self, name: &str, value: &Value) -> Result<()> {
        let mut cfg = self.config.write();
        match name.to_ascii_lowercase().as_str() {
            "vector_size" => {
                let v = value.as_i64()?;
                if v < 1 {
                    return Err(VwError::InvalidParameter("vector_size must be >= 1".into()));
                }
                cfg.vector_size = v as usize;
            }
            "parallelism" | "dop" => {
                let v = value.as_i64()?;
                if v < 1 {
                    return Err(VwError::InvalidParameter("parallelism must be >= 1".into()));
                }
                cfg.parallelism = v as usize;
            }
            "partition_bits" => {
                let v = value.as_i64()?;
                if !(0..=10).contains(&v) {
                    return Err(VwError::InvalidParameter(
                        "partition_bits must be in 0..=10".into(),
                    ));
                }
                cfg.partition_bits = Some(v as u32);
            }
            "partition_min_rows" => {
                let v = value.as_i64()?;
                if v < 0 {
                    return Err(VwError::InvalidParameter(
                        "partition_min_rows must be >= 0".into(),
                    ));
                }
                cfg.partition_min_rows = v as usize;
            }
            "morsel_rows" => {
                let v = value.as_i64()?;
                if v < 1 {
                    return Err(VwError::InvalidParameter("morsel_rows must be >= 1".into()));
                }
                cfg.morsel_rows = v as usize;
            }
            "mem_budget" | "mem_budget_bytes" => {
                let v = value.as_i64()?;
                if v < 0 {
                    return Err(VwError::InvalidParameter(
                        "mem_budget must be >= 0 (0 = unlimited)".into(),
                    ));
                }
                cfg.mem_budget_bytes = v as usize;
            }
            "check_mode" => {
                cfg.check_mode = match value.as_str()?.to_ascii_lowercase().as_str() {
                    "unchecked" => vw_common::config::CheckMode::Unchecked,
                    "naive" => vw_common::config::CheckMode::Naive,
                    "lazy" => vw_common::config::CheckMode::Lazy,
                    other => {
                        return Err(VwError::InvalidParameter(format!(
                            "unknown check_mode '{other}'"
                        )))
                    }
                };
            }
            "null_mode" => {
                cfg.null_mode = match value.as_str()?.to_ascii_lowercase().as_str() {
                    "two_column" | "twocolumn" => vw_common::config::NullMode::TwoColumn,
                    "branchy" => vw_common::config::NullMode::Branchy,
                    other => {
                        return Err(VwError::InvalidParameter(format!(
                            "unknown null_mode '{other}'"
                        )))
                    }
                };
            }
            "profiling" => cfg.profiling = value.as_i64()? != 0,
            "statement_timeout" | "statement_timeout_ms" => {
                let v = value.as_i64()?;
                if v < 0 {
                    return Err(VwError::InvalidParameter(
                        "statement_timeout must be >= 0 (0 = disabled)".into(),
                    ));
                }
                cfg.statement_timeout_ms = v as u64;
            }
            "event_log_capacity" => {
                let v = value.as_i64()?;
                if v < 1 {
                    return Err(VwError::InvalidParameter(
                        "event_log_capacity must be >= 1".into(),
                    ));
                }
                cfg.event_log_capacity = v as usize;
                // Applies to the live monitor immediately (shrink drops
                // the oldest events).
                self.monitor.set_event_capacity(v as usize);
            }
            other => return Err(VwError::InvalidParameter(format!("unknown setting '{other}'"))),
        }
        Ok(())
    }
}

/// Connection-like state: an optional open multi-statement transaction.
pub struct Session {
    db: Arc<Database>,
    txn: Option<dml::OpenTxn>,
}

impl Session {
    fn new(db: Arc<Database>) -> Session {
        Session { db, txn: None }
    }

    /// The engine behind this session.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// True when a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Execute `;`-separated statements; returns the last result.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let stmts = vw_sql::parse(sql)?;
        if stmts.is_empty() {
            return Ok(QueryResult::empty());
        }
        let mut last = QueryResult::empty();
        for stmt in stmts {
            last = self.execute_statement(&stmt)?;
        }
        Ok(last)
    }

    fn execute_statement(&mut self, stmt: &Statement) -> Result<QueryResult> {
        match stmt {
            Statement::Select(s) => self.run_select(s, false),
            Statement::Explain(inner) => match inner.as_ref() {
                Statement::Select(s) => self.run_select(s, true),
                other => {
                    Ok(QueryResult { text: Some(format!("{other:?}")), ..QueryResult::empty() })
                }
            },
            Statement::CreateTable { name, columns, table_type } => {
                self.db.create_table(name, columns, *table_type)?;
                Ok(QueryResult::empty())
            }
            Statement::DropTable { name, if_exists } => {
                self.db.drop_table(name, *if_exists)?;
                Ok(QueryResult::empty())
            }
            Statement::Insert { table, columns, source } => {
                let rows = match source {
                    InsertSource::Values(rows) => dml::literal_rows(rows)?,
                    InsertSource::Query(q) => self.run_select(q, false)?.rows,
                };
                let n = dml::insert(self, table, columns.as_deref(), rows)?;
                Ok(QueryResult { affected: n, ..QueryResult::empty() })
            }
            Statement::Update { table, sets, filter } => {
                let n = dml::update(self, table, sets, filter.as_ref())?;
                Ok(QueryResult { affected: n, ..QueryResult::empty() })
            }
            Statement::Delete { table, filter } => {
                let n = dml::delete(self, table, filter.as_ref())?;
                Ok(QueryResult { affected: n, ..QueryResult::empty() })
            }
            Statement::Begin => {
                if self.txn.is_some() {
                    return Err(VwError::TxnState("transaction already open".into()));
                }
                self.txn = Some(dml::OpenTxn::default());
                Ok(QueryResult::empty())
            }
            Statement::Commit => {
                let txn = self
                    .txn
                    .take()
                    .ok_or_else(|| VwError::TxnState("no open transaction".into()))?;
                dml::commit(&self.db, txn)?;
                Ok(QueryResult::empty())
            }
            Statement::Rollback => {
                if self.txn.take().is_none() {
                    return Err(VwError::TxnState("no open transaction".into()));
                }
                Ok(QueryResult::empty())
            }
            Statement::Checkpoint { table } => {
                let n = dml::checkpoint(&self.db, table.as_deref())?;
                Ok(QueryResult { affected: n, ..QueryResult::empty() })
            }
            Statement::Kill { query_id } => {
                self.db.kill(*query_id)?;
                Ok(QueryResult::empty())
            }
            Statement::Set { name, value } => {
                self.db.apply_set(name, value)?;
                Ok(QueryResult::empty())
            }
        }
    }

    fn run_select(&mut self, stmt: &vw_sql::ast::SelectStmt, explain: bool) -> Result<QueryResult> {
        let db = self.db.clone();
        let cat_view = CatalogSnapshot { db: &db };
        let binder = Binder::new(&cat_view);
        let plan = binder.bind_select(stmt)?;
        let plan = optimizer::optimize(plan, &cat_view)?;
        let config = db.config();
        let rw_cfg = vw_rewriter::RewriterConfig {
            dop: config.parallelism,
            parallel_threshold_rows: 10_000.0,
        };
        let plan = vw_rewriter::rewrite_plan(plan, &rw_cfg);
        if explain {
            return Ok(QueryResult {
                schema: plan.schema().clone(),
                rows: Vec::new(),
                affected: 0,
                text: Some(plan.explain()),
            });
        }
        self.execute_plan(&plan, None)
    }

    /// Execute an already-rewritten plan. `sql_label` names the query in
    /// the monitoring registry.
    pub(crate) fn execute_plan(
        &mut self,
        plan: &LogicalPlan,
        sql_label: Option<&str>,
    ) -> Result<QueryResult> {
        let db = self.db.clone();
        let config = db.config();
        // A configured statement timeout puts a deadline on the token and
        // spawns a watchdog; without one neither exists.
        let timeout = (config.statement_timeout_ms > 0)
            .then(|| std::time::Duration::from_millis(config.statement_timeout_ms));
        let cancel = match timeout {
            Some(t) => CancelToken::with_deadline(std::time::Instant::now() + t),
            None => CancelToken::new(),
        };
        let qid =
            db.monitor.register_query_with(sql_label.unwrap_or("<query>"), cancel.clone(), timeout);
        let _watchdog = vw_exec::TimeoutGuard::spawn(&cancel);
        let result = (|| -> Result<QueryResult> {
            let mut op = compile::build_plan(&db, plan, &config, &cancel, self.txn.as_ref())?;
            let batch = drain(op.as_mut())?;
            let schema = op.schema().clone();
            let rows = (0..batch.rows()).map(|i| batch.row_values(i)).collect();
            Ok(QueryResult { schema, rows, affected: 0, text: None })
        })();
        // Drop the plan (and with it any worker threads / spill files)
        // before the registry update, then record the outcome: the
        // watchdog is joined by `_watchdog`'s drop at return.
        match &result {
            Ok(r) => db.monitor.finish_query(qid, r.rows.len() as u64),
            Err(e) => db.monitor.fail_query(qid, e),
        }
        result
    }
}

/// Catalog adapter implementing the planner's view.
struct CatalogSnapshot<'a> {
    db: &'a Arc<Database>,
}

impl CatalogView for CatalogSnapshot<'_> {
    fn table_schema(&self, name: &str) -> Option<Schema> {
        self.db.catalog.read().get(name).map(|t| t.schema.clone())
    }

    fn table_rows(&self, name: &str) -> Option<u64> {
        let cat = self.db.catalog.read();
        let t = cat.get(name)?;
        Some(match &t.kind {
            TableKind::Vectorwise { pdt, .. } => pdt.visible_rows(),
            TableKind::Heap { store } => store.read().n_rows(),
        })
    }
}

/// Bulk-load helper: append whole columns to a VECTORWISE table *without*
/// going through the PDT (initial loads; equivalent to COPY). Updates
/// statistics and resets the PDT to the new stable image.
pub fn bulk_load(
    db: &Arc<Database>,
    table: &str,
    columns: &[ColData],
    nulls: &[Option<Vec<bool>>],
) -> Result<u64> {
    let cat = db.catalog.read();
    let entry =
        cat.get(table).ok_or_else(|| VwError::Catalog(format!("unknown table '{table}'")))?;
    let TableKind::Vectorwise { storage, pdt } = &entry.kind else {
        return Err(VwError::Unsupported("bulk_load targets VECTORWISE tables".into()));
    };
    if pdt.stats().total() > 0 {
        return Err(VwError::TxnState(
            "bulk_load requires a delta-free table (run CHECKPOINT first)".into(),
        ));
    }
    let pack_size = db.config().pack_size;
    let mut st = storage.write();
    st.append_columns(columns, nulls, pack_size)?;
    let n = st.n_rows();
    pdt.reset_after_checkpoint(n);
    *entry.stats.write() = TableStats::build(columns, nulls, 32);
    db.monitor.log(EventLevel::Info, format!("bulk loaded {table}: {n} rows total"));
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_create_insert_select() {
        let db = Database::open_in_memory();
        db.execute("CREATE TABLE t (id BIGINT NOT NULL, name VARCHAR, qty INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'a', 10), (2, 'b', NULL), (3, 'a', 30)").unwrap();
        let r = db.execute("SELECT name, SUM(qty) FROM t GROUP BY name ORDER BY name").unwrap();
        assert_eq!(
            r.rows(),
            &[
                vec![Value::Str("a".into()), Value::I64(40)],
                vec![Value::Str("b".into()), Value::Null],
            ]
        );
    }

    #[test]
    fn heap_tables_work_too() {
        let db = Database::open_in_memory();
        db.execute("CREATE TABLE h (id BIGINT NOT NULL, v DOUBLE) WITH TYPE = HEAP").unwrap();
        db.execute("INSERT INTO h VALUES (1, 1.5), (2, 2.5)").unwrap();
        let r = db.execute("SELECT SUM(v) FROM h").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::F64(4.0));
    }

    #[test]
    fn errors_surface_cleanly() {
        let db = Database::open_in_memory();
        assert!(matches!(db.execute("SELECT * FROM missing"), Err(VwError::Catalog(_))));
        assert!(matches!(db.execute("SELEC 1"), Err(VwError::Parse(_))));
        db.execute("CREATE TABLE t (a BIGINT)").unwrap();
        db.execute("INSERT INTO t VALUES (9223372036854775807)").unwrap();
        let e = db.execute("SELECT a + 1 FROM t").unwrap_err();
        assert!(matches!(e, VwError::Overflow(_)));
        let e = db.execute("SELECT a / 0 FROM t").unwrap_err();
        assert!(matches!(e, VwError::DivideByZero));
    }

    #[test]
    fn set_knobs() {
        let db = Database::open_in_memory();
        db.execute("SET vector_size = 64").unwrap();
        assert_eq!(db.config().vector_size, 64);
        db.execute("SET check_mode = 'naive'").unwrap();
        db.execute("SET morsel_rows = 256").unwrap();
        assert_eq!(db.config().morsel_rows, 256);
        db.execute("SET mem_budget = 65536").unwrap();
        assert_eq!(db.config().mem_budget_bytes, 65536);
        db.execute("SET mem_budget = 0").unwrap();
        assert_eq!(db.config().mem_budget_bytes, 0, "0 = unlimited");
        assert!(db.execute("SET mem_budget = -1").is_err());
        assert!(db.execute("SET morsel_rows = 0").is_err());
        assert!(db.execute("SET vector_size = 0").is_err());
        assert!(db.execute("SET nonsense = 1").is_err());
        db.execute("SET statement_timeout = 500").unwrap();
        assert_eq!(db.config().statement_timeout_ms, 500);
        db.execute("SET statement_timeout = 0").unwrap();
        assert_eq!(db.config().statement_timeout_ms, 0, "0 = disabled");
        assert!(db.execute("SET statement_timeout = -1").is_err());
        db.execute("SET event_log_capacity = 16").unwrap();
        assert_eq!(db.config().event_log_capacity, 16);
        assert_eq!(db.monitor.event_capacity(), 16, "applies to the live monitor");
        assert!(db.execute("SET event_log_capacity = 0").is_err());
    }

    #[test]
    fn explain_shows_pipeline() {
        let db = Database::open_in_memory();
        db.execute("CREATE TABLE t (a BIGINT, b BIGINT)").unwrap();
        let r = db.execute("EXPLAIN SELECT SUM(a) FROM t WHERE b > 5").unwrap();
        let text = r.text.unwrap();
        assert!(text.contains("Aggr"));
        assert!(text.contains("Scan t"));
    }
}
