//! # vw-core — the integrated Vectorwise engine
//!
//! (The repo-root `ARCHITECTURE.md` is the cross-crate map — crates, the
//! life of a query, ownership rules, and the knob table.)
//!
//! This crate assembles Figure 1: SQL text flows through the parser and
//! binder (`vw-sql`), the Ingres-style optimizer, the Vectorwise rewriter
//! (`vw-rewriter`), the [cross compiler](compile) that lowers the rewritten
//! algebra onto X100 kernel operators (`vw-exec`), and executes against
//! compressed PAX/DSM storage (`vw-storage`) with PDT-based transactions
//! (`vw-pdt`). "Classic" heap tables (`vw-volcano` storage) coexist in the
//! same catalog, exactly as Ingres and X100 tables did.
//!
//! The public API is [`Database`] (one embedded engine instance) and
//! [`Session`] (connection-like state holding open transactions):
//!
//! ```
//! use vw_core::Database;
//!
//! let db = Database::open_in_memory();
//! db.execute("CREATE TABLE t (id BIGINT NOT NULL, name VARCHAR)").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
//! let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
//! assert_eq!(r.rows()[0][0], vw_common::Value::I64(2));
//! ```
//!
//! Production concerns the paper calls out are first-class:
//! [monitoring](monitor) (event log, query listing, resource gauges),
//! query cancellation (`KILL <id>`), error handling with vectorized lazy
//! checking, and background-free CHECKPOINT propagation of PDT deltas.

pub mod catalog;
pub mod compile;
pub mod dml;
pub mod monitor;

use catalog::{Catalog, TableEntry, TableKind};
use monitor::{EventLevel, Monitor};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use vw_common::{ColData, EngineConfig, Result, Schema, TypeId, Value, VwError};
use vw_exec::op::drain;
use vw_exec::CancelToken;
use vw_service::{AdmissionController, DeadlineQueue, WorkerPool};
use vw_sql::ast::{InsertSource, ShowKind, Statement, TableType};
use vw_sql::binder::{Binder, CatalogView};
use vw_sql::optimizer;
use vw_sql::plan::LogicalPlan;
use vw_storage::{BufferPool, Layout, SimulatedDisk, TableStats, TableStorage};

/// The result of one statement.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output schema (empty for DDL/DML).
    pub schema: Schema,
    /// Output rows (materialized).
    rows: Vec<Vec<Value>>,
    /// Rows affected by DML.
    pub affected: u64,
    /// EXPLAIN / profile text, when requested.
    pub text: Option<String>,
}

impl QueryResult {
    fn empty() -> QueryResult {
        QueryResult { schema: Schema::default(), rows: Vec::new(), affected: 0, text: None }
    }

    /// The materialized rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// First value of the first row (single-value queries).
    pub fn scalar(&self) -> Result<&Value> {
        self.rows
            .first()
            .and_then(|r| r.first())
            .ok_or_else(|| VwError::Exec("query produced no rows".into()))
    }
}

/// One embedded engine instance.
///
/// Concurrency model (PR 7): one fixed [`WorkerPool`] of
/// `EngineConfig::workers` threads serves *every* query's Exchange
/// fragments and parallel hash-build shards as cooperative tasks, so N
/// concurrent sessions cost O(workers) engine threads, not O(N × dop).
/// When `EngineConfig::global_mem_bytes` is set, an
/// [`AdmissionController`] partitions that global budget across admitted
/// queries (FIFO, bounded queue, typed `E_ADMISSION` rejection). A single
/// [`DeadlineQueue`] timer thread enforces every statement timeout.
pub struct Database {
    pub(crate) disk: Arc<SimulatedDisk>,
    pub(crate) pool: Arc<BufferPool>,
    /// The table namespace (read access for tools/benches).
    pub catalog: RwLock<Catalog>,
    /// Serializes cross-table commit sequences (see DESIGN.md §6).
    pub(crate) commit_lock: Mutex<()>,
    /// Monitoring subsystem.
    pub monitor: Monitor,
    /// The shared worker pool (fixed size for the engine's life).
    pub(crate) workers: Arc<WorkerPool>,
    /// Admission controller — `None` when no global memory limit is
    /// configured (the machinery is not constructed at all).
    pub(crate) admission: Option<Arc<AdmissionController>>,
    /// One timer thread for every statement deadline.
    pub(crate) timer: DeadlineQueue,
    /// The engine-owned session `Database::execute` routes through, so
    /// the Arc path and explicit [`Session`]s share one code path (SET
    /// state and monitor attribution cannot diverge).
    default_session: Mutex<SessionCore>,
    closed: AtomicBool,
}

impl Database {
    /// Open an engine over an instant (cost-free) simulated disk.
    pub fn open_in_memory() -> Arc<Database> {
        Database::open_with(EngineConfig::default(), SimulatedDisk::instant())
    }

    /// Open with explicit configuration and device. An active
    /// `config.faults` arms the device's fault injector (an inactive one
    /// constructs none of that machinery). `config.workers` (0 = core
    /// count) fixes the worker-pool size for the engine's life;
    /// `config.global_mem_bytes` > 0 constructs the admission controller.
    pub fn open_with(config: EngineConfig, disk: Arc<SimulatedDisk>) -> Arc<Database> {
        if config.faults.is_active() {
            disk.arm_faults(config.faults.clone());
        }
        let pool = BufferPool::new(disk.clone(), config.buffer_pool_bytes);
        let monitor = Monitor::with_capacity(config.event_log_capacity);
        let workers = WorkerPool::new(config.resolved_workers());
        let admission = (config.global_mem_bytes > 0).then(|| {
            AdmissionController::new(config.global_mem_bytes, config.admission_queue_depth)
        });
        let default_id = monitor.register_session();
        Arc::new(Database {
            disk,
            pool,
            catalog: RwLock::new(Catalog::default()),
            commit_lock: Mutex::new(()),
            monitor,
            workers,
            admission,
            timer: DeadlineQueue::new(),
            default_session: Mutex::new(SessionCore { id: default_id, cfg: config, txn: None }),
            closed: AtomicBool::new(false),
        })
    }

    /// Current engine configuration (a copy of the default session's —
    /// explicit [`Session`]s carry their own SET state).
    pub fn config(&self) -> EngineConfig {
        self.default_session.lock().cfg.clone()
    }

    /// The simulated device this engine stores blocks on (tests use it to
    /// assert spill files are reclaimed; tools read traffic counters).
    pub fn disk(&self) -> &Arc<SimulatedDisk> {
        &self.disk
    }

    /// The shared worker pool (size is fixed at open).
    pub fn worker_pool(&self) -> &Arc<WorkerPool> {
        &self.workers
    }

    /// The admission controller, when a global memory limit is configured.
    pub fn admission(&self) -> Option<&Arc<AdmissionController>> {
        self.admission.as_ref()
    }

    /// Execute one or more `;`-separated statements in auto-commit mode,
    /// returning the last statement's result. Routes through the engine's
    /// default session (one shared SET state), serialized per statement
    /// batch; open explicit [`Database::session`]s for concurrency.
    pub fn execute(self: &Arc<Self>, sql: &str) -> Result<QueryResult> {
        let stmts = vw_sql::parse(sql)?;
        if stmts.is_empty() {
            return Ok(QueryResult::empty());
        }
        let mut core = self.default_session.lock();
        let mut last = QueryResult::empty();
        for stmt in stmts {
            last = execute_statement(self, &mut core, &stmt, sql.trim())?;
        }
        Ok(last)
    }

    /// Open a session (holds transaction and SET state across
    /// statements; the SET state starts as a snapshot of the default
    /// session's).
    pub fn session(self: &Arc<Self>) -> Session {
        Session::new(self.clone())
    }

    /// Cancel a running (or admission-queued) query by id (the `KILL`
    /// statement calls this).
    pub fn kill(&self, query_id: u64) -> Result<()> {
        self.monitor.kill(query_id)
    }

    /// Shut the engine down: cancel every in-flight and queued query,
    /// fail admission waiters, then join the worker pool and the timer
    /// thread. Idempotent; [`Drop`] calls it, so dropping the last
    /// `Arc<Database>` never leaks pool threads even with queries
    /// mid-flight (their fragments observe the cancelled tokens, push
    /// their error, and drain).
    pub fn shutdown(&self) {
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        self.monitor.kill_all();
        if let Some(a) = &self.admission {
            a.close();
        }
        self.workers.shutdown();
        self.timer.shutdown();
    }

    fn create_table(
        &self,
        name: &str,
        columns: &[(String, TypeId, bool)],
        table_type: TableType,
    ) -> Result<()> {
        let fields = columns
            .iter()
            .map(|(n, ty, nullable)| vw_common::Field {
                name: n.clone(),
                ty: *ty,
                nullable: *nullable,
            })
            .collect();
        let schema = Schema::new(fields)?;
        let mut cat = self.catalog.write();
        if cat.get(name).is_some() {
            return Err(VwError::Catalog(format!("table '{name}' already exists")));
        }
        let kind = match table_type {
            TableType::Vectorwise => TableKind::new_vectorwise(TableStorage::new(
                self.disk.clone(),
                schema.clone(),
                Layout::Dsm,
            )),
            TableType::Heap => {
                TableKind::new_heap(vw_volcano::RowStore::new(self.disk.clone(), schema.clone()))
            }
        };
        let types: Vec<TypeId> = schema.fields.iter().map(|f| f.ty).collect();
        cat.insert(TableEntry {
            name: name.to_string(),
            schema,
            kind,
            stats: Arc::new(RwLock::new(TableStats::empty(&types))),
        });
        self.monitor.log(EventLevel::Info, format!("created table {name} ({table_type:?})"));
        Ok(())
    }

    fn drop_table(&self, name: &str, if_exists: bool) -> Result<()> {
        let mut cat = self.catalog.write();
        match cat.remove(name) {
            Some(entry) => {
                match &entry.kind {
                    TableKind::Vectorwise { storage, .. } => {
                        storage.read().free_all(Some(&self.pool));
                    }
                    TableKind::Heap { store } => store.read().free_all(Some(&self.pool)),
                }
                self.monitor.log(EventLevel::Info, format!("dropped table {name}"));
                Ok(())
            }
            None if if_exists => Ok(()),
            None => Err(VwError::Catalog(format!("unknown table '{name}'"))),
        }
    }

    /// Apply `SET <name> = <value>` to one session's config copy.
    /// Engine-wide knobs (`event_log_capacity`, `admission_queue_depth`)
    /// additionally poke the live subsystem; pool size and the global
    /// memory limit are fixed at open and reject the SET.
    fn apply_set(&self, cfg: &mut EngineConfig, name: &str, value: &Value) -> Result<()> {
        match name.to_ascii_lowercase().as_str() {
            "vector_size" => {
                let v = value.as_i64()?;
                if v < 1 {
                    return Err(VwError::InvalidParameter("vector_size must be >= 1".into()));
                }
                cfg.vector_size = v as usize;
            }
            "parallelism" | "dop" => {
                let v = value.as_i64()?;
                if v < 1 {
                    return Err(VwError::InvalidParameter("parallelism must be >= 1".into()));
                }
                cfg.parallelism = v as usize;
            }
            "partition_bits" => {
                let v = value.as_i64()?;
                if !(0..=10).contains(&v) {
                    return Err(VwError::InvalidParameter(
                        "partition_bits must be in 0..=10".into(),
                    ));
                }
                cfg.partition_bits = Some(v as u32);
            }
            "partition_min_rows" => {
                let v = value.as_i64()?;
                if v < 0 {
                    return Err(VwError::InvalidParameter(
                        "partition_min_rows must be >= 0".into(),
                    ));
                }
                cfg.partition_min_rows = v as usize;
            }
            "morsel_rows" => {
                let v = value.as_i64()?;
                if v < 1 {
                    return Err(VwError::InvalidParameter("morsel_rows must be >= 1".into()));
                }
                cfg.morsel_rows = v as usize;
            }
            "mem_budget" | "mem_budget_bytes" => {
                let v = value.as_i64()?;
                if v < 0 {
                    return Err(VwError::InvalidParameter(
                        "mem_budget must be >= 0 (0 = unlimited)".into(),
                    ));
                }
                cfg.mem_budget_bytes = v as usize;
            }
            "check_mode" => {
                cfg.check_mode = match value.as_str()?.to_ascii_lowercase().as_str() {
                    "unchecked" => vw_common::config::CheckMode::Unchecked,
                    "naive" => vw_common::config::CheckMode::Naive,
                    "lazy" => vw_common::config::CheckMode::Lazy,
                    other => {
                        return Err(VwError::InvalidParameter(format!(
                            "unknown check_mode '{other}'"
                        )))
                    }
                };
            }
            "null_mode" => {
                cfg.null_mode = match value.as_str()?.to_ascii_lowercase().as_str() {
                    "two_column" | "twocolumn" => vw_common::config::NullMode::TwoColumn,
                    "branchy" => vw_common::config::NullMode::Branchy,
                    other => {
                        return Err(VwError::InvalidParameter(format!(
                            "unknown null_mode '{other}'"
                        )))
                    }
                };
            }
            "profiling" => cfg.profiling = value.as_i64()? != 0,
            "optimizer" => cfg.optimizer = value.as_i64()? != 0,
            "compressed_exec" => cfg.compressed_exec = value.as_i64()? != 0,
            "statement_timeout" | "statement_timeout_ms" => {
                let v = value.as_i64()?;
                if v < 0 {
                    return Err(VwError::InvalidParameter(
                        "statement_timeout must be >= 0 (0 = disabled)".into(),
                    ));
                }
                cfg.statement_timeout_ms = v as u64;
            }
            "event_log_capacity" => {
                let v = value.as_i64()?;
                if v < 1 {
                    return Err(VwError::InvalidParameter(
                        "event_log_capacity must be >= 1".into(),
                    ));
                }
                cfg.event_log_capacity = v as usize;
                // Applies to the live monitor immediately (shrink drops
                // the oldest events).
                self.monitor.set_event_capacity(v as usize);
            }
            "admission_queue_depth" => {
                let v = value.as_i64()?;
                if v < 0 {
                    return Err(VwError::InvalidParameter(
                        "admission_queue_depth must be >= 0".into(),
                    ));
                }
                cfg.admission_queue_depth = v as usize;
                // The queue is engine-wide: the new bound applies to the
                // live controller immediately (waiters already queued stay).
                if let Some(a) = &self.admission {
                    a.set_queue_depth(v as usize);
                }
            }
            "workers" => {
                return Err(VwError::InvalidParameter(
                    "workers is fixed at engine open (VW_WORKERS / EngineConfig::workers)".into(),
                ))
            }
            "global_mem" | "global_mem_bytes" => {
                return Err(VwError::InvalidParameter(
                    "global_mem is fixed at engine open (VW_GLOBAL_MEM / \
                     EngineConfig::global_mem_bytes)"
                        .into(),
                ))
            }
            other => return Err(VwError::InvalidParameter(format!("unknown setting '{other}'"))),
        }
        Ok(())
    }
}

impl Drop for Database {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The state every session carries: its monitor registration, its own
/// SET-knob copy of the engine config, and an optional open transaction.
/// [`Database::execute`] drives the engine-owned default core;
/// [`Session`] wraps a private one — both run the same statement path.
pub(crate) struct SessionCore {
    pub(crate) id: u64,
    pub(crate) cfg: EngineConfig,
    pub(crate) txn: Option<dml::OpenTxn>,
}

/// Connection-like state: session-scoped SET knobs and an optional open
/// multi-statement transaction. Dropping the session removes it from the
/// monitor's `SHOW SESSIONS` registry.
pub struct Session {
    db: Arc<Database>,
    core: SessionCore,
}

impl Session {
    fn new(db: Arc<Database>) -> Session {
        let id = db.monitor.register_session();
        let cfg = db.config();
        Session { db, core: SessionCore { id, cfg, txn: None } }
    }

    /// The engine behind this session.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// This session's id in the monitor registry (`SHOW SESSIONS`).
    pub fn id(&self) -> u64 {
        self.core.id
    }

    /// True when a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.core.txn.is_some()
    }

    /// Execute `;`-separated statements; returns the last result.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let stmts = vw_sql::parse(sql)?;
        if stmts.is_empty() {
            return Ok(QueryResult::empty());
        }
        let mut last = QueryResult::empty();
        for stmt in stmts {
            last = execute_statement(&self.db, &mut self.core, &stmt, sql.trim())?;
        }
        Ok(last)
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.db.monitor.close_session(self.core.id);
    }
}

/// One statement, on behalf of one session core — the single execution
/// path shared by [`Database::execute`] and [`Session::execute`].
fn execute_statement(
    db: &Arc<Database>,
    core: &mut SessionCore,
    stmt: &Statement,
    sql: &str,
) -> Result<QueryResult> {
    match stmt {
        Statement::Select(s) => run_select(db, core, s, ExplainMode::Off, Some(sql)),
        Statement::Explain(inner) => match inner.as_ref() {
            Statement::Select(s) => run_select(db, core, s, ExplainMode::Plan, Some(sql)),
            other => Ok(QueryResult { text: Some(format!("{other:?}")), ..QueryResult::empty() }),
        },
        Statement::ExplainAnalyze(inner) => match inner.as_ref() {
            Statement::Select(s) => run_select(db, core, s, ExplainMode::Analyze, Some(sql)),
            _ => Err(VwError::Unsupported("EXPLAIN ANALYZE of a non-SELECT statement".into())),
        },
        Statement::CreateTable { name, columns, table_type } => {
            db.create_table(name, columns, *table_type)?;
            Ok(QueryResult::empty())
        }
        Statement::DropTable { name, if_exists } => {
            db.drop_table(name, *if_exists)?;
            Ok(QueryResult::empty())
        }
        Statement::Insert { table, columns, source } => {
            let rows = match source {
                InsertSource::Values(rows) => dml::literal_rows(rows)?,
                InsertSource::Query(q) => {
                    run_select(db, core, q, ExplainMode::Off, Some(sql))?.rows
                }
            };
            let n = dml::insert(db, core, table, columns.as_deref(), rows)?;
            Ok(QueryResult { affected: n, ..QueryResult::empty() })
        }
        Statement::Update { table, sets, filter } => {
            let n = dml::update(db, core, table, sets, filter.as_ref())?;
            Ok(QueryResult { affected: n, ..QueryResult::empty() })
        }
        Statement::Delete { table, filter } => {
            let n = dml::delete(db, core, table, filter.as_ref())?;
            Ok(QueryResult { affected: n, ..QueryResult::empty() })
        }
        Statement::Begin => {
            if core.txn.is_some() {
                return Err(VwError::TxnState("transaction already open".into()));
            }
            core.txn = Some(dml::OpenTxn::default());
            Ok(QueryResult::empty())
        }
        Statement::Commit => {
            let txn =
                core.txn.take().ok_or_else(|| VwError::TxnState("no open transaction".into()))?;
            dml::commit(db, txn)?;
            Ok(QueryResult::empty())
        }
        Statement::Rollback => {
            if core.txn.take().is_none() {
                return Err(VwError::TxnState("no open transaction".into()));
            }
            Ok(QueryResult::empty())
        }
        Statement::Checkpoint { table } => {
            let n = dml::checkpoint(db, &core.cfg, table.as_deref())?;
            Ok(QueryResult { affected: n, ..QueryResult::empty() })
        }
        Statement::Kill { query_id } => {
            db.kill(*query_id)?;
            Ok(QueryResult::empty())
        }
        Statement::Set { name, value } => {
            db.apply_set(&mut core.cfg, name, value)?;
            Ok(QueryResult::empty())
        }
        Statement::Show { what } => Ok(run_show(db, *what)),
    }
}

/// Render a `SHOW` monitoring view as an ordinary result set.
fn run_show(db: &Database, what: ShowKind) -> QueryResult {
    let field = |name: &str, ty| vw_common::Field { name: name.into(), ty, nullable: true };
    match what {
        ShowKind::Sessions => {
            let schema = Schema::new(vec![
                field("session", TypeId::I64),
                field("state", TypeId::Str),
                field("query", TypeId::I64),
                field("mem_grant", TypeId::I64),
            ])
            .expect("static schema");
            let rows = db
                .monitor
                .list_sessions()
                .into_iter()
                .map(|s| {
                    vec![
                        Value::I64(s.id as i64),
                        Value::Str(format!("{:?}", s.state)),
                        s.query.map_or(Value::Null, |q| Value::I64(q as i64)),
                        Value::I64(s.mem_grant as i64),
                    ]
                })
                .collect();
            QueryResult { schema, rows, affected: 0, text: None }
        }
        ShowKind::Queries => {
            let schema = Schema::new(vec![
                field("id", TypeId::I64),
                field("state", TypeId::Str),
                field("sql", TypeId::Str),
                field("elapsed_ms", TypeId::I64),
                field("rows", TypeId::I64),
                field("session", TypeId::I64),
            ])
            .expect("static schema");
            let rows = db
                .monitor
                .list_queries()
                .into_iter()
                .map(|q| {
                    vec![
                        Value::I64(q.id as i64),
                        Value::Str(format!("{:?}", q.state)),
                        Value::Str(q.sql),
                        Value::I64(q.elapsed.as_millis() as i64),
                        Value::I64(q.rows as i64),
                        if q.session == 0 { Value::Null } else { Value::I64(q.session as i64) },
                    ]
                })
                .collect();
            QueryResult { schema, rows, affected: 0, text: None }
        }
    }
}

/// How much of the plan / execution a SELECT should surface.
#[derive(Clone, Copy, PartialEq)]
enum ExplainMode {
    /// Plain execution: rows only.
    Off,
    /// `EXPLAIN`: plan text only, nothing runs.
    Plan,
    /// `EXPLAIN ANALYZE`: run it, return the rows plus the plan text with
    /// an `actual: N rows` footer.
    Analyze,
}

fn run_select(
    db: &Arc<Database>,
    core: &mut SessionCore,
    stmt: &vw_sql::ast::SelectStmt,
    explain: ExplainMode,
    sql_label: Option<&str>,
) -> Result<QueryResult> {
    let cat_view = CatalogSnapshot { db };
    let binder = Binder::new(&cat_view);
    let plan = binder.bind_select(stmt)?;
    let cost_based = core.cfg.optimizer;
    let plan = optimizer::optimize_with(plan, &cat_view, cost_based)?;
    let rw_cfg = vw_rewriter::RewriterConfig {
        dop: core.cfg.parallelism,
        parallel_threshold_rows: 10_000.0,
    };
    let plan = vw_rewriter::rewrite_plan(plan, &rw_cfg);
    if explain != ExplainMode::Off {
        // The cost-based pipeline annotates EXPLAIN with its estimates
        // (documented contract in sql::optimizer); the rule-only path
        // keeps the original unannotated rendering.
        let text = if cost_based {
            optimizer::explain_with_estimates(&plan, &cat_view)
        } else {
            plan.explain()
        };
        if explain == ExplainMode::Plan {
            return Ok(QueryResult {
                schema: plan.schema().clone(),
                rows: Vec::new(),
                affected: 0,
                text: Some(text),
            });
        }
        let mut result = execute_plan(db, core, &plan, sql_label)?;
        result.text = Some(format!("{text}actual: {} rows\n", result.rows.len()));
        return Ok(result);
    }
    execute_plan(db, core, &plan, sql_label)
}

/// Execute an already-rewritten plan. `sql_label` names the query in the
/// monitoring registry.
///
/// Life of a query (ARCHITECTURE.md): register (Queued when admission is
/// on, else Running) → deadline registered with the engine's timer →
/// admission grant (FIFO; the grant clamps this query's `mem_budget`) →
/// compile onto the shared worker pool → drain → finish/fail. The grant
/// and timer registration are RAII guards, so every exit — completion,
/// error, KILL, timeout, panic-as-error — releases its memory and
/// deadline.
pub(crate) fn execute_plan(
    db: &Arc<Database>,
    core: &mut SessionCore,
    plan: &LogicalPlan,
    sql_label: Option<&str>,
) -> Result<QueryResult> {
    let mut config = core.cfg.clone();
    // A configured statement timeout puts a deadline on the token,
    // enforced by the engine's single timer thread; without one neither
    // exists.
    let timeout = (config.statement_timeout_ms > 0)
        .then(|| std::time::Duration::from_millis(config.statement_timeout_ms));
    let cancel = match timeout {
        Some(t) => CancelToken::with_deadline(std::time::Instant::now() + t),
        None => CancelToken::new(),
    };
    let queued = db.admission.is_some();
    let qid = db.monitor.register_query_full(
        sql_label.unwrap_or("<query>"),
        cancel.clone(),
        timeout,
        core.id,
        queued,
    );
    let _deadline = db.timer.register(&cancel);
    // Admission: FIFO for a slice of the global memory budget. A session
    // with its own `mem_budget` requests exactly that; otherwise an even
    // split of the global limit across the pool. The grant becomes this
    // query's spill budget, so the sum of all admitted queries' staged
    // bytes stays under the global limit.
    let _grant = match &db.admission {
        Some(ctl) => {
            let request = if config.mem_budget_bytes > 0 {
                config.mem_budget_bytes as u64
            } else {
                (ctl.limit() / db.workers.workers() as u64).max(1)
            };
            match ctl.admit(request, &cancel) {
                Ok(g) => {
                    db.monitor.admit_query(qid, g.bytes());
                    config.mem_budget_bytes = g.bytes() as usize;
                    Some(g)
                }
                Err(e) => {
                    db.monitor.fail_query(qid, &e);
                    return Err(e);
                }
            }
        }
        None => None,
    };
    let result = (|| -> Result<QueryResult> {
        let mut op = compile::build_plan(db, plan, &config, &cancel, core.txn.as_ref())?;
        let batch = drain(op.as_mut())?;
        let schema = op.schema().clone();
        let rows = (0..batch.rows()).map(|i| batch.row_values(i)).collect();
        Ok(QueryResult { schema, rows, affected: 0, text: None })
    })();
    // Drop the plan (and with it any pool tasks / spill files) before the
    // registry update; the memory grant and the timer registration
    // release when `_grant` / `_deadline` drop at return.
    match &result {
        Ok(r) => db.monitor.finish_query(qid, r.rows.len() as u64),
        Err(e) => db.monitor.fail_query(qid, e),
    }
    result
}

/// Catalog adapter implementing the planner's view.
pub(crate) struct CatalogSnapshot<'a> {
    pub(crate) db: &'a Arc<Database>,
}

impl CatalogView for CatalogSnapshot<'_> {
    fn table_schema(&self, name: &str) -> Option<Schema> {
        self.db.catalog.read().get(name).map(|t| t.schema.clone())
    }

    fn table_rows(&self, name: &str) -> Option<u64> {
        let cat = self.db.catalog.read();
        let t = cat.get(name)?;
        Some(match &t.kind {
            TableKind::Vectorwise { pdt, .. } => pdt.visible_rows(),
            TableKind::Heap { store } => store.read().n_rows(),
        })
    }

    // Statistics come from the snapshot built at bulk load / CHECKPOINT.
    // A stale snapshot (DML since the build) answers `None` for everything
    // so the cost model falls back to structural defaults instead of
    // planning against dead distinct counts.

    fn column_distinct(&self, table: &str, col: usize) -> Option<u64> {
        let cat = self.db.catalog.read();
        let stats = cat.get(table)?.stats.clone();
        let stats = stats.read();
        if stats.stale {
            return None;
        }
        let c = stats.columns.get(col)?;
        (c.n_distinct > 0).then_some(c.n_distinct)
    }

    fn column_range_selectivity(
        &self,
        table: &str,
        col: usize,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Option<f64> {
        let cat = self.db.catalog.read();
        let stats = cat.get(table)?.stats.clone();
        let stats = stats.read();
        if stats.stale {
            return None;
        }
        let c = stats.columns.get(col)?;
        let h = c.histogram.as_ref()?;
        let lo = match lo {
            Some(v) => Some(vw_storage::stats::project(v)?),
            None => None,
        };
        let hi = match hi {
            Some(v) => Some(vw_storage::stats::project(v)?),
            None => None,
        };
        // `sel_lt` is strict; nudge the upper bound so `hi` stays
        // inclusive under interpolation (matches the hint semantics).
        Some(h.sel_range(lo, hi.map(|v| v + 1e-9)))
    }
}

/// Bulk-load helper: append whole columns to a VECTORWISE table *without*
/// going through the PDT (initial loads; equivalent to COPY). Updates
/// statistics and resets the PDT to the new stable image.
pub fn bulk_load(
    db: &Arc<Database>,
    table: &str,
    columns: &[ColData],
    nulls: &[Option<Vec<bool>>],
) -> Result<u64> {
    let cat = db.catalog.read();
    let entry =
        cat.get(table).ok_or_else(|| VwError::Catalog(format!("unknown table '{table}'")))?;
    let TableKind::Vectorwise { storage, pdt } = &entry.kind else {
        return Err(VwError::Unsupported("bulk_load targets VECTORWISE tables".into()));
    };
    if pdt.stats().total() > 0 {
        return Err(VwError::TxnState(
            "bulk_load requires a delta-free table (run CHECKPOINT first)".into(),
        ));
    }
    let pack_size = db.config().pack_size;
    let mut st = storage.write();
    st.append_columns(columns, nulls, pack_size)?;
    let n = st.n_rows();
    pdt.reset_after_checkpoint(n);
    *entry.stats.write() = TableStats::build(columns, nulls, 32);
    db.monitor.log(EventLevel::Info, format!("bulk loaded {table}: {n} rows total"));
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_create_insert_select() {
        let db = Database::open_in_memory();
        db.execute("CREATE TABLE t (id BIGINT NOT NULL, name VARCHAR, qty INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'a', 10), (2, 'b', NULL), (3, 'a', 30)").unwrap();
        let r = db.execute("SELECT name, SUM(qty) FROM t GROUP BY name ORDER BY name").unwrap();
        assert_eq!(
            r.rows(),
            &[
                vec![Value::Str("a".into()), Value::I64(40)],
                vec![Value::Str("b".into()), Value::Null],
            ]
        );
    }

    #[test]
    fn heap_tables_work_too() {
        let db = Database::open_in_memory();
        db.execute("CREATE TABLE h (id BIGINT NOT NULL, v DOUBLE) WITH TYPE = HEAP").unwrap();
        db.execute("INSERT INTO h VALUES (1, 1.5), (2, 2.5)").unwrap();
        let r = db.execute("SELECT SUM(v) FROM h").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::F64(4.0));
    }

    #[test]
    fn errors_surface_cleanly() {
        let db = Database::open_in_memory();
        assert!(matches!(db.execute("SELECT * FROM missing"), Err(VwError::Catalog(_))));
        assert!(matches!(db.execute("SELEC 1"), Err(VwError::Parse(_))));
        db.execute("CREATE TABLE t (a BIGINT)").unwrap();
        db.execute("INSERT INTO t VALUES (9223372036854775807)").unwrap();
        let e = db.execute("SELECT a + 1 FROM t").unwrap_err();
        assert!(matches!(e, VwError::Overflow(_)));
        let e = db.execute("SELECT a / 0 FROM t").unwrap_err();
        assert!(matches!(e, VwError::DivideByZero));
    }

    #[test]
    fn set_knobs() {
        let db = Database::open_in_memory();
        db.execute("SET vector_size = 64").unwrap();
        assert_eq!(db.config().vector_size, 64);
        db.execute("SET check_mode = 'naive'").unwrap();
        db.execute("SET morsel_rows = 256").unwrap();
        assert_eq!(db.config().morsel_rows, 256);
        db.execute("SET mem_budget = 65536").unwrap();
        assert_eq!(db.config().mem_budget_bytes, 65536);
        db.execute("SET mem_budget = 0").unwrap();
        assert_eq!(db.config().mem_budget_bytes, 0, "0 = unlimited");
        assert!(db.execute("SET mem_budget = -1").is_err());
        assert!(db.execute("SET morsel_rows = 0").is_err());
        assert!(db.execute("SET vector_size = 0").is_err());
        assert!(db.execute("SET nonsense = 1").is_err());
        db.execute("SET statement_timeout = 500").unwrap();
        assert_eq!(db.config().statement_timeout_ms, 500);
        db.execute("SET statement_timeout = 0").unwrap();
        assert_eq!(db.config().statement_timeout_ms, 0, "0 = disabled");
        assert!(db.execute("SET statement_timeout = -1").is_err());
        db.execute("SET event_log_capacity = 16").unwrap();
        assert_eq!(db.config().event_log_capacity, 16);
        assert_eq!(db.monitor.event_capacity(), 16, "applies to the live monitor");
        assert!(db.execute("SET event_log_capacity = 0").is_err());
        db.execute("SET compressed_exec = 0").unwrap();
        assert!(!db.config().compressed_exec);
        db.execute("SET compressed_exec = 1").unwrap();
        assert!(db.config().compressed_exec);
    }

    #[test]
    fn explain_shows_pipeline() {
        let db = Database::open_in_memory();
        db.execute("CREATE TABLE t (a BIGINT, b BIGINT)").unwrap();
        let r = db.execute("EXPLAIN SELECT SUM(a) FROM t WHERE b > 5").unwrap();
        let text = r.text.unwrap();
        assert!(text.contains("Aggr"));
        assert!(text.contains("Scan t"));
    }
}
