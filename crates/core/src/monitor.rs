//! System monitoring — the paper's "mundane" but mandatory work: event logging, query
//! listing, load/resource monitoring, and the kill switch behind query
//! cancellation.
//!
//! The event log is a bounded ring (capacity from
//! `EngineConfig::event_log_capacity`, adjustable at runtime via
//! `SET event_log_capacity`), so a long-lived session cannot grow it
//! without limit. `KILL` semantics and timeout states follow the failure
//! model in the repo-root ARCHITECTURE.md.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use vw_common::{Result, VwError};
use vw_exec::CancelToken;

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventLevel {
    /// Informational.
    Info,
    /// Something recoverable went wrong.
    Warn,
    /// A statement failed.
    Error,
}

/// One log event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Severity.
    pub level: EventLevel,
    /// Milliseconds since the monitor started.
    pub at_ms: u64,
    /// Message.
    pub message: String,
}

/// Lifecycle state of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryState {
    /// Executing.
    Running,
    /// Finished successfully.
    Finished,
    /// Failed (message attached).
    Failed(String),
    /// Killed by `KILL`.
    Cancelled,
    /// Cancelled by its statement timeout.
    TimedOut,
}

/// Registry entry for one query.
#[derive(Debug, Clone)]
pub struct QueryInfo {
    /// Query id (KILL target).
    pub id: u64,
    /// Statement text (label).
    pub sql: String,
    /// Current state.
    pub state: QueryState,
    /// Wall-clock runtime so far / total.
    pub elapsed: Duration,
    /// Rows produced (when finished).
    pub rows: u64,
    /// Statement timeout this query runs under, if any.
    pub timeout: Option<Duration>,
}

struct QuerySlot {
    info: QueryInfo,
    cancel: CancelToken,
    started: Instant,
}

/// Default ring-buffer capacity of the event log
/// (`EngineConfig::event_log_capacity` overrides it).
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// The monitoring subsystem: event log + query registry.
pub struct Monitor {
    epoch: Instant,
    events: Mutex<std::collections::VecDeque<Event>>,
    /// Ring bound; runtime-adjustable (`SET event_log_capacity`).
    event_capacity: AtomicUsize,
    queries: Mutex<HashMap<u64, QuerySlot>>,
    next_id: AtomicU64,
    total_queries: AtomicU64,
    total_failed: AtomicU64,
}

impl Default for Monitor {
    fn default() -> Self {
        Monitor::new()
    }
}

impl Monitor {
    /// Fresh monitor with the default event-log bound.
    pub fn new() -> Monitor {
        Monitor::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// Fresh monitor whose event log holds at most `event_capacity`
    /// entries (clamped to >= 1).
    pub fn with_capacity(event_capacity: usize) -> Monitor {
        let cap = event_capacity.max(1);
        Monitor {
            epoch: Instant::now(),
            events: Mutex::new(std::collections::VecDeque::with_capacity(cap.min(1024))),
            event_capacity: AtomicUsize::new(cap),
            queries: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            total_queries: AtomicU64::new(0),
            total_failed: AtomicU64::new(0),
        }
    }

    /// Change the event-log bound at runtime (`SET event_log_capacity`);
    /// shrinking drops the oldest events immediately.
    pub fn set_event_capacity(&self, capacity: usize) {
        let cap = capacity.max(1);
        self.event_capacity.store(cap, Ordering::Relaxed);
        let mut ev = self.events.lock();
        while ev.len() > cap {
            ev.pop_front();
        }
    }

    /// The current event-log bound.
    pub fn event_capacity(&self) -> usize {
        self.event_capacity.load(Ordering::Relaxed)
    }

    /// Append an event (ring semantics: oldest dropped at capacity).
    pub fn log(&self, level: EventLevel, message: String) {
        let cap = self.event_capacity.load(Ordering::Relaxed);
        let mut ev = self.events.lock();
        while ev.len() >= cap {
            ev.pop_front();
        }
        ev.push_back(Event { level, at_ms: self.epoch.elapsed().as_millis() as u64, message });
    }

    /// Snapshot of recent events.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().iter().cloned().collect()
    }

    /// Register a running query; returns its id.
    pub fn register_query(&self, sql: &str, cancel: CancelToken) -> u64 {
        self.register_query_with(sql, cancel, None)
    }

    /// Register a running query that executes under `timeout` (visible in
    /// the registry); returns its id.
    pub fn register_query_with(
        &self,
        sql: &str,
        cancel: CancelToken,
        timeout: Option<Duration>,
    ) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.total_queries.fetch_add(1, Ordering::Relaxed);
        self.queries.lock().insert(
            id,
            QuerySlot {
                info: QueryInfo {
                    id,
                    sql: sql.to_string(),
                    state: QueryState::Running,
                    elapsed: Duration::ZERO,
                    rows: 0,
                    timeout,
                },
                cancel,
                started: Instant::now(),
            },
        );
        id
    }

    /// Mark a query finished.
    pub fn finish_query(&self, id: u64, rows: u64) {
        if let Some(slot) = self.queries.lock().get_mut(&id) {
            if slot.info.state == QueryState::Running {
                slot.info.state = QueryState::Finished;
            }
            slot.info.rows = rows;
            slot.info.elapsed = slot.started.elapsed();
        }
    }

    /// Mark a query failed. A `Cancelled` error maps to `Cancelled` or
    /// `TimedOut` depending on whether the query's token was tripped by
    /// its statement deadline.
    pub fn fail_query(&self, id: u64, err: &VwError) {
        self.total_failed.fetch_add(1, Ordering::Relaxed);
        let mut timed_out = false;
        let mut q = self.queries.lock();
        if let Some(slot) = q.get_mut(&id) {
            slot.info.state = if matches!(err, VwError::Cancelled) {
                if slot.cancel.timed_out() {
                    timed_out = true;
                    QueryState::TimedOut
                } else {
                    QueryState::Cancelled
                }
            } else {
                QueryState::Failed(err.code().to_string())
            };
            slot.info.elapsed = slot.started.elapsed();
        }
        drop(q);
        if timed_out {
            self.log(EventLevel::Error, format!("query {id} failed: statement timeout ({err})"));
        } else {
            self.log(EventLevel::Error, format!("query {id} failed: {err}"));
        }
    }

    /// Cancel a running query. `KILL` of an unknown id or of a query that
    /// already reached a terminal state is a clean `Exec` error — the
    /// race between a KILL landing and the query finishing must surface
    /// as a typed error, never a silent no-op (ISSUE 6 satellite).
    pub fn kill(&self, id: u64) -> Result<()> {
        let q = self.queries.lock();
        let slot =
            q.get(&id).ok_or_else(|| VwError::Exec(format!("KILL: no query with id {id}")))?;
        if slot.info.state != QueryState::Running {
            return Err(VwError::Exec(format!(
                "KILL: query {id} is not running (state {:?})",
                slot.info.state
            )));
        }
        slot.cancel.cancel();
        Ok(())
    }

    /// List queries (most recent first), the `SHOW QUERIES` equivalent.
    pub fn list_queries(&self) -> Vec<QueryInfo> {
        let q = self.queries.lock();
        let mut out: Vec<QueryInfo> = q
            .values()
            .map(|s| {
                let mut info = s.info.clone();
                if info.state == QueryState::Running {
                    info.elapsed = s.started.elapsed();
                }
                info
            })
            .collect();
        out.sort_by_key(|i| std::cmp::Reverse(i.id));
        out
    }

    /// (total queries, failed queries) counters.
    pub fn totals(&self) -> (u64, u64) {
        (self.total_queries.load(Ordering::Relaxed), self.total_failed.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_log_rings() {
        let m = Monitor::new();
        for i in 0..(DEFAULT_EVENT_CAPACITY + 10) {
            m.log(EventLevel::Info, format!("e{i}"));
        }
        let ev = m.events();
        assert_eq!(ev.len(), DEFAULT_EVENT_CAPACITY);
        assert_eq!(ev[0].message, "e10");
    }

    #[test]
    fn event_log_capacity_is_configurable_and_shrinkable() {
        let m = Monitor::with_capacity(8);
        assert_eq!(m.event_capacity(), 8);
        for i in 0..100 {
            m.log(EventLevel::Info, format!("e{i}"));
        }
        let ev = m.events();
        assert_eq!(ev.len(), 8, "configured bound held");
        assert_eq!(ev[0].message, "e92");
        // Shrinking drops the oldest immediately.
        m.set_event_capacity(3);
        assert_eq!(m.events().len(), 3);
        assert_eq!(m.events()[0].message, "e97");
        // Growing allows the ring to fill further.
        m.set_event_capacity(5);
        m.log(EventLevel::Info, "x1".into());
        m.log(EventLevel::Info, "x2".into());
        assert_eq!(m.events().len(), 5);
        // Zero clamps to one (a disabled log would lose failure events).
        m.set_event_capacity(0);
        assert_eq!(m.event_capacity(), 1);
        m.log(EventLevel::Info, "y".into());
        assert_eq!(m.events().len(), 1);
    }

    #[test]
    fn query_lifecycle() {
        let m = Monitor::new();
        let t = CancelToken::new();
        let id = m.register_query("SELECT 1", t.clone());
        assert_eq!(m.list_queries()[0].state, QueryState::Running);
        assert_eq!(m.list_queries()[0].timeout, None);
        m.finish_query(id, 42);
        let info = &m.list_queries()[0];
        assert_eq!(info.state, QueryState::Finished);
        assert_eq!(info.rows, 42);
        assert_eq!(m.totals(), (1, 0));
    }

    #[test]
    fn kill_sets_token() {
        let m = Monitor::new();
        let t = CancelToken::new();
        let id = m.register_query("SELECT long", t.clone());
        m.kill(id).unwrap();
        assert!(t.is_cancelled());
        m.fail_query(id, &VwError::Cancelled);
        assert_eq!(m.list_queries()[0].state, QueryState::Cancelled);
        assert!(m.kill(999).is_err());
    }

    #[test]
    fn kill_of_finished_or_unknown_query_is_a_clean_exec_error() {
        let m = Monitor::new();
        let t = CancelToken::new();
        let id = m.register_query("SELECT 1", t.clone());
        m.finish_query(id, 1);
        // KILL raced with completion: typed error, state untouched, token
        // never tripped.
        let err = m.kill(id).unwrap_err();
        assert!(matches!(err, VwError::Exec(_)), "finished: {err}");
        assert_eq!(m.list_queries()[0].state, QueryState::Finished);
        assert!(!t.is_cancelled());
        let err = m.kill(424242).unwrap_err();
        assert!(matches!(err, VwError::Exec(_)), "unknown: {err}");
    }

    #[test]
    fn timeout_cancellation_maps_to_timed_out_state() {
        use std::time::Instant;
        let m = Monitor::new();
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_millis(5));
        let guard = vw_exec::TimeoutGuard::spawn(&t).unwrap();
        let id = m.register_query_with("SELECT slow", t.clone(), Some(Duration::from_millis(5)));
        assert_eq!(m.list_queries()[0].timeout, Some(Duration::from_millis(5)));
        while !t.is_cancelled() {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(guard);
        m.fail_query(id, &VwError::Cancelled);
        assert_eq!(m.list_queries()[0].state, QueryState::TimedOut);
        assert!(m.events().iter().any(|e| e.message.contains("statement timeout")));
    }

    #[test]
    fn failures_logged() {
        let m = Monitor::new();
        let id = m.register_query("SELECT 1/0", CancelToken::new());
        m.fail_query(id, &VwError::DivideByZero);
        assert!(m.events().iter().any(|e| e.message.contains("E_DIV_ZERO")));
        assert_eq!(m.totals().1, 1);
    }
}
