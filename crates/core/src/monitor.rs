//! System monitoring — the paper's "mundane" but mandatory work: event logging, query
//! listing, load/resource monitoring, and the kill switch behind query
//! cancellation.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use vw_common::{Result, VwError};
use vw_exec::CancelToken;

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventLevel {
    /// Informational.
    Info,
    /// Something recoverable went wrong.
    Warn,
    /// A statement failed.
    Error,
}

/// One log event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Severity.
    pub level: EventLevel,
    /// Milliseconds since the monitor started.
    pub at_ms: u64,
    /// Message.
    pub message: String,
}

/// Lifecycle state of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryState {
    /// Executing.
    Running,
    /// Finished successfully.
    Finished,
    /// Failed (message attached).
    Failed(String),
    /// Killed by `KILL`.
    Cancelled,
}

/// Registry entry for one query.
#[derive(Debug, Clone)]
pub struct QueryInfo {
    /// Query id (KILL target).
    pub id: u64,
    /// Statement text (label).
    pub sql: String,
    /// Current state.
    pub state: QueryState,
    /// Wall-clock runtime so far / total.
    pub elapsed: Duration,
    /// Rows produced (when finished).
    pub rows: u64,
}

struct QuerySlot {
    info: QueryInfo,
    cancel: CancelToken,
    started: Instant,
}

/// Ring-buffer capacity of the event log.
const EVENT_CAPACITY: usize = 1024;

/// The monitoring subsystem: event log + query registry.
pub struct Monitor {
    epoch: Instant,
    events: Mutex<std::collections::VecDeque<Event>>,
    queries: Mutex<HashMap<u64, QuerySlot>>,
    next_id: AtomicU64,
    total_queries: AtomicU64,
    total_failed: AtomicU64,
}

impl Default for Monitor {
    fn default() -> Self {
        Monitor::new()
    }
}

impl Monitor {
    /// Fresh monitor.
    pub fn new() -> Monitor {
        Monitor {
            epoch: Instant::now(),
            events: Mutex::new(std::collections::VecDeque::with_capacity(EVENT_CAPACITY)),
            queries: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            total_queries: AtomicU64::new(0),
            total_failed: AtomicU64::new(0),
        }
    }

    /// Append an event (ring semantics: oldest dropped at capacity).
    pub fn log(&self, level: EventLevel, message: String) {
        let mut ev = self.events.lock();
        if ev.len() == EVENT_CAPACITY {
            ev.pop_front();
        }
        ev.push_back(Event { level, at_ms: self.epoch.elapsed().as_millis() as u64, message });
    }

    /// Snapshot of recent events.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().iter().cloned().collect()
    }

    /// Register a running query; returns its id.
    pub fn register_query(&self, sql: &str, cancel: CancelToken) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.total_queries.fetch_add(1, Ordering::Relaxed);
        self.queries.lock().insert(
            id,
            QuerySlot {
                info: QueryInfo {
                    id,
                    sql: sql.to_string(),
                    state: QueryState::Running,
                    elapsed: Duration::ZERO,
                    rows: 0,
                },
                cancel,
                started: Instant::now(),
            },
        );
        id
    }

    /// Mark a query finished.
    pub fn finish_query(&self, id: u64, rows: u64) {
        if let Some(slot) = self.queries.lock().get_mut(&id) {
            if slot.info.state == QueryState::Running {
                slot.info.state = QueryState::Finished;
            }
            slot.info.rows = rows;
            slot.info.elapsed = slot.started.elapsed();
        }
    }

    /// Mark a query failed.
    pub fn fail_query(&self, id: u64, err: &VwError) {
        self.total_failed.fetch_add(1, Ordering::Relaxed);
        let mut q = self.queries.lock();
        if let Some(slot) = q.get_mut(&id) {
            slot.info.state = if matches!(err, VwError::Cancelled) {
                QueryState::Cancelled
            } else {
                QueryState::Failed(err.code().to_string())
            };
            slot.info.elapsed = slot.started.elapsed();
        }
        drop(q);
        self.log(EventLevel::Error, format!("query {id} failed: {err}"));
    }

    /// Cancel a running query.
    pub fn kill(&self, id: u64) -> Result<()> {
        let q = self.queries.lock();
        let slot = q
            .get(&id)
            .ok_or_else(|| VwError::InvalidParameter(format!("no query with id {id}")))?;
        slot.cancel.cancel();
        Ok(())
    }

    /// List queries (most recent first), the `SHOW QUERIES` equivalent.
    pub fn list_queries(&self) -> Vec<QueryInfo> {
        let q = self.queries.lock();
        let mut out: Vec<QueryInfo> = q
            .values()
            .map(|s| {
                let mut info = s.info.clone();
                if info.state == QueryState::Running {
                    info.elapsed = s.started.elapsed();
                }
                info
            })
            .collect();
        out.sort_by_key(|i| std::cmp::Reverse(i.id));
        out
    }

    /// (total queries, failed queries) counters.
    pub fn totals(&self) -> (u64, u64) {
        (self.total_queries.load(Ordering::Relaxed), self.total_failed.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_log_rings() {
        let m = Monitor::new();
        for i in 0..(EVENT_CAPACITY + 10) {
            m.log(EventLevel::Info, format!("e{i}"));
        }
        let ev = m.events();
        assert_eq!(ev.len(), EVENT_CAPACITY);
        assert_eq!(ev[0].message, "e10");
    }

    #[test]
    fn query_lifecycle() {
        let m = Monitor::new();
        let t = CancelToken::new();
        let id = m.register_query("SELECT 1", t.clone());
        assert_eq!(m.list_queries()[0].state, QueryState::Running);
        m.finish_query(id, 42);
        let info = &m.list_queries()[0];
        assert_eq!(info.state, QueryState::Finished);
        assert_eq!(info.rows, 42);
        assert_eq!(m.totals(), (1, 0));
    }

    #[test]
    fn kill_sets_token() {
        let m = Monitor::new();
        let t = CancelToken::new();
        let id = m.register_query("SELECT long", t.clone());
        m.kill(id).unwrap();
        assert!(t.is_cancelled());
        m.fail_query(id, &VwError::Cancelled);
        assert_eq!(m.list_queries()[0].state, QueryState::Cancelled);
        assert!(m.kill(999).is_err());
    }

    #[test]
    fn failures_logged() {
        let m = Monitor::new();
        let id = m.register_query("SELECT 1/0", CancelToken::new());
        m.fail_query(id, &VwError::DivideByZero);
        assert!(m.events().iter().any(|e| e.message.contains("E_DIV_ZERO")));
        assert_eq!(m.totals().1, 1);
    }
}
