//! System monitoring — the paper's "mundane" but mandatory work: event logging, query
//! listing, load/resource monitoring, and the kill switch behind query
//! cancellation.
//!
//! The event log is a bounded ring (capacity from
//! `EngineConfig::event_log_capacity`, adjustable at runtime via
//! `SET event_log_capacity`), so a long-lived session cannot grow it
//! without limit. `KILL` semantics and timeout states follow the failure
//! model in the repo-root ARCHITECTURE.md.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use vw_common::{Result, VwError};
use vw_exec::CancelToken;

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventLevel {
    /// Informational.
    Info,
    /// Something recoverable went wrong.
    Warn,
    /// A statement failed.
    Error,
}

/// One log event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Severity.
    pub level: EventLevel,
    /// Milliseconds since the monitor started.
    pub at_ms: u64,
    /// Message.
    pub message: String,
}

/// Lifecycle state of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryState {
    /// Waiting in the admission queue for a memory grant.
    Queued,
    /// Executing.
    Running,
    /// Finished successfully.
    Finished,
    /// Failed (message attached).
    Failed(String),
    /// Killed by `KILL`.
    Cancelled,
    /// Cancelled by its statement timeout.
    TimedOut,
}

/// Registry entry for one query.
#[derive(Debug, Clone)]
pub struct QueryInfo {
    /// Query id (KILL target).
    pub id: u64,
    /// Statement text (label).
    pub sql: String,
    /// Current state.
    pub state: QueryState,
    /// Wall-clock runtime so far / total.
    pub elapsed: Duration,
    /// Rows produced (when finished).
    pub rows: u64,
    /// Statement timeout this query runs under, if any.
    pub timeout: Option<Duration>,
    /// Session the query belongs to (0 = no session attribution).
    pub session: u64,
    /// Admission memory grant in bytes (0 until admitted / no governor).
    pub mem_grant: u64,
}

/// Activity state of a session, derived from its current query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// No statement in flight.
    Idle,
    /// Statement waiting in the admission queue.
    Queued,
    /// Statement executing.
    Running,
}

/// Registry entry for one session (`SHOW SESSIONS`).
#[derive(Debug, Clone)]
pub struct SessionInfo {
    /// Session id.
    pub id: u64,
    /// Current activity.
    pub state: SessionState,
    /// The in-flight query's id, if any.
    pub query: Option<u64>,
    /// The in-flight query's admission grant in bytes.
    pub mem_grant: u64,
}

struct QuerySlot {
    info: QueryInfo,
    cancel: CancelToken,
    started: Instant,
}

/// Default ring-buffer capacity of the event log
/// (`EngineConfig::event_log_capacity` overrides it).
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// The monitoring subsystem: event log + query registry.
pub struct Monitor {
    epoch: Instant,
    events: Mutex<std::collections::VecDeque<Event>>,
    /// Ring bound; runtime-adjustable (`SET event_log_capacity`).
    event_capacity: AtomicUsize,
    queries: Mutex<HashMap<u64, QuerySlot>>,
    next_id: AtomicU64,
    /// Open sessions → the id of their most recent query (None = fresh).
    sessions: Mutex<HashMap<u64, Option<u64>>>,
    next_session: AtomicU64,
    total_queries: AtomicU64,
    total_failed: AtomicU64,
}

impl Default for Monitor {
    fn default() -> Self {
        Monitor::new()
    }
}

impl Monitor {
    /// Fresh monitor with the default event-log bound.
    pub fn new() -> Monitor {
        Monitor::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// Fresh monitor whose event log holds at most `event_capacity`
    /// entries (clamped to >= 1).
    pub fn with_capacity(event_capacity: usize) -> Monitor {
        let cap = event_capacity.max(1);
        Monitor {
            epoch: Instant::now(),
            events: Mutex::new(std::collections::VecDeque::with_capacity(cap.min(1024))),
            event_capacity: AtomicUsize::new(cap),
            queries: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            total_queries: AtomicU64::new(0),
            total_failed: AtomicU64::new(0),
        }
    }

    /// Change the event-log bound at runtime (`SET event_log_capacity`);
    /// shrinking drops the oldest events immediately.
    pub fn set_event_capacity(&self, capacity: usize) {
        let cap = capacity.max(1);
        self.event_capacity.store(cap, Ordering::Relaxed);
        let mut ev = self.events.lock();
        while ev.len() > cap {
            ev.pop_front();
        }
    }

    /// The current event-log bound.
    pub fn event_capacity(&self) -> usize {
        self.event_capacity.load(Ordering::Relaxed)
    }

    /// Append an event (ring semantics: oldest dropped at capacity).
    pub fn log(&self, level: EventLevel, message: String) {
        let cap = self.event_capacity.load(Ordering::Relaxed);
        let mut ev = self.events.lock();
        while ev.len() >= cap {
            ev.pop_front();
        }
        ev.push_back(Event { level, at_ms: self.epoch.elapsed().as_millis() as u64, message });
    }

    /// Snapshot of recent events.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().iter().cloned().collect()
    }

    /// Register a running query; returns its id.
    pub fn register_query(&self, sql: &str, cancel: CancelToken) -> u64 {
        self.register_query_with(sql, cancel, None)
    }

    /// Register a running query that executes under `timeout` (visible in
    /// the registry); returns its id.
    pub fn register_query_with(
        &self,
        sql: &str,
        cancel: CancelToken,
        timeout: Option<Duration>,
    ) -> u64 {
        self.register_query_full(sql, cancel, timeout, 0, false)
    }

    /// Register a query with full attribution: the session it runs in
    /// (0 = none) and whether it starts life waiting for an admission
    /// grant (`queued`) rather than running.
    pub fn register_query_full(
        &self,
        sql: &str,
        cancel: CancelToken,
        timeout: Option<Duration>,
        session: u64,
        queued: bool,
    ) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.total_queries.fetch_add(1, Ordering::Relaxed);
        self.queries.lock().insert(
            id,
            QuerySlot {
                info: QueryInfo {
                    id,
                    sql: sql.to_string(),
                    state: if queued { QueryState::Queued } else { QueryState::Running },
                    elapsed: Duration::ZERO,
                    rows: 0,
                    timeout,
                    session,
                    mem_grant: 0,
                },
                cancel,
                started: Instant::now(),
            },
        );
        if session != 0 {
            if let Some(slot) = self.sessions.lock().get_mut(&session) {
                *slot = Some(id);
            }
        }
        id
    }

    /// Transition a queued query to running once the admission controller
    /// hands it a memory grant of `grant` bytes. The elapsed clock
    /// restarts so `SHOW QUERIES` reports run time, not queue time.
    pub fn admit_query(&self, id: u64, grant: u64) {
        if let Some(slot) = self.queries.lock().get_mut(&id) {
            if slot.info.state == QueryState::Queued {
                slot.info.state = QueryState::Running;
                slot.started = Instant::now();
            }
            slot.info.mem_grant = grant;
        }
    }

    /// Mark a query finished.
    pub fn finish_query(&self, id: u64, rows: u64) {
        if let Some(slot) = self.queries.lock().get_mut(&id) {
            if slot.info.state == QueryState::Running {
                slot.info.state = QueryState::Finished;
            }
            slot.info.rows = rows;
            slot.info.elapsed = slot.started.elapsed();
        }
    }

    /// Mark a query failed. A `Cancelled` error maps to `Cancelled` or
    /// `TimedOut` depending on whether the query's token was tripped by
    /// its statement deadline.
    pub fn fail_query(&self, id: u64, err: &VwError) {
        self.total_failed.fetch_add(1, Ordering::Relaxed);
        let mut timed_out = false;
        let mut q = self.queries.lock();
        if let Some(slot) = q.get_mut(&id) {
            slot.info.state = if matches!(err, VwError::Cancelled) {
                if slot.cancel.timed_out() {
                    timed_out = true;
                    QueryState::TimedOut
                } else {
                    QueryState::Cancelled
                }
            } else {
                QueryState::Failed(err.code().to_string())
            };
            slot.info.elapsed = slot.started.elapsed();
        }
        drop(q);
        if timed_out {
            self.log(EventLevel::Error, format!("query {id} failed: statement timeout ({err})"));
        } else {
            self.log(EventLevel::Error, format!("query {id} failed: {err}"));
        }
    }

    /// Cancel a running (or admission-queued — the cancelled token makes
    /// the waiter dequeue itself) query. `KILL` of an unknown id or of a
    /// query that already reached a terminal state is a clean `Exec`
    /// error — the race between a KILL landing and the query finishing
    /// must surface as a typed error, never a silent no-op.
    pub fn kill(&self, id: u64) -> Result<()> {
        let q = self.queries.lock();
        let slot =
            q.get(&id).ok_or_else(|| VwError::Exec(format!("KILL: no query with id {id}")))?;
        if !matches!(slot.info.state, QueryState::Running | QueryState::Queued) {
            return Err(VwError::Exec(format!(
                "KILL: query {id} is not running (state {:?})",
                slot.info.state
            )));
        }
        slot.cancel.cancel();
        Ok(())
    }

    /// Cancel every non-terminal query (engine shutdown).
    pub fn kill_all(&self) {
        for slot in self.queries.lock().values() {
            if matches!(slot.info.state, QueryState::Running | QueryState::Queued) {
                slot.cancel.cancel();
            }
        }
    }

    /// Open a session slot; returns its id (never 0).
    pub fn register_session(&self) -> u64 {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        self.sessions.lock().insert(id, None);
        id
    }

    /// Close a session slot (its past queries stay in the registry).
    pub fn close_session(&self, id: u64) {
        self.sessions.lock().remove(&id);
    }

    /// List open sessions in id order — the `SHOW SESSIONS` equivalent.
    /// Each session's activity is derived from its most recent query:
    /// a non-terminal query makes the session `Queued`/`Running` and
    /// carries that query's admission grant; otherwise the session is
    /// idle.
    pub fn list_sessions(&self) -> Vec<SessionInfo> {
        let sessions = self.sessions.lock();
        let queries = self.queries.lock();
        let mut out: Vec<SessionInfo> = sessions
            .iter()
            .map(|(&id, &query)| {
                let live = query.and_then(|q| queries.get(&q)).and_then(|s| match s.info.state {
                    QueryState::Queued => Some((s.info.id, SessionState::Queued, s.info.mem_grant)),
                    QueryState::Running => {
                        Some((s.info.id, SessionState::Running, s.info.mem_grant))
                    }
                    _ => None,
                });
                match live {
                    Some((q, state, grant)) => {
                        SessionInfo { id, state, query: Some(q), mem_grant: grant }
                    }
                    None => {
                        SessionInfo { id, state: SessionState::Idle, query: None, mem_grant: 0 }
                    }
                }
            })
            .collect();
        out.sort_by_key(|s| s.id);
        out
    }

    /// List queries (most recent first), the `SHOW QUERIES` equivalent.
    pub fn list_queries(&self) -> Vec<QueryInfo> {
        let q = self.queries.lock();
        let mut out: Vec<QueryInfo> = q
            .values()
            .map(|s| {
                let mut info = s.info.clone();
                if info.state == QueryState::Running {
                    info.elapsed = s.started.elapsed();
                }
                info
            })
            .collect();
        out.sort_by_key(|i| std::cmp::Reverse(i.id));
        out
    }

    /// (total queries, failed queries) counters.
    pub fn totals(&self) -> (u64, u64) {
        (self.total_queries.load(Ordering::Relaxed), self.total_failed.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_log_rings() {
        let m = Monitor::new();
        for i in 0..(DEFAULT_EVENT_CAPACITY + 10) {
            m.log(EventLevel::Info, format!("e{i}"));
        }
        let ev = m.events();
        assert_eq!(ev.len(), DEFAULT_EVENT_CAPACITY);
        assert_eq!(ev[0].message, "e10");
    }

    #[test]
    fn event_log_capacity_is_configurable_and_shrinkable() {
        let m = Monitor::with_capacity(8);
        assert_eq!(m.event_capacity(), 8);
        for i in 0..100 {
            m.log(EventLevel::Info, format!("e{i}"));
        }
        let ev = m.events();
        assert_eq!(ev.len(), 8, "configured bound held");
        assert_eq!(ev[0].message, "e92");
        // Shrinking drops the oldest immediately.
        m.set_event_capacity(3);
        assert_eq!(m.events().len(), 3);
        assert_eq!(m.events()[0].message, "e97");
        // Growing allows the ring to fill further.
        m.set_event_capacity(5);
        m.log(EventLevel::Info, "x1".into());
        m.log(EventLevel::Info, "x2".into());
        assert_eq!(m.events().len(), 5);
        // Zero clamps to one (a disabled log would lose failure events).
        m.set_event_capacity(0);
        assert_eq!(m.event_capacity(), 1);
        m.log(EventLevel::Info, "y".into());
        assert_eq!(m.events().len(), 1);
    }

    #[test]
    fn query_lifecycle() {
        let m = Monitor::new();
        let t = CancelToken::new();
        let id = m.register_query("SELECT 1", t.clone());
        assert_eq!(m.list_queries()[0].state, QueryState::Running);
        assert_eq!(m.list_queries()[0].timeout, None);
        m.finish_query(id, 42);
        let info = &m.list_queries()[0];
        assert_eq!(info.state, QueryState::Finished);
        assert_eq!(info.rows, 42);
        assert_eq!(m.totals(), (1, 0));
    }

    #[test]
    fn kill_sets_token() {
        let m = Monitor::new();
        let t = CancelToken::new();
        let id = m.register_query("SELECT long", t.clone());
        m.kill(id).unwrap();
        assert!(t.is_cancelled());
        m.fail_query(id, &VwError::Cancelled);
        assert_eq!(m.list_queries()[0].state, QueryState::Cancelled);
        assert!(m.kill(999).is_err());
    }

    #[test]
    fn kill_of_finished_or_unknown_query_is_a_clean_exec_error() {
        let m = Monitor::new();
        let t = CancelToken::new();
        let id = m.register_query("SELECT 1", t.clone());
        m.finish_query(id, 1);
        // KILL raced with completion: typed error, state untouched, token
        // never tripped.
        let err = m.kill(id).unwrap_err();
        assert!(matches!(err, VwError::Exec(_)), "finished: {err}");
        assert_eq!(m.list_queries()[0].state, QueryState::Finished);
        assert!(!t.is_cancelled());
        let err = m.kill(424242).unwrap_err();
        assert!(matches!(err, VwError::Exec(_)), "unknown: {err}");
    }

    #[test]
    fn timeout_cancellation_maps_to_timed_out_state() {
        use std::time::Instant;
        let m = Monitor::new();
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_millis(5));
        let guard = vw_exec::TimeoutGuard::spawn(&t).unwrap();
        let id = m.register_query_with("SELECT slow", t.clone(), Some(Duration::from_millis(5)));
        assert_eq!(m.list_queries()[0].timeout, Some(Duration::from_millis(5)));
        while !t.is_cancelled() {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(guard);
        m.fail_query(id, &VwError::Cancelled);
        assert_eq!(m.list_queries()[0].state, QueryState::TimedOut);
        assert!(m.events().iter().any(|e| e.message.contains("statement timeout")));
    }

    #[test]
    fn session_registry_derives_state_from_current_query() {
        let m = Monitor::new();
        let s1 = m.register_session();
        let s2 = m.register_session();
        assert_ne!(s1, 0, "session ids never collide with 'no session'");
        let sessions = m.list_sessions();
        assert_eq!(sessions.len(), 2);
        assert!(sessions.iter().all(|s| s.state == SessionState::Idle && s.query.is_none()));

        // A queued query marks its session Queued; admission flips it to
        // Running and records the grant.
        let t = CancelToken::new();
        let q = m.register_query_full("SELECT 1", t, None, s1, true);
        let info = m.list_sessions().into_iter().find(|s| s.id == s1).unwrap();
        assert_eq!(info.state, SessionState::Queued);
        assert_eq!(info.query, Some(q));
        m.admit_query(q, 4096);
        let info = m.list_sessions().into_iter().find(|s| s.id == s1).unwrap();
        assert_eq!(info.state, SessionState::Running);
        assert_eq!(info.mem_grant, 4096);
        assert_eq!(m.list_queries().iter().find(|i| i.id == q).unwrap().session, s1);

        // Completion returns the session to Idle; closing removes it.
        m.finish_query(q, 1);
        let info = m.list_sessions().into_iter().find(|s| s.id == s1).unwrap();
        assert_eq!(info.state, SessionState::Idle);
        assert_eq!(info.mem_grant, 0);
        m.close_session(s2);
        assert_eq!(m.list_sessions().len(), 1);
    }

    #[test]
    fn kill_reaches_admission_queued_queries() {
        let m = Monitor::new();
        let t = CancelToken::new();
        let id = m.register_query_full("SELECT big", t.clone(), None, 0, true);
        assert_eq!(m.list_queries()[0].state, QueryState::Queued);
        m.kill(id).unwrap();
        assert!(t.is_cancelled(), "KILL must reach a query waiting for admission");
        m.fail_query(id, &VwError::Cancelled);
        assert_eq!(m.list_queries()[0].state, QueryState::Cancelled);
    }

    #[test]
    fn failures_logged() {
        let m = Monitor::new();
        let id = m.register_query("SELECT 1/0", CancelToken::new());
        m.fail_query(id, &VwError::DivideByZero);
        assert!(m.events().iter().any(|e| e.message.contains("E_DIV_ZERO")));
        assert_eq!(m.totals().1, 1);
    }
}
