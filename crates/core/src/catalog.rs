//! The catalog: both table kinds of Figure 1 under one namespace.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use vw_common::Schema;
use vw_pdt::PdtStore;
use vw_storage::{TableStats, TableStorage};
use vw_volcano::RowStore;

/// Storage engine of a table.
pub enum TableKind {
    /// Compressed column store + PDT delta layer (the default).
    Vectorwise {
        /// Stable compressed storage.
        storage: Arc<RwLock<TableStorage>>,
        /// Differential update layer.
        pdt: Arc<PdtStore>,
    },
    /// Classic row-store heap.
    Heap {
        /// The heap.
        store: Arc<RwLock<RowStore>>,
    },
}

impl TableKind {
    /// Wrap a fresh column store.
    pub fn new_vectorwise(storage: TableStorage) -> TableKind {
        let n = storage.n_rows();
        TableKind::Vectorwise {
            storage: Arc::new(RwLock::new(storage)),
            pdt: Arc::new(PdtStore::new(n)),
        }
    }

    /// Wrap a fresh heap store.
    pub fn new_heap(store: RowStore) -> TableKind {
        TableKind::Heap { store: Arc::new(RwLock::new(store)) }
    }
}

/// One catalog entry.
pub struct TableEntry {
    /// Table name.
    pub name: String,
    /// Schema.
    pub schema: Schema,
    /// Storage engine.
    pub kind: TableKind,
    /// Optimizer statistics.
    pub stats: Arc<RwLock<TableStats>>,
}

/// The table namespace.
#[derive(Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<TableEntry>>,
}

impl Catalog {
    /// Lookup, case-insensitive.
    pub fn get(&self, name: &str) -> Option<Arc<TableEntry>> {
        self.tables.get(&name.to_ascii_lowercase()).cloned()
    }

    /// Insert (replaces any existing entry of the same name).
    pub fn insert(&mut self, entry: TableEntry) {
        self.tables.insert(entry.name.to_ascii_lowercase(), Arc::new(entry));
    }

    /// Remove and return an entry.
    pub fn remove(&mut self, name: &str) -> Option<Arc<TableEntry>> {
        self.tables.remove(&name.to_ascii_lowercase())
    }

    /// All table names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.values().map(|t| t.name.clone()).collect();
        v.sort();
        v
    }
}
