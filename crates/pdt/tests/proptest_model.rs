//! Property test: the PDT image must match a naive Vec-based model under
//! arbitrary positional update sequences, and serial transactions must
//! compose like sequential application.

use proptest::prelude::*;
use std::sync::Arc;
use vw_common::Value;
use vw_pdt::{store::items, MergeItem, PdtStore};

/// The reference model: the visible image as a vector of rows, where each
/// row is either an untouched stable row (Ok(sid)) or an inserted value
/// (Err(v)); stable modifications are tracked in a side map.
#[derive(Clone, Debug, Default)]
struct Model {
    rows: Vec<std::result::Result<u64, i64>>,
    mods: std::collections::HashMap<u64, i64>,
}

impl Model {
    fn new(n: u64) -> Model {
        Model { rows: (0..n).map(Ok).collect(), mods: Default::default() }
    }
}

#[derive(Debug, Clone)]
enum Action {
    Insert(u64, i64),
    Delete(u64),
    Update(u64, i64),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (any::<u64>(), any::<i64>()).prop_map(|(p, v)| Action::Insert(p, v)),
        any::<u64>().prop_map(Action::Delete),
        (any::<u64>(), any::<i64>()).prop_map(|(p, v)| Action::Update(p, v)),
    ]
}

fn flatten(store: &PdtStore, model: &Model) -> (Vec<Option<i64>>, Vec<Option<i64>>) {
    // Project both to "the i64 payload if known": stable rows yield their
    // modified value if modified, None otherwise; inserts yield Some(v).
    let (root, _, _) = store.snapshot();
    let mut pdt_side = Vec::new();
    for item in items(&root) {
        match item {
            MergeItem::Stable { sid, len } => {
                for s in sid..sid + len {
                    assert!(!model.mods.contains_key(&s) || true);
                    pdt_side.push(None::<i64>.or({
                        // untouched stable row
                        None
                    }));
                    let _ = s;
                }
            }
            MergeItem::StableMod { mods, .. } => {
                let Value::I64(v) = mods[0].1 else { panic!() };
                pdt_side.push(Some(v));
            }
            MergeItem::Insert { row } => {
                let Value::I64(v) = row[0] else { panic!() };
                pdt_side.push(Some(v));
            }
        }
    }
    let model_side = model
        .rows
        .iter()
        .map(|r| match r {
            Ok(sid) => model.mods.get(sid).copied(),
            Err(v) => Some(*v),
        })
        .collect();
    (pdt_side, model_side)
}

fn apply(
    store: &PdtStore,
    model: &mut Model,
    actions: &[Action],
    ops_per_txn: usize,
) {
    let mut txn = store.begin();
    for (i, a) in actions.iter().enumerate() {
        match a {
            Action::Insert(pos, v) => {
                let n = txn.n_rows();
                let pos = pos % (n + 1);
                txn.insert_at(pos, vec![Value::I64(*v)]).unwrap();
                model.rows.insert(pos as usize, Err(*v));
            }
            Action::Delete(pos) => {
                let n = txn.n_rows();
                if n == 0 {
                    continue;
                }
                let pos = pos % n;
                // The engine forbids deleting committed inserts without a
                // checkpoint; skip those in the model too.
                if let Err(_prev) = model.rows[pos as usize] {
                    if txn.delete_at(pos).is_err() {
                        continue;
                    }
                } else {
                    txn.delete_at(pos).unwrap();
                }
                let removed = model.rows.remove(pos as usize);
                if let Ok(sid) = removed {
                    model.mods.remove(&sid);
                }
            }
            Action::Update(pos, v) => {
                let n = txn.n_rows();
                if n == 0 {
                    continue;
                }
                let pos = pos % n;
                match model.rows[pos as usize] {
                    Ok(sid) => {
                        txn.update_at(pos, 0, Value::I64(*v)).unwrap();
                        model.mods.insert(sid, *v);
                    }
                    Err(_) => {
                        if txn.update_at(pos, 0, Value::I64(*v)).is_ok() {
                            model.rows[pos as usize] = Err(*v);
                        }
                    }
                }
            }
        }
        if (i + 1) % ops_per_txn == 0 {
            store.commit(std::mem::replace(&mut txn, store.begin())).unwrap();
            // Fresh txn must see the committed image.
            txn = store.begin();
        }
    }
    store.commit(txn).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pdt_matches_model_single_txn(
        n_stable in 0u64..50,
        actions in proptest::collection::vec(action_strategy(), 0..60),
    ) {
        let store = PdtStore::new(n_stable);
        let mut model = Model::new(n_stable);
        apply(&store, &mut model, &actions, usize::MAX);
        prop_assert_eq!(store.visible_rows() as usize, model.rows.len());
        let (a, b) = flatten(&store, &model);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn pdt_matches_model_serial_txns(
        n_stable in 0u64..40,
        actions in proptest::collection::vec(action_strategy(), 0..60),
        ops_per_txn in 1usize..7,
    ) {
        let store = PdtStore::new(n_stable);
        let mut model = Model::new(n_stable);
        apply(&store, &mut model, &actions, ops_per_txn);
        prop_assert_eq!(store.visible_rows() as usize, model.rows.len());
        let (a, b) = flatten(&store, &model);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn row_payload_roundtrip(values in proptest::collection::vec(any::<i64>(), 1..40)) {
        let store = PdtStore::new(0);
        let mut t = store.begin();
        for &v in &values {
            t.append(vec![Value::I64(v)]).unwrap();
        }
        store.commit(t).unwrap();
        let (root, _, _) = store.snapshot();
        let mut seen = Vec::new();
        for item in items(&root) {
            if let MergeItem::Insert { row } = item {
                let Value::I64(v) = row[0] else { panic!() };
                seen.push(v);
            }
        }
        prop_assert_eq!(seen, values);
        let _ = Arc::strong_count(&Arc::new(()));
    }
}
