//! # vw-pdt — Positional Delta Trees: differential updates for column stores
//!
//! Reproduction of *Positional update handling in column stores* (Héman,
//! Zukowski, Nes, Sidirourgos, Boncz, SIGMOD 2010) — reference \[2\] of the
//! Vectorwise paper, and the basis of its transaction machinery.
//!
//! ## The problem
//!
//! Compressed, sorted, replicated column storage makes in-place updates
//! ruinously expensive. PDTs keep updates *out* of the stable storage in a
//! memory-resident, **positionally organized** differential structure that
//! scans merge with the stable table image on the fly. Updates are organized
//! by *position*, not by key, which is what makes merging essentially free:
//! the scan knows its current row position anyway.
//!
//! ## This implementation
//!
//! The stable table provides rows addressed by **SID** (stable id,
//! 0..n_stable). The current visible image is described by a persistent
//! counted rope ([`treap`]) whose in-order traversal yields:
//!
//! * runs of untouched stable rows (`[sid, sid+len)`),
//! * stable rows with modified columns,
//! * inserted rows (values held in the delta structure).
//!
//! Positional operations (insert/delete/modify at **RID** — the row id in
//! the *current* image) cost `O(log #deltas)`; a full scan-with-merge costs
//! the stable scan plus `O(#deltas)` — the same asymptotics as the paper's
//! three-layer PDT encoding. Snapshots are O(1) (persistent structure), which
//! provides the paper's layered read-/write-/trans-PDT semantics:
//!
//! * the shared committed image plays the role of the read-PDT + write-PDT,
//! * each [`Transaction`] works on a private snapshot (trans-PDT),
//! * commit replays the transaction's delta log onto the current master
//!   image by *stable position* (SID anchors), detecting write-write
//!   conflicts on overlapping SIDs — commit-time positional conflict
//!   detection, as in the paper (serializability on overlapping updates).
//!
//! When the delta count grows past a threshold, the engine **checkpoints**:
//! it materializes the merged image into fresh stable storage and resets the
//! PDT (see `vw-core::checkpoint`).

pub mod store;
pub mod treap;

pub use store::{MergeItem, PdtStats, PdtStore, Transaction};
