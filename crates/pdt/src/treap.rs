//! A persistent (path-copying) counted treap over the visible table image.
//!
//! Leaves-as-nodes: every node carries a payload describing either a run of
//! stable rows, a modified stable row, or an inserted row. Subtree sizes
//! enable O(log n) positional access; subtree max-SID enables O(log n)
//! SID → position lookup (needed for commit-time replay of delta logs).
//!
//! Persistence (Arc-shared immutable nodes) is what makes snapshot isolation
//! cheap: a transaction's snapshot is a root pointer clone.

use std::sync::Arc;
use vw_common::Value;

/// Payload of one treap node.
#[derive(Debug, Clone, PartialEq)]
pub enum Piece {
    /// `len` untouched stable rows starting at `sid`.
    StableRun {
        /// First stable id of the run.
        sid: u64,
        /// Number of rows in the run.
        len: u64,
    },
    /// One stable row with modified column values.
    StableMod {
        /// Stable id of the row.
        sid: u64,
        /// `(column index, new value)` pairs, each column at most once.
        mods: Arc<Vec<(usize, Value)>>,
    },
    /// One inserted row (not present in stable storage).
    Insert {
        /// Transaction-unique id used to find/cancel the insert in delta logs.
        id: u64,
        /// Full row values in schema order.
        row: Arc<Vec<Value>>,
    },
}

impl Piece {
    /// Number of visible rows this piece contributes.
    pub fn rows(&self) -> u64 {
        match self {
            Piece::StableRun { len, .. } => *len,
            _ => 1,
        }
    }

    fn max_sid(&self) -> Option<u64> {
        match self {
            Piece::StableRun { sid, len } => Some(sid + len - 1),
            Piece::StableMod { sid, .. } => Some(*sid),
            Piece::Insert { .. } => None,
        }
    }

    fn min_sid(&self) -> Option<u64> {
        match self {
            Piece::StableRun { sid, .. } => Some(*sid),
            Piece::StableMod { sid, .. } => Some(*sid),
            Piece::Insert { .. } => None,
        }
    }
}

/// One immutable treap node.
#[derive(Debug)]
pub struct Node {
    prio: u64,
    size: u64,
    max_sid: Option<u64>,
    min_sid: Option<u64>,
    piece: Piece,
    left: Link,
    right: Link,
}

/// Shared pointer to a node (None = empty tree).
pub type Link = Option<Arc<Node>>;

/// Total rows in a subtree.
pub fn size(t: &Link) -> u64 {
    t.as_ref().map_or(0, |n| n.size)
}

fn max_sid(t: &Link) -> Option<u64> {
    t.as_ref().and_then(|n| n.max_sid)
}

fn min_sid(t: &Link) -> Option<u64> {
    t.as_ref().and_then(|n| n.min_sid)
}

/// Deterministic node priority from a counter (no RNG dependency; the mix
/// gives heap-balanced shapes for sequential ids).
pub fn prio_for(counter: u64) -> u64 {
    vw_common::hash::hash_u64(counter)
}

fn mk(prio: u64, piece: Piece, left: Link, right: Link) -> Link {
    let size = size(&left) + piece.rows() + size(&right);
    let max_sid = [max_sid(&left), piece.max_sid(), max_sid(&right)].into_iter().flatten().max();
    let min_sid = [min_sid(&left), piece.min_sid(), min_sid(&right)].into_iter().flatten().min();
    Some(Arc::new(Node { prio, size, max_sid, min_sid, piece, left, right }))
}

fn clone_with(n: &Node, left: Link, right: Link) -> Link {
    mk(n.prio, n.piece.clone(), left, right)
}

/// Merge two treaps (all rows of `a` before all rows of `b`).
pub fn merge(a: Link, b: Link) -> Link {
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some(x), Some(y)) => {
            if x.prio >= y.prio {
                let right = merge(x.right.clone(), Some(y));
                clone_with(&x, x.left.clone(), right)
            } else {
                let left = merge(Some(x), y.left.clone());
                clone_with(&y, left, y.right.clone())
            }
        }
    }
}

/// Split `t` into (first `k` rows, rest). Splits stable runs at interior
/// offsets by synthesizing two run pieces sharing the original priority
/// (heap order stays valid: equal priorities are allowed).
pub fn split(t: Link, k: u64) -> (Link, Link) {
    let Some(n) = t else {
        return (None, None);
    };
    let lsize = size(&n.left);
    let own = n.piece.rows();
    if k <= lsize {
        let (a, b) = split(n.left.clone(), k);
        (a, clone_with(&n, b, n.right.clone()))
    } else if k >= lsize + own {
        let (a, b) = split(n.right.clone(), k - lsize - own);
        (clone_with(&n, n.left.clone(), a), b)
    } else {
        // Split inside this node's piece — only possible for StableRun.
        let off = k - lsize;
        match &n.piece {
            Piece::StableRun { sid, len } => {
                debug_assert!(off > 0 && off < *len);
                let left_run =
                    mk(n.prio, Piece::StableRun { sid: *sid, len: off }, n.left.clone(), None);
                let right_run = mk(
                    n.prio,
                    Piece::StableRun { sid: sid + off, len: len - off },
                    None,
                    n.right.clone(),
                );
                (left_run, right_run)
            }
            _ => unreachable!("interior split of a single-row piece"),
        }
    }
}

/// Build a leaf.
pub fn leaf(prio: u64, piece: Piece) -> Link {
    mk(prio, piece, None, None)
}

/// The piece covering row `rid`, with the offset of `rid` inside it.
pub fn get_at(t: &Link, rid: u64) -> Option<(Piece, u64)> {
    let n = t.as_ref()?;
    let lsize = size(&n.left);
    let own = n.piece.rows();
    if rid < lsize {
        get_at(&n.left, rid)
    } else if rid < lsize + own {
        Some((n.piece.clone(), rid - lsize))
    } else {
        get_at(&n.right, rid - lsize - own)
    }
}

/// Position (RID) of the last visible stable row with `sid' <= sid`, plus
/// that `sid'`. Returns None if no such row is visible.
///
/// Stable sids ascend in traversal order, so the search descends a single
/// path guided by the subtree min/max sid aggregates: O(log n).
pub fn find_stable_at_or_before(t: &Link, sid: u64) -> Option<(u64, u64)> {
    let n = t.as_ref()?;
    // If the right subtree contains any stable sid <= target, the rightmost
    // qualifying row is there.
    if min_sid(&n.right).is_some_and(|m| m <= sid) {
        let (rid, s) = find_stable_at_or_before(&n.right, sid)?;
        return Some((size(&n.left) + n.piece.rows() + rid, s));
    }
    // Otherwise this node's own piece is the candidate...
    match &n.piece {
        Piece::StableRun { sid: s0, len } if *s0 <= sid => {
            let off = (sid - s0).min(len - 1);
            return Some((size(&n.left) + off, s0 + off));
        }
        Piece::StableMod { sid: s0, .. } if *s0 <= sid => {
            return Some((size(&n.left), *s0));
        }
        _ => {}
    }
    // ...else it is somewhere in the left subtree (or absent).
    find_stable_at_or_before(&n.left, sid)
}

/// In-order traversal of pieces (merge-scan driver).
pub fn for_each_piece(t: &Link, f: &mut impl FnMut(&Piece)) {
    if let Some(n) = t {
        for_each_piece(&n.left, f);
        f(&n.piece);
        for_each_piece(&n.right, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(sid: u64, len: u64) -> Piece {
        Piece::StableRun { sid, len }
    }

    fn ins(id: u64) -> Piece {
        Piece::Insert { id, row: Arc::new(vec![Value::I64(id as i64)]) }
    }

    fn build(pieces: Vec<Piece>) -> Link {
        let mut t = None;
        for (i, p) in pieces.into_iter().enumerate() {
            t = merge(t, leaf(prio_for(i as u64), p));
        }
        t
    }

    fn collect(t: &Link) -> Vec<Piece> {
        let mut out = Vec::new();
        for_each_piece(t, &mut |p| out.push(p.clone()));
        out
    }

    #[test]
    fn merge_preserves_order_and_size() {
        let t = build(vec![run(0, 10), ins(100), run(10, 5)]);
        assert_eq!(size(&t), 16);
        let pieces = collect(&t);
        assert_eq!(pieces.len(), 3);
        assert_eq!(pieces[0], run(0, 10));
        assert_eq!(pieces[2], run(10, 5));
    }

    #[test]
    fn split_at_piece_boundary() {
        let t = build(vec![run(0, 4), ins(1), run(4, 4)]);
        let (a, b) = split(t, 4);
        assert_eq!(size(&a), 4);
        assert_eq!(size(&b), 5);
        assert_eq!(collect(&a), vec![run(0, 4)]);
    }

    #[test]
    fn split_inside_run() {
        let t = build(vec![run(0, 100)]);
        let (a, b) = split(t, 37);
        assert_eq!(collect(&a), vec![run(0, 37)]);
        assert_eq!(collect(&b), vec![run(37, 63)]);
    }

    #[test]
    fn split_edges() {
        let t = build(vec![run(0, 10)]);
        let (a, b) = split(t.clone(), 0);
        assert!(a.is_none());
        assert_eq!(size(&b), 10);
        let (a, b) = split(t, 10);
        assert_eq!(size(&a), 10);
        assert!(b.is_none());
    }

    #[test]
    fn get_at_walks_pieces() {
        let t = build(vec![run(0, 3), ins(7), run(3, 3)]);
        assert_eq!(get_at(&t, 0), Some((run(0, 3), 0)));
        assert_eq!(get_at(&t, 2), Some((run(0, 3), 2)));
        assert_eq!(get_at(&t, 3), Some((ins(7), 0)));
        assert_eq!(get_at(&t, 4), Some((run(3, 3), 0)));
        assert_eq!(get_at(&t, 6), Some((run(3, 3), 2)));
        assert_eq!(get_at(&t, 7), None);
    }

    #[test]
    fn persistence_snapshots_unaffected() {
        let t1 = build(vec![run(0, 10)]);
        let (a, b) = split(t1.clone(), 5);
        let t2 = merge(a, merge(leaf(prio_for(99), ins(1)), b));
        assert_eq!(size(&t1), 10, "snapshot untouched");
        assert_eq!(size(&t2), 11);
        assert_eq!(collect(&t1), vec![run(0, 10)]);
    }

    #[test]
    fn find_stable_lookup() {
        // Image: [0..5) ins [7..10)   (sids 5,6 deleted)
        let t = build(vec![run(0, 5), ins(1), run(7, 3)]);
        // sid 3 visible at rid 3.
        assert_eq!(find_stable_at_or_before(&t, 3), Some((3, 3)));
        // sid 6 deleted → nearest at-or-before is 4 at rid 4.
        assert_eq!(find_stable_at_or_before(&t, 6), Some((4, 4)));
        // sid 8 at rid 6+1 = rid 7? rows: 0,1,2,3,4, ins, 7,8,9 → sid8 rid=7.
        assert_eq!(find_stable_at_or_before(&t, 8), Some((7, 8)));
        // below everything → None only if no stable ≤ sid; sid 0 exists.
        assert_eq!(find_stable_at_or_before(&t, 0), Some((0, 0)));
    }

    #[test]
    fn find_stable_none_when_all_above() {
        let t = build(vec![ins(1), run(5, 2)]);
        assert_eq!(find_stable_at_or_before(&t, 3), None);
        assert_eq!(find_stable_at_or_before(&t, 5), Some((1, 5)));
    }

    #[test]
    fn deep_sequential_build_stays_logarithmic() {
        // 10k single-row pieces; recursion would overflow the stack if the
        // treap degenerated to a list.
        let mut t = None;
        for i in 0..10_000u64 {
            t = merge(t, leaf(prio_for(i), run(i, 1)));
        }
        assert_eq!(size(&t), 10_000);
        assert_eq!(get_at(&t, 9_999), Some((run(9_999, 1), 0)));
    }
}
