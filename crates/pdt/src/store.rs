//! The PDT store: committed master image, snapshot transactions, positional
//! delta logs, commit-time conflict detection, and checkpoint reset.
//!
//! Commit strategy:
//!
//! * **Serial fast path** — if no other transaction committed since this
//!   one's snapshot, the transaction's private image *is* the next master
//!   image (persistent structure, O(1) swap). This preserves exact
//!   positional semantics, including the ordering of the transaction's own
//!   inserts.
//! * **Concurrent path** — after the write-write conflict check (positional
//!   overlap of written SIDs, as in the PDT paper), the transaction's delta
//!   log is replayed against the *current* master image: deletes/modifies
//!   address rows by SID; inserts are re-anchored to the nearest surviving
//!   stable predecessor. The interleaving order of different transactions'
//!   inserts at the same anchor is unspecified (any serializable order is
//!   legal).

use crate::treap::{
    find_stable_at_or_before, for_each_piece, get_at, leaf, merge, prio_for, size, split, Link,
    Piece,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vw_common::hash::{FxHashMap, FxHashSet};
use vw_common::{Result, Value, VwError};

/// One element of the merged (current-image) row stream, produced by
/// traversing the PDT during a scan.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeItem {
    /// `len` untouched stable rows starting at `sid` — the scan serves these
    /// straight from column storage.
    Stable {
        /// First stable id.
        sid: u64,
        /// Run length.
        len: u64,
    },
    /// A stable row with modified columns overlaid.
    StableMod {
        /// Stable id.
        sid: u64,
        /// `(column, new value)` overrides.
        mods: Arc<Vec<(usize, Value)>>,
    },
    /// A row that exists only in the delta structure.
    Insert {
        /// Full row values.
        row: Arc<Vec<Value>>,
    },
}

/// Where an insert lands, in stable coordinates (survives image changes
/// between snapshot and commit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Anchor {
    /// Before any stable row.
    Front,
    /// Immediately after stable row `sid` (or its nearest surviving
    /// predecessor if `sid` was deleted concurrently).
    AfterSid(u64),
}

#[derive(Debug, Clone)]
enum Op {
    DeleteStable { sid: u64 },
    ModifyStable { sid: u64, col: usize, value: Value },
}

/// Aggregate delta counters of the committed image.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PdtStats {
    /// Committed inserted rows currently pending in the PDT.
    pub inserts: u64,
    /// Committed deletes of stable rows.
    pub deletes: u64,
    /// Committed column modifications (distinct (row, column) pairs).
    pub modifies: u64,
}

impl PdtStats {
    /// Total pending deltas — the checkpoint trigger metric.
    pub fn total(&self) -> u64 {
        self.inserts + self.deletes + self.modifies
    }
}

struct Master {
    root: Link,
    version: u64,
    n_stable: u64,
    /// Version at the last checkpoint; transactions older than this cannot
    /// commit (their stable coordinates no longer exist).
    checkpoint_version: u64,
    /// (commit version, sids written) since the last checkpoint.
    commit_log: Vec<(u64, FxHashSet<u64>)>,
}

/// Thread-safe store of the committed PDT image for one table.
pub struct PdtStore {
    inner: Mutex<Master>,
    counter: AtomicU64,
}

/// A private snapshot of the table image plus a positional delta log.
///
/// Obtained from [`PdtStore::begin`]; apply updates positioned by RID (row id
/// in *this transaction's* current image), then [`PdtStore::commit`].
pub struct Transaction {
    root: Link,
    snapshot_version: u64,
    log: Vec<Op>,
    own_inserts: FxHashSet<u64>,
    write_set: FxHashSet<u64>,
    /// True when this transaction modified or deleted rows that were
    /// inserted by earlier *committed* transactions (still PDT-resident,
    /// not yet checkpointed). Such edits have no stable (SID) coordinates,
    /// so they can only commit through the serial fast path; a concurrent
    /// commit forces a retry.
    touched_foreign_inserts: bool,
}

impl PdtStore {
    /// A store over a stable table of `n_stable` rows (no deltas yet).
    pub fn new(n_stable: u64) -> PdtStore {
        let root = if n_stable == 0 {
            None
        } else {
            leaf(prio_for(0), Piece::StableRun { sid: 0, len: n_stable })
        };
        PdtStore {
            inner: Mutex::new(Master {
                root,
                version: 0,
                n_stable,
                checkpoint_version: 0,
                commit_log: Vec::new(),
            }),
            counter: AtomicU64::new(1),
        }
    }

    fn next_id(&self) -> u64 {
        self.counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Begin a transaction on the current committed image.
    pub fn begin(&self) -> Transaction {
        let m = self.inner.lock();
        Transaction {
            root: m.root.clone(),
            snapshot_version: m.version,
            log: Vec::new(),
            own_inserts: FxHashSet::default(),
            write_set: FxHashSet::default(),
            touched_foreign_inserts: false,
        }
    }

    /// The committed image for a read-only scan: (root, version, row count).
    pub fn snapshot(&self) -> (Link, u64, u64) {
        let m = self.inner.lock();
        (m.root.clone(), m.version, size(&m.root))
    }

    /// Rows visible in the committed image.
    pub fn visible_rows(&self) -> u64 {
        size(&self.inner.lock().root)
    }

    /// Committed delta counters, recomputed from the image (O(#deltas)).
    pub fn stats(&self) -> PdtStats {
        let m = self.inner.lock();
        compute_stats(&m.root, m.n_stable)
    }

    /// Commit `txn`, returning the new version.
    ///
    /// Fails with [`VwError::TxnConflict`] if any stable row written by this
    /// transaction was also written by a transaction that committed after
    /// this one's snapshot (write-write conflict on position), or if a
    /// checkpoint invalidated the snapshot's stable coordinates.
    pub fn commit(&self, txn: Transaction) -> Result<u64> {
        let mut m = self.inner.lock();
        if txn.snapshot_version < m.checkpoint_version {
            return Err(VwError::TxnConflict(
                "snapshot predates a checkpoint; restart transaction".into(),
            ));
        }

        if txn.touched_foreign_inserts && m.version != txn.snapshot_version {
            return Err(VwError::TxnConflict(
                "a concurrent commit raced with edits to PDT-resident inserted rows;                  retry the transaction"
                    .into(),
            ));
        }

        if m.version == txn.snapshot_version {
            // Serial fast path: nothing committed since the snapshot, so the
            // transaction's image is exactly the next master image.
            m.version += 1;
            let version = m.version;
            if !txn.write_set.is_empty() {
                m.commit_log.push((version, txn.write_set));
            }
            m.root = txn.root;
            return Ok(version);
        }

        for (ver, sids) in m.commit_log.iter().rev() {
            if *ver <= txn.snapshot_version {
                break;
            }
            if !txn.write_set.is_disjoint(sids) {
                return Err(VwError::TxnConflict(format!(
                    "write-write conflict with commit version {ver}"
                )));
            }
        }

        // Replay deletes/modifies by SID onto the current master image.
        let mut root = m.root.clone();
        for op in &txn.log {
            match op {
                Op::DeleteStable { sid } => {
                    let rid = locate_sid(&root, *sid)?;
                    let (a, b) = split(root, rid);
                    let (_, c) = split(b, 1);
                    root = merge(a, c);
                }
                Op::ModifyStable { sid, col, value } => {
                    let rid = locate_sid(&root, *sid)?;
                    let (piece, _) = get_at(&root, rid).expect("rid in range");
                    let mods = match piece {
                        Piece::StableMod { mods, .. } => {
                            let mut v = (*mods).clone();
                            match v.iter_mut().find(|(c, _)| c == col) {
                                Some(slot) => slot.1 = value.clone(),
                                None => v.push((*col, value.clone())),
                            }
                            Arc::new(v)
                        }
                        Piece::StableRun { .. } => Arc::new(vec![(*col, value.clone())]),
                        Piece::Insert { .. } => unreachable!("sid lookup returned insert"),
                    };
                    let (a, b) = split(root, rid);
                    let (_, c) = split(b, 1);
                    let node = leaf(prio_for(self.next_id()), Piece::StableMod { sid: *sid, mods });
                    root = merge(a, merge(node, c));
                }
            }
        }

        // Replay the transaction's own inserts in its image order,
        // re-anchored to surviving stable predecessors.
        let mut planned: Vec<(Anchor, Arc<Vec<Value>>)> = Vec::new();
        {
            let mut last_anchor = Anchor::Front;
            for_each_piece(&txn.root, &mut |p| match p {
                Piece::StableRun { sid, len } => {
                    last_anchor = Anchor::AfterSid(sid + len - 1);
                }
                Piece::StableMod { sid, .. } => {
                    last_anchor = Anchor::AfterSid(*sid);
                }
                Piece::Insert { id, row } => {
                    if txn.own_inserts.contains(id) {
                        planned.push((last_anchor, row.clone()));
                    }
                }
            });
        }
        let mut anchor_offsets: FxHashMap<Anchor, u64> = FxHashMap::default();
        for (anchor, row) in planned {
            let base = match anchor {
                Anchor::Front => 0,
                Anchor::AfterSid(sid) => match find_stable_at_or_before(&root, sid) {
                    Some((rid, _)) => rid + 1,
                    None => 0,
                },
            };
            let off = anchor_offsets.entry(anchor).or_insert(0);
            let pos = (base + *off).min(size(&root));
            *off += 1;
            let (a, b) = split(root, pos);
            let node = leaf(prio_for(self.next_id()), Piece::Insert { id: self.next_id(), row });
            root = merge(a, merge(node, b));
        }

        m.version += 1;
        let version = m.version;
        if !txn.write_set.is_empty() {
            m.commit_log.push((version, txn.write_set));
        }
        m.root = root;
        Ok(version)
    }

    /// Discard all deltas and point at a freshly checkpointed stable table of
    /// `n_stable` rows. In-flight transactions will fail their commit.
    pub fn reset_after_checkpoint(&self, n_stable: u64) {
        let mut m = self.inner.lock();
        m.root = if n_stable == 0 {
            None
        } else {
            leaf(prio_for(self.next_id()), Piece::StableRun { sid: 0, len: n_stable })
        };
        m.version += 1;
        m.n_stable = n_stable;
        m.checkpoint_version = m.version;
        m.commit_log.clear();
    }
}

/// Find the RID of exactly `sid`, or report the row as vanished.
fn locate_sid(root: &Link, sid: u64) -> Result<u64> {
    match find_stable_at_or_before(root, sid) {
        Some((rid, found)) if found == sid => Ok(rid),
        _ => Err(VwError::TxnConflict(format!("row sid={sid} vanished"))),
    }
}

fn compute_stats(root: &Link, n_stable: u64) -> PdtStats {
    let mut stable_visible = 0u64;
    let mut inserts = 0u64;
    let mut modifies = 0u64;
    for_each_piece(root, &mut |p| match p {
        Piece::StableRun { len, .. } => stable_visible += len,
        Piece::StableMod { mods, .. } => {
            stable_visible += 1;
            modifies += mods.len() as u64;
        }
        Piece::Insert { .. } => inserts += 1,
    });
    PdtStats { inserts, deletes: n_stable - stable_visible, modifies }
}

/// Collect the merge stream of an image root (scan driver).
pub fn items(root: &Link) -> Vec<MergeItem> {
    let mut out: Vec<MergeItem> = Vec::new();
    for_each_piece(root, &mut |p| {
        let item = match p {
            Piece::StableRun { sid, len } => MergeItem::Stable { sid: *sid, len: *len },
            Piece::StableMod { sid, mods } => {
                MergeItem::StableMod { sid: *sid, mods: mods.clone() }
            }
            Piece::Insert { row, .. } => MergeItem::Insert { row: row.clone() },
        };
        // Coalesce adjacent stable runs (splits leave seams that would
        // otherwise fragment scans forever).
        if let (Some(MergeItem::Stable { sid, len }), MergeItem::Stable { sid: s2, len: l2 }) =
            (out.last_mut(), &item)
        {
            if *sid + *len == *s2 {
                *len += l2;
                return;
            }
        }
        out.push(item);
    });
    out
}

impl Transaction {
    /// Rows visible to this transaction.
    pub fn n_rows(&self) -> u64 {
        size(&self.root)
    }

    /// This transaction's private image root (for scanning its own view).
    pub fn image(&self) -> &Link {
        &self.root
    }

    fn check_rid(&self, rid: u64, inclusive_end: bool) -> Result<()> {
        let n = self.n_rows();
        let ok = if inclusive_end { rid <= n } else { rid < n };
        if !ok {
            return Err(VwError::Exec(format!(
                "row position {rid} out of range (visible rows: {n})"
            )));
        }
        Ok(())
    }

    /// Insert `row` so that it becomes the row at position `rid`
    /// (`rid == n_rows()` appends).
    pub fn insert_at(&mut self, rid: u64, row: Vec<Value>) -> Result<()> {
        self.check_rid(rid, true)?;
        let insert_id = NEXT_LOCAL.fetch_add(1, Ordering::Relaxed);
        let node = leaf(prio_for(insert_id), Piece::Insert { id: insert_id, row: Arc::new(row) });
        let (before, after) = split(self.root.clone(), rid);
        self.root = merge(before, merge(node, after));
        self.own_inserts.insert(insert_id);
        Ok(())
    }

    /// Append `row` at the end of the image.
    pub fn append(&mut self, row: Vec<Value>) -> Result<()> {
        self.insert_at(self.n_rows(), row)
    }

    /// Delete the row at position `rid`.
    pub fn delete_at(&mut self, rid: u64) -> Result<()> {
        self.check_rid(rid, false)?;
        let (piece, off) = get_at(&self.root, rid).expect("checked rid");
        match &piece {
            Piece::StableRun { sid, .. } => {
                let sid = sid + off;
                self.write_set.insert(sid);
                self.log.push(Op::DeleteStable { sid });
            }
            Piece::StableMod { sid, .. } => {
                self.write_set.insert(*sid);
                self.log.push(Op::DeleteStable { sid: *sid });
            }
            Piece::Insert { id, .. } => {
                if !self.own_inserts.remove(id) {
                    // A committed-but-unckeckpointed insert: the removal is
                    // only expressible through the serial fast path.
                    self.touched_foreign_inserts = true;
                }
            }
        }
        let (a, b) = split(self.root.clone(), rid);
        let (_, c) = split(b, 1);
        self.root = merge(a, c);
        Ok(())
    }

    /// Set column `col` of the row at position `rid` to `value`.
    pub fn update_at(&mut self, rid: u64, col: usize, value: Value) -> Result<()> {
        self.check_rid(rid, false)?;
        let (piece, off) = get_at(&self.root, rid).expect("checked rid");
        let new_piece = match &piece {
            Piece::StableRun { sid, .. } => {
                let sid = sid + off;
                self.write_set.insert(sid);
                self.log.push(Op::ModifyStable { sid, col, value: value.clone() });
                Piece::StableMod { sid, mods: Arc::new(vec![(col, value)]) }
            }
            Piece::StableMod { sid, mods } => {
                self.write_set.insert(*sid);
                self.log.push(Op::ModifyStable { sid: *sid, col, value: value.clone() });
                let mut v = (**mods).clone();
                match v.iter_mut().find(|(c, _)| *c == col) {
                    Some(slot) => slot.1 = value,
                    None => v.push((col, value)),
                }
                Piece::StableMod { sid: *sid, mods: Arc::new(v) }
            }
            Piece::Insert { id, row } => {
                if !self.own_inserts.contains(id) {
                    self.touched_foreign_inserts = true;
                }
                let mut r = (**row).clone();
                if col >= r.len() {
                    return Err(VwError::Exec(format!("column {col} out of range")));
                }
                r[col] = value;
                Piece::Insert { id: *id, row: Arc::new(r) }
            }
        };
        let (a, b) = split(self.root.clone(), rid);
        let (_, c) = split(b, 1);
        let node = leaf(prio_for(NEXT_LOCAL.fetch_add(1, Ordering::Relaxed)), new_piece);
        self.root = merge(a, merge(node, c));
        Ok(())
    }

    /// Number of pending logged operations plus live own inserts
    /// (diagnostics).
    pub fn pending_ops(&self) -> usize {
        self.log.len() + self.own_inserts.len()
    }
}

static NEXT_LOCAL: AtomicU64 = AtomicU64::new(1 << 32);

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: i64) -> Vec<Value> {
        vec![Value::I64(v)]
    }

    /// Flatten an image into (Option<sid>, Option<row>) for assertions.
    fn flat(root: &Link) -> Vec<(Option<u64>, Option<i64>)> {
        let mut out = Vec::new();
        for item in items(root) {
            match item {
                MergeItem::Stable { sid, len } => {
                    for s in sid..sid + len {
                        out.push((Some(s), None));
                    }
                }
                MergeItem::StableMod { sid, .. } => out.push((Some(sid), None)),
                MergeItem::Insert { row } => {
                    let Value::I64(v) = row[0] else { panic!() };
                    out.push((None, Some(v)));
                }
            }
        }
        out
    }

    #[test]
    fn insert_delete_modify_roundtrip() {
        let store = PdtStore::new(10);
        let mut t = store.begin();
        t.insert_at(3, row(100)).unwrap();
        assert_eq!(t.n_rows(), 11);
        t.delete_at(0).unwrap();
        assert_eq!(t.n_rows(), 10);
        t.update_at(5, 0, Value::I64(-1)).unwrap();
        store.commit(t).unwrap();

        let (root, _, n) = store.snapshot();
        assert_eq!(n, 10);
        let f = flat(&root);
        // Started 0..10; deleted sid0; inserted before old rid3 (sid 3).
        assert_eq!(f[0], (Some(1), None));
        assert_eq!(f[2], (None, Some(100)));
        assert_eq!(f[3], (Some(3), None));
        let stats = store.stats();
        assert_eq!(stats, PdtStats { inserts: 1, deletes: 1, modifies: 1 });
    }

    #[test]
    fn append_and_visible_rows() {
        let store = PdtStore::new(0);
        let mut t = store.begin();
        for i in 0..5 {
            t.append(row(i)).unwrap();
        }
        store.commit(t).unwrap();
        assert_eq!(store.visible_rows(), 5);
        let (root, _, _) = store.snapshot();
        let f = flat(&root);
        assert_eq!(f.iter().map(|x| x.1.unwrap()).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn out_of_order_inserts_keep_image_order() {
        let store = PdtStore::new(0);
        let mut t = store.begin();
        t.insert_at(0, row(1)).unwrap(); // [1]
        t.insert_at(0, row(2)).unwrap(); // [2,1]
        t.insert_at(1, row(3)).unwrap(); // [2,3,1]
        store.commit(t).unwrap();
        let (root, _, _) = store.snapshot();
        let vals: Vec<i64> = flat(&root).iter().map(|x| x.1.unwrap()).collect();
        assert_eq!(vals, vec![2, 3, 1]);
    }

    #[test]
    fn snapshot_isolation() {
        let store = PdtStore::new(4);
        let t_reader = store.begin();
        let mut t_writer = store.begin();
        t_writer.delete_at(0).unwrap();
        store.commit(t_writer).unwrap();
        // Reader still sees 4 rows; new snapshot sees 3.
        assert_eq!(t_reader.n_rows(), 4);
        assert_eq!(store.visible_rows(), 3);
    }

    #[test]
    fn write_write_conflict_detected() {
        let store = PdtStore::new(4);
        let mut a = store.begin();
        let mut b = store.begin();
        a.update_at(2, 0, Value::I64(1)).unwrap();
        b.update_at(2, 0, Value::I64(2)).unwrap();
        store.commit(a).unwrap();
        let err = store.commit(b).unwrap_err();
        assert!(matches!(err, VwError::TxnConflict(_)));
    }

    #[test]
    fn disjoint_writers_both_commit() {
        let store = PdtStore::new(4);
        let mut a = store.begin();
        let mut b = store.begin();
        a.update_at(1, 0, Value::I64(1)).unwrap();
        b.update_at(3, 0, Value::I64(2)).unwrap();
        store.commit(a).unwrap();
        store.commit(b).unwrap();
        let stats = store.stats();
        assert_eq!(stats.modifies, 2);
    }

    #[test]
    fn concurrent_inserts_merge() {
        let store = PdtStore::new(2);
        let mut a = store.begin();
        let mut b = store.begin();
        a.insert_at(1, row(10)).unwrap();
        b.insert_at(1, row(20)).unwrap();
        store.commit(a).unwrap();
        store.commit(b).unwrap();
        assert_eq!(store.visible_rows(), 4);
        let (root, _, _) = store.snapshot();
        let f = flat(&root);
        assert_eq!(f[0], (Some(0), None));
        assert_eq!(f[3], (Some(1), None));
        // Both inserts landed between the stable rows (order unspecified).
        assert!(f[1].1.is_some() && f[2].1.is_some());
    }

    #[test]
    fn delete_own_insert_cancels() {
        let store = PdtStore::new(2);
        let mut t = store.begin();
        t.insert_at(1, row(10)).unwrap();
        t.delete_at(1).unwrap();
        assert_eq!(t.pending_ops(), 0, "insert+delete must cancel out");
        store.commit(t).unwrap();
        assert_eq!(store.visible_rows(), 2);
        assert_eq!(store.stats().total(), 0);
    }

    #[test]
    fn update_own_insert_keeps_value() {
        let store = PdtStore::new(0);
        let mut t = store.begin();
        t.append(row(1)).unwrap();
        t.update_at(0, 0, Value::I64(42)).unwrap();
        store.commit(t).unwrap();
        let (root, _, _) = store.snapshot();
        assert_eq!(flat(&root)[0].1, Some(42));
    }

    #[test]
    fn delete_then_insert_at_same_position() {
        let store = PdtStore::new(5);
        let mut t = store.begin();
        t.delete_at(2).unwrap(); // deletes sid2
        t.insert_at(2, row(99)).unwrap();
        store.commit(t).unwrap();
        let (root, _, _) = store.snapshot();
        let f = flat(&root);
        assert_eq!(f.len(), 5);
        assert_eq!(f[2], (None, Some(99)));
        assert_eq!(f[3], (Some(3), None));
    }

    #[test]
    fn conflicting_delete_delete() {
        let store = PdtStore::new(3);
        let mut a = store.begin();
        let mut b = store.begin();
        a.delete_at(1).unwrap();
        b.delete_at(1).unwrap();
        store.commit(a).unwrap();
        assert!(store.commit(b).is_err());
        assert_eq!(store.visible_rows(), 2);
    }

    #[test]
    fn concurrent_insert_replay_against_changed_image() {
        let store = PdtStore::new(10);
        // Txn B inserts after sid 5 while txn A deletes sids 4..=6.
        let mut a = store.begin();
        let mut b = store.begin();
        b.insert_at(6, row(77)).unwrap(); // lands after sid 5 in b's image
        for _ in 0..3 {
            a.delete_at(4).unwrap(); // deletes sids 4,5,6
        }
        store.commit(a).unwrap();
        store.commit(b).unwrap();
        let (root, _, _) = store.snapshot();
        let f = flat(&root);
        assert_eq!(f.len(), 8); // 10 - 3 + 1
                                // The insert re-anchored to the nearest surviving predecessor (sid 3).
        let pos = f.iter().position(|x| x.1 == Some(77)).unwrap();
        assert_eq!(f[pos - 1], (Some(3), None));
        assert_eq!(f[pos + 1], (Some(7), None));
    }

    #[test]
    fn checkpoint_invalidates_old_snapshots() {
        let store = PdtStore::new(3);
        let mut t = store.begin();
        t.delete_at(0).unwrap();
        store.reset_after_checkpoint(3);
        assert!(matches!(store.commit(t), Err(VwError::TxnConflict(_))));
        assert_eq!(store.visible_rows(), 3);
        assert_eq!(store.stats().total(), 0);
    }

    #[test]
    fn out_of_range_positions_error() {
        let store = PdtStore::new(2);
        let mut t = store.begin();
        assert!(t.delete_at(2).is_err());
        assert!(t.update_at(5, 0, Value::I64(0)).is_err());
        assert!(t.insert_at(3, row(0)).is_err());
        t.insert_at(2, row(0)).unwrap(); // == n_rows: append OK
    }

    #[test]
    fn modify_same_column_twice_counts_once() {
        let store = PdtStore::new(2);
        let mut t = store.begin();
        t.update_at(0, 0, Value::I64(1)).unwrap();
        t.update_at(0, 0, Value::I64(2)).unwrap();
        store.commit(t).unwrap();
        assert_eq!(store.stats().modifies, 1);
        let (root, _, _) = store.snapshot();
        match &items(&root)[0] {
            MergeItem::StableMod { mods, .. } => {
                assert_eq!(mods.as_slice(), &[(0, Value::I64(2))]);
            }
            other => panic!("expected StableMod, got {other:?}"),
        }
    }

    #[test]
    fn items_coalesce_seams() {
        let store = PdtStore::new(100);
        let mut t = store.begin();
        // Insert then delete elsewhere leaves run splits behind.
        t.insert_at(50, row(1)).unwrap();
        t.delete_at(50).unwrap();
        store.commit(t).unwrap();
        let (root, _, _) = store.snapshot();
        let it = items(&root);
        assert_eq!(it, vec![MergeItem::Stable { sid: 0, len: 100 }]);
    }

    #[test]
    fn many_scattered_updates_stay_fast() {
        let store = PdtStore::new(100_000);
        let mut t = store.begin();
        // 10k scattered ops; O(log n) each.
        for i in 0..10_000u64 {
            let pos = (i * 7919) % t.n_rows();
            match i % 3 {
                0 => t.delete_at(pos).unwrap(),
                1 => t.insert_at(pos, row(i as i64)).unwrap(),
                _ => {
                    // Position may hit an insert from this txn; both paths OK.
                    let _ = t.update_at(pos, 0, Value::I64(i as i64));
                }
            }
        }
        store.commit(t).unwrap();
        let stats = store.stats();
        assert!(stats.total() > 6000);
        // Image size must be consistent: 100k - deletes + inserts.
        assert_eq!(store.visible_rows(), 100_000 - stats.deletes + stats.inserts);
    }
}
