//! SQL lexer: hand-written, case-insensitive keywords, `'...'` strings with
//! doubled-quote escapes, integer/float literals, `--` line comments.

use vw_common::{Result, VwError};

/// One token with its source position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (uppercased for keywords at parse time).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    /// Punctuation / operator.
    Sym(&'static str),
    /// End of input.
    Eof,
}

/// Tokenize `sql` fully.
pub fn lex(sql: &str) -> Result<Vec<Tok>> {
    let b = sql.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    let err = |i: usize, msg: &str| VwError::Parse(format!("{msg} at byte {i}"));
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < b.len() && b[i + 1] == b'-' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= b.len() {
                        return Err(err(i, "unterminated string literal"));
                    }
                    if b[i] == b'\'' {
                        if i + 1 < b.len() && b[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    // Multi-byte UTF-8 passes through untouched.
                    let ch_len = utf8_len(b[i]);
                    s.push_str(
                        std::str::from_utf8(&b[i..i + ch_len])
                            .map_err(|_| err(i, "invalid UTF-8 in string literal"))?,
                    );
                    i += ch_len;
                }
                out.push(Tok::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < b.len() && b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                    let save = i;
                    i += 1;
                    if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
                        i += 1;
                    }
                    if i < b.len() && b[i].is_ascii_digit() {
                        is_float = true;
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                    } else {
                        i = save;
                    }
                }
                let text = &sql[start..i];
                if is_float {
                    out.push(Tok::Float(text.parse().map_err(|_| err(start, "bad float"))?));
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => out.push(Tok::Int(v)),
                        Err(_) => out
                            .push(Tok::Float(text.parse().map_err(|_| err(start, "bad number"))?)),
                    }
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Tok::Ident(sql[start..i].to_string()));
            }
            '<' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Tok::Sym("<="));
                    i += 2;
                } else if i + 1 < b.len() && b[i + 1] == b'>' {
                    out.push(Tok::Sym("<>"));
                    i += 2;
                } else {
                    out.push(Tok::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Tok::Sym(">="));
                    i += 2;
                } else {
                    out.push(Tok::Sym(">"));
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Tok::Sym("<>"));
                    i += 2;
                } else {
                    return Err(err(i, "unexpected '!'"));
                }
            }
            '=' => {
                out.push(Tok::Sym("="));
                i += 1;
            }
            '+' => {
                out.push(Tok::Sym("+"));
                i += 1;
            }
            '-' => {
                out.push(Tok::Sym("-"));
                i += 1;
            }
            '*' => {
                out.push(Tok::Sym("*"));
                i += 1;
            }
            '/' => {
                out.push(Tok::Sym("/"));
                i += 1;
            }
            '%' => {
                out.push(Tok::Sym("%"));
                i += 1;
            }
            '(' => {
                out.push(Tok::Sym("("));
                i += 1;
            }
            ')' => {
                out.push(Tok::Sym(")"));
                i += 1;
            }
            ',' => {
                out.push(Tok::Sym(","));
                i += 1;
            }
            ';' => {
                out.push(Tok::Sym(";"));
                i += 1;
            }
            '.' => {
                out.push(Tok::Sym("."));
                i += 1;
            }
            other => return Err(err(i, &format!("unexpected character '{other}'"))),
        }
    }
    out.push(Tok::Eof);
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = lex("SELECT a, 42 FROM t WHERE b <= 3.5 AND c <> 'x''y'").unwrap();
        assert!(toks.contains(&Tok::Ident("SELECT".into())));
        assert!(toks.contains(&Tok::Int(42)));
        assert!(toks.contains(&Tok::Float(3.5)));
        assert!(toks.contains(&Tok::Sym("<=")));
        assert!(toks.contains(&Tok::Sym("<>")));
        assert!(toks.contains(&Tok::Str("x'y".into())));
        assert_eq!(toks.last(), Some(&Tok::Eof));
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("SELECT 1 -- the answer\n, 2").unwrap();
        assert!(toks.contains(&Tok::Int(1)));
        assert!(toks.contains(&Tok::Int(2)));
        assert!(!toks.iter().any(|t| matches!(t, Tok::Ident(s) if s == "answer")));
    }

    #[test]
    fn bang_equals_normalized() {
        let toks = lex("a != b").unwrap();
        assert!(toks.contains(&Tok::Sym("<>")));
    }

    #[test]
    fn errors_on_garbage() {
        assert!(lex("SELECT #").is_err());
        assert!(lex("'unterminated").is_err());
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn huge_int_becomes_float() {
        let toks = lex("99999999999999999999").unwrap();
        assert!(matches!(toks[0], Tok::Float(_)));
    }

    #[test]
    fn scientific_notation() {
        let toks = lex("1e3 2.5E-2").unwrap();
        assert_eq!(toks[0], Tok::Float(1000.0));
        assert_eq!(toks[1], Tok::Float(0.025));
    }

    #[test]
    fn unicode_in_strings() {
        let toks = lex("'héllo мир'").unwrap();
        assert_eq!(toks[0], Tok::Str("héllo мир".into()));
    }
}
