//! # vw-sql — SQL front-end and Ingres-style optimizer
//!
//! The "SQL Parser", "Ingres Rewriter (slightly modified)" and "Ingres
//! Optimizer (heavily modified)" boxes of Figure 1. As DESIGN.md records,
//! Ingres itself is proprietary; this crate provides the equivalent
//! pipeline stage: a hand-written SQL [lexer]/[parser], a
//! [binder] that resolves names and types against a catalog and
//! produces a typed [logical plan](plan), and a histogram-driven
//! [optimizer] doing constant folding, predicate pushdown,
//! projection pruning, selectivity-ordered greedy join ordering and
//! functional-dependency-based GROUP BY simplification — the features the
//! paper explicitly says were added to the Ingres optimizer.
//!
//! Subqueries follow the paper's join-based treatment: `IN (SELECT …)`
//! binds to a **left semi join**, `EXISTS` likewise, `NOT EXISTS` to a left
//! anti join, and `NOT IN` to the **NULL-aware left anti join** whose SQL
//! semantics the paper singles out as treacherous.
//!
//! The output of this crate ([`plan::LogicalPlan`] over [`expr::SqlExpr`])
//! still contains SQL-level "extended functions" (`COALESCE`, `NULLIF`,
//! `IFNULL`, `GREATEST`, …). Expanding those into kernel primitives is
//! *deliberately not done here*: that is the job of `vw-rewriter`, exactly
//! as in Vectorwise ("Some functions were implemented in the rewriter
//! phase, by simplifying them or expressing as combinations of other
//! functions").

pub mod ast;
pub mod binder;
pub mod expr;
pub mod functions;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod plan;

pub use binder::{Binder, CatalogView};
pub use expr::{ExtFunc, SqlExpr};
pub use plan::{AggCall, JoinKind, LogicalPlan};

use vw_common::Result;

/// Parse a SQL string into statements.
pub fn parse(sql: &str) -> Result<Vec<ast::Statement>> {
    parser::Parser::new(sql)?.parse_statements()
}
