//! The binder: resolves names against a catalog, types every expression,
//! and produces a [`LogicalPlan`].
//!
//! Subqueries bind to joins (the anti-join NULL intricacies the paper warns
//! about are decided *here*): `IN` → semi join, `EXISTS` → semi join on a
//! constant key, `NOT EXISTS` → anti join, `NOT IN` → NULL-aware anti join.

use crate::ast::{self, AstJoinKind, Expr, SelectItem, SelectStmt, TableRef};
use crate::expr::{BinOp, CmpOp, KernelFunc, SqlExpr};
use crate::functions::{self, FuncImpl};
use crate::plan::{AggCall, AggFunc, JoinKind, LogicalPlan};
use vw_common::date::DateField;
use vw_common::{Field, Result, Schema, TypeId, Value, VwError};

/// Read-only view of the catalog the binder and optimizer need.
///
/// The two schema/row methods are required (the binder cannot work without
/// them); the statistics methods have conservative `None` defaults so
/// lightweight implementers (mock catalogs, the DML helper views) keep
/// compiling while the engine's catalog adapter serves real numbers from
/// `vw_storage::stats`. Returning `None` from a statistics method makes
/// the cost model fall back to its structural defaults — implementers
/// should also return `None` when their statistics are stale (DML since
/// the last rebuild), so the planner never consumes dead numbers.
pub trait CatalogView {
    /// Schema of `name`, if the table exists.
    fn table_schema(&self, name: &str) -> Option<Schema>;
    /// Row-count estimate for the optimizer.
    fn table_rows(&self, name: &str) -> Option<u64>;

    /// Distinct-value estimate for base-table column `col` of `table`
    /// (`None` = unknown or stale). Feeds equality selectivities
    /// (`1/n_distinct`) and the join-cardinality formula.
    fn column_distinct(&self, _table: &str, _col: usize) -> Option<u64> {
        None
    }

    /// Histogram selectivity estimate for `lo <= col <= hi` over `table`
    /// (bounds inclusive; a missing bound leaves that side open). `None`
    /// when no fresh histogram exists for the column.
    fn column_range_selectivity(
        &self,
        _table: &str,
        _col: usize,
        _lo: Option<&Value>,
        _hi: Option<&Value>,
    ) -> Option<f64> {
        None
    }
}

fn berr(msg: impl Into<String>) -> VwError {
    VwError::Bind(msg.into())
}

/// One visible column during binding.
#[derive(Debug, Clone)]
struct ScopeCol {
    qualifier: Option<String>,
    name: String,
    ty: TypeId,
    nullable: bool,
}

/// The set of columns visible to expressions.
#[derive(Debug, Clone, Default)]
struct Scope {
    cols: Vec<ScopeCol>,
}

impl Scope {
    fn from_schema(qualifier: Option<&str>, schema: &Schema) -> Scope {
        Scope {
            cols: schema
                .fields
                .iter()
                .map(|f| ScopeCol {
                    qualifier: qualifier.map(|s| s.to_string()),
                    name: f.name.clone(),
                    ty: f.ty,
                    nullable: f.nullable,
                })
                .collect(),
        }
    }

    fn concat(mut self, other: Scope) -> Scope {
        self.cols.extend(other.cols);
        self
    }

    fn resolve(&self, parts: &[String]) -> Result<(usize, TypeId)> {
        let (qual, name) = match parts {
            [n] => (None, n.as_str()),
            [q, n] => (Some(q.as_str()), n.as_str()),
            _ => return Err(berr(format!("bad identifier {parts:?}"))),
        };
        let mut found = None;
        for (i, c) in self.cols.iter().enumerate() {
            let qual_ok = match (qual, &c.qualifier) {
                (None, _) => true,
                (Some(q), Some(cq)) => q.eq_ignore_ascii_case(cq),
                (Some(_), None) => false,
            };
            if qual_ok && c.name.eq_ignore_ascii_case(name) {
                if found.is_some() {
                    return Err(berr(format!("ambiguous column '{}'", parts.join("."))));
                }
                found = Some((i, c.ty));
            }
        }
        found.ok_or_else(|| berr(format!("unknown column '{}'", parts.join("."))))
    }

    fn to_schema(&self) -> Schema {
        Schema::unchecked(
            self.cols
                .iter()
                .map(|c| Field { name: c.name.clone(), ty: c.ty, nullable: c.nullable })
                .collect(),
        )
    }
}

/// The binder.
pub struct Binder<'a> {
    catalog: &'a dyn CatalogView,
}

const AGG_NAMES: [&str; 5] = ["COUNT", "SUM", "MIN", "MAX", "AVG"];

fn contains_agg(e: &Expr) -> bool {
    match e {
        Expr::Func { name, .. } if AGG_NAMES.contains(&name.as_str()) => true,
        Expr::Binary { left, right, .. } => contains_agg(left) || contains_agg(right),
        Expr::Neg(e) | Expr::Not(e) | Expr::Cast { expr: e, .. } => contains_agg(e),
        Expr::IsNull { expr, .. } => contains_agg(expr),
        Expr::Between { expr, low, high, .. } => {
            contains_agg(expr) || contains_agg(low) || contains_agg(high)
        }
        Expr::Like { expr, .. } => contains_agg(expr),
        Expr::InList { expr, list, .. } => contains_agg(expr) || list.iter().any(contains_agg),
        Expr::Case { branches, else_expr } => {
            branches.iter().any(|(c, v)| contains_agg(c) || contains_agg(v))
                || else_expr.as_deref().is_some_and(contains_agg)
        }
        Expr::Func { args, .. } => args.iter().any(contains_agg),
        Expr::Extract { expr, .. } => contains_agg(expr),
        _ => false,
    }
}

impl<'a> Binder<'a> {
    /// A binder over `catalog`.
    pub fn new(catalog: &'a dyn CatalogView) -> Binder<'a> {
        Binder { catalog }
    }

    /// Bind a full SELECT into a logical plan.
    pub fn bind_select(&self, stmt: &SelectStmt) -> Result<LogicalPlan> {
        // FROM.
        let (mut plan, scope) = match &stmt.from {
            Some(tr) => self.bind_table_ref(tr)?,
            None => {
                // One-row dual for FROM-less SELECT.
                let schema = Schema::unchecked(vec![Field::not_null("__dual", TypeId::I64)]);
                (
                    LogicalPlan::Values { schema: schema.clone(), rows: vec![vec![Value::I64(0)]] },
                    Scope::from_schema(None, &schema),
                )
            }
        };

        // WHERE: ordinary conjuncts filter; subquery conjuncts become joins.
        if let Some(w) = &stmt.where_clause {
            let mut plain: Vec<SqlExpr> = Vec::new();
            for conjunct in split_conjuncts(w) {
                // `NOT EXISTS` / `NOT (x IN (...))` arrive wrapped in Not.
                let (conjunct, flip) = match conjunct {
                    Expr::Not(inner)
                        if matches!(
                            inner.as_ref(),
                            Expr::Exists { .. } | Expr::InSubquery { .. }
                        ) =>
                    {
                        (inner.as_ref(), true)
                    }
                    other => (other, false),
                };
                match conjunct {
                    Expr::InSubquery { expr, subquery, negated } => {
                        plan =
                            self.bind_in_subquery(plan, &scope, expr, subquery, *negated != flip)?;
                    }
                    Expr::Exists { subquery, negated } => {
                        plan = self.bind_exists(plan, subquery, *negated != flip)?;
                    }
                    other => plain.push(self.bind_expr(other, &scope)?),
                }
            }
            for p in plain {
                if p.type_id() != TypeId::Bool {
                    return Err(berr("WHERE predicate must be boolean"));
                }
                plan = LogicalPlan::Filter { input: Box::new(plan), predicate: p };
            }
        }

        // Aggregation?
        let has_agg = !stmt.group_by.is_empty()
            || stmt.items.iter().any(|i| match i {
                SelectItem::Expr { expr, .. } => contains_agg(expr),
                SelectItem::Wildcard => false,
            })
            || stmt.having.as_ref().is_some_and(contains_agg);

        let (mut plan, out_schema) = if has_agg {
            self.bind_aggregate_query(plan, scope, stmt)?
        } else {
            self.bind_plain_projection(plan, &scope, stmt)?
        };

        // ORDER BY over the output schema.
        if !stmt.order_by.is_empty() {
            let mut keys = Vec::new();
            for (e, asc, nulls_first) in &stmt.order_by {
                let idx = self.resolve_order_key(e, &out_schema)?;
                keys.push((idx, *asc, *nulls_first));
            }
            plan = LogicalPlan::Sort { input: Box::new(plan), keys };
        }

        if stmt.limit.is_some() || stmt.offset.is_some() {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                offset: stmt.offset.unwrap_or(0),
                limit: stmt.limit.unwrap_or(u64::MAX),
            };
        }
        Ok(plan)
    }

    fn resolve_order_key(&self, e: &Expr, out: &Schema) -> Result<usize> {
        match e {
            Expr::Lit(Value::I64(pos)) => {
                let p = *pos;
                if p >= 1 && (p as usize) <= out.len() {
                    Ok(p as usize - 1)
                } else {
                    Err(berr(format!("ORDER BY position {p} out of range")))
                }
            }
            Expr::Ident(parts) => {
                let name = parts.last().expect("nonempty identifier");
                out.index_of(name)
                    .ok_or_else(|| berr(format!("ORDER BY: unknown output column '{name}'")))
            }
            _ => Err(berr("ORDER BY supports output column names or positions")),
        }
    }

    fn bind_plain_projection(
        &self,
        plan: LogicalPlan,
        scope: &Scope,
        stmt: &SelectStmt,
    ) -> Result<(LogicalPlan, Schema)> {
        let mut exprs = Vec::new();
        let mut fields = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Wildcard => {
                    for (i, c) in scope.cols.iter().enumerate() {
                        exprs.push(SqlExpr::Col(i, c.ty));
                        fields.push(Field { name: c.name.clone(), ty: c.ty, nullable: c.nullable });
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_expr(expr, scope)?;
                    let name = alias.clone().unwrap_or_else(|| display_name(expr));
                    fields.push(Field { name, ty: bound.type_id(), nullable: true });
                    exprs.push(bound);
                }
            }
        }
        let schema = Schema::unchecked(fields);
        Ok((LogicalPlan::Project { input: Box::new(plan), exprs, schema: schema.clone() }, schema))
    }

    fn bind_aggregate_query(
        &self,
        plan: LogicalPlan,
        scope: Scope,
        stmt: &SelectStmt,
    ) -> Result<(LogicalPlan, Schema)> {
        // 1. Group expressions.
        let mut group: Vec<SqlExpr> = Vec::new();
        let mut group_names: Vec<String> = Vec::new();
        for g in &stmt.group_by {
            let bound = self.bind_expr(g, &scope)?;
            if !group.contains(&bound) {
                group.push(bound);
                group_names.push(display_name(g));
            }
        }
        // 2. Collect aggregate calls from items and HAVING.
        let mut aggs: Vec<AggCall> = Vec::new();
        let mut collect = |e: &Expr| -> Result<()> { self.collect_aggs(e, &scope, &mut aggs) };
        for item in &stmt.items {
            if let SelectItem::Expr { expr, .. } = item {
                collect(expr)?;
            } else {
                return Err(berr("SELECT * cannot be combined with GROUP BY"));
            }
        }
        if let Some(h) = &stmt.having {
            collect(h)?;
        }
        // 3. Aggregate output schema.
        let mut agg_fields: Vec<Field> = Vec::new();
        for (i, g) in group.iter().enumerate() {
            agg_fields.push(Field {
                name: group_names[i].clone(),
                ty: g.type_id(),
                nullable: true,
            });
        }
        for (i, a) in aggs.iter().enumerate() {
            agg_fields.push(Field { name: format!("__agg{i}"), ty: a.out_ty, nullable: true });
        }
        let agg_schema = Schema::unchecked(agg_fields);
        let mut plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            group: group.clone(),
            aggs: aggs.clone(),
            schema: agg_schema.clone(),
        };
        // 4. HAVING over the aggregate output.
        if let Some(h) = &stmt.having {
            let bound = self.bind_post_agg(h, &scope, &stmt.group_by, &group, &aggs)?;
            if bound.type_id() != TypeId::Bool {
                return Err(berr("HAVING must be boolean"));
            }
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate: bound };
        }
        // 5. Final projection.
        let mut exprs = Vec::new();
        let mut fields = Vec::new();
        for item in &stmt.items {
            let SelectItem::Expr { expr, alias } = item else { unreachable!() };
            let bound = self.bind_post_agg(expr, &scope, &stmt.group_by, &group, &aggs)?;
            let name = alias.clone().unwrap_or_else(|| display_name(expr));
            fields.push(Field { name, ty: bound.type_id(), nullable: true });
            exprs.push(bound);
        }
        let schema = Schema::unchecked(fields);
        Ok((LogicalPlan::Project { input: Box::new(plan), exprs, schema: schema.clone() }, schema))
    }

    /// Bind one aggregate AST call to an [`AggCall`], registering it.
    fn collect_aggs(&self, e: &Expr, scope: &Scope, aggs: &mut Vec<AggCall>) -> Result<()> {
        if let Expr::Func { name, args } = e {
            if AGG_NAMES.contains(&name.as_str()) {
                let call = self.bind_agg_call(name, args, scope)?;
                if !aggs.contains(&call) {
                    aggs.push(call);
                }
                return Ok(());
            }
        }
        match e {
            Expr::Binary { left, right, .. } => {
                self.collect_aggs(left, scope, aggs)?;
                self.collect_aggs(right, scope, aggs)?;
            }
            Expr::Neg(x) | Expr::Not(x) | Expr::Cast { expr: x, .. } => {
                self.collect_aggs(x, scope, aggs)?;
            }
            Expr::IsNull { expr, .. } | Expr::Like { expr, .. } | Expr::Extract { expr, .. } => {
                self.collect_aggs(expr, scope, aggs)?;
            }
            Expr::Between { expr, low, high, .. } => {
                self.collect_aggs(expr, scope, aggs)?;
                self.collect_aggs(low, scope, aggs)?;
                self.collect_aggs(high, scope, aggs)?;
            }
            Expr::InList { expr, list, .. } => {
                self.collect_aggs(expr, scope, aggs)?;
                for l in list {
                    self.collect_aggs(l, scope, aggs)?;
                }
            }
            Expr::Case { branches, else_expr } => {
                for (c, v) in branches {
                    self.collect_aggs(c, scope, aggs)?;
                    self.collect_aggs(v, scope, aggs)?;
                }
                if let Some(x) = else_expr {
                    self.collect_aggs(x, scope, aggs)?;
                }
            }
            Expr::Func { args, .. } => {
                for a in args {
                    self.collect_aggs(a, scope, aggs)?;
                }
            }
            _ => {}
        }
        Ok(())
    }

    fn bind_agg_call(&self, name: &str, args: &[Expr], scope: &Scope) -> Result<AggCall> {
        let func = match name {
            "COUNT" => {
                if args.len() == 1 && matches!(args[0], Expr::Wildcard) {
                    return Ok(AggCall {
                        func: AggFunc::CountStar,
                        input: None,
                        out_ty: TypeId::I64,
                    });
                }
                AggFunc::Count
            }
            "SUM" => AggFunc::Sum,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            "AVG" => AggFunc::Avg,
            other => return Err(berr(format!("unknown aggregate {other}"))),
        };
        if args.len() != 1 {
            return Err(berr(format!("{name} takes exactly one argument")));
        }
        let input = self.bind_expr(&args[0], scope)?;
        let ity = input.type_id();
        let (input, out_ty) = match func {
            AggFunc::Count => (input, TypeId::I64),
            AggFunc::Sum => {
                if ity == TypeId::F64 {
                    (input, TypeId::F64)
                } else if ity.is_integer() {
                    (cast_to(input, TypeId::I64), TypeId::I64)
                } else {
                    return Err(berr(format!("SUM over non-numeric type {ity}")));
                }
            }
            AggFunc::Avg => {
                if !ity.is_numeric() {
                    return Err(berr(format!("AVG over non-numeric type {ity}")));
                }
                (input, TypeId::F64)
            }
            AggFunc::Min | AggFunc::Max => (input, ity),
            AggFunc::CountStar => unreachable!(),
        };
        Ok(AggCall { func, input: Some(input), out_ty })
    }

    /// Bind an expression in post-aggregation context: aggregate calls and
    /// group expressions become references into the aggregate output.
    fn bind_post_agg(
        &self,
        e: &Expr,
        scope: &Scope,
        group_asts: &[Expr],
        group: &[SqlExpr],
        aggs: &[AggCall],
    ) -> Result<SqlExpr> {
        // Aggregate call → its output column.
        if let Expr::Func { name, args } = e {
            if AGG_NAMES.contains(&name.as_str()) {
                let call = self.bind_agg_call(name, args, scope)?;
                let idx = aggs
                    .iter()
                    .position(|a| *a == call)
                    .ok_or_else(|| berr("aggregate not collected (engine bug)"))?;
                return Ok(SqlExpr::Col(group.len() + idx, call.out_ty));
            }
        }
        // Whole expression structurally equal to a GROUP BY expression?
        if group_asts.iter().any(|g| g == e) || matches!(e, Expr::Ident(_)) {
            if let Ok(bound) = self.bind_expr(e, scope) {
                if let Some(idx) = group.iter().position(|g| *g == bound) {
                    return Ok(SqlExpr::Col(idx, bound.type_id()));
                }
                if matches!(e, Expr::Ident(_)) {
                    return Err(berr(format!(
                        "column {e:?} must appear in GROUP BY or inside an aggregate"
                    )));
                }
            }
        }
        // Recurse structurally.
        match e {
            Expr::Lit(v) => self
                .bind_expr(e, scope)
                .or_else(|_| Ok(SqlExpr::Lit(v.clone(), v.type_id().unwrap_or(TypeId::I64)))),
            Expr::Binary { op, left, right } => {
                let l = self.bind_post_agg(left, scope, group_asts, group, aggs)?;
                let r = self.bind_post_agg(right, scope, group_asts, group, aggs)?;
                combine_binary(*op, l, r)
            }
            Expr::Neg(x) => {
                let b = self.bind_post_agg(x, scope, group_asts, group, aggs)?;
                negate(b)
            }
            Expr::Not(x) => {
                let b = self.bind_post_agg(x, scope, group_asts, group, aggs)?;
                Ok(SqlExpr::Not(Box::new(b)))
            }
            Expr::Cast { expr, ty } => {
                let b = self.bind_post_agg(expr, scope, group_asts, group, aggs)?;
                Ok(cast_to(b, *ty))
            }
            Expr::Case { branches, else_expr } => {
                let mut bs = Vec::new();
                for (c, v) in branches {
                    bs.push((
                        self.bind_post_agg(c, scope, group_asts, group, aggs)?,
                        self.bind_post_agg(v, scope, group_asts, group, aggs)?,
                    ));
                }
                let el = match else_expr {
                    Some(x) => {
                        Some(Box::new(self.bind_post_agg(x, scope, group_asts, group, aggs)?))
                    }
                    None => None,
                };
                build_case(bs, el)
            }
            Expr::Func { name, args } => {
                let bound_args: Vec<SqlExpr> = args
                    .iter()
                    .map(|a| self.bind_post_agg(a, scope, group_asts, group, aggs))
                    .collect::<Result<_>>()?;
                bind_function(name, bound_args)
            }
            other => Err(berr(format!("expression {other:?} not supported after aggregation"))),
        }
    }

    fn bind_table_ref(&self, tr: &TableRef) -> Result<(LogicalPlan, Scope)> {
        match tr {
            TableRef::Named { name, alias } => {
                let schema = self
                    .catalog
                    .table_schema(name)
                    .ok_or_else(|| VwError::Catalog(format!("unknown table '{name}'")))?;
                let qual = alias.clone().unwrap_or_else(|| name.clone());
                let scope = Scope::from_schema(Some(&qual), &schema);
                let plan = LogicalPlan::Scan {
                    table: name.clone(),
                    projection: (0..schema.len()).collect(),
                    schema,
                    hints: vec![],
                };
                Ok((plan, scope))
            }
            TableRef::Join { left, right, kind, on } => {
                let (lp, ls) = self.bind_table_ref(left)?;
                let (rp, rs) = self.bind_table_ref(right)?;
                let lwidth = ls.cols.len();
                let combined = ls.clone().concat(rs.clone());
                // Split the ON condition into equi-keys and residual.
                let mut keys = Vec::new();
                let mut residual = Vec::new();
                for c in split_conjuncts(on) {
                    if let Some((le, re)) = self.try_equi_key(c, &ls, &rs, lwidth)? {
                        keys.push((le, re));
                    } else {
                        residual.push(self.bind_expr(c, &combined)?);
                    }
                }
                if keys.is_empty() {
                    return Err(berr("join requires at least one equality key (t.a = s.b)"));
                }
                let kind = match kind {
                    AstJoinKind::Inner => JoinKind::Inner,
                    AstJoinKind::Left => JoinKind::Left,
                };
                // Left join output: right side columns become nullable.
                let mut out_scope = combined.clone();
                if kind == JoinKind::Left {
                    for c in &mut out_scope.cols[lwidth..] {
                        c.nullable = true;
                    }
                }
                let mut plan = LogicalPlan::Join {
                    left: Box::new(lp),
                    right: Box::new(rp),
                    kind,
                    keys,
                    schema: out_scope.to_schema(),
                };
                for r in residual {
                    plan = LogicalPlan::Filter { input: Box::new(plan), predicate: r };
                }
                Ok((plan, out_scope))
            }
            TableRef::Cross(parts) => {
                // Comma-join: the optimizer later orders these using the
                // WHERE equi-predicates; the binder emits a left-deep chain
                // requiring WHERE to provide keys, so here we produce scans
                // and let `bind_select` connect them via predicates. For
                // simplicity we require explicit JOIN syntax for >2 tables
                // unless the WHERE clause links them; the common TPC-H-ish
                // pattern `FROM a, b WHERE a.k = b.k` is handled by the
                // optimizer converting Filter-over-CrossJoin. We bind a
                // nested-loop-free representation: chain of Inner joins on
                // constant TRUE is not supported by the hash kernel, so we
                // reject unlinked cross products up front.
                Err(berr(format!(
                    "comma-separated FROM with {} tables: use explicit JOIN ... ON syntax",
                    parts.len()
                )))
            }
        }
    }

    /// Try to interpret `e` as `left_col = right_col` across the join.
    fn try_equi_key(
        &self,
        e: &Expr,
        ls: &Scope,
        rs: &Scope,
        lwidth: usize,
    ) -> Result<Option<(SqlExpr, SqlExpr)>> {
        let Expr::Binary { op: ast::BinaryOp::Eq, left, right } = e else {
            return Ok(None);
        };
        let combined = ls.clone().concat(rs.clone());
        let l = self.bind_expr(left, &combined)?;
        let r = self.bind_expr(right, &combined)?;
        let side = |x: &SqlExpr| -> Option<bool> {
            // true = purely left, false = purely right
            let mut cols = Vec::new();
            x.collect_cols(&mut cols);
            if cols.is_empty() {
                return None;
            }
            if cols.iter().all(|&c| c < lwidth) {
                Some(true)
            } else if cols.iter().all(|&c| c >= lwidth) {
                Some(false)
            } else {
                None
            }
        };
        match (side(&l), side(&r)) {
            (Some(true), Some(false)) => {
                let r = r.remap_cols(&|i| Some(i - lwidth))?;
                let (l, r) = unify_key_types(l, r)?;
                Ok(Some((l, r)))
            }
            (Some(false), Some(true)) => {
                let l = l.remap_cols(&|i| Some(i - lwidth))?;
                let (r, l) = unify_key_types(r, l)?;
                Ok(Some((r, l)))
            }
            _ => Ok(None),
        }
    }

    fn bind_in_subquery(
        &self,
        plan: LogicalPlan,
        scope: &Scope,
        expr: &Expr,
        subquery: &SelectStmt,
        negated: bool,
    ) -> Result<LogicalPlan> {
        let sub = self.bind_select(subquery)?;
        if sub.schema().len() != 1 {
            return Err(berr("IN subquery must return exactly one column"));
        }
        let left_key = self.bind_expr(expr, scope)?;
        let right_key = SqlExpr::Col(0, sub.schema().field(0).ty);
        let (left_key, right_key) = unify_key_types(left_key, right_key)?;
        let kind = if negated { JoinKind::NullAwareAnti } else { JoinKind::Semi };
        Ok(LogicalPlan::Join {
            schema: plan.schema().clone(),
            left: Box::new(plan),
            right: Box::new(sub),
            kind,
            keys: vec![(left_key, right_key)],
        })
    }

    fn bind_exists(
        &self,
        plan: LogicalPlan,
        subquery: &SelectStmt,
        negated: bool,
    ) -> Result<LogicalPlan> {
        let sub = self.bind_select(subquery)?;
        // Uncorrelated EXISTS: semi/anti join on the constant key 1 = 1.
        let one = SqlExpr::Lit(Value::I64(1), TypeId::I64);
        // Project the subquery down to the constant key.
        let sub_key = LogicalPlan::Project {
            schema: Schema::unchecked(vec![Field::not_null("__one", TypeId::I64)]),
            exprs: vec![one.clone()],
            input: Box::new(sub),
        };
        let kind = if negated { JoinKind::Anti } else { JoinKind::Semi };
        Ok(LogicalPlan::Join {
            schema: plan.schema().clone(),
            left: Box::new(plan),
            right: Box::new(sub_key),
            kind,
            keys: vec![(one, SqlExpr::Col(0, TypeId::I64))],
        })
    }

    /// Bind a scalar expression against a scope.
    fn bind_expr(&self, e: &Expr, scope: &Scope) -> Result<SqlExpr> {
        match e {
            Expr::Ident(parts) => {
                let (i, ty) = scope.resolve(parts)?;
                Ok(SqlExpr::Col(i, ty))
            }
            Expr::Lit(v) => Ok(SqlExpr::Lit(v.clone(), v.type_id().unwrap_or(TypeId::I64))),
            Expr::Binary { op, left, right } => {
                let l = self.bind_expr(left, scope)?;
                let r = self.bind_expr(right, scope)?;
                combine_binary(*op, l, r)
            }
            Expr::Neg(x) => negate(self.bind_expr(x, scope)?),
            Expr::Not(x) => Ok(SqlExpr::Not(Box::new(self.bind_expr(x, scope)?))),
            Expr::Cast { expr, ty } => Ok(cast_to(self.bind_expr(expr, scope)?, *ty)),
            Expr::IsNull { expr, negated } => {
                let b = self.bind_expr(expr, scope)?;
                Ok(if *negated {
                    SqlExpr::IsNotNull(Box::new(b))
                } else {
                    SqlExpr::IsNull(Box::new(b))
                })
            }
            Expr::Between { expr, low, high, negated } => {
                // BETWEEN expands here (a rewrite the paper would do in the
                // rewriter; it is pure syntax, so the binder handles it).
                let x = self.bind_expr(expr, scope)?;
                let lo = self.bind_expr(low, scope)?;
                let hi = self.bind_expr(high, scope)?;
                let ge = combine_binary(ast::BinaryOp::Ge, x.clone(), lo)?;
                let le = combine_binary(ast::BinaryOp::Le, x, hi)?;
                let both = SqlExpr::And(vec![ge, le]);
                Ok(if *negated { SqlExpr::Not(Box::new(both)) } else { both })
            }
            Expr::Like { expr, pattern, negated } => {
                let input = self.bind_expr(expr, scope)?;
                if input.type_id() != TypeId::Str {
                    return Err(berr("LIKE requires a string input"));
                }
                Ok(SqlExpr::Like {
                    input: Box::new(input),
                    pattern: pattern.clone(),
                    negated: *negated,
                })
            }
            Expr::InList { expr, list, negated } => {
                let input = self.bind_expr(expr, scope)?;
                let mut ty = input.type_id();
                let mut bound = Vec::with_capacity(list.len());
                for m in list {
                    let b = self.bind_expr(m, scope)?;
                    ty = TypeId::promote(ty, b.type_id())
                        .ok_or_else(|| berr("IN list has incompatible types"))?;
                    bound.push(b);
                }
                let input = cast_to(input, ty);
                let bound = bound.into_iter().map(|b| cast_to(b, ty)).collect();
                Ok(SqlExpr::InList { input: Box::new(input), list: bound, negated: *negated })
            }
            Expr::InSubquery { .. } | Expr::Exists { .. } => {
                Err(berr("subqueries are only supported as top-level WHERE conjuncts"))
            }
            Expr::Case { branches, else_expr } => {
                let mut bs = Vec::new();
                for (c, v) in branches {
                    bs.push((self.bind_expr(c, scope)?, self.bind_expr(v, scope)?));
                }
                let el = match else_expr {
                    Some(x) => Some(Box::new(self.bind_expr(x, scope)?)),
                    None => None,
                };
                build_case(bs, el)
            }
            Expr::Func { name, args } => {
                let bound: Vec<SqlExpr> =
                    args.iter().map(|a| self.bind_expr(a, scope)).collect::<Result<_>>()?;
                bind_function(name, bound)
            }
            Expr::Wildcard => Err(berr("'*' only valid in COUNT(*)")),
            Expr::Extract { field, expr } => {
                let f = DateField::parse(field)
                    .ok_or_else(|| berr(format!("unknown EXTRACT field {field}")))?;
                let d = self.bind_expr(expr, scope)?;
                if d.type_id() != TypeId::Date {
                    return Err(berr("EXTRACT requires a DATE input"));
                }
                Ok(SqlExpr::Func {
                    func: KernelFunc::Extract,
                    args: vec![
                        d,
                        SqlExpr::Lit(Value::I64(vw_exec::expr::encode_field(f)), TypeId::I64),
                    ],
                    ty: TypeId::I64,
                })
            }
        }
    }

    /// Bind an expression against a bare schema (UPDATE SET / DELETE WHERE).
    pub fn bind_expr_on_schema(&self, e: &Expr, schema: &Schema) -> Result<SqlExpr> {
        self.bind_expr(e, &Scope::from_schema(None, schema))
    }
}

fn split_conjuncts(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Binary { op: ast::BinaryOp::And, left, right } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other],
    }
}

fn display_name(e: &Expr) -> String {
    match e {
        Expr::Ident(parts) => parts.last().cloned().unwrap_or_else(|| "?column?".into()),
        Expr::Func { name, .. } => name.to_ascii_lowercase(),
        _ => "?column?".into(),
    }
}

fn cast_to(e: SqlExpr, ty: TypeId) -> SqlExpr {
    if e.type_id() == ty {
        e
    } else if matches!(&e, SqlExpr::Lit(v, _) if v.is_null()) {
        // NULL literals retype for free.
        SqlExpr::Lit(Value::Null, ty)
    } else {
        SqlExpr::Cast { input: Box::new(e), to: ty }
    }
}

fn unify_key_types(l: SqlExpr, r: SqlExpr) -> Result<(SqlExpr, SqlExpr)> {
    let ty = TypeId::promote(l.type_id(), r.type_id()).ok_or_else(|| {
        berr(format!("join/IN key types {} and {} are incompatible", l.type_id(), r.type_id()))
    })?;
    Ok((cast_to(l, ty), cast_to(r, ty)))
}

fn negate(e: SqlExpr) -> Result<SqlExpr> {
    let ty = e.type_id();
    if !ty.is_numeric() {
        return Err(berr(format!("cannot negate {ty}")));
    }
    let zero = if ty == TypeId::F64 {
        SqlExpr::Lit(Value::F64(0.0), TypeId::F64)
    } else {
        SqlExpr::Lit(Value::I64(0), TypeId::I64)
    };
    combine_binary(ast::BinaryOp::Sub, zero, e)
}

fn build_case(
    branches: Vec<(SqlExpr, SqlExpr)>,
    else_expr: Option<Box<SqlExpr>>,
) -> Result<SqlExpr> {
    let mut ty = branches
        .first()
        .map(|(_, v)| v.type_id())
        .ok_or_else(|| berr("CASE needs at least one WHEN"))?;
    for (c, v) in &branches {
        if c.type_id() != TypeId::Bool {
            return Err(berr("CASE WHEN condition must be boolean"));
        }
        ty = TypeId::promote(ty, v.type_id())
            .ok_or_else(|| berr("CASE branches have incompatible types"))?;
    }
    if let Some(e) = &else_expr {
        ty = TypeId::promote(ty, e.type_id())
            .ok_or_else(|| berr("CASE ELSE has incompatible type"))?;
    }
    let branches = branches.into_iter().map(|(c, v)| (c, cast_to(v, ty))).collect();
    let else_expr = else_expr.map(|e| Box::new(cast_to(*e, ty)));
    Ok(SqlExpr::Case { branches, else_expr, ty })
}

/// Bind a non-aggregate function call by name.
pub fn bind_function(name: &str, args: Vec<SqlExpr>) -> Result<SqlExpr> {
    let imp = functions::resolve(name).ok_or_else(|| berr(format!("unknown function {name}")))?;
    let (args, ty) = functions::type_check(name, imp, args)?;
    Ok(match imp {
        FuncImpl::Kernel(func) => SqlExpr::Func { func, args, ty },
        FuncImpl::Ext(func) => SqlExpr::Ext { func, args, ty },
    })
}

/// Combine a binary AST operator over two bound operands, inserting
/// promotions/casts and lowering date arithmetic to kernel functions.
pub fn combine_binary(op: ast::BinaryOp, l: SqlExpr, r: SqlExpr) -> Result<SqlExpr> {
    use ast::BinaryOp as B;
    let (lt, rt) = (l.type_id(), r.type_id());
    match op {
        B::And => Ok(SqlExpr::And(vec![l, r])),
        B::Or => Ok(SqlExpr::Or(vec![l, r])),
        B::Eq | B::Ne | B::Lt | B::Le | B::Gt | B::Ge => {
            let cmp = match op {
                B::Eq => CmpOp::Eq,
                B::Ne => CmpOp::Ne,
                B::Lt => CmpOp::Lt,
                B::Le => CmpOp::Le,
                B::Gt => CmpOp::Gt,
                B::Ge => CmpOp::Ge,
                _ => unreachable!(),
            };
            // NULL literals are type-flexible: adopt the other side's type.
            let ty = if matches!(&l, SqlExpr::Lit(v, _) if v.is_null()) {
                rt
            } else if matches!(&r, SqlExpr::Lit(v, _) if v.is_null()) {
                lt
            } else {
                TypeId::promote(lt, rt)
                    .ok_or_else(|| berr(format!("cannot compare {lt} with {rt}")))?
            };
            Ok(SqlExpr::Cmp { op: cmp, l: Box::new(cast_to(l, ty)), r: Box::new(cast_to(r, ty)) })
        }
        B::Add | B::Sub | B::Mul | B::Div | B::Rem => {
            // Date arithmetic lowers to kernel date functions.
            if lt == TypeId::Date && rt.is_integer() && matches!(op, B::Add | B::Sub) {
                let days = if op == B::Sub {
                    negate(cast_to(r, TypeId::I64))?
                } else {
                    cast_to(r, TypeId::I64)
                };
                return Ok(SqlExpr::Func {
                    func: KernelFunc::DateAddDays,
                    args: vec![l, days],
                    ty: TypeId::Date,
                });
            }
            if lt == TypeId::Date && rt == TypeId::Date && op == B::Sub {
                return Ok(SqlExpr::Func {
                    func: KernelFunc::DateDiffDays,
                    args: vec![l, r],
                    ty: TypeId::I64,
                });
            }
            if !lt.is_numeric() || !rt.is_numeric() {
                return Err(berr(format!("arithmetic on {lt} and {rt}")));
            }
            let target =
                if lt == TypeId::F64 || rt == TypeId::F64 { TypeId::F64 } else { TypeId::I64 };
            let bop = match op {
                B::Add => BinOp::Add,
                B::Sub => BinOp::Sub,
                B::Mul => BinOp::Mul,
                B::Div => BinOp::Div,
                B::Rem => BinOp::Rem,
                _ => unreachable!(),
            };
            Ok(SqlExpr::Arith {
                op: bop,
                l: Box::new(cast_to(l, target)),
                r: Box::new(cast_to(r, target)),
                ty: target,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ExtFunc;
    use crate::parse;

    struct MockCatalog;

    impl CatalogView for MockCatalog {
        fn table_schema(&self, name: &str) -> Option<Schema> {
            match name {
                "t" => Some(
                    Schema::new(vec![
                        Field::not_null("id", TypeId::I64),
                        Field::nullable("qty", TypeId::I32),
                        Field::nullable("name", TypeId::Str),
                        Field::nullable("d", TypeId::Date),
                    ])
                    .unwrap(),
                ),
                "s" => Some(
                    Schema::new(vec![
                        Field::not_null("id", TypeId::I64),
                        Field::nullable("v", TypeId::F64),
                    ])
                    .unwrap(),
                ),
                _ => None,
            }
        }

        fn table_rows(&self, _name: &str) -> Option<u64> {
            Some(1000)
        }
    }

    fn bind(sql: &str) -> Result<LogicalPlan> {
        let stmts = parse(sql)?;
        let ast::Statement::Select(s) = &stmts[0] else { panic!("not a select") };
        Binder::new(&MockCatalog).bind_select(s)
    }

    #[test]
    fn simple_select() {
        let p = bind("SELECT id, qty + 1 FROM t WHERE qty > 5").unwrap();
        let text = p.explain();
        assert!(text.contains("Project"));
        assert!(text.contains("Select"));
        assert!(text.contains("Scan t"));
        assert_eq!(p.schema().len(), 2);
        // qty+1 is promoted to I64.
        assert_eq!(p.schema().field(1).ty, TypeId::I64);
    }

    #[test]
    fn wildcard_expands() {
        let p = bind("SELECT * FROM t").unwrap();
        assert_eq!(p.schema().len(), 4);
        assert_eq!(p.schema().field(2).name, "name");
    }

    #[test]
    fn unknown_names_error() {
        assert!(matches!(bind("SELECT nope FROM t"), Err(VwError::Bind(_))));
        assert!(matches!(bind("SELECT id FROM missing"), Err(VwError::Catalog(_))));
        assert!(matches!(bind("SELECT NOSUCHFN(id) FROM t"), Err(VwError::Bind(_))));
    }

    #[test]
    fn type_errors_detected() {
        assert!(bind("SELECT name + 1 FROM t").is_err());
        assert!(bind("SELECT id FROM t WHERE name > 5").is_err());
        assert!(bind("SELECT UPPER(id) FROM t").is_err());
    }

    #[test]
    fn aggregate_binding() {
        let p = bind("SELECT name, SUM(qty), COUNT(*) FROM t GROUP BY name HAVING SUM(qty) > 10")
            .unwrap();
        let text = p.explain();
        assert!(text.contains("Aggr groups=1 aggs=2"));
        assert!(text.contains("Select")); // HAVING
        assert_eq!(p.schema().field(1).ty, TypeId::I64);
    }

    #[test]
    fn agg_with_expression_over_aggs() {
        let p = bind("SELECT SUM(qty) / COUNT(*) FROM t").unwrap();
        assert_eq!(p.schema().len(), 1);
        assert_eq!(p.schema().field(0).ty, TypeId::I64);
    }

    #[test]
    fn ungrouped_column_rejected() {
        assert!(bind("SELECT id, SUM(qty) FROM t GROUP BY name").is_err());
    }

    #[test]
    fn join_binding_and_left_nullability() {
        let p = bind("SELECT t.id, s.v FROM t LEFT JOIN s ON t.id = s.id").unwrap();
        let text = p.explain();
        assert!(text.contains("HashJoin Left"));
        assert_eq!(p.schema().len(), 2);
    }

    #[test]
    fn join_requires_equality() {
        assert!(bind("SELECT t.id FROM t JOIN s ON t.id < s.id").is_err());
    }

    #[test]
    fn in_subquery_becomes_semi_join() {
        let p = bind("SELECT id FROM t WHERE id IN (SELECT id FROM s)").unwrap();
        assert!(p.explain().contains("HashJoin Semi"));
        let p = bind("SELECT id FROM t WHERE id NOT IN (SELECT id FROM s)").unwrap();
        assert!(p.explain().contains("HashJoin NullAwareAnti"));
    }

    #[test]
    fn exists_becomes_semi_join_on_const() {
        let p = bind("SELECT id FROM t WHERE EXISTS (SELECT id FROM s)").unwrap();
        assert!(p.explain().contains("HashJoin Semi"));
        let p = bind("SELECT id FROM t WHERE NOT EXISTS (SELECT id FROM s)").unwrap();
        assert!(p.explain().contains("HashJoin Anti"));
    }

    #[test]
    fn order_by_and_limit() {
        let p = bind("SELECT id, qty FROM t ORDER BY qty DESC, 1 ASC LIMIT 5 OFFSET 2").unwrap();
        let text = p.explain();
        assert!(text.contains("Limit 5 offset 2"));
        assert!(text.contains("Sort keys=[(1, false, true), (0, true, false)]"));
    }

    #[test]
    fn date_arith_lowered() {
        let p = bind("SELECT d + 30, d - DATE '1996-01-01' FROM t").unwrap();
        assert_eq!(p.schema().field(0).ty, TypeId::Date);
        assert_eq!(p.schema().field(1).ty, TypeId::I64);
    }

    #[test]
    fn between_and_extract() {
        let p = bind("SELECT EXTRACT(YEAR FROM d) FROM t WHERE qty BETWEEN 1 AND 10").unwrap();
        assert_eq!(p.schema().field(0).ty, TypeId::I64);
    }

    #[test]
    fn ext_functions_stay_extended() {
        let p = bind("SELECT COALESCE(qty, 0), NULLIF(id, 5) FROM t").unwrap();
        // The plan still contains Ext nodes (the rewriter expands later).
        let LogicalPlan::Project { exprs, .. } = &p else { panic!() };
        assert!(matches!(exprs[0], SqlExpr::Ext { func: ExtFunc::Coalesce, .. }));
    }

    #[test]
    fn select_without_from() {
        let p = bind("SELECT 1 + 2, 'x'").unwrap();
        assert_eq!(p.schema().len(), 2);
    }

    #[test]
    fn in_list_binds_with_promotion() {
        let p = bind("SELECT id FROM t WHERE qty IN (1, 2, 3)").unwrap();
        assert!(p.explain().contains("Select"));
    }
}
