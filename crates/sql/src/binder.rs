//! The binder: resolves names against a catalog, types every expression,
//! and produces a [`LogicalPlan`].
//!
//! Uncorrelated subqueries bind to joins directly (the anti-join NULL
//! intricacies the paper warns about are decided *here*): `IN` → semi
//! join, `EXISTS` → semi join on a constant key, `NOT EXISTS` → anti
//! join, `NOT IN` → NULL-aware anti join. Correlated subqueries and
//! scalar subqueries bind to [`LogicalPlan::Apply`] nodes instead:
//! outer columns resolve through the scope chain at `OUTER_BASE + i`,
//! correlated equality conjuncts are extracted as Apply keys, and the
//! optimizer's decorrelation pass lowers every Apply to a hash join.
//!
//! The supported SQL surface (set operations, CTEs, derived tables,
//! comma-FROM, INTERVAL arithmetic) and each construct's lowering are
//! catalogued in ARCHITECTURE.md ("SQL surface").

use crate::ast::{self, AstJoinKind, Expr, IntervalUnit, SelectItem, SelectStmt, TableRef};
use crate::expr::{BinOp, CmpOp, KernelFunc, SqlExpr};
use crate::functions::{self, FuncImpl};
use crate::plan::{AggCall, AggFunc, ApplyKind, JoinKind, LogicalPlan, SetOpKind};
use std::cell::RefCell;
use vw_common::date::{add_months, DateField};
use vw_common::{Date, Field, Result, Schema, TypeId, Value, VwError};

/// Column indices at or above this base refer to the *outer* query's
/// scope during subquery binding (one correlation level). The binder
/// strips the base back off when it turns correlated equality conjuncts
/// into Apply keys, so no plan ever ships an `OUTER_BASE` coordinate.
const OUTER_BASE: usize = 1 << 24;

/// Read-only view of the catalog the binder and optimizer need.
///
/// The two schema/row methods are required (the binder cannot work without
/// them); the statistics methods have conservative `None` defaults so
/// lightweight implementers (mock catalogs, the DML helper views) keep
/// compiling while the engine's catalog adapter serves real numbers from
/// `vw_storage::stats`. Returning `None` from a statistics method makes
/// the cost model fall back to its structural defaults — implementers
/// should also return `None` when their statistics are stale (DML since
/// the last rebuild), so the planner never consumes dead numbers.
pub trait CatalogView {
    /// Schema of `name`, if the table exists.
    fn table_schema(&self, name: &str) -> Option<Schema>;
    /// Row-count estimate for the optimizer.
    fn table_rows(&self, name: &str) -> Option<u64>;

    /// Distinct-value estimate for base-table column `col` of `table`
    /// (`None` = unknown or stale). Feeds equality selectivities
    /// (`1/n_distinct`) and the join-cardinality formula.
    fn column_distinct(&self, _table: &str, _col: usize) -> Option<u64> {
        None
    }

    /// Histogram selectivity estimate for `lo <= col <= hi` over `table`
    /// (bounds inclusive; a missing bound leaves that side open). `None`
    /// when no fresh histogram exists for the column.
    fn column_range_selectivity(
        &self,
        _table: &str,
        _col: usize,
        _lo: Option<&Value>,
        _hi: Option<&Value>,
    ) -> Option<f64> {
        None
    }
}

fn berr(msg: impl Into<String>) -> VwError {
    VwError::Bind(msg.into())
}

fn unsup(msg: impl Into<String>) -> VwError {
    VwError::Unsupported(msg.into())
}

/// One visible column during binding.
#[derive(Debug, Clone)]
struct ScopeCol {
    qualifier: Option<String>,
    name: String,
    ty: TypeId,
    nullable: bool,
}

/// The set of columns visible to expressions, with an optional link to
/// the enclosing query's scope (one correlation level).
#[derive(Debug, Clone, Default)]
struct Scope {
    cols: Vec<ScopeCol>,
    /// The outer query's scope during subquery binding. Lookup never
    /// recurses past one level: a reference two queries up stays an
    /// unknown column.
    outer: Option<Box<Scope>>,
}

impl Scope {
    fn from_schema(qualifier: Option<&str>, schema: &Schema) -> Scope {
        Scope {
            cols: schema
                .fields
                .iter()
                .map(|f| ScopeCol {
                    qualifier: qualifier.map(|s| s.to_string()),
                    name: f.name.clone(),
                    ty: f.ty,
                    nullable: f.nullable,
                })
                .collect(),
            outer: None,
        }
    }

    fn concat(mut self, other: Scope) -> Scope {
        self.cols.extend(other.cols);
        self
    }

    /// Resolve against this scope's own columns only. `Ok(None)` = not
    /// found (an ambiguity is still an error, never a fallthrough).
    fn resolve_local(&self, parts: &[String]) -> Result<Option<(usize, TypeId)>> {
        let (qual, name) = match parts {
            [n] => (None, n.as_str()),
            [q, n] => (Some(q.as_str()), n.as_str()),
            _ => return Err(berr(format!("bad identifier {parts:?}"))),
        };
        let mut found = None;
        for (i, c) in self.cols.iter().enumerate() {
            let qual_ok = match (qual, &c.qualifier) {
                (None, _) => true,
                (Some(q), Some(cq)) => q.eq_ignore_ascii_case(cq),
                (Some(_), None) => false,
            };
            if qual_ok && c.name.eq_ignore_ascii_case(name) {
                if found.is_some() {
                    return Err(berr(format!("ambiguous column '{}'", parts.join("."))));
                }
                found = Some((i, c.ty));
            }
        }
        Ok(found)
    }

    /// Resolve locally, then one level up (outer hits come back at
    /// `OUTER_BASE + i`).
    fn resolve(&self, parts: &[String]) -> Result<(usize, TypeId)> {
        if let Some(hit) = self.resolve_local(parts)? {
            return Ok(hit);
        }
        if let Some(outer) = &self.outer {
            if let Some((i, ty)) = outer.resolve_local(parts)? {
                return Ok((OUTER_BASE + i, ty));
            }
        }
        Err(berr(format!("unknown column '{}'", parts.join("."))))
    }

    fn to_schema(&self) -> Schema {
        Schema::unchecked(
            self.cols
                .iter()
                .map(|c| Field { name: c.name.clone(), ty: c.ty, nullable: c.nullable })
                .collect(),
        )
    }
}

/// A bound SELECT core: the plan, its visible (user-facing) column
/// count, and the correlation exports — `(outer key expression, export
/// column index)` pairs the enclosing Apply will join on.
type BoundCore = (LogicalPlan, usize, Vec<(SqlExpr, usize)>);

/// The binder.
pub struct Binder<'a> {
    catalog: &'a dyn CatalogView,
    /// In-scope CTE bindings, innermost last. Pushed when a `WITH` list
    /// binds, popped when its statement finishes; name lookup shadows
    /// base tables and outer CTEs of the same name.
    ctes: RefCell<Vec<(String, LogicalPlan)>>,
}

const AGG_NAMES: [&str; 5] = ["COUNT", "SUM", "MIN", "MAX", "AVG"];

fn contains_agg(e: &Expr) -> bool {
    match e {
        Expr::Func { name, .. } if AGG_NAMES.contains(&name.as_str()) => true,
        Expr::Binary { left, right, .. } => contains_agg(left) || contains_agg(right),
        Expr::Neg(e) | Expr::Not(e) | Expr::Cast { expr: e, .. } => contains_agg(e),
        Expr::IsNull { expr, .. } => contains_agg(expr),
        Expr::Between { expr, low, high, .. } => {
            contains_agg(expr) || contains_agg(low) || contains_agg(high)
        }
        Expr::Like { expr, .. } => contains_agg(expr),
        Expr::InList { expr, list, .. } => contains_agg(expr) || list.iter().any(contains_agg),
        Expr::Case { branches, else_expr } => {
            branches.iter().any(|(c, v)| contains_agg(c) || contains_agg(v))
                || else_expr.as_deref().is_some_and(contains_agg)
        }
        Expr::Func { args, .. } => args.iter().any(contains_agg),
        Expr::Extract { expr, .. } => contains_agg(expr),
        _ => false,
    }
}

/// Does `e` contain a scalar subquery? (Does not look inside IN/EXISTS
/// subquery bodies — those bind their own scalars.)
fn contains_scalar(e: &Expr) -> bool {
    match e {
        Expr::Scalar(_) => true,
        Expr::Binary { left, right, .. } => contains_scalar(left) || contains_scalar(right),
        Expr::Neg(x) | Expr::Not(x) | Expr::Cast { expr: x, .. } => contains_scalar(x),
        Expr::IsNull { expr, .. } | Expr::Like { expr, .. } | Expr::Extract { expr, .. } => {
            contains_scalar(expr)
        }
        Expr::Between { expr, low, high, .. } => {
            contains_scalar(expr) || contains_scalar(low) || contains_scalar(high)
        }
        Expr::InList { expr, list, .. } => {
            contains_scalar(expr) || list.iter().any(contains_scalar)
        }
        Expr::Case { branches, else_expr } => {
            branches.iter().any(|(c, v)| contains_scalar(c) || contains_scalar(v))
                || else_expr.as_deref().is_some_and(contains_scalar)
        }
        Expr::Func { args, .. } => args.iter().any(contains_scalar),
        _ => false,
    }
}

/// Rebuild `e` with every scalar subquery replaced by whatever `f`
/// returns for it (a marker identifier pointing at an Apply output).
fn rewrite_scalars(e: &Expr, f: &mut dyn FnMut(&SelectStmt) -> Result<Expr>) -> Result<Expr> {
    Ok(match e {
        Expr::Scalar(sub) => f(sub)?,
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(rewrite_scalars(left, f)?),
            right: Box::new(rewrite_scalars(right, f)?),
        },
        Expr::Neg(x) => Expr::Neg(Box::new(rewrite_scalars(x, f)?)),
        Expr::Not(x) => Expr::Not(Box::new(rewrite_scalars(x, f)?)),
        Expr::Cast { expr, ty } => {
            Expr::Cast { expr: Box::new(rewrite_scalars(expr, f)?), ty: *ty }
        }
        Expr::IsNull { expr, negated } => {
            Expr::IsNull { expr: Box::new(rewrite_scalars(expr, f)?), negated: *negated }
        }
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(rewrite_scalars(expr, f)?),
            low: Box::new(rewrite_scalars(low, f)?),
            high: Box::new(rewrite_scalars(high, f)?),
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated } => Expr::Like {
            expr: Box::new(rewrite_scalars(expr, f)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(rewrite_scalars(expr, f)?),
            list: list.iter().map(|x| rewrite_scalars(x, f)).collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Case { branches, else_expr } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| Ok((rewrite_scalars(c, f)?, rewrite_scalars(v, f)?)))
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(x) => Some(Box::new(rewrite_scalars(x, f)?)),
                None => None,
            },
        },
        Expr::Func { name, args } => Expr::Func {
            name: name.clone(),
            args: args.iter().map(|x| rewrite_scalars(x, f)).collect::<Result<_>>()?,
        },
        Expr::Extract { field, expr } => {
            Expr::Extract { field: field.clone(), expr: Box::new(rewrite_scalars(expr, f)?) }
        }
        other => other.clone(),
    })
}

/// Does this bound expression reference the outer query?
fn has_outer_ref(e: &SqlExpr) -> bool {
    let mut cols = Vec::new();
    e.collect_cols(&mut cols);
    cols.iter().any(|&c| c >= OUTER_BASE)
}

fn ensure_no_outer(e: &SqlExpr, what: &str) -> Result<()> {
    if has_outer_ref(e) {
        return Err(unsup(format!(
            "correlated {what} (outer references are only supported in WHERE equality conjuncts)"
        )));
    }
    Ok(())
}

/// Which query a bound expression's columns belong to (no columns at
/// all counts as inner: a constant compares against the other side).
enum ExprSide {
    Inner,
    Outer,
    Mixed,
}

fn expr_side(e: &SqlExpr) -> ExprSide {
    let mut cols = Vec::new();
    e.collect_cols(&mut cols);
    if cols.is_empty() {
        return ExprSide::Inner;
    }
    let outer = cols.iter().filter(|&&c| c >= OUTER_BASE).count();
    if outer == 0 {
        ExprSide::Inner
    } else if outer == cols.len() {
        ExprSide::Outer
    } else {
        ExprSide::Mixed
    }
}

/// Split a correlated conjunct into `(outer expression, inner
/// expression)`. Only `outer = inner` equalities decorrelate; anything
/// else (Q21's `l2.l_suppkey <> l1.l_suppkey`, range correlation, ...)
/// is a typed E_UNSUPPORTED.
fn correlation_pair(bound: SqlExpr) -> Result<(SqlExpr, SqlExpr)> {
    let SqlExpr::Cmp { op: CmpOp::Eq, l, r } = bound else {
        return Err(unsup(
            "correlated predicate that is not an equality (only `outer = inner` \
             correlation decorrelates to a hash join)",
        ));
    };
    match (expr_side(&l), expr_side(&r)) {
        (ExprSide::Outer, ExprSide::Inner) => Ok((strip_outer(*l)?, *r)),
        (ExprSide::Inner, ExprSide::Outer) => Ok((strip_outer(*r)?, *l)),
        _ => Err(unsup("correlated predicate mixing outer and inner columns on one side")),
    }
}

fn strip_outer(e: SqlExpr) -> Result<SqlExpr> {
    e.remap_cols(&|i| Some(i - OUTER_BASE))
}

/// Can this plan provably return at most one row? (Gate for
/// uncorrelated scalar subqueries.)
fn at_most_one_row(p: &LogicalPlan) -> bool {
    match p {
        LogicalPlan::Aggregate { group, .. } => group.is_empty(),
        LogicalPlan::Limit { input, limit, .. } => *limit <= 1 || at_most_one_row(input),
        LogicalPlan::Values { rows, .. } => rows.len() <= 1,
        LogicalPlan::Project { input, .. }
        | LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. } => at_most_one_row(input),
        _ => false,
    }
}

/// A correlated scalar subquery must produce one value per correlation
/// key: structurally, an aggregate grouped by exactly the correlation
/// columns (possibly under projections/filters).
fn corr_scalar_unique(p: &LogicalPlan, ncorr: usize) -> bool {
    match p {
        LogicalPlan::Project { input, .. } | LogicalPlan::Filter { input, .. } => {
            corr_scalar_unique(input, ncorr)
        }
        LogicalPlan::Aggregate { group, .. } => group.len() == ncorr,
        _ => false,
    }
}

/// Build one Apply key: the outer expression joined against subquery
/// output column `col`. The inner side is a bare column reference, so
/// any promotion cast must land on the outer side.
fn apply_key(outer: SqlExpr, sub: &Schema, col: usize) -> Result<(SqlExpr, usize)> {
    let ity = sub.field(col).ty;
    let ty = TypeId::promote(outer.type_id(), ity).ok_or_else(|| {
        berr(format!("correlated key types {} and {} are incompatible", outer.type_id(), ity))
    })?;
    if ty != ity {
        return Err(unsup(format!(
            "correlated key that would need a cast on the subquery side ({} vs {})",
            outer.type_id(),
            ity
        )));
    }
    Ok((cast_to(outer, ty), col))
}

impl<'a> Binder<'a> {
    /// A binder over `catalog`.
    pub fn new(catalog: &'a dyn CatalogView) -> Binder<'a> {
        Binder { catalog, ctes: RefCell::new(Vec::new()) }
    }

    /// Bind a full SELECT into a logical plan.
    pub fn bind_select(&self, stmt: &SelectStmt) -> Result<LogicalPlan> {
        let (plan, corr) = self.bind_query(stmt, None)?;
        debug_assert!(corr.is_empty(), "top-level query cannot be correlated");
        Ok(plan)
    }

    /// Bind a (sub)query: push its CTEs, bind the body (set-operation
    /// chain included), pop the CTEs. Returns the plan plus the
    /// correlation exports `(outer expression, output column)` the
    /// enclosing query must turn into Apply keys.
    fn bind_query(
        &self,
        stmt: &SelectStmt,
        outer: Option<&Scope>,
    ) -> Result<(LogicalPlan, Vec<(SqlExpr, usize)>)> {
        let cte_base = self.ctes.borrow().len();
        for (name, q) in &stmt.with {
            // CTEs bind uncorrelated, and may use earlier CTEs of the
            // same WITH list (already pushed).
            let (p, _) = self.bind_query(q, None)?;
            self.ctes.borrow_mut().push((name.clone(), p));
        }
        let out = self.bind_query_inner(stmt, outer);
        self.ctes.borrow_mut().truncate(cte_base);
        out
    }

    fn bind_query_inner(
        &self,
        stmt: &SelectStmt,
        outer: Option<&Scope>,
    ) -> Result<(LogicalPlan, Vec<(SqlExpr, usize)>)> {
        let (mut plan, mut items_len, corr) = self.bind_core(stmt, outer)?;

        if !stmt.set_ops.is_empty() {
            if !corr.is_empty() {
                return Err(unsup("correlated set-operation operand"));
            }
            for (kind, rhs) in &stmt.set_ops {
                let (rp, rcorr) = self.bind_query(rhs, outer)?;
                if !rcorr.is_empty() {
                    return Err(unsup("correlated set-operation operand"));
                }
                plan = make_setop(*kind, plan, rp)?;
            }
            items_len = plan.schema().len();
        }

        // ORDER BY over the visible output columns (correlation exports
        // ride behind them and are not addressable).
        if !stmt.order_by.is_empty() {
            let out = Schema::unchecked(plan.schema().fields[..items_len].to_vec());
            let mut keys = Vec::new();
            for (e, asc, nulls_first) in &stmt.order_by {
                let idx = self.resolve_order_key(e, &out)?;
                keys.push((idx, *asc, *nulls_first));
            }
            plan = LogicalPlan::Sort { input: Box::new(plan), keys };
        }

        if stmt.limit.is_some() || stmt.offset.is_some() {
            if !corr.is_empty() {
                return Err(unsup(
                    "LIMIT/OFFSET in a correlated subquery (per-group limits do not decorrelate)",
                ));
            }
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                offset: stmt.offset.unwrap_or(0),
                limit: stmt.limit.unwrap_or(u64::MAX),
            };
        }
        Ok((plan, corr))
    }

    /// Bind one SELECT core (FROM/WHERE/GROUP BY/HAVING/items/DISTINCT).
    /// Returns the plan, the visible item count, and correlation exports.
    fn bind_core(&self, stmt: &SelectStmt, outer: Option<&Scope>) -> Result<BoundCore> {
        // FROM: one part, or a comma-list the WHERE equalities will join.
        let (parts, mut scope) = match &stmt.from {
            None => {
                // One-row dual for FROM-less SELECT.
                let schema = Schema::unchecked(vec![Field::not_null("__dual", TypeId::I64)]);
                let plan =
                    LogicalPlan::Values { schema: schema.clone(), rows: vec![vec![Value::I64(0)]] };
                (vec![(plan, 1usize)], Scope::from_schema(None, &schema))
            }
            Some(TableRef::Cross(items)) => {
                let mut parts = Vec::new();
                let mut scope = Scope::default();
                for it in items {
                    let (p, s) = self.bind_table_ref(it)?;
                    parts.push((p, s.cols.len()));
                    scope = scope.concat(s);
                }
                (parts, scope)
            }
            Some(tr) => {
                let (p, s) = self.bind_table_ref(tr)?;
                let w = s.cols.len();
                (vec![(p, w)], s)
            }
        };
        scope.outer = outer.cloned().map(Box::new);

        // WHERE: classify conjuncts. Subquery conjuncts join later,
        // scalar-subquery conjuncts apply later, correlated equalities
        // become exports, plain equalities may glue comma-FROM parts,
        // everything else filters.
        let mut subq: Vec<(&Expr, bool)> = Vec::new();
        let mut scalarc: Vec<&Expr> = Vec::new();
        let mut cands: Vec<(usize, SqlExpr)> = Vec::new();
        let mut filters: Vec<(usize, SqlExpr)> = Vec::new();
        let mut corr_raw: Vec<(SqlExpr, SqlExpr)> = Vec::new();
        if let Some(w) = &stmt.where_clause {
            for (ci, conjunct) in split_conjuncts(w).into_iter().enumerate() {
                // `NOT EXISTS` / `NOT (x IN (...))` arrive wrapped in Not.
                let (conjunct, flip) = match conjunct {
                    Expr::Not(inner)
                        if matches!(
                            inner.as_ref(),
                            Expr::Exists { .. } | Expr::InSubquery { .. }
                        ) =>
                    {
                        (inner.as_ref(), true)
                    }
                    other => (other, false),
                };
                match conjunct {
                    Expr::InSubquery { .. } | Expr::Exists { .. } => subq.push((conjunct, flip)),
                    other if contains_scalar(other) => scalarc.push(other),
                    other => {
                        let bound = self.bind_expr(other, &scope)?;
                        if has_outer_ref(&bound) {
                            corr_raw.push(correlation_pair(bound)?);
                        } else if parts.len() > 1
                            && matches!(bound, SqlExpr::Cmp { op: CmpOp::Eq, .. })
                        {
                            cands.push((ci, bound));
                        } else {
                            filters.push((ci, bound));
                        }
                    }
                }
            }
        }

        // Join the comma-FROM parts left to right, consuming equality
        // candidates that link the placed prefix to the next part. A
        // part no equality reaches joins on a constant key (a hash
        // cross product) — the filters above it still apply.
        let mut parts_iter = parts.into_iter();
        let (mut plan, mut prefix_w) = parts_iter.next().expect("FROM has at least one part");
        let mut used = vec![false; cands.len()];
        for (p, w) in parts_iter {
            let mut keys = Vec::new();
            for (k, (_, cand)) in cands.iter().enumerate() {
                if used[k] {
                    continue;
                }
                let SqlExpr::Cmp { op: CmpOp::Eq, l, r } = cand else { continue };
                let within = |e: &SqlExpr, lo: usize, hi: usize| {
                    let mut cols = Vec::new();
                    e.collect_cols(&mut cols);
                    !cols.is_empty() && cols.iter().all(|&c| c >= lo && c < hi)
                };
                let pair = if within(l, 0, prefix_w) && within(r, prefix_w, prefix_w + w) {
                    Some((l.as_ref().clone(), r.as_ref().clone()))
                } else if within(r, 0, prefix_w) && within(l, prefix_w, prefix_w + w) {
                    Some((r.as_ref().clone(), l.as_ref().clone()))
                } else {
                    None
                };
                if let Some((le, re)) = pair {
                    let re = re.remap_cols(&|i| Some(i - prefix_w))?;
                    let (le, re) = unify_key_types(le, re)?;
                    keys.push((le, re));
                    used[k] = true;
                }
            }
            if keys.is_empty() {
                let one = SqlExpr::Lit(Value::I64(1), TypeId::I64);
                keys.push((one.clone(), one));
            }
            prefix_w += w;
            let schema = Schema::unchecked(
                scope.cols[..prefix_w]
                    .iter()
                    .map(|c| Field { name: c.name.clone(), ty: c.ty, nullable: c.nullable })
                    .collect(),
            );
            plan = LogicalPlan::Join {
                left: Box::new(plan),
                right: Box::new(p),
                kind: JoinKind::Inner,
                keys,
                schema,
            };
        }
        // Equality candidates no join step consumed are ordinary filters.
        for (k, (ci, cand)) in cands.into_iter().enumerate() {
            if !used[k] {
                filters.push((ci, cand));
            }
        }
        filters.sort_by_key(|(ci, _)| *ci);

        // IN/EXISTS subquery conjuncts: direct joins (uncorrelated) or
        // Apply nodes (correlated).
        for (conjunct, flip) in subq {
            match conjunct {
                Expr::InSubquery { expr, subquery, negated } => {
                    plan = self.bind_in_subquery(plan, &scope, expr, subquery, *negated != flip)?;
                }
                Expr::Exists { subquery, negated } => {
                    plan = self.bind_exists(plan, &scope, subquery, *negated != flip)?;
                }
                _ => unreachable!("subq holds only IN/EXISTS conjuncts"),
            }
        }

        // Scalar-subquery conjuncts: each scalar becomes an Apply whose
        // value column extends the scope, then the conjunct binds
        // normally against the marker.
        let visible = scope.cols.len();
        let mut nscalar = 0usize;
        let mut scalar_filters = Vec::new();
        for c in scalarc {
            let replaced = rewrite_scalars(c, &mut |sub| {
                self.apply_scalar(sub, &mut plan, &mut scope, &mut nscalar)
            })?;
            let bound = self.bind_expr(&replaced, &scope)?;
            ensure_no_outer(&bound, "predicate combined with a scalar subquery")?;
            if bound.type_id() != TypeId::Bool {
                return Err(berr("WHERE predicate must be boolean"));
            }
            scalar_filters.push(bound);
        }

        for (_, p) in filters {
            if p.type_id() != TypeId::Bool {
                return Err(berr("WHERE predicate must be boolean"));
            }
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate: p };
        }
        for p in scalar_filters {
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate: p };
        }

        // Aggregation?
        let has_agg = !stmt.group_by.is_empty()
            || stmt.items.iter().any(|i| match i {
                SelectItem::Expr { expr, .. } => contains_agg(expr),
                SelectItem::Wildcard => false,
            })
            || stmt.having.as_ref().is_some_and(contains_agg);

        let (mut plan, items_len, corr_out) = if has_agg {
            self.bind_aggregate_query(plan, &scope, stmt, &corr_raw)?
        } else {
            self.bind_plain_projection(plan, &scope, stmt, visible, &corr_raw)?
        };

        if stmt.distinct {
            plan = LogicalPlan::SetOp {
                op: SetOpKind::Union,
                schema: plan.schema().clone(),
                inputs: vec![plan],
            };
        }
        Ok((plan, items_len, corr_out))
    }

    fn resolve_order_key(&self, e: &Expr, out: &Schema) -> Result<usize> {
        match e {
            Expr::Lit(Value::I64(pos)) => {
                let p = *pos;
                if p >= 1 && (p as usize) <= out.len() {
                    Ok(p as usize - 1)
                } else {
                    Err(berr(format!("ORDER BY position {p} out of range")))
                }
            }
            Expr::Ident(parts) => {
                let name = parts.last().expect("nonempty identifier");
                out.index_of(name)
                    .ok_or_else(|| berr(format!("ORDER BY: unknown output column '{name}'")))
            }
            _ => Err(berr("ORDER BY supports output column names or positions")),
        }
    }

    /// Bind the projection of a non-aggregate query. `visible` caps how
    /// many scope columns `*` expands (scalar-subquery markers ride
    /// behind and are not user-visible); `corr` inner expressions are
    /// appended as extra output columns for the enclosing Apply.
    fn bind_plain_projection(
        &self,
        plan: LogicalPlan,
        scope: &Scope,
        stmt: &SelectStmt,
        visible: usize,
        corr: &[(SqlExpr, SqlExpr)],
    ) -> Result<BoundCore> {
        let mut exprs = Vec::new();
        let mut fields = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Wildcard => {
                    for (i, c) in scope.cols.iter().take(visible).enumerate() {
                        exprs.push(SqlExpr::Col(i, c.ty));
                        fields.push(Field { name: c.name.clone(), ty: c.ty, nullable: c.nullable });
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_expr(expr, scope)?;
                    ensure_no_outer(&bound, "SELECT item")?;
                    let name = alias.clone().unwrap_or_else(|| display_name(expr));
                    fields.push(Field { name, ty: bound.type_id(), nullable: true });
                    exprs.push(bound);
                }
            }
        }
        let items_len = exprs.len();
        let mut corr_out = Vec::new();
        for (k, (oe, ie)) in corr.iter().enumerate() {
            fields.push(Field { name: format!("__corr{k}"), ty: ie.type_id(), nullable: true });
            exprs.push(ie.clone());
            corr_out.push((oe.clone(), items_len + k));
        }
        let schema = Schema::unchecked(fields);
        let plan = LogicalPlan::Project { input: Box::new(plan), exprs, schema };
        Ok((plan, items_len, corr_out))
    }

    /// Bind an aggregating query. Correlation inner expressions join the
    /// GROUP BY list (that is what decorrelates Q2/Q17-style "aggregate
    /// per outer key" subqueries) and re-emerge behind the items in the
    /// final projection.
    fn bind_aggregate_query(
        &self,
        plan: LogicalPlan,
        scope: &Scope,
        stmt: &SelectStmt,
        corr: &[(SqlExpr, SqlExpr)],
    ) -> Result<BoundCore> {
        // 1. Group expressions: user groups, then correlation columns.
        let mut group: Vec<SqlExpr> = Vec::new();
        let mut group_names: Vec<String> = Vec::new();
        for g in &stmt.group_by {
            let bound = self.bind_expr(g, scope)?;
            ensure_no_outer(&bound, "GROUP BY expression")?;
            if !group.contains(&bound) {
                group.push(bound);
                group_names.push(display_name(g));
            }
        }
        let mut corr_group_idx = Vec::new();
        for (k, (_, ie)) in corr.iter().enumerate() {
            let idx = match group.iter().position(|g| g == ie) {
                Some(i) => i,
                None => {
                    group.push(ie.clone());
                    group_names.push(format!("__corr{k}"));
                    group.len() - 1
                }
            };
            corr_group_idx.push(idx);
        }
        // 2. Collect aggregate calls from items and HAVING.
        let mut aggs: Vec<AggCall> = Vec::new();
        let mut collect = |e: &Expr| -> Result<()> { self.collect_aggs(e, scope, &mut aggs) };
        for item in &stmt.items {
            if let SelectItem::Expr { expr, .. } = item {
                collect(expr)?;
            } else {
                return Err(berr("SELECT * cannot be combined with GROUP BY"));
            }
        }
        if let Some(h) = &stmt.having {
            collect(h)?;
        }
        if !corr.is_empty()
            && aggs.iter().any(|a| matches!(a.func, AggFunc::Count | AggFunc::CountStar))
        {
            // COUNT over an outer key with no matching rows must yield 0,
            // but the decorrelated left join yields NULL: no group exists.
            return Err(unsup(
                "correlated COUNT subquery (an empty group's count cannot decorrelate to a join)",
            ));
        }
        // 3. Aggregate output schema.
        let mut agg_fields: Vec<Field> = Vec::new();
        for (i, g) in group.iter().enumerate() {
            agg_fields.push(Field {
                name: group_names[i].clone(),
                ty: g.type_id(),
                nullable: true,
            });
        }
        for (i, a) in aggs.iter().enumerate() {
            agg_fields.push(Field { name: format!("__agg{i}"), ty: a.out_ty, nullable: true });
        }
        let agg_schema = Schema::unchecked(agg_fields);
        let mut plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            group: group.clone(),
            aggs: aggs.clone(),
            schema: agg_schema.clone(),
        };
        // 4. HAVING over the aggregate output. Scalar subqueries in
        // HAVING (Q11's threshold) become Apply nodes above the
        // aggregate; their value columns resolve through `extra`.
        let mut extra: Vec<(String, TypeId, usize)> = Vec::new();
        let having = match &stmt.having {
            Some(h) if contains_scalar(h) => {
                let agg_w = group.len() + aggs.len();
                Some(rewrite_scalars(h, &mut |sub| {
                    self.apply_having_scalar(sub, &mut plan, &mut extra, agg_w)
                })?)
            }
            Some(h) => Some(h.clone()),
            None => None,
        };
        if let Some(h) = &having {
            let bound = self.bind_post_agg(h, scope, &stmt.group_by, &group, &aggs, &extra)?;
            if bound.type_id() != TypeId::Bool {
                return Err(berr("HAVING must be boolean"));
            }
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate: bound };
        }
        // 5. Final projection: items, then correlation group columns.
        let mut exprs = Vec::new();
        let mut fields = Vec::new();
        for item in &stmt.items {
            let SelectItem::Expr { expr, alias } = item else { unreachable!() };
            let bound = self.bind_post_agg(expr, scope, &stmt.group_by, &group, &aggs, &extra)?;
            let name = alias.clone().unwrap_or_else(|| display_name(expr));
            fields.push(Field { name, ty: bound.type_id(), nullable: true });
            exprs.push(bound);
        }
        let items_len = exprs.len();
        let mut corr_out = Vec::new();
        for (k, ((oe, _), gidx)) in corr.iter().zip(&corr_group_idx).enumerate() {
            let ty = group[*gidx].type_id();
            fields.push(Field { name: format!("__corr{k}"), ty, nullable: true });
            exprs.push(SqlExpr::Col(*gidx, ty));
            corr_out.push((oe.clone(), items_len + k));
        }
        let schema = Schema::unchecked(fields);
        let plan = LogicalPlan::Project { input: Box::new(plan), exprs, schema };
        Ok((plan, items_len, corr_out))
    }

    /// Bind one aggregate AST call to an [`AggCall`], registering it.
    fn collect_aggs(&self, e: &Expr, scope: &Scope, aggs: &mut Vec<AggCall>) -> Result<()> {
        if let Expr::Func { name, args } = e {
            if AGG_NAMES.contains(&name.as_str()) {
                let call = self.bind_agg_call(name, args, scope)?;
                if !aggs.contains(&call) {
                    aggs.push(call);
                }
                return Ok(());
            }
        }
        match e {
            Expr::Binary { left, right, .. } => {
                self.collect_aggs(left, scope, aggs)?;
                self.collect_aggs(right, scope, aggs)?;
            }
            Expr::Neg(x) | Expr::Not(x) | Expr::Cast { expr: x, .. } => {
                self.collect_aggs(x, scope, aggs)?;
            }
            Expr::IsNull { expr, .. } | Expr::Like { expr, .. } | Expr::Extract { expr, .. } => {
                self.collect_aggs(expr, scope, aggs)?;
            }
            Expr::Between { expr, low, high, .. } => {
                self.collect_aggs(expr, scope, aggs)?;
                self.collect_aggs(low, scope, aggs)?;
                self.collect_aggs(high, scope, aggs)?;
            }
            Expr::InList { expr, list, .. } => {
                self.collect_aggs(expr, scope, aggs)?;
                for l in list {
                    self.collect_aggs(l, scope, aggs)?;
                }
            }
            Expr::Case { branches, else_expr } => {
                for (c, v) in branches {
                    self.collect_aggs(c, scope, aggs)?;
                    self.collect_aggs(v, scope, aggs)?;
                }
                if let Some(x) = else_expr {
                    self.collect_aggs(x, scope, aggs)?;
                }
            }
            Expr::Func { args, .. } => {
                for a in args {
                    self.collect_aggs(a, scope, aggs)?;
                }
            }
            _ => {}
        }
        Ok(())
    }

    fn bind_agg_call(&self, name: &str, args: &[Expr], scope: &Scope) -> Result<AggCall> {
        let func = match name {
            "COUNT" => {
                if args.len() == 1 && matches!(args[0], Expr::Wildcard) {
                    return Ok(AggCall {
                        func: AggFunc::CountStar,
                        input: None,
                        out_ty: TypeId::I64,
                    });
                }
                AggFunc::Count
            }
            "SUM" => AggFunc::Sum,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            "AVG" => AggFunc::Avg,
            other => return Err(berr(format!("unknown aggregate {other}"))),
        };
        if args.len() != 1 {
            return Err(berr(format!("{name} takes exactly one argument")));
        }
        let input = self.bind_expr(&args[0], scope)?;
        ensure_no_outer(&input, "aggregate argument")?;
        let ity = input.type_id();
        let (input, out_ty) = match func {
            AggFunc::Count => (input, TypeId::I64),
            AggFunc::Sum => {
                if ity == TypeId::F64 {
                    (input, TypeId::F64)
                } else if ity.is_integer() {
                    (cast_to(input, TypeId::I64), TypeId::I64)
                } else {
                    return Err(berr(format!("SUM over non-numeric type {ity}")));
                }
            }
            AggFunc::Avg => {
                if !ity.is_numeric() {
                    return Err(berr(format!("AVG over non-numeric type {ity}")));
                }
                (input, TypeId::F64)
            }
            AggFunc::Min | AggFunc::Max => (input, ity),
            AggFunc::CountStar => unreachable!(),
        };
        Ok(AggCall { func, input: Some(input), out_ty })
    }

    /// Bind an expression in post-aggregation context: aggregate calls and
    /// group expressions become references into the aggregate output;
    /// `extra` maps HAVING scalar-subquery markers to Apply value columns.
    fn bind_post_agg(
        &self,
        e: &Expr,
        scope: &Scope,
        group_asts: &[Expr],
        group: &[SqlExpr],
        aggs: &[AggCall],
        extra: &[(String, TypeId, usize)],
    ) -> Result<SqlExpr> {
        // HAVING scalar-subquery marker → its Apply output column.
        if let Expr::Ident(parts) = e {
            if let [name] = &parts[..] {
                if let Some((_, ty, idx)) = extra.iter().find(|(n, _, _)| n == name) {
                    return Ok(SqlExpr::Col(*idx, *ty));
                }
            }
        }
        // Aggregate call → its output column.
        if let Expr::Func { name, args } = e {
            if AGG_NAMES.contains(&name.as_str()) {
                let call = self.bind_agg_call(name, args, scope)?;
                let idx = aggs
                    .iter()
                    .position(|a| *a == call)
                    .ok_or_else(|| berr("aggregate not collected (engine bug)"))?;
                return Ok(SqlExpr::Col(group.len() + idx, call.out_ty));
            }
        }
        // Whole expression structurally equal to a GROUP BY expression?
        if group_asts.iter().any(|g| g == e) || matches!(e, Expr::Ident(_)) {
            if let Ok(bound) = self.bind_expr(e, scope) {
                if let Some(idx) = group.iter().position(|g| *g == bound) {
                    return Ok(SqlExpr::Col(idx, bound.type_id()));
                }
                if matches!(e, Expr::Ident(_)) {
                    return Err(berr(format!(
                        "column {e:?} must appear in GROUP BY or inside an aggregate"
                    )));
                }
            }
        }
        // Recurse structurally.
        match e {
            Expr::Lit(v) => self
                .bind_expr(e, scope)
                .or_else(|_| Ok(SqlExpr::Lit(v.clone(), v.type_id().unwrap_or(TypeId::I64)))),
            Expr::Binary { op, left, right } => {
                let l = self.bind_post_agg(left, scope, group_asts, group, aggs, extra)?;
                let r = self.bind_post_agg(right, scope, group_asts, group, aggs, extra)?;
                combine_binary(*op, l, r)
            }
            Expr::Neg(x) => {
                let b = self.bind_post_agg(x, scope, group_asts, group, aggs, extra)?;
                negate(b)
            }
            Expr::Not(x) => {
                let b = self.bind_post_agg(x, scope, group_asts, group, aggs, extra)?;
                Ok(SqlExpr::Not(Box::new(b)))
            }
            Expr::Cast { expr, ty } => {
                let b = self.bind_post_agg(expr, scope, group_asts, group, aggs, extra)?;
                Ok(cast_to(b, *ty))
            }
            Expr::Case { branches, else_expr } => {
                let mut bs = Vec::new();
                for (c, v) in branches {
                    bs.push((
                        self.bind_post_agg(c, scope, group_asts, group, aggs, extra)?,
                        self.bind_post_agg(v, scope, group_asts, group, aggs, extra)?,
                    ));
                }
                let el = match else_expr {
                    Some(x) => Some(Box::new(
                        self.bind_post_agg(x, scope, group_asts, group, aggs, extra)?,
                    )),
                    None => None,
                };
                build_case(bs, el)
            }
            Expr::Func { name, args } => {
                let bound_args: Vec<SqlExpr> = args
                    .iter()
                    .map(|a| self.bind_post_agg(a, scope, group_asts, group, aggs, extra))
                    .collect::<Result<_>>()?;
                bind_function(name, bound_args)
            }
            other => Err(berr(format!("expression {other:?} not supported after aggregation"))),
        }
    }

    fn bind_table_ref(&self, tr: &TableRef) -> Result<(LogicalPlan, Scope)> {
        match tr {
            TableRef::Named { name, alias } => {
                // CTEs shadow base tables; innermost WITH wins.
                let cte = self
                    .ctes
                    .borrow()
                    .iter()
                    .rev()
                    .find(|(n, _)| n.eq_ignore_ascii_case(name))
                    .map(|(_, p)| p.clone());
                if let Some(p) = cte {
                    let qual = alias.clone().unwrap_or_else(|| name.clone());
                    let scope = Scope::from_schema(Some(&qual), p.schema());
                    return Ok((p, scope));
                }
                let schema = self
                    .catalog
                    .table_schema(name)
                    .ok_or_else(|| VwError::Catalog(format!("unknown table '{name}'")))?;
                let qual = alias.clone().unwrap_or_else(|| name.clone());
                let scope = Scope::from_schema(Some(&qual), &schema);
                let plan = LogicalPlan::Scan {
                    table: name.clone(),
                    projection: (0..schema.len()).collect(),
                    schema,
                    hints: vec![],
                };
                Ok((plan, scope))
            }
            TableRef::Derived { query, alias } => {
                // Derived tables bind uncorrelated (no LATERAL).
                let (p, _) = self.bind_query(query, None)?;
                let scope = Scope::from_schema(Some(alias), p.schema());
                Ok((p, scope))
            }
            TableRef::Join { left, right, kind, on } => {
                let (lp, ls) = self.bind_table_ref(left)?;
                let (rp, rs) = self.bind_table_ref(right)?;
                let lwidth = ls.cols.len();
                let combined = ls.clone().concat(rs.clone());
                // Split the ON condition into equi-keys and residual.
                let mut keys = Vec::new();
                let mut residual = Vec::new();
                for c in split_conjuncts(on) {
                    if let Some((le, re)) = self.try_equi_key(c, &ls, &rs, lwidth)? {
                        keys.push((le, re));
                    } else {
                        residual.push(self.bind_expr(c, &combined)?);
                    }
                }
                if keys.is_empty() {
                    return Err(berr("join requires at least one equality key (t.a = s.b)"));
                }
                let kind = match kind {
                    AstJoinKind::Inner => JoinKind::Inner,
                    AstJoinKind::Left => JoinKind::Left,
                };
                // Left join output: right side columns become nullable.
                let mut out_scope = combined.clone();
                if kind == JoinKind::Left {
                    for c in &mut out_scope.cols[lwidth..] {
                        c.nullable = true;
                    }
                }
                let mut plan = LogicalPlan::Join {
                    left: Box::new(lp),
                    right: Box::new(rp),
                    kind,
                    keys,
                    schema: out_scope.to_schema(),
                };
                for r in residual {
                    plan = LogicalPlan::Filter { input: Box::new(plan), predicate: r };
                }
                Ok((plan, out_scope))
            }
            TableRef::Cross(_) => {
                // Comma-lists only occur at the top of a FROM clause and
                // are joined by `bind_core` using the WHERE equalities.
                Err(berr("comma-joined tables outside a FROM clause (engine bug)"))
            }
        }
    }

    /// Try to interpret `e` as `left_col = right_col` across the join.
    fn try_equi_key(
        &self,
        e: &Expr,
        ls: &Scope,
        rs: &Scope,
        lwidth: usize,
    ) -> Result<Option<(SqlExpr, SqlExpr)>> {
        let Expr::Binary { op: ast::BinaryOp::Eq, left, right } = e else {
            return Ok(None);
        };
        let combined = ls.clone().concat(rs.clone());
        let l = self.bind_expr(left, &combined)?;
        let r = self.bind_expr(right, &combined)?;
        let side = |x: &SqlExpr| -> Option<bool> {
            // true = purely left, false = purely right
            let mut cols = Vec::new();
            x.collect_cols(&mut cols);
            if cols.is_empty() {
                return None;
            }
            if cols.iter().all(|&c| c < lwidth) {
                Some(true)
            } else if cols.iter().all(|&c| c >= lwidth) {
                Some(false)
            } else {
                None
            }
        };
        match (side(&l), side(&r)) {
            (Some(true), Some(false)) => {
                let r = r.remap_cols(&|i| Some(i - lwidth))?;
                let (l, r) = unify_key_types(l, r)?;
                Ok(Some((l, r)))
            }
            (Some(false), Some(true)) => {
                let l = l.remap_cols(&|i| Some(i - lwidth))?;
                let (r, l) = unify_key_types(r, l)?;
                Ok(Some((r, l)))
            }
            _ => Ok(None),
        }
    }

    fn bind_in_subquery(
        &self,
        plan: LogicalPlan,
        scope: &Scope,
        expr: &Expr,
        subquery: &SelectStmt,
        negated: bool,
    ) -> Result<LogicalPlan> {
        let (sub, corr) = self.bind_query(subquery, Some(scope))?;
        if sub.schema().len() - corr.len() != 1 {
            return Err(berr("IN subquery must return exactly one column"));
        }
        let left_key = self.bind_expr(expr, scope)?;
        ensure_no_outer(&left_key, "IN probe value")?;
        if corr.is_empty() {
            // Uncorrelated: direct semi / NULL-aware anti join.
            let right_key = SqlExpr::Col(0, sub.schema().field(0).ty);
            let (left_key, right_key) = unify_key_types(left_key, right_key)?;
            let kind = if negated { JoinKind::NullAwareAnti } else { JoinKind::Semi };
            return Ok(LogicalPlan::Join {
                schema: plan.schema().clone(),
                left: Box::new(plan),
                right: Box::new(sub),
                kind,
                keys: vec![(left_key, right_key)],
            });
        }
        if negated {
            // The NULL-aware anti join would have to reason about NULLs
            // per correlation group; rewrite the query instead.
            return Err(unsup("correlated NOT IN subquery (rewrite as NOT EXISTS)"));
        }
        let mut keys = vec![apply_key(left_key, sub.schema(), 0)?];
        for (oe, idx) in &corr {
            keys.push(apply_key(oe.clone(), sub.schema(), *idx)?);
        }
        Ok(LogicalPlan::Apply {
            schema: plan.schema().clone(),
            input: Box::new(plan),
            subquery: Box::new(sub),
            kind: ApplyKind::In,
            keys,
        })
    }

    fn bind_exists(
        &self,
        plan: LogicalPlan,
        scope: &Scope,
        subquery: &SelectStmt,
        negated: bool,
    ) -> Result<LogicalPlan> {
        let (sub, corr) = self.bind_query(subquery, Some(scope))?;
        if corr.is_empty() {
            // Uncorrelated EXISTS: semi/anti join on the constant key 1 = 1.
            let one = SqlExpr::Lit(Value::I64(1), TypeId::I64);
            // Project the subquery down to the constant key.
            let sub_key = LogicalPlan::Project {
                schema: Schema::unchecked(vec![Field::not_null("__one", TypeId::I64)]),
                exprs: vec![one.clone()],
                input: Box::new(sub),
            };
            let kind = if negated { JoinKind::Anti } else { JoinKind::Semi };
            return Ok(LogicalPlan::Join {
                schema: plan.schema().clone(),
                left: Box::new(plan),
                right: Box::new(sub_key),
                kind,
                keys: vec![(one, SqlExpr::Col(0, TypeId::I64))],
            });
        }
        let keys = corr
            .iter()
            .map(|(oe, idx)| apply_key(oe.clone(), sub.schema(), *idx))
            .collect::<Result<Vec<_>>>()?;
        Ok(LogicalPlan::Apply {
            schema: plan.schema().clone(),
            input: Box::new(plan),
            subquery: Box::new(sub),
            kind: ApplyKind::Exists { negated },
            keys,
        })
    }

    /// Turn one scalar subquery in a WHERE conjunct into an Apply above
    /// `plan`, extend `scope` with the value column, and return the
    /// marker identifier the rewritten conjunct binds against.
    fn apply_scalar(
        &self,
        sub: &SelectStmt,
        plan: &mut LogicalPlan,
        scope: &mut Scope,
        n: &mut usize,
    ) -> Result<Expr> {
        let (sub_plan, corr) = self.bind_query(sub, Some(scope))?;
        if sub_plan.schema().len() - corr.len() != 1 {
            return Err(berr("scalar subquery must return exactly one column"));
        }
        let ty = sub_plan.schema().field(0).ty;
        let (sub_plan, keys) = if corr.is_empty() {
            if !at_most_one_row(&sub_plan) {
                return Err(unsup(
                    "uncorrelated scalar subquery without a single-row guarantee \
                     (use an aggregate without GROUP BY, or LIMIT 1)",
                ));
            }
            let one = SqlExpr::Lit(Value::I64(1), TypeId::I64);
            let proj = LogicalPlan::Project {
                schema: Schema::unchecked(vec![
                    Field { name: "__sval".into(), ty, nullable: true },
                    Field::not_null("__one", TypeId::I64),
                ]),
                exprs: vec![SqlExpr::Col(0, ty), one.clone()],
                input: Box::new(sub_plan),
            };
            (proj, vec![(one, 1)])
        } else {
            if !corr_scalar_unique(&sub_plan, corr.len()) {
                return Err(unsup(
                    "correlated scalar subquery that is not a single aggregate grouped by \
                     its correlation keys (one value per outer row is not guaranteed)",
                ));
            }
            let keys = corr
                .iter()
                .map(|(oe, idx)| apply_key(oe.clone(), sub_plan.schema(), *idx))
                .collect::<Result<Vec<_>>>()?;
            (sub_plan, keys)
        };
        let name = format!("__scalar{n}");
        *n += 1;
        let mut fields = plan.schema().fields.clone();
        fields.push(Field { name: name.clone(), ty, nullable: true });
        let input = std::mem::replace(
            plan,
            LogicalPlan::Values { schema: Schema::unchecked(vec![]), rows: vec![] },
        );
        *plan = LogicalPlan::Apply {
            input: Box::new(input),
            subquery: Box::new(sub_plan),
            kind: ApplyKind::Scalar,
            keys,
            schema: Schema::unchecked(fields),
        };
        scope.cols.push(ScopeCol { qualifier: None, name: name.clone(), ty, nullable: true });
        Ok(Expr::Ident(vec![name]))
    }

    /// Same as [`apply_scalar`](Binder::apply_scalar) but for HAVING:
    /// the Apply stacks above the aggregate, and the marker resolves via
    /// the post-aggregation `extra` table instead of the scope. HAVING
    /// scalars must be uncorrelated (Q11's threshold is).
    fn apply_having_scalar(
        &self,
        sub: &SelectStmt,
        plan: &mut LogicalPlan,
        extra: &mut Vec<(String, TypeId, usize)>,
        agg_w: usize,
    ) -> Result<Expr> {
        let (sub_plan, _) = self.bind_query(sub, None)?;
        if sub_plan.schema().len() != 1 {
            return Err(berr("scalar subquery must return exactly one column"));
        }
        if !at_most_one_row(&sub_plan) {
            return Err(unsup(
                "uncorrelated scalar subquery without a single-row guarantee \
                 (use an aggregate without GROUP BY, or LIMIT 1)",
            ));
        }
        let ty = sub_plan.schema().field(0).ty;
        let one = SqlExpr::Lit(Value::I64(1), TypeId::I64);
        let proj = LogicalPlan::Project {
            schema: Schema::unchecked(vec![
                Field { name: "__sval".into(), ty, nullable: true },
                Field::not_null("__one", TypeId::I64),
            ]),
            exprs: vec![SqlExpr::Col(0, ty), one.clone()],
            input: Box::new(sub_plan),
        };
        let name = format!("__hscalar{}", extra.len());
        let idx = agg_w + extra.len();
        let mut fields = plan.schema().fields.clone();
        fields.push(Field { name: name.clone(), ty, nullable: true });
        let input = std::mem::replace(
            plan,
            LogicalPlan::Values { schema: Schema::unchecked(vec![]), rows: vec![] },
        );
        *plan = LogicalPlan::Apply {
            input: Box::new(input),
            subquery: Box::new(proj),
            kind: ApplyKind::Scalar,
            keys: vec![(one, 1)],
            schema: Schema::unchecked(fields),
        };
        extra.push((name.clone(), ty, idx));
        Ok(Expr::Ident(vec![name]))
    }

    /// Bind a scalar expression against a scope.
    fn bind_expr(&self, e: &Expr, scope: &Scope) -> Result<SqlExpr> {
        match e {
            Expr::Ident(parts) => {
                let (i, ty) = scope.resolve(parts)?;
                Ok(SqlExpr::Col(i, ty))
            }
            Expr::Lit(v) => Ok(SqlExpr::Lit(v.clone(), v.type_id().unwrap_or(TypeId::I64))),
            Expr::Binary { op, left, right } => {
                if let Some(e) = self.try_interval_arith(*op, left, right, scope)? {
                    return Ok(e);
                }
                let l = self.bind_expr(left, scope)?;
                let r = self.bind_expr(right, scope)?;
                combine_binary(*op, l, r)
            }
            Expr::Neg(x) => negate(self.bind_expr(x, scope)?),
            Expr::Not(x) => Ok(SqlExpr::Not(Box::new(self.bind_expr(x, scope)?))),
            Expr::Cast { expr, ty } => Ok(cast_to(self.bind_expr(expr, scope)?, *ty)),
            Expr::IsNull { expr, negated } => {
                let b = self.bind_expr(expr, scope)?;
                Ok(if *negated {
                    SqlExpr::IsNotNull(Box::new(b))
                } else {
                    SqlExpr::IsNull(Box::new(b))
                })
            }
            Expr::Between { expr, low, high, negated } => {
                // BETWEEN expands here (a rewrite the paper would do in the
                // rewriter; it is pure syntax, so the binder handles it).
                let x = self.bind_expr(expr, scope)?;
                let lo = self.bind_expr(low, scope)?;
                let hi = self.bind_expr(high, scope)?;
                let ge = combine_binary(ast::BinaryOp::Ge, x.clone(), lo)?;
                let le = combine_binary(ast::BinaryOp::Le, x, hi)?;
                let both = SqlExpr::And(vec![ge, le]);
                Ok(if *negated { SqlExpr::Not(Box::new(both)) } else { both })
            }
            Expr::Like { expr, pattern, negated } => {
                let input = self.bind_expr(expr, scope)?;
                if input.type_id() != TypeId::Str {
                    return Err(berr("LIKE requires a string input"));
                }
                Ok(SqlExpr::Like {
                    input: Box::new(input),
                    pattern: pattern.clone(),
                    negated: *negated,
                })
            }
            Expr::InList { expr, list, negated } => {
                let input = self.bind_expr(expr, scope)?;
                let mut ty = input.type_id();
                let mut bound = Vec::with_capacity(list.len());
                for m in list {
                    let b = self.bind_expr(m, scope)?;
                    ty = TypeId::promote(ty, b.type_id())
                        .ok_or_else(|| berr("IN list has incompatible types"))?;
                    bound.push(b);
                }
                let input = cast_to(input, ty);
                let bound = bound.into_iter().map(|b| cast_to(b, ty)).collect();
                Ok(SqlExpr::InList { input: Box::new(input), list: bound, negated: *negated })
            }
            Expr::InSubquery { .. } | Expr::Exists { .. } => {
                Err(berr("subqueries are only supported as top-level WHERE conjuncts"))
            }
            Expr::Case { branches, else_expr } => {
                let mut bs = Vec::new();
                for (c, v) in branches {
                    bs.push((self.bind_expr(c, scope)?, self.bind_expr(v, scope)?));
                }
                let el = match else_expr {
                    Some(x) => Some(Box::new(self.bind_expr(x, scope)?)),
                    None => None,
                };
                build_case(bs, el)
            }
            Expr::Func { name, args } => {
                let bound: Vec<SqlExpr> =
                    args.iter().map(|a| self.bind_expr(a, scope)).collect::<Result<_>>()?;
                bind_function(name, bound)
            }
            Expr::Wildcard => Err(berr("'*' only valid in COUNT(*)")),
            Expr::Extract { field, expr } => {
                let f = DateField::parse(field)
                    .ok_or_else(|| berr(format!("unknown EXTRACT field {field}")))?;
                let d = self.bind_expr(expr, scope)?;
                if d.type_id() != TypeId::Date {
                    return Err(berr("EXTRACT requires a DATE input"));
                }
                Ok(SqlExpr::Func {
                    func: KernelFunc::Extract,
                    args: vec![
                        d,
                        SqlExpr::Lit(Value::I64(vw_exec::expr::encode_field(f)), TypeId::I64),
                    ],
                    ty: TypeId::I64,
                })
            }
            Expr::Scalar(_) => Err(unsup(
                "scalar subquery in this position (supported in WHERE and HAVING conjuncts)",
            )),
            Expr::Interval { .. } => {
                Err(berr("INTERVAL is only valid in date ± INTERVAL arithmetic"))
            }
        }
    }

    /// Lower `date ± INTERVAL 'n' unit` (and `INTERVAL + date`) to date
    /// arithmetic. Returns `Ok(None)` when the operands are not that shape.
    fn try_interval_arith(
        &self,
        op: ast::BinaryOp,
        left: &Expr,
        right: &Expr,
        scope: &Scope,
    ) -> Result<Option<SqlExpr>> {
        use ast::BinaryOp as B;
        let (date_ast, n, unit) = match (left, right, op) {
            (d, Expr::Interval { n, unit }, B::Add | B::Sub) => (d, *n, *unit),
            (Expr::Interval { n, unit }, d, B::Add) => (d, *n, *unit),
            _ => return Ok(None),
        };
        let d = self.bind_expr(date_ast, scope)?;
        if d.type_id() != TypeId::Date {
            return Err(berr("INTERVAL arithmetic requires a DATE operand"));
        }
        let n = if op == B::Sub { -n } else { n };
        let months = match unit {
            IntervalUnit::Day => None,
            IntervalUnit::Month => Some(n),
            IntervalUnit::Year => Some(n * 12),
        };
        // Fold literal dates at bind time so MinMax hints and goldens see
        // plain date literals.
        if let SqlExpr::Lit(Value::Date(dt), _) = &d {
            let out = match months {
                None => {
                    let delta =
                        i32::try_from(n).map_err(|_| berr("INTERVAL magnitude overflows"))?;
                    dt.0.checked_add(delta).ok_or_else(|| berr("date out of range"))?
                }
                Some(m) => {
                    let m = i32::try_from(m).map_err(|_| berr("INTERVAL magnitude overflows"))?;
                    add_months(dt.0, m)?
                }
            };
            return Ok(Some(SqlExpr::Lit(Value::Date(Date(out)), TypeId::Date)));
        }
        let (func, arg) = match months {
            None => (KernelFunc::DateAddDays, n),
            Some(m) => (KernelFunc::DateAddMonths, m),
        };
        Ok(Some(SqlExpr::Func {
            func,
            args: vec![d, SqlExpr::Lit(Value::I64(arg), TypeId::I64)],
            ty: TypeId::Date,
        }))
    }

    /// Bind an expression against a bare schema (UPDATE SET / DELETE WHERE).
    pub fn bind_expr_on_schema(&self, e: &Expr, schema: &Schema) -> Result<SqlExpr> {
        self.bind_expr(e, &Scope::from_schema(None, schema))
    }
}

fn split_conjuncts(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Binary { op: ast::BinaryOp::And, left, right } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other],
    }
}

fn display_name(e: &Expr) -> String {
    match e {
        Expr::Ident(parts) => parts.last().cloned().unwrap_or_else(|| "?column?".into()),
        Expr::Func { name, .. } => name.to_ascii_lowercase(),
        _ => "?column?".into(),
    }
}

fn cast_to(e: SqlExpr, ty: TypeId) -> SqlExpr {
    if e.type_id() == ty {
        e
    } else if matches!(&e, SqlExpr::Lit(v, _) if v.is_null()) {
        // NULL literals retype for free.
        SqlExpr::Lit(Value::Null, ty)
    } else {
        SqlExpr::Cast { input: Box::new(e), to: ty }
    }
}

/// Combine two set-operation operands, unifying their schemas: widths
/// must match, column types promote pairwise (casting a side through a
/// projection when needed), and the left operand's column names win.
fn make_setop(kind: ast::SetOpKind, left: LogicalPlan, right: LogicalPlan) -> Result<LogicalPlan> {
    let (lw, rw) = (left.schema().len(), right.schema().len());
    if lw != rw {
        return Err(berr(format!("set operation operands have {lw} vs {rw} columns")));
    }
    let mut fields = Vec::with_capacity(lw);
    for (lf, rf) in left.schema().fields.iter().zip(&right.schema().fields) {
        let ty = TypeId::promote(lf.ty, rf.ty).ok_or_else(|| {
            berr(format!(
                "set operation column {} has incompatible types {} and {}",
                lf.name, lf.ty, rf.ty
            ))
        })?;
        fields.push(Field { name: lf.name.clone(), ty, nullable: lf.nullable || rf.nullable });
    }
    let schema = Schema::unchecked(fields);
    let left = cast_input(left, &schema);
    let right = cast_input(right, &schema);
    let op = match kind {
        ast::SetOpKind::Union => SetOpKind::Union,
        ast::SetOpKind::UnionAll => SetOpKind::UnionAll,
        ast::SetOpKind::Intersect => SetOpKind::Intersect,
        ast::SetOpKind::Except => SetOpKind::Except,
    };
    Ok(LogicalPlan::SetOp { op, inputs: vec![left, right], schema })
}

/// Wrap `input` in a casting projection when its column types differ
/// from `target`'s (names are taken from `target` either way).
fn cast_input(input: LogicalPlan, target: &Schema) -> LogicalPlan {
    let same = input.schema().fields.iter().zip(&target.fields).all(|(f, t)| f.ty == t.ty);
    if same {
        return input;
    }
    let exprs: Vec<SqlExpr> = target
        .fields
        .iter()
        .enumerate()
        .map(|(i, t)| cast_to(SqlExpr::Col(i, input.schema().field(i).ty), t.ty))
        .collect();
    LogicalPlan::Project { schema: target.clone(), exprs, input: Box::new(input) }
}

fn unify_key_types(l: SqlExpr, r: SqlExpr) -> Result<(SqlExpr, SqlExpr)> {
    let ty = TypeId::promote(l.type_id(), r.type_id()).ok_or_else(|| {
        berr(format!("join/IN key types {} and {} are incompatible", l.type_id(), r.type_id()))
    })?;
    Ok((cast_to(l, ty), cast_to(r, ty)))
}

fn negate(e: SqlExpr) -> Result<SqlExpr> {
    let ty = e.type_id();
    if !ty.is_numeric() {
        return Err(berr(format!("cannot negate {ty}")));
    }
    let zero = if ty == TypeId::F64 {
        SqlExpr::Lit(Value::F64(0.0), TypeId::F64)
    } else {
        SqlExpr::Lit(Value::I64(0), TypeId::I64)
    };
    combine_binary(ast::BinaryOp::Sub, zero, e)
}

fn build_case(
    branches: Vec<(SqlExpr, SqlExpr)>,
    else_expr: Option<Box<SqlExpr>>,
) -> Result<SqlExpr> {
    let mut ty = branches
        .first()
        .map(|(_, v)| v.type_id())
        .ok_or_else(|| berr("CASE needs at least one WHEN"))?;
    for (c, v) in &branches {
        if c.type_id() != TypeId::Bool {
            return Err(berr("CASE WHEN condition must be boolean"));
        }
        ty = TypeId::promote(ty, v.type_id())
            .ok_or_else(|| berr("CASE branches have incompatible types"))?;
    }
    if let Some(e) = &else_expr {
        ty = TypeId::promote(ty, e.type_id())
            .ok_or_else(|| berr("CASE ELSE has incompatible type"))?;
    }
    let branches = branches.into_iter().map(|(c, v)| (c, cast_to(v, ty))).collect();
    let else_expr = else_expr.map(|e| Box::new(cast_to(*e, ty)));
    Ok(SqlExpr::Case { branches, else_expr, ty })
}

/// Bind a non-aggregate function call by name.
pub fn bind_function(name: &str, args: Vec<SqlExpr>) -> Result<SqlExpr> {
    let imp = functions::resolve(name).ok_or_else(|| berr(format!("unknown function {name}")))?;
    let (args, ty) = functions::type_check(name, imp, args)?;
    Ok(match imp {
        FuncImpl::Kernel(func) => SqlExpr::Func { func, args, ty },
        FuncImpl::Ext(func) => SqlExpr::Ext { func, args, ty },
    })
}

/// Combine a binary AST operator over two bound operands, inserting
/// promotions/casts and lowering date arithmetic to kernel functions.
pub fn combine_binary(op: ast::BinaryOp, l: SqlExpr, r: SqlExpr) -> Result<SqlExpr> {
    use ast::BinaryOp as B;
    let (lt, rt) = (l.type_id(), r.type_id());
    match op {
        B::And => Ok(SqlExpr::And(vec![l, r])),
        B::Or => Ok(SqlExpr::Or(vec![l, r])),
        B::Eq | B::Ne | B::Lt | B::Le | B::Gt | B::Ge => {
            let cmp = match op {
                B::Eq => CmpOp::Eq,
                B::Ne => CmpOp::Ne,
                B::Lt => CmpOp::Lt,
                B::Le => CmpOp::Le,
                B::Gt => CmpOp::Gt,
                B::Ge => CmpOp::Ge,
                _ => unreachable!(),
            };
            // NULL literals are type-flexible: adopt the other side's type.
            let ty = if matches!(&l, SqlExpr::Lit(v, _) if v.is_null()) {
                rt
            } else if matches!(&r, SqlExpr::Lit(v, _) if v.is_null()) {
                lt
            } else {
                TypeId::promote(lt, rt)
                    .ok_or_else(|| berr(format!("cannot compare {lt} with {rt}")))?
            };
            Ok(SqlExpr::Cmp { op: cmp, l: Box::new(cast_to(l, ty)), r: Box::new(cast_to(r, ty)) })
        }
        B::Add | B::Sub | B::Mul | B::Div | B::Rem => {
            // Date arithmetic lowers to kernel date functions.
            if lt == TypeId::Date && rt.is_integer() && matches!(op, B::Add | B::Sub) {
                let days = if op == B::Sub {
                    negate(cast_to(r, TypeId::I64))?
                } else {
                    cast_to(r, TypeId::I64)
                };
                return Ok(SqlExpr::Func {
                    func: KernelFunc::DateAddDays,
                    args: vec![l, days],
                    ty: TypeId::Date,
                });
            }
            if lt == TypeId::Date && rt == TypeId::Date && op == B::Sub {
                return Ok(SqlExpr::Func {
                    func: KernelFunc::DateDiffDays,
                    args: vec![l, r],
                    ty: TypeId::I64,
                });
            }
            if !lt.is_numeric() || !rt.is_numeric() {
                return Err(berr(format!("arithmetic on {lt} and {rt}")));
            }
            let target =
                if lt == TypeId::F64 || rt == TypeId::F64 { TypeId::F64 } else { TypeId::I64 };
            let bop = match op {
                B::Add => BinOp::Add,
                B::Sub => BinOp::Sub,
                B::Mul => BinOp::Mul,
                B::Div => BinOp::Div,
                B::Rem => BinOp::Rem,
                _ => unreachable!(),
            };
            Ok(SqlExpr::Arith {
                op: bop,
                l: Box::new(cast_to(l, target)),
                r: Box::new(cast_to(r, target)),
                ty: target,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ExtFunc;
    use crate::parse;

    struct MockCatalog;

    impl CatalogView for MockCatalog {
        fn table_schema(&self, name: &str) -> Option<Schema> {
            match name {
                "t" => Some(
                    Schema::new(vec![
                        Field::not_null("id", TypeId::I64),
                        Field::nullable("qty", TypeId::I32),
                        Field::nullable("name", TypeId::Str),
                        Field::nullable("d", TypeId::Date),
                    ])
                    .unwrap(),
                ),
                "s" => Some(
                    Schema::new(vec![
                        Field::not_null("id", TypeId::I64),
                        Field::nullable("v", TypeId::F64),
                    ])
                    .unwrap(),
                ),
                _ => None,
            }
        }

        fn table_rows(&self, _name: &str) -> Option<u64> {
            Some(1000)
        }
    }

    fn bind(sql: &str) -> Result<LogicalPlan> {
        let stmts = parse(sql)?;
        let ast::Statement::Select(s) = &stmts[0] else { panic!("not a select") };
        Binder::new(&MockCatalog).bind_select(s)
    }

    #[test]
    fn simple_select() {
        let p = bind("SELECT id, qty + 1 FROM t WHERE qty > 5").unwrap();
        let text = p.explain();
        assert!(text.contains("Project"));
        assert!(text.contains("Select"));
        assert!(text.contains("Scan t"));
        assert_eq!(p.schema().len(), 2);
        // qty+1 is promoted to I64.
        assert_eq!(p.schema().field(1).ty, TypeId::I64);
    }

    #[test]
    fn wildcard_expands() {
        let p = bind("SELECT * FROM t").unwrap();
        assert_eq!(p.schema().len(), 4);
        assert_eq!(p.schema().field(2).name, "name");
    }

    #[test]
    fn unknown_names_error() {
        assert!(matches!(bind("SELECT nope FROM t"), Err(VwError::Bind(_))));
        assert!(matches!(bind("SELECT id FROM missing"), Err(VwError::Catalog(_))));
        assert!(matches!(bind("SELECT NOSUCHFN(id) FROM t"), Err(VwError::Bind(_))));
    }

    #[test]
    fn type_errors_detected() {
        assert!(bind("SELECT name + 1 FROM t").is_err());
        assert!(bind("SELECT id FROM t WHERE name > 5").is_err());
        assert!(bind("SELECT UPPER(id) FROM t").is_err());
    }

    #[test]
    fn aggregate_binding() {
        let p = bind("SELECT name, SUM(qty), COUNT(*) FROM t GROUP BY name HAVING SUM(qty) > 10")
            .unwrap();
        let text = p.explain();
        assert!(text.contains("Aggr groups=1 aggs=2"));
        assert!(text.contains("Select")); // HAVING
        assert_eq!(p.schema().field(1).ty, TypeId::I64);
    }

    #[test]
    fn agg_with_expression_over_aggs() {
        let p = bind("SELECT SUM(qty) / COUNT(*) FROM t").unwrap();
        assert_eq!(p.schema().len(), 1);
        assert_eq!(p.schema().field(0).ty, TypeId::I64);
    }

    #[test]
    fn ungrouped_column_rejected() {
        assert!(bind("SELECT id, SUM(qty) FROM t GROUP BY name").is_err());
    }

    #[test]
    fn join_binding_and_left_nullability() {
        let p = bind("SELECT t.id, s.v FROM t LEFT JOIN s ON t.id = s.id").unwrap();
        let text = p.explain();
        assert!(text.contains("HashJoin Left"));
        assert_eq!(p.schema().len(), 2);
    }

    #[test]
    fn join_requires_equality() {
        assert!(bind("SELECT t.id FROM t JOIN s ON t.id < s.id").is_err());
    }

    #[test]
    fn in_subquery_becomes_semi_join() {
        let p = bind("SELECT id FROM t WHERE id IN (SELECT id FROM s)").unwrap();
        assert!(p.explain().contains("HashJoin Semi"));
        let p = bind("SELECT id FROM t WHERE id NOT IN (SELECT id FROM s)").unwrap();
        assert!(p.explain().contains("HashJoin NullAwareAnti"));
    }

    #[test]
    fn exists_becomes_semi_join_on_const() {
        let p = bind("SELECT id FROM t WHERE EXISTS (SELECT id FROM s)").unwrap();
        assert!(p.explain().contains("HashJoin Semi"));
        let p = bind("SELECT id FROM t WHERE NOT EXISTS (SELECT id FROM s)").unwrap();
        assert!(p.explain().contains("HashJoin Anti"));
    }

    #[test]
    fn order_by_and_limit() {
        let p = bind("SELECT id, qty FROM t ORDER BY qty DESC, 1 ASC LIMIT 5 OFFSET 2").unwrap();
        let text = p.explain();
        assert!(text.contains("Limit 5 offset 2"));
        assert!(text.contains("Sort keys=[(1, false, true), (0, true, false)]"));
    }

    #[test]
    fn date_arith_lowered() {
        let p = bind("SELECT d + 30, d - DATE '1996-01-01' FROM t").unwrap();
        assert_eq!(p.schema().field(0).ty, TypeId::Date);
        assert_eq!(p.schema().field(1).ty, TypeId::I64);
    }

    #[test]
    fn between_and_extract() {
        let p = bind("SELECT EXTRACT(YEAR FROM d) FROM t WHERE qty BETWEEN 1 AND 10").unwrap();
        assert_eq!(p.schema().field(0).ty, TypeId::I64);
    }

    #[test]
    fn ext_functions_stay_extended() {
        let p = bind("SELECT COALESCE(qty, 0), NULLIF(id, 5) FROM t").unwrap();
        // The plan still contains Ext nodes (the rewriter expands later).
        let LogicalPlan::Project { exprs, .. } = &p else { panic!() };
        assert!(matches!(exprs[0], SqlExpr::Ext { func: ExtFunc::Coalesce, .. }));
    }

    #[test]
    fn select_without_from() {
        let p = bind("SELECT 1 + 2, 'x'").unwrap();
        assert_eq!(p.schema().len(), 2);
    }

    #[test]
    fn in_list_binds_with_promotion() {
        let p = bind("SELECT id FROM t WHERE qty IN (1, 2, 3)").unwrap();
        assert!(p.explain().contains("Select"));
    }
}
