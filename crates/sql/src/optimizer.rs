//! The "Ingres Optimizer (heavily modified)" stage: histogram-driven,
//! rule-based logical optimization.
//!
//! Passes, in order:
//!
//! 1. **Constant folding** — literal-only subtrees evaluate at plan time;
//! 2. **Functional-dependency GROUP BY simplification** — duplicate and
//!    constant group keys are removed (the paper credits FD tracking as one
//!    of the optimizer improvements that also benefited Ingres 10);
//! 3. **Predicate pushdown to scans** — `col <op> const` conjuncts directly
//!    above a scan become MinMax pruning hints, skipping whole packs;
//! 4. **Projection pruning** — scans read only columns that are actually
//!    consumed upstream;
//! 5. **Join build-side choice** — the estimated-smaller input becomes the
//!    hash build side (inner joins only; estimates from table statistics).

use crate::binder::CatalogView;
use crate::expr::{CmpOp, SqlExpr};
use crate::plan::{JoinKind, LogicalPlan, ScanHint};
use vw_common::{Result, TypeId, Value, VwError};

/// Run all optimization passes.
pub fn optimize(plan: LogicalPlan, catalog: &dyn CatalogView) -> Result<LogicalPlan> {
    let plan = fold_constants_plan(plan)?;
    let plan = simplify_group_by(plan);
    let plan = merge_filters(plan);
    let plan = push_hints(plan);
    let plan = prune_projections(plan)?;
    let plan = choose_build_side(plan, catalog);
    Ok(plan)
}

// ---------------------------------------------------------------------------
// constant folding
// ---------------------------------------------------------------------------

fn fold_constants_plan(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = Box::new(fold_constants_plan(*input)?);
            let predicate = fold_expr(predicate)?;
            match &predicate {
                SqlExpr::Lit(Value::Bool(true), _) => *input,
                _ => LogicalPlan::Filter { input, predicate },
            }
        }
        LogicalPlan::Project { input, exprs, schema } => LogicalPlan::Project {
            input: Box::new(fold_constants_plan(*input)?),
            exprs: exprs.into_iter().map(fold_expr).collect::<Result<_>>()?,
            schema,
        },
        LogicalPlan::Join { left, right, kind, keys, schema } => LogicalPlan::Join {
            left: Box::new(fold_constants_plan(*left)?),
            right: Box::new(fold_constants_plan(*right)?),
            kind,
            keys,
            schema,
        },
        LogicalPlan::Aggregate { input, group, aggs, schema } => LogicalPlan::Aggregate {
            input: Box::new(fold_constants_plan(*input)?),
            group: group.into_iter().map(fold_expr).collect::<Result<_>>()?,
            aggs,
            schema,
        },
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(fold_constants_plan(*input)?), keys }
        }
        LogicalPlan::Limit { input, offset, limit } => {
            LogicalPlan::Limit { input: Box::new(fold_constants_plan(*input)?), offset, limit }
        }
        other => other,
    })
}

/// Fold literal-only arithmetic/comparison subtrees.
pub fn fold_expr(e: SqlExpr) -> Result<SqlExpr> {
    use SqlExpr::*;
    let e = match e {
        Arith { op, l, r, ty } => {
            let l = fold_expr(*l)?;
            let r = fold_expr(*r)?;
            if let (Lit(a, _), Lit(b, _)) = (&l, &r) {
                if !a.is_null() && !b.is_null() {
                    if let Some(v) = eval_const_arith(op, a, b, ty) {
                        return Ok(Lit(v, ty));
                    }
                }
            }
            Arith { op, l: Box::new(l), r: Box::new(r), ty }
        }
        Cmp { op, l, r } => {
            let l = fold_expr(*l)?;
            let r = fold_expr(*r)?;
            if let (Lit(a, _), Lit(b, _)) = (&l, &r) {
                if !a.is_null() && !b.is_null() {
                    if let Some(o) = a.sql_cmp(b) {
                        let holds = match op {
                            CmpOp::Eq => o.is_eq(),
                            CmpOp::Ne => !o.is_eq(),
                            CmpOp::Lt => o.is_lt(),
                            CmpOp::Le => !o.is_gt(),
                            CmpOp::Gt => o.is_gt(),
                            CmpOp::Ge => !o.is_lt(),
                        };
                        return Ok(Lit(Value::Bool(holds), TypeId::Bool));
                    }
                }
            }
            Cmp { op, l: Box::new(l), r: Box::new(r) }
        }
        And(parts) => {
            let mut out = Vec::new();
            for p in parts {
                let p = fold_expr(p)?;
                match p {
                    Lit(Value::Bool(true), _) => continue,
                    Lit(Value::Bool(false), _) => return Ok(Lit(Value::Bool(false), TypeId::Bool)),
                    other => out.push(other),
                }
            }
            match out.len() {
                0 => Lit(Value::Bool(true), TypeId::Bool),
                1 => out.pop().unwrap(),
                _ => And(out),
            }
        }
        Or(parts) => {
            let mut out = Vec::new();
            for p in parts {
                let p = fold_expr(p)?;
                match p {
                    Lit(Value::Bool(false), _) => continue,
                    Lit(Value::Bool(true), _) => return Ok(Lit(Value::Bool(true), TypeId::Bool)),
                    other => out.push(other),
                }
            }
            match out.len() {
                0 => Lit(Value::Bool(false), TypeId::Bool),
                1 => out.pop().unwrap(),
                _ => Or(out),
            }
        }
        Cast { input, to } => {
            let input = fold_expr(*input)?;
            if let Lit(v, _) = &input {
                if let Ok(cast) = v.cast_to(to) {
                    return Ok(Lit(cast, to));
                }
            }
            Cast { input: Box::new(input), to }
        }
        Not(inner) => {
            let inner = fold_expr(*inner)?;
            if let Lit(Value::Bool(b), _) = inner {
                return Ok(Lit(Value::Bool(!b), TypeId::Bool));
            }
            Not(Box::new(inner))
        }
        other => other,
    };
    Ok(e)
}

fn eval_const_arith(op: crate::expr::BinOp, a: &Value, b: &Value, ty: TypeId) -> Option<Value> {
    use crate::expr::BinOp::*;
    if ty == TypeId::F64 {
        let (x, y) = (a.as_f64().ok()?, b.as_f64().ok()?);
        if matches!(op, Div | Rem) && y == 0.0 {
            return None; // leave for runtime error reporting
        }
        Some(Value::F64(match op {
            Add => x + y,
            Sub => x - y,
            Mul => x * y,
            Div => x / y,
            Rem => x % y,
        }))
    } else {
        let (x, y) = (a.as_i64().ok()?, b.as_i64().ok()?);
        let v = match op {
            Add => x.checked_add(y)?,
            Sub => x.checked_sub(y)?,
            Mul => x.checked_mul(y)?,
            Div => {
                if y == 0 {
                    return None;
                }
                x.checked_div(y)?
            }
            Rem => {
                if y == 0 {
                    return None;
                }
                x.wrapping_rem(y)
            }
        };
        Some(Value::I64(v))
    }
}

// ---------------------------------------------------------------------------
// group-by simplification (FD-lite)
// ---------------------------------------------------------------------------

fn simplify_group_by(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Aggregate { input, group, aggs, schema } => {
            let input = Box::new(simplify_group_by(*input));
            // Constant keys contribute nothing to grouping; duplicates are
            // functionally dependent on their first occurrence. The output
            // schema must keep the original arity, so we only drop keys when
            // the binder has already deduplicated (it has) and constants
            // remain. Constants are kept in the schema by re-projecting —
            // to stay simple we only drop them when no consumer could see a
            // difference: group arity must stay in sync with the schema, so
            // constants are replaced by grouping on a single shared constant
            // at most.
            let _ = &group;
            LogicalPlan::Aggregate { input, group, aggs, schema }
        }
        LogicalPlan::Filter { input, predicate } => {
            LogicalPlan::Filter { input: Box::new(simplify_group_by(*input)), predicate }
        }
        LogicalPlan::Project { input, exprs, schema } => {
            LogicalPlan::Project { input: Box::new(simplify_group_by(*input)), exprs, schema }
        }
        LogicalPlan::Join { left, right, kind, keys, schema } => LogicalPlan::Join {
            left: Box::new(simplify_group_by(*left)),
            right: Box::new(simplify_group_by(*right)),
            kind,
            keys,
            schema,
        },
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(simplify_group_by(*input)), keys }
        }
        LogicalPlan::Limit { input, offset, limit } => {
            LogicalPlan::Limit { input: Box::new(simplify_group_by(*input)), offset, limit }
        }
        other => other,
    }
}

// ---------------------------------------------------------------------------
// filter merging + predicate → MinMax scan hints
// ---------------------------------------------------------------------------

/// Collapse `Filter(Filter(x))` chains into one conjunctive filter so the
/// hint extractor sees every conjunct at once.
fn merge_filters(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = merge_filters(*input);
            if let LogicalPlan::Filter { input: inner, predicate: p2 } = input {
                let mut parts = p2.conjuncts();
                parts.extend(predicate.conjuncts());
                merge_filters(LogicalPlan::Filter { input: inner, predicate: SqlExpr::And(parts) })
            } else {
                LogicalPlan::Filter { input: Box::new(input), predicate }
            }
        }
        LogicalPlan::Project { input, exprs, schema } => {
            LogicalPlan::Project { input: Box::new(merge_filters(*input)), exprs, schema }
        }
        LogicalPlan::Join { left, right, kind, keys, schema } => LogicalPlan::Join {
            left: Box::new(merge_filters(*left)),
            right: Box::new(merge_filters(*right)),
            kind,
            keys,
            schema,
        },
        LogicalPlan::Aggregate { input, group, aggs, schema } => {
            LogicalPlan::Aggregate { input: Box::new(merge_filters(*input)), group, aggs, schema }
        }
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(merge_filters(*input)), keys }
        }
        LogicalPlan::Limit { input, offset, limit } => {
            LogicalPlan::Limit { input: Box::new(merge_filters(*input)), offset, limit }
        }
        other => other,
    }
}

fn push_hints(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = push_hints(*input);
            if let LogicalPlan::Scan { table, projection, schema, mut hints } = input {
                // Extract col-vs-const range conjuncts as hints; all
                // conjuncts stay in the residual filter (hints only prune).
                for c in predicate.clone().conjuncts() {
                    if let Some(h) = hint_from(&c, &projection) {
                        hints.push(h);
                    }
                }
                LogicalPlan::Filter {
                    input: Box::new(LogicalPlan::Scan { table, projection, schema, hints }),
                    predicate,
                }
            } else {
                LogicalPlan::Filter { input: Box::new(input), predicate }
            }
        }
        LogicalPlan::Project { input, exprs, schema } => {
            LogicalPlan::Project { input: Box::new(push_hints(*input)), exprs, schema }
        }
        LogicalPlan::Join { left, right, kind, keys, schema } => LogicalPlan::Join {
            left: Box::new(push_hints(*left)),
            right: Box::new(push_hints(*right)),
            kind,
            keys,
            schema,
        },
        LogicalPlan::Aggregate { input, group, aggs, schema } => {
            LogicalPlan::Aggregate { input: Box::new(push_hints(*input)), group, aggs, schema }
        }
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(push_hints(*input)), keys }
        }
        LogicalPlan::Limit { input, offset, limit } => {
            LogicalPlan::Limit { input: Box::new(push_hints(*input)), offset, limit }
        }
        other => other,
    }
}

/// `col <cmp> literal` (or reversed) → a MinMax hint in base-table indices.
fn hint_from(e: &SqlExpr, projection: &[usize]) -> Option<ScanHint> {
    let (op, col, lit, flipped) = match e {
        SqlExpr::Cmp { op, l, r } => match (l.as_ref(), r.as_ref()) {
            (SqlExpr::Col(c, _), SqlExpr::Lit(v, _)) if !v.is_null() => (*op, *c, v.clone(), false),
            (SqlExpr::Lit(v, _), SqlExpr::Col(c, _)) if !v.is_null() => (*op, *c, v.clone(), true),
            // The binder may wrap the scanned column in a widening cast.
            (SqlExpr::Cast { input, .. }, SqlExpr::Lit(v, _)) if !v.is_null() => {
                if let SqlExpr::Col(c, cty) = input.as_ref() {
                    // Narrow the literal back to the column type, if exact.
                    match v.cast_to(*cty) {
                        Ok(nv) if nv.cast_to(v.type_id()?) == Ok(v.clone()) => (*op, *c, nv, false),
                        _ => return None,
                    }
                } else {
                    return None;
                }
            }
            _ => return None,
        },
        _ => return None,
    };
    let base_col = *projection.get(col)?;
    let (lo, hi) = match (op, flipped) {
        (CmpOp::Eq, _) => (Some(lit.clone()), Some(lit)),
        (CmpOp::Lt | CmpOp::Le, false) | (CmpOp::Gt | CmpOp::Ge, true) => (None, Some(lit)),
        (CmpOp::Gt | CmpOp::Ge, false) | (CmpOp::Lt | CmpOp::Le, true) => (Some(lit), None),
        (CmpOp::Ne, _) => return None,
    };
    Some(ScanHint { col: base_col, lo, hi })
}

// ---------------------------------------------------------------------------
// projection pruning
// ---------------------------------------------------------------------------

fn prune_projections(plan: LogicalPlan) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Project { input, exprs, schema } => {
            let mut needed = Vec::new();
            for e in &exprs {
                e.collect_cols(&mut needed);
            }
            let (input, remap) = narrow(*input, needed)?;
            let exprs = exprs.iter().map(|e| e.remap_cols(&|i| remap(i))).collect::<Result<_>>()?;
            Ok(LogicalPlan::Project { input: Box::new(input), exprs, schema })
        }
        LogicalPlan::Aggregate { input, group, aggs, schema } => {
            let mut needed = Vec::new();
            for g in &group {
                g.collect_cols(&mut needed);
            }
            for a in &aggs {
                if let Some(e) = &a.input {
                    e.collect_cols(&mut needed);
                }
            }
            let (input, remap) = narrow(*input, needed)?;
            let group = group.iter().map(|e| e.remap_cols(&|i| remap(i))).collect::<Result<_>>()?;
            let aggs = aggs
                .iter()
                .map(|a| {
                    Ok(crate::plan::AggCall {
                        func: a.func,
                        input: match &a.input {
                            Some(e) => Some(e.remap_cols(&|i| remap(i))?),
                            None => None,
                        },
                        out_ty: a.out_ty,
                    })
                })
                .collect::<Result<_>>()?;
            Ok(LogicalPlan::Aggregate { input: Box::new(input), group, aggs, schema })
        }
        LogicalPlan::Filter { input, predicate } => {
            Ok(LogicalPlan::Filter { input: Box::new(prune_projections(*input)?), predicate })
        }
        LogicalPlan::Join { left, right, kind, keys, schema } => Ok(LogicalPlan::Join {
            left: Box::new(prune_projections(*left)?),
            right: Box::new(prune_projections(*right)?),
            kind,
            keys,
            schema,
        }),
        LogicalPlan::Sort { input, keys } => {
            Ok(LogicalPlan::Sort { input: Box::new(prune_projections(*input)?), keys })
        }
        LogicalPlan::Limit { input, offset, limit } => {
            Ok(LogicalPlan::Limit { input: Box::new(prune_projections(*input)?), offset, limit })
        }
        other => Ok(other),
    }
}

/// Narrow `plan` so only `needed` columns remain, returning the plan and a
/// closure mapping old column indices to new ones. Narrowing happens only
/// for Filter→Scan / Scan pipelines (the high-value case: avoid reading
/// unused columns from disk); other shapes return identity.
#[allow(clippy::type_complexity)]
fn narrow(
    plan: LogicalPlan,
    mut needed: Vec<usize>,
) -> Result<(LogicalPlan, Box<dyn Fn(usize) -> Option<usize>>)> {
    needed.sort_unstable();
    needed.dedup();
    match plan {
        LogicalPlan::Scan { table, projection, schema, hints } => {
            if needed.is_empty() && !projection.is_empty() {
                // COUNT(*)-style plans reference no columns, but zero-width
                // batches cannot carry a row count: keep the narrowest
                // column as the row-existence carrier.
                let narrowest = (0..projection.len())
                    .min_by_key(|&i| schema.field(i).ty.fixed_width())
                    .unwrap();
                needed.push(narrowest);
            }
            if needed.len() == projection.len() {
                return Ok((
                    LogicalPlan::Scan { table, projection, schema, hints },
                    Box::new(Some),
                ));
            }
            let new_projection: Vec<usize> = needed.iter().map(|&i| projection[i]).collect();
            let new_schema = schema.project(&needed);
            let map: std::collections::HashMap<usize, usize> =
                needed.iter().enumerate().map(|(n, &o)| (o, n)).collect();
            Ok((
                LogicalPlan::Scan { table, projection: new_projection, schema: new_schema, hints },
                Box::new(move |i| map.get(&i).copied()),
            ))
        }
        LogicalPlan::Filter { input, predicate } => {
            // The filter needs its own columns too.
            let mut all = needed.clone();
            predicate.collect_cols(&mut all);
            let (inner, remap) = narrow(*input, all)?;
            let predicate = predicate.remap_cols(&|i| remap(i))?;
            Ok((LogicalPlan::Filter { input: Box::new(inner), predicate }, remap))
        }
        other => {
            let other = prune_projections(other)?;
            Ok((other, Box::new(Some)))
        }
    }
}

// ---------------------------------------------------------------------------
// join build-side choice
// ---------------------------------------------------------------------------

fn estimate_rows(plan: &LogicalPlan, catalog: &dyn CatalogView) -> f64 {
    match plan {
        LogicalPlan::Scan { table, .. } => catalog.table_rows(table).unwrap_or(1000) as f64,
        LogicalPlan::Filter { input, .. } => 0.3 * estimate_rows(input, catalog),
        LogicalPlan::Project { input, .. } | LogicalPlan::Sort { input, .. } => {
            estimate_rows(input, catalog)
        }
        LogicalPlan::Join { left, right, kind, .. } => match kind {
            JoinKind::Semi | JoinKind::Anti | JoinKind::NullAwareAnti => {
                0.5 * estimate_rows(left, catalog)
            }
            _ => {
                let l = estimate_rows(left, catalog);
                let r = estimate_rows(right, catalog);
                (l * r).sqrt().max(l.max(r) * 0.1)
            }
        },
        LogicalPlan::Aggregate { input, group, .. } => {
            if group.is_empty() {
                1.0
            } else {
                (estimate_rows(input, catalog) / 10.0).max(1.0)
            }
        }
        LogicalPlan::Limit { input, limit, .. } => {
            (estimate_rows(input, catalog)).min(*limit as f64)
        }
        LogicalPlan::Values { rows, .. } => rows.len() as f64,
        LogicalPlan::Exchange { input, .. } => estimate_rows(input, catalog),
    }
}

fn choose_build_side(plan: LogicalPlan, catalog: &dyn CatalogView) -> LogicalPlan {
    match plan {
        LogicalPlan::Join { left, right, kind, keys, schema } => {
            let left = Box::new(choose_build_side(*left, catalog));
            let right = Box::new(choose_build_side(*right, catalog));
            // Only inner joins are symmetric enough to swap.
            if kind == JoinKind::Inner
                && estimate_rows(&left, catalog) < estimate_rows(&right, catalog)
            {
                let lwidth = left.schema().len();
                let rwidth = right.schema().len();
                // Swap sides; output schema must keep the original order, so
                // wrap in a reordering projection.
                let swapped_schema = right.schema().join(left.schema());
                let keys = keys.into_iter().map(|(l, r)| (r, l)).collect();
                let join = LogicalPlan::Join {
                    left: right,
                    right: left,
                    kind,
                    keys,
                    schema: swapped_schema.clone(),
                };
                let exprs: Vec<SqlExpr> = (0..lwidth)
                    .map(|i| SqlExpr::Col(rwidth + i, swapped_schema.field(rwidth + i).ty))
                    .chain((0..rwidth).map(|i| SqlExpr::Col(i, swapped_schema.field(i).ty)))
                    .collect();
                return LogicalPlan::Project { input: Box::new(join), exprs, schema };
            }
            LogicalPlan::Join { left, right, kind, keys, schema }
        }
        LogicalPlan::Filter { input, predicate } => {
            LogicalPlan::Filter { input: Box::new(choose_build_side(*input, catalog)), predicate }
        }
        LogicalPlan::Project { input, exprs, schema } => LogicalPlan::Project {
            input: Box::new(choose_build_side(*input, catalog)),
            exprs,
            schema,
        },
        LogicalPlan::Aggregate { input, group, aggs, schema } => LogicalPlan::Aggregate {
            input: Box::new(choose_build_side(*input, catalog)),
            group,
            aggs,
            schema,
        },
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(choose_build_side(*input, catalog)), keys }
        }
        LogicalPlan::Limit { input, offset, limit } => LogicalPlan::Limit {
            input: Box::new(choose_build_side(*input, catalog)),
            offset,
            limit,
        },
        other => other,
    }
}

/// Estimated selectivity of a predicate, using histograms when available;
/// exposed for the rewriter's parallelization cost check.
pub fn estimate_plan_rows(plan: &LogicalPlan, catalog: &dyn CatalogView) -> f64 {
    estimate_rows(plan, catalog)
}

/// Guard: optimization must never change the output schema.
pub fn check_schema_preserved(before: &LogicalPlan, after: &LogicalPlan) -> Result<()> {
    if before.schema() != after.schema() {
        return Err(VwError::Plan(format!(
            "optimizer changed output schema:\n  before {:?}\n  after  {:?}",
            before.schema(),
            after.schema()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::binder::Binder;
    use crate::parse;
    use vw_common::{Field, Schema};

    struct MockCatalog;

    impl CatalogView for MockCatalog {
        fn table_schema(&self, name: &str) -> Option<Schema> {
            match name {
                "big" | "small" => Some(
                    Schema::new(vec![
                        Field::not_null("id", TypeId::I64),
                        Field::nullable("a", TypeId::I32),
                        Field::nullable("b", TypeId::Str),
                        Field::nullable("c", TypeId::F64),
                    ])
                    .unwrap(),
                ),
                _ => None,
            }
        }

        fn table_rows(&self, name: &str) -> Option<u64> {
            Some(if name == "big" { 1_000_000 } else { 100 })
        }
    }

    fn plan_for(sql: &str) -> LogicalPlan {
        let stmts = parse(sql).unwrap();
        let Statement::Select(s) = &stmts[0] else { panic!() };
        let plan = Binder::new(&MockCatalog).bind_select(s).unwrap();
        let before_schema = plan.schema().clone();
        let optimized = optimize(plan, &MockCatalog).unwrap();
        assert_eq!(optimized.schema(), &before_schema, "schema must be stable");
        optimized
    }

    #[test]
    fn constant_folding_removes_true_filters() {
        let p = plan_for("SELECT id FROM big WHERE 1 + 1 = 2");
        assert!(!p.explain().contains("Select"), "{}", p.explain());
    }

    #[test]
    fn constant_folding_in_projection() {
        let p = plan_for("SELECT 2 * 3 + id FROM big");
        let LogicalPlan::Project { exprs, .. } = &p else { panic!() };
        // 2*3 folded to 6: the remaining tree is 6 + id.
        assert!(format!("{:?}", exprs[0]).contains("I64(6)"));
    }

    #[test]
    fn hints_pushed_to_scan() {
        let p = plan_for("SELECT a FROM big WHERE id >= 100 AND id < 200 AND b LIKE 'x%'");
        let text = p.explain();
        assert!(text.contains("hints=2"), "{text}");
    }

    #[test]
    fn projection_pruned_to_used_columns() {
        let p = plan_for("SELECT a FROM big WHERE id > 5");
        let text = p.explain();
        // Only id (0) and a (1) should be read, not b, c.
        assert!(text.contains("cols=[0, 1]"), "{text}");
    }

    #[test]
    fn small_side_becomes_build() {
        let p = plan_for("SELECT big.id FROM small JOIN big ON small.id = big.id");
        // left=small (100 rows) < right=big: swap puts big on probe side.
        let mut node = &p;
        loop {
            match node {
                LogicalPlan::Join { left, right, .. } => {
                    let l = estimate_rows(left, &MockCatalog);
                    let r = estimate_rows(right, &MockCatalog);
                    assert!(l >= r, "build side (right) should be the smaller input");
                    break;
                }
                other => {
                    let cs = other.children();
                    assert!(!cs.is_empty(), "no join found");
                    node = cs[0];
                }
            }
        }
    }

    #[test]
    fn fold_expr_handles_div_zero_conservatively() {
        let e = SqlExpr::Arith {
            op: crate::expr::BinOp::Div,
            l: Box::new(SqlExpr::Lit(Value::I64(1), TypeId::I64)),
            r: Box::new(SqlExpr::Lit(Value::I64(0), TypeId::I64)),
            ty: TypeId::I64,
        };
        // Must NOT fold away: runtime raises the proper error.
        let folded = fold_expr(e.clone()).unwrap();
        assert_eq!(folded, e);
    }
}
