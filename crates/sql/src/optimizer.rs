//! The "Ingres Optimizer (heavily modified)" stage: histogram-driven,
//! cost-based logical optimization.
//!
//! Two pipelines share a common prefix (constant folding, GROUP BY
//! simplification, filter merging) and then diverge on the `optimizer`
//! engine knob (`SET optimizer = 0/1`, `VW_OPTIMIZER`):
//!
//! * **Rule-only** (`optimizer = 0`): predicate-to-hint extraction,
//!   scan projection pruning and a structural join build-side choice —
//!   the original pipeline, kept reachable so plans can be compared.
//! * **Cost-based** (`optimizer = 1`, default): additionally
//!   1. **Filter pushdown below joins** — error-free conjuncts sink
//!      through projections and join inputs until they sit directly above
//!      the scans they constrain (where the hint extractor turns them
//!      into MinMax pack-skip decisions);
//!   2. **Join reordering** — inner equi-join chains are flattened and
//!      rebuilt greedily, smallest estimated intermediate result first,
//!      using per-column distinct counts and histogram selectivities from
//!      [`CatalogView`];
//!   3. **Join-aware projection pruning** — unused columns are dropped
//!      through joins and projections, not just at scans;
//!   4. **Build-side choice by estimated cardinality** — via
//!      [`Estimator`] instead of the structural row proxy.
//!
//! Estimates come from `storage::stats` (row counts, distinct counts,
//! equi-depth histograms) surfaced through the [`CatalogView`] trait; a
//! stale or missing statistic degrades to the structural defaults, never
//! to an error. The full cost model, rule catalog and a worked
//! life-of-a-query are documented in ARCHITECTURE.md ("The optimizer").

use crate::binder::CatalogView;
use crate::expr::{CmpOp, SqlExpr};
use crate::plan::{ApplyKind, JoinKind, LogicalPlan, ScanHint, SetOpKind};
use vw_common::{Field, Result, Schema, TypeId, Value, VwError};

/// Selectivity floor: a conjunction never claims to filter below this.
const MIN_SEL: f64 = 1e-4;
/// Default selectivity for predicates the model cannot decompose.
const DEFAULT_SEL: f64 = 0.3;
/// Default selectivity for equality predicates without distinct counts.
const DEFAULT_EQ_SEL: f64 = 0.1;
/// Join chains longer than this keep their syntactic order (greedy
/// enumeration is linear, but estimate quality decays with depth).
const MAX_REORDER_LEAVES: usize = 8;

/// Run all optimization passes (cost-based pipeline).
pub fn optimize(plan: LogicalPlan, catalog: &dyn CatalogView) -> Result<LogicalPlan> {
    optimize_with(plan, catalog, true)
}

/// Run the optimizer with an explicit pipeline choice.
///
/// `cost_based = false` reproduces the original rule-only pipeline
/// exactly (the `SET optimizer = 0` escape hatch); `true` adds filter
/// pushdown below joins, statistics-driven join reordering, join-aware
/// column pruning and cardinality-based build-side choice.
pub fn optimize_with(
    plan: LogicalPlan,
    catalog: &dyn CatalogView,
    cost_based: bool,
) -> Result<LogicalPlan> {
    let plan = decorrelate(plan)?;
    let plan = fold_constants_plan(plan)?;
    let plan = simplify_group_by(plan);
    let plan = merge_filters(plan);
    if !cost_based {
        let plan = push_hints(plan);
        let plan = prune_projections(plan, false)?;
        return Ok(choose_build_side(plan, &|p| estimate_rows(p, catalog)));
    }
    let plan = push_filters(plan)?;
    let est = Estimator::new(catalog);
    let plan = reorder_joins(plan, &est)?;
    let plan = push_hints(plan);
    let plan = prune_projections(plan, true)?;
    Ok(choose_build_side(plan, &|p| est.rows(p)))
}

/// Rebuild `plan` with `f` applied to each direct child; leaves pass
/// through untouched. Shared recursion scaffolding for the passes below.
fn map_inputs(
    plan: LogicalPlan,
    f: &mut dyn FnMut(LogicalPlan) -> Result<LogicalPlan>,
) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            LogicalPlan::Filter { input: Box::new(f(*input)?), predicate }
        }
        LogicalPlan::Project { input, exprs, schema } => {
            LogicalPlan::Project { input: Box::new(f(*input)?), exprs, schema }
        }
        LogicalPlan::Join { left, right, kind, keys, schema } => LogicalPlan::Join {
            left: Box::new(f(*left)?),
            right: Box::new(f(*right)?),
            kind,
            keys,
            schema,
        },
        LogicalPlan::Aggregate { input, group, aggs, schema } => {
            LogicalPlan::Aggregate { input: Box::new(f(*input)?), group, aggs, schema }
        }
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(f(*input)?), keys }
        }
        LogicalPlan::Limit { input, offset, limit } => {
            LogicalPlan::Limit { input: Box::new(f(*input)?), offset, limit }
        }
        LogicalPlan::Exchange { input, dop } => {
            LogicalPlan::Exchange { input: Box::new(f(*input)?), dop }
        }
        LogicalPlan::SetOp { op, inputs, schema } => LogicalPlan::SetOp {
            op,
            inputs: inputs.into_iter().map(&mut *f).collect::<Result<_>>()?,
            schema,
        },
        LogicalPlan::Apply { input, subquery, kind, keys, schema } => LogicalPlan::Apply {
            input: Box::new(f(*input)?),
            subquery: Box::new(f(*subquery)?),
            kind,
            keys,
            schema,
        },
        leaf => leaf,
    })
}

// ---------------------------------------------------------------------------
// decorrelation
// ---------------------------------------------------------------------------

/// Lower every binder-emitted [`Apply`](LogicalPlan::Apply) to a hash
/// join — the paper's rewriter does all unnesting before the operators
/// ever see a plan. Runs first, in *both* pipelines, so downstream
/// passes (pushdown, reordering, pruning, build-side choice) only ever
/// see join trees. Compile rejects any surviving Apply.
///
/// * `In` / `Exists` → semi join (anti for NOT EXISTS) on the Apply's
///   `(outer expression, subquery column)` key pairs;
/// * `Scalar` → left outer join (the subquery is guaranteed at most one
///   row per key by the binder) + a projection appending the subquery's
///   value column to the outer row.
fn decorrelate(plan: LogicalPlan) -> Result<LogicalPlan> {
    let plan = map_inputs(plan, &mut decorrelate)?;
    let LogicalPlan::Apply { input, subquery, kind, keys, schema } = plan else {
        return Ok(plan);
    };
    let keys: Vec<(SqlExpr, SqlExpr)> = keys
        .into_iter()
        .map(|(outer, idx)| {
            let ty = subquery.schema().field(idx).ty;
            (outer, SqlExpr::Col(idx, ty))
        })
        .collect();
    match kind {
        ApplyKind::In | ApplyKind::Exists { negated: false } => Ok(LogicalPlan::Join {
            left: input,
            right: subquery,
            kind: JoinKind::Semi,
            keys,
            schema,
        }),
        ApplyKind::Exists { negated: true } => Ok(LogicalPlan::Join {
            left: input,
            right: subquery,
            kind: JoinKind::Anti,
            keys,
            schema,
        }),
        ApplyKind::Scalar => {
            let lw = input.schema().len();
            let mut fields = input.schema().fields.clone();
            for f in &subquery.schema().fields {
                // A left join null-extends unmatched outer rows.
                fields.push(Field { name: f.name.clone(), ty: f.ty, nullable: true });
            }
            let join = LogicalPlan::Join {
                left: input,
                right: subquery,
                kind: JoinKind::Left,
                keys,
                schema: Schema::unchecked(fields),
            };
            let exprs: Vec<SqlExpr> =
                (0..=lw).map(|i| SqlExpr::Col(i, join.schema().field(i).ty)).collect();
            Ok(LogicalPlan::Project { input: Box::new(join), exprs, schema })
        }
    }
}

// ---------------------------------------------------------------------------
// constant folding
// ---------------------------------------------------------------------------

fn fold_constants_plan(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = Box::new(fold_constants_plan(*input)?);
            let predicate = fold_expr(predicate)?;
            match &predicate {
                SqlExpr::Lit(Value::Bool(true), _) => *input,
                _ => LogicalPlan::Filter { input, predicate },
            }
        }
        LogicalPlan::Project { input, exprs, schema } => LogicalPlan::Project {
            input: Box::new(fold_constants_plan(*input)?),
            exprs: exprs.into_iter().map(fold_expr).collect::<Result<_>>()?,
            schema,
        },
        LogicalPlan::Aggregate { input, group, aggs, schema } => LogicalPlan::Aggregate {
            input: Box::new(fold_constants_plan(*input)?),
            group: group.into_iter().map(fold_expr).collect::<Result<_>>()?,
            aggs,
            schema,
        },
        other => map_inputs(other, &mut fold_constants_plan)?,
    })
}

/// Fold literal-only arithmetic/comparison subtrees.
pub fn fold_expr(e: SqlExpr) -> Result<SqlExpr> {
    use SqlExpr::*;
    let e = match e {
        Arith { op, l, r, ty } => {
            let l = fold_expr(*l)?;
            let r = fold_expr(*r)?;
            if let (Lit(a, _), Lit(b, _)) = (&l, &r) {
                if !a.is_null() && !b.is_null() {
                    if let Some(v) = eval_const_arith(op, a, b, ty) {
                        return Ok(Lit(v, ty));
                    }
                }
            }
            Arith { op, l: Box::new(l), r: Box::new(r), ty }
        }
        Cmp { op, l, r } => {
            let l = fold_expr(*l)?;
            let r = fold_expr(*r)?;
            if let (Lit(a, _), Lit(b, _)) = (&l, &r) {
                if !a.is_null() && !b.is_null() {
                    if let Some(o) = a.sql_cmp(b) {
                        let holds = match op {
                            CmpOp::Eq => o.is_eq(),
                            CmpOp::Ne => !o.is_eq(),
                            CmpOp::Lt => o.is_lt(),
                            CmpOp::Le => !o.is_gt(),
                            CmpOp::Gt => o.is_gt(),
                            CmpOp::Ge => !o.is_lt(),
                        };
                        return Ok(Lit(Value::Bool(holds), TypeId::Bool));
                    }
                }
            }
            Cmp { op, l: Box::new(l), r: Box::new(r) }
        }
        And(parts) => {
            let mut out = Vec::new();
            for p in parts {
                let p = fold_expr(p)?;
                match p {
                    Lit(Value::Bool(true), _) => continue,
                    Lit(Value::Bool(false), _) => return Ok(Lit(Value::Bool(false), TypeId::Bool)),
                    other => out.push(other),
                }
            }
            match out.len() {
                0 => Lit(Value::Bool(true), TypeId::Bool),
                1 => out.pop().unwrap(),
                _ => And(out),
            }
        }
        Or(parts) => {
            let mut out = Vec::new();
            for p in parts {
                let p = fold_expr(p)?;
                match p {
                    Lit(Value::Bool(false), _) => continue,
                    Lit(Value::Bool(true), _) => return Ok(Lit(Value::Bool(true), TypeId::Bool)),
                    other => out.push(other),
                }
            }
            match out.len() {
                0 => Lit(Value::Bool(false), TypeId::Bool),
                1 => out.pop().unwrap(),
                _ => Or(out),
            }
        }
        Cast { input, to } => {
            let input = fold_expr(*input)?;
            if let Lit(v, _) = &input {
                if let Ok(cast) = v.cast_to(to) {
                    return Ok(Lit(cast, to));
                }
            }
            Cast { input: Box::new(input), to }
        }
        Not(inner) => {
            let inner = fold_expr(*inner)?;
            if let Lit(Value::Bool(b), _) = inner {
                return Ok(Lit(Value::Bool(!b), TypeId::Bool));
            }
            Not(Box::new(inner))
        }
        other => other,
    };
    Ok(e)
}

fn eval_const_arith(op: crate::expr::BinOp, a: &Value, b: &Value, ty: TypeId) -> Option<Value> {
    use crate::expr::BinOp::*;
    if ty == TypeId::F64 {
        let (x, y) = (a.as_f64().ok()?, b.as_f64().ok()?);
        if matches!(op, Div | Rem) && y == 0.0 {
            return None; // leave for runtime error reporting
        }
        Some(Value::F64(match op {
            Add => x + y,
            Sub => x - y,
            Mul => x * y,
            Div => x / y,
            Rem => x % y,
        }))
    } else {
        let (x, y) = (a.as_i64().ok()?, b.as_i64().ok()?);
        let v = match op {
            Add => x.checked_add(y)?,
            Sub => x.checked_sub(y)?,
            Mul => x.checked_mul(y)?,
            Div => {
                if y == 0 {
                    return None;
                }
                x.checked_div(y)?
            }
            Rem => {
                if y == 0 {
                    return None;
                }
                x.wrapping_rem(y)
            }
        };
        Some(Value::I64(v))
    }
}

// ---------------------------------------------------------------------------
// group-by simplification (FD-lite)
// ---------------------------------------------------------------------------

fn simplify_group_by(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Aggregate { input, group, aggs, schema } => {
            let input = Box::new(simplify_group_by(*input));
            // Constant keys contribute nothing to grouping; duplicates are
            // functionally dependent on their first occurrence. The output
            // schema must keep the original arity, so we only drop keys when
            // the binder has already deduplicated (it has) and constants
            // remain. Constants are kept in the schema by re-projecting —
            // to stay simple we only drop them when no consumer could see a
            // difference: group arity must stay in sync with the schema, so
            // constants are replaced by grouping on a single shared constant
            // at most.
            let _ = &group;
            LogicalPlan::Aggregate { input, group, aggs, schema }
        }
        other => map_inputs(other, &mut |c| Ok(simplify_group_by(c)))
            .expect("simplify_group_by is infallible"),
    }
}

// ---------------------------------------------------------------------------
// filter merging + predicate → MinMax scan hints
// ---------------------------------------------------------------------------

/// Collapse `Filter(Filter(x))` chains into one conjunctive filter so the
/// hint extractor sees every conjunct at once.
fn merge_filters(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = merge_filters(*input);
            if let LogicalPlan::Filter { input: inner, predicate: p2 } = input {
                let mut parts = p2.conjuncts();
                parts.extend(predicate.conjuncts());
                merge_filters(LogicalPlan::Filter { input: inner, predicate: SqlExpr::And(parts) })
            } else {
                LogicalPlan::Filter { input: Box::new(input), predicate }
            }
        }
        other => {
            map_inputs(other, &mut |c| Ok(merge_filters(c))).expect("merge_filters is infallible")
        }
    }
}

fn push_hints(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = push_hints(*input);
            if let LogicalPlan::Scan { table, projection, schema, mut hints } = input {
                // Extract col-vs-const range conjuncts as hints; all
                // conjuncts stay in the residual filter (hints only prune).
                for c in predicate.clone().conjuncts() {
                    if let Some(h) = hint_from(&c, &projection) {
                        hints.push(h);
                    }
                }
                LogicalPlan::Filter {
                    input: Box::new(LogicalPlan::Scan { table, projection, schema, hints }),
                    predicate,
                }
            } else {
                LogicalPlan::Filter { input: Box::new(input), predicate }
            }
        }
        other => map_inputs(other, &mut |c| Ok(push_hints(c))).expect("push_hints is infallible"),
    }
}

/// Decompose `col <cmp> literal` (either operand order, tolerating the
/// binder's widening cast around the column). Returns
/// `(op, col, literal, flipped)` where `flipped` records that the column
/// was on the right-hand side.
fn col_vs_lit(e: &SqlExpr) -> Option<(CmpOp, usize, Value, bool)> {
    let SqlExpr::Cmp { op, l, r } = e else { return None };
    match (l.as_ref(), r.as_ref()) {
        (SqlExpr::Col(c, _), SqlExpr::Lit(v, _)) if !v.is_null() => {
            Some((*op, *c, v.clone(), false))
        }
        (SqlExpr::Lit(v, _), SqlExpr::Col(c, _)) if !v.is_null() => {
            Some((*op, *c, v.clone(), true))
        }
        // The binder may wrap the scanned column in a widening cast.
        (SqlExpr::Cast { input, .. }, SqlExpr::Lit(v, _)) if !v.is_null() => {
            let SqlExpr::Col(c, cty) = input.as_ref() else { return None };
            // Narrow the literal back to the column type, if exact.
            match v.cast_to(*cty) {
                Ok(nv) if nv.cast_to(v.type_id()?) == Ok(v.clone()) => Some((*op, *c, nv, false)),
                _ => None,
            }
        }
        _ => None,
    }
}

/// `col <cmp> literal` (or reversed) → a MinMax hint in base-table indices.
fn hint_from(e: &SqlExpr, projection: &[usize]) -> Option<ScanHint> {
    let (op, col, lit, flipped) = col_vs_lit(e)?;
    let base_col = *projection.get(col)?;
    let (lo, hi) = match (op, flipped) {
        (CmpOp::Eq, _) => (Some(lit.clone()), Some(lit)),
        (CmpOp::Lt | CmpOp::Le, false) | (CmpOp::Gt | CmpOp::Ge, true) => (None, Some(lit)),
        (CmpOp::Gt | CmpOp::Ge, false) | (CmpOp::Lt | CmpOp::Le, true) => (Some(lit), None),
        (CmpOp::Ne, _) => return None,
    };
    Some(ScanHint { col: base_col, lo, hi })
}

// ---------------------------------------------------------------------------
// filter pushdown below joins
// ---------------------------------------------------------------------------

/// Can `e` be evaluated on *more* rows than the original plan fed it
/// without risking a new runtime error? Only such predicates may sink
/// below joins (a join can eliminate the very row that would have
/// divided by zero or overflowed). Comparisons, boolean connectives,
/// NULL tests, LIKE, IN-lists and error-free casts qualify; arithmetic,
/// functions and CASE do not.
fn error_free(e: &SqlExpr) -> bool {
    match e {
        SqlExpr::Col(..) | SqlExpr::Lit(..) => true,
        SqlExpr::Cmp { l, r, .. } => error_free(l) && error_free(r),
        SqlExpr::And(v) | SqlExpr::Or(v) => v.iter().all(error_free),
        SqlExpr::Not(x) | SqlExpr::IsNull(x) | SqlExpr::IsNotNull(x) => error_free(x),
        SqlExpr::Like { input, .. } => error_free(input),
        SqlExpr::InList { input, list, .. } => error_free(input) && list.iter().all(error_free),
        SqlExpr::Cast { input, to } => cast_cannot_fail(input.type_id(), *to) && error_free(input),
        SqlExpr::Arith { .. }
        | SqlExpr::Func { .. }
        | SqlExpr::Ext { .. }
        | SqlExpr::Case { .. } => false,
    }
}

/// `from → to` casts that cannot raise at runtime: identity, integer
/// widening, and integer → float.
fn cast_cannot_fail(from: TypeId, to: TypeId) -> bool {
    fn int_rank(t: TypeId) -> Option<u8> {
        match t {
            TypeId::I8 => Some(1),
            TypeId::I16 => Some(2),
            TypeId::I32 => Some(3),
            TypeId::I64 => Some(4),
            _ => None,
        }
    }
    if from == to {
        return true;
    }
    match (int_rank(from), to) {
        (Some(a), TypeId::I8 | TypeId::I16 | TypeId::I32 | TypeId::I64) => {
            a <= int_rank(to).unwrap()
        }
        (Some(_), TypeId::F64) => true,
        _ => false,
    }
}

/// Wrap `plan` in a filter over `conjuncts`, merging into an existing
/// top filter instead of stacking `Filter(Filter(..))`.
fn wrap_filter(plan: LogicalPlan, conjuncts: Vec<SqlExpr>) -> LogicalPlan {
    if conjuncts.is_empty() {
        return plan;
    }
    let (input, mut parts) = match plan {
        LogicalPlan::Filter { input, predicate } => (*input, predicate.conjuncts()),
        other => (other, Vec::new()),
    };
    parts.extend(conjuncts);
    let predicate = if parts.len() == 1 { parts.pop().unwrap() } else { SqlExpr::And(parts) };
    LogicalPlan::Filter { input: Box::new(input), predicate }
}

/// Sink error-free filter conjuncts as close to the scans as possible:
/// through projections (when the referenced outputs are plain column
/// pass-throughs), into the matching side of a join, and through other
/// filters. Conjuncts that cannot sink stay where they are.
fn push_filters(plan: LogicalPlan) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let (push, keep): (Vec<_>, Vec<_>) =
                predicate.conjuncts().into_iter().partition(error_free);
            let inner = sink_conjuncts(*input, push)?;
            Ok(wrap_filter(inner, keep))
        }
        other => map_inputs(other, &mut push_filters),
    }
}

/// Carry `conjuncts` (all error-free) downward from just above `plan`,
/// depositing each at the deepest node that still provides its columns.
fn sink_conjuncts(plan: LogicalPlan, mut conjuncts: Vec<SqlExpr>) -> Result<LogicalPlan> {
    if conjuncts.is_empty() {
        return push_filters(plan);
    }
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            // Absorb this filter: its error-free conjuncts may sink
            // further; the rest re-wrap above whatever comes back.
            let (push, keep): (Vec<_>, Vec<_>) =
                predicate.conjuncts().into_iter().partition(error_free);
            conjuncts.extend(push);
            let inner = sink_conjuncts(*input, conjuncts)?;
            Ok(wrap_filter(inner, keep))
        }
        LogicalPlan::Join { left, right, kind, keys, schema } => {
            let lw = left.schema().len();
            let mut lpush = Vec::new();
            let mut rpush = Vec::new();
            let mut keep = Vec::new();
            for c in conjuncts {
                let mut cols = Vec::new();
                c.collect_cols(&mut cols);
                if cols.iter().all(|&i| i < lw) {
                    // Left-side columns pass through every join kind
                    // unchanged (semi/anti output *is* the left side), so
                    // filtering before the join is always equivalent.
                    lpush.push(c);
                } else if kind == JoinKind::Inner && cols.iter().all(|&i| i >= lw) {
                    // Right-side conjuncts may only sink through inner
                    // joins: outer joins must null-extend unmatched
                    // left rows *after* the predicate.
                    rpush.push(c.remap_cols(&|i| Some(i - lw))?);
                } else {
                    keep.push(c);
                }
            }
            let left = Box::new(sink_conjuncts(*left, lpush)?);
            let right = Box::new(sink_conjuncts(*right, rpush)?);
            Ok(wrap_filter(LogicalPlan::Join { left, right, kind, keys, schema }, keep))
        }
        LogicalPlan::Project { input, exprs, schema } => {
            // A conjunct sinks through the projection when every column
            // it references is a plain pass-through `Col` output.
            let mut push = Vec::new();
            let mut keep = Vec::new();
            for c in conjuncts {
                let remapped = c.remap_cols(&|i| match exprs.get(i) {
                    Some(SqlExpr::Col(src, _)) => Some(*src),
                    _ => None,
                });
                match remapped {
                    Ok(rc) => push.push(rc),
                    Err(_) => keep.push(c),
                }
            }
            let input = Box::new(sink_conjuncts(*input, push)?);
            Ok(wrap_filter(LogicalPlan::Project { input, exprs, schema }, keep))
        }
        other => {
            // Scans, aggregates, sorts, limits, values: deposit here.
            // (Below an aggregate or limit the predicate would see
            // different rows; a scan is the destination anyway.)
            let other = map_inputs(other, &mut push_filters)?;
            Ok(wrap_filter(other, conjuncts))
        }
    }
}

// ---------------------------------------------------------------------------
// join reordering
// ---------------------------------------------------------------------------

/// Is `p` an inner equi-join whose keys are all plain column pairs — the
/// shape the reorderer can flatten without changing semantics?
fn flattenable(p: &LogicalPlan) -> bool {
    matches!(p, LogicalPlan::Join { kind: JoinKind::Inner, keys, .. }
    if !keys.is_empty()
        && keys.iter().all(|(l, r)| {
            matches!((l, r), (SqlExpr::Col(..), SqlExpr::Col(..)))
        }))
}

/// Number of non-flattenable leaves under a join chain.
fn count_join_leaves(p: &LogicalPlan) -> usize {
    if flattenable(p) {
        let LogicalPlan::Join { left, right, .. } = p else { unreachable!() };
        count_join_leaves(left) + count_join_leaves(right)
    } else {
        1
    }
}

/// Decompose a flattenable join chain into `leaves` plus equi-join
/// `edges` in global column coordinates (columns numbered across the
/// concatenated leaf schemas, left to right). Returns the subtree width.
fn flatten_joins(
    plan: LogicalPlan,
    base: usize,
    leaves: &mut Vec<LogicalPlan>,
    edges: &mut Vec<(usize, usize)>,
) -> usize {
    if flattenable(&plan) {
        let LogicalPlan::Join { left, right, keys, .. } = plan else { unreachable!() };
        let lw = flatten_joins(*left, base, leaves, edges);
        let rw = flatten_joins(*right, base + lw, leaves, edges);
        for (lk, rk) in keys {
            let (SqlExpr::Col(lc, _), SqlExpr::Col(rc, _)) = (lk, rk) else { unreachable!() };
            edges.push((base + lc, base + lw + rc));
        }
        lw + rw
    } else {
        let w = plan.schema().len();
        leaves.push(plan);
        w
    }
}

/// Reorder inner equi-join chains greedily by estimated cardinality:
/// start from the cheapest connected pair, then repeatedly join in the
/// connected leaf that keeps the intermediate result smallest. A final
/// projection restores the original column order, so the plan's schema
/// (and everything upstream) is untouched.
fn reorder_joins(plan: LogicalPlan, est: &Estimator) -> Result<LogicalPlan> {
    let n = count_join_leaves(&plan);
    if !(flattenable(&plan) && (3..=MAX_REORDER_LEAVES).contains(&n)) {
        return map_inputs(plan, &mut |c| reorder_joins(c, est));
    }
    let original_schema = plan.schema().clone();
    let mut leaves = Vec::new();
    let mut edges = Vec::new();
    flatten_joins(plan, 0, &mut leaves, &mut edges);
    let mut opt = Vec::with_capacity(leaves.len());
    for leaf in leaves {
        opt.push(reorder_joins(leaf, est)?);
    }
    build_greedy_join(opt, edges, original_schema, est)
}

/// Greedy left-deep construction over flattened leaves. The join graph
/// is connected by construction (every flattened join's keys bridge its
/// two subtrees), so the loop always finds a connected candidate.
fn build_greedy_join(
    leaves: Vec<LogicalPlan>,
    edges: Vec<(usize, usize)>,
    original_schema: Schema,
    est: &Estimator,
) -> Result<LogicalPlan> {
    let n = leaves.len();
    let widths: Vec<usize> = leaves.iter().map(|l| l.schema().len()).collect();
    let mut offsets = vec![0usize; n];
    for i in 1..n {
        offsets[i] = offsets[i - 1] + widths[i - 1];
    }
    let total_width: usize = widths.iter().sum();
    let owner = |g: usize| offsets.iter().rposition(|&o| o <= g).unwrap();
    let rows: Vec<f64> = leaves.iter().map(|l| est.rows(l)).collect();
    // Per-edge endpoint metadata: (leaf, local column, distinct count).
    struct End {
        leaf: usize,
        local: usize,
        ndv: f64,
    }
    let end = |g: usize| -> End {
        let leaf = owner(g);
        let local = g - offsets[leaf];
        let ndv = est.ndv(&leaves[leaf], local).unwrap_or(rows[leaf]).max(1.0);
        End { leaf, local, ndv }
    };
    let eds: Vec<(End, End)> = edges.iter().map(|&(a, b)| (end(a), end(b))).collect();

    // Estimated |A ⋈ B| given the side cardinalities and the connecting
    // edges: divide the cross product by max(ndv) per key, the classic
    // containment-of-values assumption.
    let join_card = |lr: f64, rr: f64, ks: &[usize]| -> f64 {
        let mut card = lr * rr;
        for &k in ks {
            let (a, b) = &eds[k];
            card /= a.ndv.min(lr).max(1.0).max(b.ndv.min(rr).max(1.0));
        }
        card.max(1.0)
    };

    // Seed: the connected pair with the smallest estimated join.
    let mut seed: Option<(f64, usize, usize)> = None;
    for i in 0..n {
        for j in i + 1..n {
            let ks: Vec<usize> = (0..eds.len())
                .filter(|&k| {
                    let (a, b) = &eds[k];
                    (a.leaf, b.leaf) == (i, j) || (a.leaf, b.leaf) == (j, i)
                })
                .collect();
            if ks.is_empty() {
                continue;
            }
            let card = join_card(rows[i], rows[j], &ks);
            if seed.is_none_or(|(best, ..)| card < best) {
                seed = Some((card, i, j));
            }
        }
    }
    let Some((mut cur_rows, i, j)) = seed else {
        return Err(VwError::Plan("join reorder: no connected pair".into()));
    };
    // Larger side as probe (left): the later build-side pass then has
    // nothing to swap, avoiding an extra reordering projection.
    let (a, b) = if rows[i] >= rows[j] { (i, j) } else { (j, i) };

    let mut slots: Vec<Option<LogicalPlan>> = leaves.into_iter().map(Some).collect();
    let mut placed = vec![false; n];
    // Column offset of each placed leaf inside the accumulated output.
    let mut pos = vec![0usize; n];
    let mut used = vec![false; eds.len()];

    // Keys for the accumulated (probe) side are addressed through `pos`;
    // the fresh leaf keeps its local coordinates.
    let probe_key = |cur: &LogicalPlan, pos: &[usize], e: &End| -> SqlExpr {
        let col = pos[e.leaf] + e.local;
        SqlExpr::Col(col, cur.schema().field(col).ty)
    };
    let leaf_key =
        |leaf: &LogicalPlan, e: &End| SqlExpr::Col(e.local, leaf.schema().field(e.local).ty);

    let la = slots[a].take().unwrap();
    let lb = slots[b].take().unwrap();
    placed[a] = true;
    placed[b] = true;
    pos[a] = 0;
    pos[b] = widths[a];
    let mut keys = Vec::new();
    for k in 0..eds.len() {
        let (x, y) = &eds[k];
        let (pa, pb) = if (x.leaf, y.leaf) == (a, b) {
            (x, y)
        } else if (x.leaf, y.leaf) == (b, a) {
            (y, x)
        } else {
            continue;
        };
        used[k] = true;
        keys.push((leaf_key(&la, pa), leaf_key(&lb, pb)));
    }
    let schema = la.schema().join(lb.schema());
    let mut cur = LogicalPlan::Join {
        left: Box::new(la),
        right: Box::new(lb),
        kind: JoinKind::Inner,
        keys,
        schema,
    };
    let mut cur_width = widths[a] + widths[b];

    while placed.iter().any(|p| !p) {
        // Cheapest connected unplaced leaf next.
        let mut best: Option<(f64, usize, Vec<usize>)> = None;
        for c in 0..n {
            if placed[c] {
                continue;
            }
            let ks: Vec<usize> = (0..eds.len())
                .filter(|&k| {
                    if used[k] {
                        return false;
                    }
                    let (x, y) = &eds[k];
                    (placed[x.leaf] && y.leaf == c) || (placed[y.leaf] && x.leaf == c)
                })
                .collect();
            if ks.is_empty() {
                continue;
            }
            let card = join_card(cur_rows, rows[c], &ks);
            if best.as_ref().is_none_or(|(bc, ..)| card < *bc) {
                best = Some((card, c, ks));
            }
        }
        let Some((card, c, ks)) = best else {
            return Err(VwError::Plan("join reorder: disconnected join graph".into()));
        };
        let leaf = slots[c].take().unwrap();
        let mut keys = Vec::new();
        for &k in &ks {
            used[k] = true;
            let (x, y) = &eds[k];
            let (pe, ce) = if y.leaf == c { (x, y) } else { (y, x) };
            keys.push((probe_key(&cur, &pos, pe), leaf_key(&leaf, ce)));
        }
        let schema = cur.schema().join(leaf.schema());
        cur = LogicalPlan::Join {
            left: Box::new(cur),
            right: Box::new(leaf),
            kind: JoinKind::Inner,
            keys,
            schema,
        };
        pos[c] = cur_width;
        cur_width += widths[c];
        placed[c] = true;
        cur_rows = card;
    }

    if (0..n).all(|l| pos[l] == offsets[l]) {
        return Ok(cur); // already in the original order
    }
    // Restore the original column order above the reordered chain.
    let exprs: Vec<SqlExpr> = (0..total_width)
        .map(|g| {
            let l = owner(g);
            let col = pos[l] + (g - offsets[l]);
            SqlExpr::Col(col, cur.schema().field(col).ty)
        })
        .collect();
    Ok(LogicalPlan::Project { input: Box::new(cur), exprs, schema: original_schema })
}

// ---------------------------------------------------------------------------
// projection pruning
// ---------------------------------------------------------------------------

/// Drop columns no consumer references. With `join_aware = false` only
/// Filter→Scan pipelines narrow (the original rule); with `true` the
/// narrowing also traverses projections and both join inputs, so wide
/// intermediate results shrink before materialization.
fn prune_projections(plan: LogicalPlan, join_aware: bool) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Project { input, exprs, schema } => {
            let mut needed = Vec::new();
            for e in &exprs {
                e.collect_cols(&mut needed);
            }
            let (input, remap) = narrow(*input, needed, join_aware)?;
            let exprs = exprs.iter().map(|e| e.remap_cols(&|i| remap(i))).collect::<Result<_>>()?;
            Ok(LogicalPlan::Project { input: Box::new(input), exprs, schema })
        }
        LogicalPlan::Aggregate { input, group, aggs, schema } => {
            let mut needed = Vec::new();
            for g in &group {
                g.collect_cols(&mut needed);
            }
            for a in &aggs {
                if let Some(e) = &a.input {
                    e.collect_cols(&mut needed);
                }
            }
            let (input, remap) = narrow(*input, needed, join_aware)?;
            let group = group.iter().map(|e| e.remap_cols(&|i| remap(i))).collect::<Result<_>>()?;
            let aggs = aggs
                .iter()
                .map(|a| {
                    Ok(crate::plan::AggCall {
                        func: a.func,
                        input: match &a.input {
                            Some(e) => Some(e.remap_cols(&|i| remap(i))?),
                            None => None,
                        },
                        out_ty: a.out_ty,
                    })
                })
                .collect::<Result<_>>()?;
            Ok(LogicalPlan::Aggregate { input: Box::new(input), group, aggs, schema })
        }
        other => map_inputs(other, &mut |c| prune_projections(c, join_aware)),
    }
}

/// Narrow `plan` so only `needed` columns remain, returning the plan and
/// a map from old column indices to new ones (`None` = dropped). The map
/// is order-preserving, so surviving columns keep their relative order.
#[allow(clippy::type_complexity)]
fn narrow(
    plan: LogicalPlan,
    mut needed: Vec<usize>,
    join_aware: bool,
) -> Result<(LogicalPlan, Box<dyn Fn(usize) -> Option<usize>>)> {
    needed.sort_unstable();
    needed.dedup();
    match plan {
        LogicalPlan::Scan { table, projection, schema, hints } => {
            if needed.is_empty() && !projection.is_empty() {
                // COUNT(*)-style plans reference no columns, but zero-width
                // batches cannot carry a row count: keep the narrowest
                // column as the row-existence carrier.
                let narrowest = (0..projection.len())
                    .min_by_key(|&i| schema.field(i).ty.fixed_width())
                    .unwrap();
                needed.push(narrowest);
            }
            if needed.len() == projection.len() {
                return Ok((
                    LogicalPlan::Scan { table, projection, schema, hints },
                    Box::new(Some),
                ));
            }
            let new_projection: Vec<usize> = needed.iter().map(|&i| projection[i]).collect();
            let new_schema = schema.project(&needed);
            let map: std::collections::HashMap<usize, usize> =
                needed.iter().enumerate().map(|(n, &o)| (o, n)).collect();
            Ok((
                LogicalPlan::Scan { table, projection: new_projection, schema: new_schema, hints },
                Box::new(move |i| map.get(&i).copied()),
            ))
        }
        LogicalPlan::Filter { input, predicate } => {
            // The filter needs its own columns too.
            let mut all = needed.clone();
            predicate.collect_cols(&mut all);
            let (inner, remap) = narrow(*input, all, join_aware)?;
            let predicate = predicate.remap_cols(&|i| remap(i))?;
            Ok((LogicalPlan::Filter { input: Box::new(inner), predicate }, remap))
        }
        LogicalPlan::Project { input, exprs, schema } if join_aware => {
            // Keep only the referenced output expressions; compute what
            // they read and narrow below.
            let mut kept = needed;
            if kept.is_empty() && !exprs.is_empty() {
                kept.push(0); // row-count carrier
            }
            let new_exprs: Vec<SqlExpr> = kept.iter().map(|&i| exprs[i].clone()).collect();
            let mut sub = Vec::new();
            for e in &new_exprs {
                e.collect_cols(&mut sub);
            }
            let (input, imap) = narrow(*input, sub, join_aware)?;
            let new_exprs =
                new_exprs.iter().map(|e| e.remap_cols(&|i| imap(i))).collect::<Result<Vec<_>>>()?;
            let new_schema = schema.project(&kept);
            let map: std::collections::HashMap<usize, usize> =
                kept.iter().enumerate().map(|(n, &o)| (o, n)).collect();
            Ok((
                LogicalPlan::Project {
                    input: Box::new(input),
                    exprs: new_exprs,
                    schema: new_schema,
                },
                Box::new(move |i| map.get(&i).copied()),
            ))
        }
        LogicalPlan::Join { left, right, kind, keys, schema } if join_aware => {
            let lw = left.schema().len();
            let rw = right.schema().len();
            // Semi/anti joins output the left side only; the right side
            // exists solely to match keys.
            let semi = matches!(kind, JoinKind::Semi | JoinKind::Anti | JoinKind::NullAwareAnti);
            let mut lneed = Vec::new();
            let mut rneed = Vec::new();
            for &c in &needed {
                if semi || c < lw {
                    lneed.push(c);
                } else {
                    rneed.push(c - lw);
                }
            }
            for (lk, rk) in &keys {
                lk.collect_cols(&mut lneed);
                rk.collect_cols(&mut rneed);
            }
            let (left, lmap) = narrow(*left, lneed, join_aware)?;
            let (right, rmap) = narrow(*right, rneed, join_aware)?;
            let keys = keys
                .iter()
                .map(|(lk, rk)| Ok((lk.remap_cols(&|i| lmap(i))?, rk.remap_cols(&|i| rmap(i))?)))
                .collect::<Result<Vec<_>>>()?;
            let new_lw = left.schema().len();
            let schema = if semi {
                // Output schema is exactly the (narrowed) left schema.
                left.schema().clone()
            } else {
                // Re-project the original join schema so per-field
                // nullability (left joins null-extend the right side)
                // carries over to the narrowed output.
                let kept: Vec<usize> = (0..lw)
                    .filter(|&i| lmap(i).is_some())
                    .chain((0..rw).filter(|&i| rmap(i).is_some()).map(|i| i + lw))
                    .collect();
                schema.project(&kept)
            };
            let plan = LogicalPlan::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                keys,
                schema,
            };
            let map = move |i: usize| {
                if semi || i < lw {
                    lmap(i)
                } else {
                    rmap(i - lw).map(|c| c + new_lw)
                }
            };
            Ok((plan, Box::new(map)))
        }
        other => {
            let other = prune_projections(other, join_aware)?;
            Ok((other, Box::new(Some)))
        }
    }
}

// ---------------------------------------------------------------------------
// cardinality estimation
// ---------------------------------------------------------------------------

/// Structural row estimate used by the rule-only pipeline: table row
/// counts at scans, fixed fractions everywhere else. Kept bit-for-bit so
/// `SET optimizer = 0` reproduces the original plans.
fn estimate_rows(plan: &LogicalPlan, catalog: &dyn CatalogView) -> f64 {
    match plan {
        LogicalPlan::Scan { table, .. } => catalog.table_rows(table).unwrap_or(1000) as f64,
        LogicalPlan::Filter { input, .. } => 0.3 * estimate_rows(input, catalog),
        LogicalPlan::Project { input, .. } | LogicalPlan::Sort { input, .. } => {
            estimate_rows(input, catalog)
        }
        LogicalPlan::Join { left, right, kind, .. } => match kind {
            JoinKind::Semi | JoinKind::Anti | JoinKind::NullAwareAnti => {
                0.5 * estimate_rows(left, catalog)
            }
            _ => {
                let l = estimate_rows(left, catalog);
                let r = estimate_rows(right, catalog);
                (l * r).sqrt().max(l.max(r) * 0.1)
            }
        },
        LogicalPlan::Aggregate { input, group, .. } => {
            if group.is_empty() {
                1.0
            } else {
                (estimate_rows(input, catalog) / 10.0).max(1.0)
            }
        }
        LogicalPlan::Limit { input, limit, .. } => {
            (estimate_rows(input, catalog)).min(*limit as f64)
        }
        LogicalPlan::Values { rows, .. } => rows.len() as f64,
        LogicalPlan::Exchange { input, .. } => estimate_rows(input, catalog),
        LogicalPlan::SetOp { op, inputs, .. } => {
            let vals: Vec<f64> = inputs.iter().map(|i| estimate_rows(i, catalog)).collect();
            match op {
                SetOpKind::Union | SetOpKind::UnionAll => vals.iter().sum(),
                SetOpKind::Intersect => vals.iter().copied().fold(f64::INFINITY, f64::min),
                SetOpKind::Except => vals.first().copied().unwrap_or(1.0),
            }
        }
        LogicalPlan::Apply { input, kind, .. } => match kind {
            ApplyKind::In | ApplyKind::Exists { .. } => 0.5 * estimate_rows(input, catalog),
            ApplyKind::Scalar => estimate_rows(input, catalog),
        },
    }
}

/// Statistics-backed cardinality estimator.
///
/// Every estimate bottoms out in [`CatalogView`]: row counts at scans,
/// per-column distinct counts for equality and join selectivities,
/// histogram mass for range predicates. Missing or stale statistics
/// (the catalog returns `None`) degrade to fixed structural defaults —
/// estimation never fails and never touches table data.
pub struct Estimator<'a> {
    catalog: &'a dyn CatalogView,
}

impl<'a> Estimator<'a> {
    /// An estimator reading statistics through `catalog`.
    pub fn new(catalog: &'a dyn CatalogView) -> Estimator<'a> {
        Estimator { catalog }
    }

    /// Estimated output rows of `plan`.
    ///
    /// Scans report table row counts; filters multiply by predicate
    /// selectivity (floored at `MIN_SEL`); inner joins divide the cross
    /// product by `max(ndv_left, ndv_right)` per key pair (containment
    /// assumption); semi/anti joins keep half the probe side; grouped
    /// aggregates multiply group-key distinct counts, capped at the
    /// input cardinality.
    pub fn rows(&self, plan: &LogicalPlan) -> f64 {
        match plan {
            LogicalPlan::Scan { table, .. } => {
                self.catalog.table_rows(table).unwrap_or(1000) as f64
            }
            LogicalPlan::Filter { input, predicate } => {
                let inner = self.rows(input);
                inner * self.selectivity(input, predicate).clamp(MIN_SEL, 1.0)
            }
            LogicalPlan::Project { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Exchange { input, .. } => self.rows(input),
            LogicalPlan::Join { left, right, kind, keys, .. } => {
                let l = self.rows(left);
                let r = self.rows(right);
                match kind {
                    JoinKind::Semi => 0.5 * l,
                    JoinKind::Anti | JoinKind::NullAwareAnti => 0.5 * l,
                    JoinKind::Inner | JoinKind::Left => {
                        let mut card = l * r;
                        for (lk, rk) in keys {
                            let nl = self.key_ndv(left, lk).unwrap_or(l);
                            let nr = self.key_ndv(right, rk).unwrap_or(r);
                            card /= nl.max(nr).max(1.0);
                        }
                        if *kind == JoinKind::Left {
                            card.max(l)
                        } else {
                            card.max(1.0)
                        }
                    }
                }
            }
            LogicalPlan::Aggregate { input, group, .. } => {
                if group.is_empty() {
                    return 1.0;
                }
                let inrows = self.rows(input);
                let mut groups = 1.0;
                for g in group {
                    let n = match g {
                        SqlExpr::Col(c, _) => self.ndv(input, *c),
                        _ => None,
                    };
                    groups *= n.unwrap_or(inrows / 10.0).max(1.0);
                }
                groups.min(inrows).max(1.0)
            }
            LogicalPlan::Limit { input, limit, .. } => self.rows(input).min(*limit as f64),
            LogicalPlan::Values { rows, .. } => rows.len() as f64,
            LogicalPlan::SetOp { op, inputs, .. } => {
                let vals: Vec<f64> = inputs.iter().map(|i| self.rows(i)).collect();
                match op {
                    SetOpKind::Union | SetOpKind::UnionAll => vals.iter().sum(),
                    SetOpKind::Intersect => vals.iter().copied().fold(f64::INFINITY, f64::min),
                    SetOpKind::Except => vals.first().copied().unwrap_or(1.0),
                }
            }
            LogicalPlan::Apply { input, kind, .. } => match kind {
                ApplyKind::In | ApplyKind::Exists { .. } => 0.5 * self.rows(input),
                ApplyKind::Scalar => self.rows(input),
            },
        }
    }

    /// Selectivity of `pred` over the output of `input`, in `[0, 1]`.
    fn selectivity(&self, input: &LogicalPlan, pred: &SqlExpr) -> f64 {
        match pred {
            SqlExpr::And(parts) => parts.iter().map(|p| self.selectivity(input, p)).product(),
            SqlExpr::Or(parts) => {
                1.0 - parts.iter().map(|p| 1.0 - self.selectivity(input, p)).product::<f64>()
            }
            SqlExpr::Not(inner) => 1.0 - self.selectivity(input, inner),
            SqlExpr::Lit(Value::Bool(b), _) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            _ => match col_vs_lit(pred) {
                Some((op, col, lit, flipped)) => {
                    self.cmp_selectivity(input, op, col, &lit, flipped)
                }
                None => DEFAULT_SEL,
            },
        }
    }

    /// Selectivity of `col <op> lit` (`flipped` = column on the right).
    fn cmp_selectivity(
        &self,
        input: &LogicalPlan,
        op: CmpOp,
        col: usize,
        lit: &Value,
        flipped: bool,
    ) -> f64 {
        match op {
            CmpOp::Eq => self.eq_selectivity(input, col, lit),
            CmpOp::Ne => (1.0 - self.eq_selectivity(input, col, lit)).clamp(0.0, 1.0),
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                let lower_bound = matches!(
                    (op, flipped),
                    (CmpOp::Gt | CmpOp::Ge, false) | (CmpOp::Lt | CmpOp::Le, true)
                );
                let (lo, hi) = if lower_bound { (Some(lit), None) } else { (None, Some(lit)) };
                self.range_selectivity(input, col, lo, hi).unwrap_or(DEFAULT_SEL)
            }
        }
    }

    fn eq_selectivity(&self, input: &LogicalPlan, col: usize, lit: &Value) -> f64 {
        if let Some(n) = self.ndv(input, col) {
            if n >= 1.0 {
                return (1.0 / n).min(1.0);
            }
        }
        self.range_selectivity(input, col, Some(lit), Some(lit)).unwrap_or(DEFAULT_EQ_SEL)
    }

    /// Histogram mass of `lo <= col <= hi`, if the base column is known
    /// and its statistics are trusted.
    fn range_selectivity(
        &self,
        input: &LogicalPlan,
        col: usize,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Option<f64> {
        let (table, base) = base_column(input, col)?;
        self.catalog.column_range_selectivity(table, base, lo, hi)
    }

    /// Distinct count of an output column, traced back to its base-table
    /// column and capped at the subplan's own row estimate.
    fn ndv(&self, plan: &LogicalPlan, col: usize) -> Option<f64> {
        let (table, base) = base_column(plan, col)?;
        let n = self.catalog.column_distinct(table, base)? as f64;
        Some(n.min(self.rows(plan)).max(1.0))
    }

    /// Distinct count behind a join-key expression (plain columns only).
    fn key_ndv(&self, side: &LogicalPlan, key: &SqlExpr) -> Option<f64> {
        match key {
            SqlExpr::Col(c, _) => self.ndv(side, *c),
            _ => None,
        }
    }
}

/// Trace output column `col` of `plan` back to `(table, base column)`,
/// following filters, sorts, limits, exchanges, pass-through projections,
/// join sides and group keys. `None` when the column is computed.
fn base_column(plan: &LogicalPlan, col: usize) -> Option<(&str, usize)> {
    match plan {
        LogicalPlan::Scan { table, projection, .. } => {
            Some((table.as_str(), *projection.get(col)?))
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Exchange { input, .. } => base_column(input, col),
        LogicalPlan::Project { input, exprs, .. } => match exprs.get(col)? {
            SqlExpr::Col(c, _) => base_column(input, *c),
            _ => None,
        },
        LogicalPlan::Join { left, right, kind, .. } => {
            let lw = left.schema().len();
            match kind {
                JoinKind::Semi | JoinKind::Anti | JoinKind::NullAwareAnti => base_column(left, col),
                _ if col < lw => base_column(left, col),
                _ => base_column(right, col - lw),
            }
        }
        LogicalPlan::Aggregate { input, group, .. } => match group.get(col)? {
            SqlExpr::Col(c, _) => base_column(input, *c),
            _ => None,
        },
        // SetOp columns merge several inputs; the Apply value column is
        // computed. Apply pass-through columns come from the outer input.
        LogicalPlan::Apply { input, .. } if col < input.schema().len() => base_column(input, col),
        LogicalPlan::Values { .. } | LogicalPlan::SetOp { .. } | LogicalPlan::Apply { .. } => None,
    }
}

// ---------------------------------------------------------------------------
// join build-side choice
// ---------------------------------------------------------------------------

fn choose_build_side(plan: LogicalPlan, est: &dyn Fn(&LogicalPlan) -> f64) -> LogicalPlan {
    match plan {
        LogicalPlan::Join { left, right, kind, keys, schema } => {
            let left = Box::new(choose_build_side(*left, est));
            let right = Box::new(choose_build_side(*right, est));
            // Only inner joins are symmetric enough to swap.
            if kind == JoinKind::Inner && est(&left) < est(&right) {
                let lwidth = left.schema().len();
                let rwidth = right.schema().len();
                // Swap sides; output schema must keep the original order, so
                // wrap in a reordering projection.
                let swapped_schema = right.schema().join(left.schema());
                let keys = keys.into_iter().map(|(l, r)| (r, l)).collect();
                let join = LogicalPlan::Join {
                    left: right,
                    right: left,
                    kind,
                    keys,
                    schema: swapped_schema.clone(),
                };
                let exprs: Vec<SqlExpr> = (0..lwidth)
                    .map(|i| SqlExpr::Col(rwidth + i, swapped_schema.field(rwidth + i).ty))
                    .chain((0..rwidth).map(|i| SqlExpr::Col(i, swapped_schema.field(i).ty)))
                    .collect();
                return LogicalPlan::Project { input: Box::new(join), exprs, schema };
            }
            LogicalPlan::Join { left, right, kind, keys, schema }
        }
        other => map_inputs(other, &mut |c| Ok(choose_build_side(c, est)))
            .expect("choose_build_side is infallible"),
    }
}

/// Estimated output rows of a plan, using the structural model; exposed
/// for the rewriter's parallelization cost check.
pub fn estimate_plan_rows(plan: &LogicalPlan, catalog: &dyn CatalogView) -> f64 {
    estimate_rows(plan, catalog)
}

/// Guard: optimization must never change the output schema.
pub fn check_schema_preserved(before: &LogicalPlan, after: &LogicalPlan) -> Result<()> {
    if before.schema() != after.schema() {
        return Err(VwError::Plan(format!(
            "optimizer changed output schema:\n  before {:?}\n  after  {:?}",
            before.schema(),
            after.schema()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// EXPLAIN with estimates
// ---------------------------------------------------------------------------

/// Render an EXPLAIN tree annotated with the cost model's estimates.
///
/// Output contract (each line, byte-exact — golden-tested):
///
/// * every node carries ` est~N` — its estimated output rows, rounded;
/// * `Scan` lines read `Scan <table> cols=<projected>/<base-width>
///   hints=<n> [<pred> & ...]`, where the bracketed list renders the
///   pushed MinMax hints (`cK=V`, `cK>=V`, `cK<=V`, `cK in A..B`, in
///   base-table column numbers) and is omitted when no hints exist;
/// * join children are prefixed with their runtime role: `probe:` for
///   the left (streamed) input, `build:` for the right (hash-table)
///   input.
///
/// All other node lines match [`LogicalPlan::explain`], which the
/// rule-only pipeline (`SET optimizer = 0`) keeps emitting unchanged.
pub fn explain_with_estimates(plan: &LogicalPlan, catalog: &dyn CatalogView) -> String {
    let est = Estimator::new(catalog);
    let mut out = String::new();
    explain_est_into(plan, &est, catalog, 0, None, &mut out);
    out
}

fn explain_est_into(
    plan: &LogicalPlan,
    est: &Estimator,
    catalog: &dyn CatalogView,
    depth: usize,
    role: Option<&str>,
    out: &mut String,
) {
    out.push_str(&"  ".repeat(depth));
    if let Some(r) = role {
        out.push_str(r);
    }
    let line = match plan {
        LogicalPlan::Scan { table, projection, hints, .. } => {
            let base = catalog.table_schema(table).map_or(projection.len(), |s| s.len());
            let preds = if hints.is_empty() {
                String::new()
            } else {
                let rendered: Vec<String> = hints.iter().map(render_hint).collect();
                format!(" [{}]", rendered.join(" & "))
            };
            format!("Scan {table} cols={projection:?}/{base} hints={}{preds}", hints.len())
        }
        LogicalPlan::Filter { .. } => "Select".to_string(),
        LogicalPlan::Project { exprs, .. } => format!("Project [{} exprs]", exprs.len()),
        LogicalPlan::Join { kind, keys, .. } => {
            format!("HashJoin {kind:?} on {} key(s)", keys.len())
        }
        LogicalPlan::Aggregate { group, aggs, .. } => {
            format!("Aggr groups={} aggs={}", group.len(), aggs.len())
        }
        LogicalPlan::Sort { keys, .. } => format!("Sort keys={keys:?}"),
        LogicalPlan::Limit { offset, limit, .. } => format!("Limit {limit} offset {offset}"),
        LogicalPlan::Values { rows, .. } => format!("Values [{} rows]", rows.len()),
        LogicalPlan::Exchange { dop, .. } => format!("Xchg dop={dop}"),
        LogicalPlan::SetOp { op, inputs, .. } => {
            format!("SetOp {op:?} [{} inputs]", inputs.len())
        }
        LogicalPlan::Apply { kind, keys, .. } => {
            format!("Apply {kind:?} on {} key(s)", keys.len())
        }
    };
    out.push_str(&line);
    out.push_str(&format!(" est~{:.0}\n", est.rows(plan)));
    if let LogicalPlan::Join { left, right, .. } = plan {
        explain_est_into(left, est, catalog, depth + 1, Some("probe: "), out);
        explain_est_into(right, est, catalog, depth + 1, Some("build: "), out);
    } else {
        for c in plan.children() {
            explain_est_into(c, est, catalog, depth + 1, None, out);
        }
    }
}

/// One pushed predicate, in base-table column coordinates.
fn render_hint(h: &ScanHint) -> String {
    match (&h.lo, &h.hi) {
        (Some(a), Some(b)) if a == b => format!("c{}={a}", h.col),
        (Some(a), Some(b)) => format!("c{} in {a}..{b}", h.col),
        (Some(a), None) => format!("c{}>={a}", h.col),
        (None, Some(b)) => format!("c{}<={b}", h.col),
        (None, None) => format!("c{}", h.col),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::binder::Binder;
    use crate::parse;
    use vw_common::{Field, Schema};

    /// Three tables sharing one 4-column layout: big (1M rows), mid
    /// (10k), small (100). `id` is unique and uniform over `[0, rows)`;
    /// `a` has 100 distinct values.
    struct MockCatalog;

    impl MockCatalog {
        fn rows_of(name: &str) -> Option<u64> {
            match name {
                "big" => Some(1_000_000),
                "mid" => Some(10_000),
                "small" => Some(100),
                _ => None,
            }
        }
    }

    impl CatalogView for MockCatalog {
        fn table_schema(&self, name: &str) -> Option<Schema> {
            Self::rows_of(name)?;
            Some(
                Schema::new(vec![
                    Field::not_null("id", TypeId::I64),
                    Field::nullable("a", TypeId::I32),
                    Field::nullable("b", TypeId::Str),
                    Field::nullable("c", TypeId::F64),
                ])
                .unwrap(),
            )
        }

        fn table_rows(&self, name: &str) -> Option<u64> {
            Self::rows_of(name).or(Some(100))
        }

        fn column_distinct(&self, table: &str, col: usize) -> Option<u64> {
            match col {
                0 => Self::rows_of(table),
                1 => Some(100),
                _ => None,
            }
        }

        fn column_range_selectivity(
            &self,
            table: &str,
            col: usize,
            lo: Option<&Value>,
            hi: Option<&Value>,
        ) -> Option<f64> {
            if col != 0 {
                return None;
            }
            // `id` uniform over [0, rows).
            let rows = Self::rows_of(table)? as f64;
            let lo = lo.and_then(vw_common_project).unwrap_or(0.0);
            let hi = hi.and_then(vw_common_project).unwrap_or(rows);
            Some(((hi - lo) / rows).clamp(0.0, 1.0))
        }
    }

    /// Test-local stand-in for `vw_storage::stats::project` (vw-sql does
    /// not depend on vw-storage).
    fn vw_common_project(v: &Value) -> Option<f64> {
        match v {
            Value::I8(x) => Some(*x as f64),
            Value::I16(x) => Some(*x as f64),
            Value::I32(x) => Some(*x as f64),
            Value::I64(x) => Some(*x as f64),
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }

    fn bound(sql: &str) -> LogicalPlan {
        let stmts = parse(sql).unwrap();
        let Statement::Select(s) = &stmts[0] else { panic!() };
        Binder::new(&MockCatalog).bind_select(s).unwrap()
    }

    fn plan_for(sql: &str) -> LogicalPlan {
        let plan = bound(sql);
        let before_schema = plan.schema().clone();
        let optimized = optimize(plan, &MockCatalog).unwrap();
        assert_eq!(optimized.schema(), &before_schema, "schema must be stable");
        optimized
    }

    fn plan_rule_only(sql: &str) -> LogicalPlan {
        let plan = bound(sql);
        let before_schema = plan.schema().clone();
        let optimized = optimize_with(plan, &MockCatalog, false).unwrap();
        assert_eq!(optimized.schema(), &before_schema, "schema must be stable");
        optimized
    }

    #[test]
    fn constant_folding_removes_true_filters() {
        let p = plan_for("SELECT id FROM big WHERE 1 + 1 = 2");
        assert!(!p.explain().contains("Select"), "{}", p.explain());
    }

    #[test]
    fn constant_folding_in_projection() {
        let p = plan_for("SELECT 2 * 3 + id FROM big");
        let LogicalPlan::Project { exprs, .. } = &p else { panic!() };
        // 2*3 folded to 6: the remaining tree is 6 + id.
        assert!(format!("{:?}", exprs[0]).contains("I64(6)"));
    }

    #[test]
    fn hints_pushed_to_scan() {
        let p = plan_for("SELECT a FROM big WHERE id >= 100 AND id < 200 AND b LIKE 'x%'");
        let text = p.explain();
        assert!(text.contains("hints=2"), "{text}");
    }

    #[test]
    fn projection_pruned_to_used_columns() {
        let p = plan_for("SELECT a FROM big WHERE id > 5");
        let text = p.explain();
        // Only id (0) and a (1) should be read, not b, c.
        assert!(text.contains("cols=[0, 1]"), "{text}");
    }

    #[test]
    fn small_side_becomes_build() {
        let p = plan_for("SELECT big.id FROM small JOIN big ON small.id = big.id");
        // left=small (100 rows) < right=big: swap puts big on probe side.
        let est = Estimator::new(&MockCatalog);
        let mut node = &p;
        loop {
            match node {
                LogicalPlan::Join { left, right, .. } => {
                    let l = est.rows(left);
                    let r = est.rows(right);
                    assert!(l >= r, "build side (right) should be the smaller input");
                    break;
                }
                other => {
                    let cs = other.children();
                    assert!(!cs.is_empty(), "no join found");
                    node = cs[0];
                }
            }
        }
    }

    #[test]
    fn fold_expr_handles_div_zero_conservatively() {
        let e = SqlExpr::Arith {
            op: crate::expr::BinOp::Div,
            l: Box::new(SqlExpr::Lit(Value::I64(1), TypeId::I64)),
            r: Box::new(SqlExpr::Lit(Value::I64(0), TypeId::I64)),
            ty: TypeId::I64,
        };
        // Must NOT fold away: runtime raises the proper error.
        let folded = fold_expr(e.clone()).unwrap();
        assert_eq!(folded, e);
    }

    /// Collect scan table names in explain order (probe before build).
    fn scan_tables(plan: &LogicalPlan, out: &mut Vec<String>) {
        if let LogicalPlan::Scan { table, .. } = plan {
            out.push(table.clone());
        }
        for c in plan.children() {
            scan_tables(c, out);
        }
    }

    #[test]
    fn join_chain_reordered_smallest_first() {
        // Syntactic order joins big first; the cost model should instead
        // start from mid ⋈ small (est. 100 rows) and probe with big.
        let p = plan_for(
            "SELECT COUNT(*) FROM big \
             JOIN mid ON big.id = mid.id \
             JOIN small ON mid.id = small.id",
        );
        // Top join: probe side holds big, build side the mid/small join.
        let mut node = &p;
        let (probe, build) = loop {
            match node {
                LogicalPlan::Join { left, right, .. } => break (left, right),
                other => node = other.children()[0],
            }
        };
        let mut probe_tables = Vec::new();
        scan_tables(probe, &mut probe_tables);
        let mut build_tables = Vec::new();
        scan_tables(build, &mut build_tables);
        assert_eq!(probe_tables, vec!["big"], "probe should stream the large table");
        let mut sorted = build_tables.clone();
        sorted.sort();
        assert_eq!(sorted, vec!["mid", "small"], "build should hold the small join");
    }

    #[test]
    fn rule_only_pipeline_keeps_syntactic_join_order() {
        let p = plan_rule_only(
            "SELECT COUNT(*) FROM big \
             JOIN mid ON big.id = mid.id \
             JOIN small ON mid.id = small.id",
        );
        // The rule-only path never reorders the chain: the plan stays
        // left-deep, so the top join's build side is a single table.
        let mut node = &p;
        let build = loop {
            match node {
                LogicalPlan::Join { right, .. } => break right,
                other => node = other.children()[0],
            }
        };
        let mut build_tables = Vec::new();
        scan_tables(build, &mut build_tables);
        assert_eq!(
            build_tables,
            vec!["small"],
            "rule-only path must keep the syntactic left-deep shape"
        );
    }

    #[test]
    fn filters_pushed_below_join_to_both_scans() {
        let p = plan_for(
            "SELECT big.a FROM big JOIN small ON big.id = small.id \
             WHERE big.a > 10 AND small.a < 5",
        );
        let text = p.explain();
        assert_eq!(
            text.matches("hints=1").count(),
            2,
            "each side should get its own pushed predicate:\n{text}"
        );
    }

    #[test]
    fn error_prone_predicates_stay_above_join() {
        let p =
            plan_for("SELECT big.a FROM big JOIN small ON big.id = small.id WHERE 10 / big.a > 1");
        let text = p.explain();
        let select = text.find("Select").expect("filter survives");
        let join = text.find("HashJoin").expect("join survives");
        assert!(select < join, "division must not be evaluated on pre-join rows:\n{text}");
    }

    #[test]
    fn error_free_classification() {
        let col = SqlExpr::Col(0, TypeId::I32);
        let lit = SqlExpr::Lit(Value::I64(1), TypeId::I64);
        let cmp =
            SqlExpr::Cmp { op: CmpOp::Gt, l: Box::new(col.clone()), r: Box::new(lit.clone()) };
        assert!(error_free(&cmp));
        assert!(error_free(&SqlExpr::Cast { input: Box::new(col.clone()), to: TypeId::I64 }));
        assert!(!error_free(&SqlExpr::Cast { input: Box::new(col.clone()), to: TypeId::I8 }));
        assert!(!error_free(&SqlExpr::Arith {
            op: crate::expr::BinOp::Div,
            l: Box::new(lit.clone()),
            r: Box::new(col),
            ty: TypeId::I64,
        }));
    }

    #[test]
    fn estimator_uses_histogram_range_selectivity() {
        let est = Estimator::new(&MockCatalog);
        let p = bound("SELECT a FROM small WHERE id >= 10 AND id < 20");
        // Project → Filter → Scan; the filter's estimate combines both
        // range conjuncts over the uniform id column.
        let rows = est.rows(&p);
        // sel(id >= 10) = 0.9, sel(id <= 20, inclusive-hi hint form) ≈ 0.2:
        // 100 × 0.9 × 0.2 = 18.
        assert!((rows - 18.0).abs() < 2.0, "estimated {rows}");
    }

    #[test]
    fn explain_estimates_golden() {
        let p = plan_for("SELECT a FROM small WHERE id >= 10 AND id < 20");
        let text = explain_with_estimates(&p, &MockCatalog);
        let expected = "\
Project [1 exprs] est~18
  Select est~18
    Scan small cols=[0, 1]/4 hints=2 [c0>=10 & c0<=20] est~100
";
        assert_eq!(text, expected, "EXPLAIN contract drifted:\n{text}");
    }
}
