//! The SQL function catalog — "Many Functions".
//!
//! The paper: "SQL standard contains a plethora of functions ... This
//! resulted in dozens of new functions added to the system. ... Some
//! functions were implemented in the rewriter phase ... For others, manual
//! implementation was needed."
//!
//! This module is the name → implementation map. Each SQL name resolves to
//! either a kernel-native function ([`KernelFunc`], "manual implementation")
//! or an extended function ([`ExtFunc`], rewriter-expanded), plus a typing
//! rule. Aggregates are resolved separately by the binder.

use crate::expr::{ExtFunc, KernelFunc, SqlExpr};
use vw_common::{Result, TypeId, VwError};

fn is_null_lit(e: &SqlExpr) -> bool {
    matches!(e, SqlExpr::Lit(v, _) if v.is_null())
}

/// Resolution of a SQL function name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuncImpl {
    /// Kernel-native.
    Kernel(KernelFunc),
    /// Rewriter-expanded.
    Ext(ExtFunc),
}

/// Resolve a (uppercased) SQL function name.
pub fn resolve(name: &str) -> Option<FuncImpl> {
    use FuncImpl::*;
    Some(match name {
        "UPPER" | "UCASE" => Kernel(KernelFunc::Upper),
        "LOWER" | "LCASE" => Kernel(KernelFunc::Lower),
        "LENGTH" | "LEN" | "CHAR_LENGTH" | "CHARACTER_LENGTH" => Kernel(KernelFunc::Length),
        "SUBSTR" | "SUBSTRING" => Kernel(KernelFunc::Substr),
        "CONCAT" => Kernel(KernelFunc::Concat),
        "TRIM" => Kernel(KernelFunc::Trim),
        "REPLACE" => Kernel(KernelFunc::Replace),
        "ABS" => Kernel(KernelFunc::Abs),
        "SQRT" => Kernel(KernelFunc::Sqrt),
        "FLOOR" => Kernel(KernelFunc::Floor),
        "CEIL" | "CEILING" => Kernel(KernelFunc::Ceil),
        "ROUND" => Kernel(KernelFunc::Round),
        "DATE_ADD_DAYS" | "ADDDATE" => Kernel(KernelFunc::DateAddDays),
        "DATE_ADD_MONTHS" | "ADD_MONTHS" => Kernel(KernelFunc::DateAddMonths),
        "DATE_DIFF_DAYS" | "DATEDIFF" => Kernel(KernelFunc::DateDiffDays),
        "COALESCE" => Ext(ExtFunc::Coalesce),
        "NULLIF" => Ext(ExtFunc::NullIf),
        "IFNULL" | "NVL" => Ext(ExtFunc::IfNull),
        "GREATEST" => Ext(ExtFunc::Greatest),
        "LEAST" => Ext(ExtFunc::Least),
        "SIGN" => Ext(ExtFunc::Sign),
        _ => return None,
    })
}

/// Type-check a resolved function call against its bound arguments and
/// return (possibly coerced arguments, result type).
pub fn type_check(name: &str, imp: FuncImpl, args: Vec<SqlExpr>) -> Result<(Vec<SqlExpr>, TypeId)> {
    let err = |msg: String| VwError::Bind(format!("{name}: {msg}"));
    let arity = |want: std::ops::RangeInclusive<usize>| -> Result<()> {
        if want.contains(&args.len()) {
            Ok(())
        } else {
            Err(err(format!("expects {want:?} arguments, got {}", args.len())))
        }
    };
    let want_str = |e: &SqlExpr| -> Result<()> {
        if e.type_id() == TypeId::Str {
            Ok(())
        } else {
            Err(err(format!("string argument expected, got {}", e.type_id())))
        }
    };
    let to_i64 = |e: SqlExpr| -> SqlExpr {
        if e.type_id() == TypeId::I64 {
            e
        } else {
            SqlExpr::Cast { input: Box::new(e), to: TypeId::I64 }
        }
    };
    let to_f64 = |e: SqlExpr| -> SqlExpr {
        if e.type_id() == TypeId::F64 {
            e
        } else {
            SqlExpr::Cast { input: Box::new(e), to: TypeId::F64 }
        }
    };
    match imp {
        FuncImpl::Kernel(k) => {
            use KernelFunc::*;
            match k {
                Upper | Lower | Trim => {
                    arity(1..=1)?;
                    want_str(&args[0])?;
                    Ok((args, TypeId::Str))
                }
                Length => {
                    arity(1..=1)?;
                    want_str(&args[0])?;
                    Ok((args, TypeId::I64))
                }
                Substr => {
                    arity(2..=3)?;
                    want_str(&args[0])?;
                    let mut it = args.into_iter();
                    let mut out = vec![it.next().unwrap()];
                    out.extend(it.map(|a| if a.type_id().is_integer() { to_i64(a) } else { a }));
                    for a in &out[1..] {
                        if a.type_id() != TypeId::I64 {
                            return Err(err("position/length must be integers".into()));
                        }
                    }
                    Ok((out, TypeId::Str))
                }
                Concat => {
                    arity(2..=2)?;
                    want_str(&args[0])?;
                    want_str(&args[1])?;
                    Ok((args, TypeId::Str))
                }
                Replace => {
                    arity(3..=3)?;
                    for a in &args {
                        want_str(a)?;
                    }
                    Ok((args, TypeId::Str))
                }
                Abs => {
                    arity(1..=1)?;
                    match args[0].type_id() {
                        TypeId::F64 => Ok((args, TypeId::F64)),
                        t if t.is_integer() => {
                            let out_args = vec![to_i64(args.into_iter().next().unwrap())];
                            Ok((out_args, TypeId::I64))
                        }
                        t => Err(err(format!("numeric argument expected, got {t}"))),
                    }
                }
                Sqrt | Floor | Ceil | Round => {
                    arity(1..=1)?;
                    if !args[0].type_id().is_numeric() {
                        return Err(err("numeric argument expected".into()));
                    }
                    let out_args = vec![to_f64(args.into_iter().next().unwrap())];
                    Ok((out_args, TypeId::F64))
                }
                Extract => {
                    arity(2..=2)?;
                    if args[0].type_id() != TypeId::Date {
                        return Err(err("DATE argument expected".into()));
                    }
                    Ok((args, TypeId::I64))
                }
                DateAddDays | DateAddMonths => {
                    arity(2..=2)?;
                    if args[0].type_id() != TypeId::Date {
                        return Err(err("DATE argument expected".into()));
                    }
                    let mut it = args.into_iter();
                    let d = it.next().unwrap();
                    let n = to_i64(it.next().unwrap());
                    if n.type_id() != TypeId::I64 {
                        return Err(err("day count must be an integer".into()));
                    }
                    Ok((vec![d, n], TypeId::Date))
                }
                DateDiffDays => {
                    arity(2..=2)?;
                    if args[0].type_id() != TypeId::Date || args[1].type_id() != TypeId::Date {
                        return Err(err("two DATE arguments expected".into()));
                    }
                    Ok((args, TypeId::I64))
                }
            }
        }
        FuncImpl::Ext(x) => {
            use ExtFunc::*;
            match x {
                Coalesce | Greatest | Least => {
                    arity(1..=8)?;
                    // All arguments must share a common type; NULL literals
                    // are type-flexible and adopt the common type.
                    let mut ty: Option<TypeId> = None;
                    for a in &args {
                        if is_null_lit(a) {
                            continue;
                        }
                        ty = Some(match ty {
                            None => a.type_id(),
                            Some(t) => TypeId::promote(t, a.type_id()).ok_or_else(|| {
                                err(format!(
                                    "arguments have incompatible types {} and {}",
                                    t,
                                    a.type_id()
                                ))
                            })?,
                        });
                    }
                    let ty = ty.unwrap_or(TypeId::I64);
                    let coerced = args
                        .into_iter()
                        .map(|a| {
                            if a.type_id() == ty {
                                a
                            } else {
                                SqlExpr::Cast { input: Box::new(a), to: ty }
                            }
                        })
                        .collect();
                    Ok((coerced, ty))
                }
                NullIf | IfNull => {
                    arity(2..=2)?;
                    let ty = match (is_null_lit(&args[0]), is_null_lit(&args[1])) {
                        (true, false) => args[1].type_id(),
                        (false, true) => args[0].type_id(),
                        (true, true) => TypeId::I64,
                        (false, false) => TypeId::promote(args[0].type_id(), args[1].type_id())
                            .ok_or_else(|| err("incompatible argument types".into()))?,
                    };
                    let coerced = args
                        .into_iter()
                        .map(|a| {
                            if a.type_id() == ty {
                                a
                            } else {
                                SqlExpr::Cast { input: Box::new(a), to: ty }
                            }
                        })
                        .collect();
                    Ok((coerced, ty))
                }
                Sign => {
                    arity(1..=1)?;
                    if !args[0].type_id().is_numeric() {
                        return Err(err("numeric argument expected".into()));
                    }
                    Ok((args, TypeId::I64))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::Value;

    fn s(v: &str) -> SqlExpr {
        SqlExpr::Lit(Value::Str(v.into()), TypeId::Str)
    }

    fn i(v: i64) -> SqlExpr {
        SqlExpr::Lit(Value::I64(v), TypeId::I64)
    }

    #[test]
    fn resolves_aliases() {
        assert_eq!(resolve("UCASE"), Some(FuncImpl::Kernel(KernelFunc::Upper)));
        assert_eq!(resolve("NVL"), Some(FuncImpl::Ext(ExtFunc::IfNull)));
        assert_eq!(resolve("NO_SUCH_FN"), None);
    }

    #[test]
    fn typing_rules() {
        let (_, ty) = type_check("UPPER", resolve("UPPER").unwrap(), vec![s("x")]).unwrap();
        assert_eq!(ty, TypeId::Str);
        assert!(type_check("UPPER", resolve("UPPER").unwrap(), vec![i(1)]).is_err());
        assert!(type_check("UPPER", resolve("UPPER").unwrap(), vec![s("a"), s("b")]).is_err());
        let (_, ty) = type_check("LENGTH", resolve("LENGTH").unwrap(), vec![s("x")]).unwrap();
        assert_eq!(ty, TypeId::I64);
    }

    #[test]
    fn coalesce_promotes() {
        let args = vec![
            SqlExpr::Lit(Value::I32(1), TypeId::I32),
            SqlExpr::Lit(Value::F64(2.0), TypeId::F64),
        ];
        let (coerced, ty) = type_check("COALESCE", resolve("COALESCE").unwrap(), args).unwrap();
        assert_eq!(ty, TypeId::F64);
        assert!(matches!(coerced[0], SqlExpr::Cast { .. }));
        let bad = vec![s("a"), i(1)];
        assert!(type_check("COALESCE", resolve("COALESCE").unwrap(), bad).is_err());
    }

    #[test]
    fn sqrt_coerces_to_double() {
        let (args, ty) = type_check("SQRT", resolve("SQRT").unwrap(), vec![i(4)]).unwrap();
        assert_eq!(ty, TypeId::F64);
        assert!(matches!(args[0], SqlExpr::Cast { to: TypeId::F64, .. }));
    }
}
