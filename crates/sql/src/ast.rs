//! The raw (unbound) SQL abstract syntax tree.

use vw_common::{TypeId, Value};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// SELECT query.
    Select(Box<SelectStmt>),
    /// INSERT INTO ... VALUES / SELECT.
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Rows or source query.
        source: InsertSource,
    },
    /// UPDATE ... SET ... WHERE.
    Update {
        /// Target table.
        table: String,
        /// (column, new value) assignments.
        sets: Vec<(String, Expr)>,
        /// Optional filter.
        filter: Option<Expr>,
    },
    /// DELETE FROM ... WHERE.
    Delete {
        /// Target table.
        table: String,
        /// Optional filter.
        filter: Option<Expr>,
    },
    /// CREATE TABLE.
    CreateTable {
        /// Table name.
        name: String,
        /// (name, type, nullable) triples.
        columns: Vec<(String, TypeId, bool)>,
        /// Storage engine: the paper's `VECTORWISE` (default) or classic
        /// `HEAP`.
        table_type: TableType,
    },
    /// DROP TABLE.
    DropTable {
        /// Table name.
        name: String,
        /// IF EXISTS?
        if_exists: bool,
    },
    /// EXPLAIN `<query>`.
    Explain(Box<Statement>),
    /// EXPLAIN ANALYZE `<query>` — run it, return rows plus the plan text
    /// with an `actual: N rows` footer.
    ExplainAnalyze(Box<Statement>),
    /// BEGIN \[TRANSACTION\].
    Begin,
    /// COMMIT.
    Commit,
    /// ROLLBACK / ABORT.
    Rollback,
    /// CHECKPOINT \[table\] — propagate PDT deltas to stable storage.
    Checkpoint {
        /// Specific table, or all when None.
        table: Option<String>,
    },
    /// KILL `<query id>` — cancel a running query.
    Kill {
        /// Query id from the monitoring view.
        query_id: u64,
    },
    /// SET `<knob> = <value>`.
    Set {
        /// Knob name.
        name: String,
        /// Value literal.
        value: Value,
    },
    /// SHOW `<view>` — monitoring views (sessions, queries).
    Show {
        /// Which view to render.
        what: ShowKind,
    },
}

/// Monitoring view selected by `SHOW`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShowKind {
    /// Open sessions: id, state, current query, admission grant.
    Sessions,
    /// The query registry: id, state, statement, elapsed, rows.
    Queries,
}

/// Storage engine choice in CREATE TABLE (Figure 1's two table kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TableType {
    /// Compressed column store scanned by the X100 kernel (default).
    #[default]
    Vectorwise,
    /// Classic row-store heap (OLTP-style access).
    Heap,
}

/// INSERT data source.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// Explicit VALUES rows.
    Values(Vec<Vec<Expr>>),
    /// INSERT INTO ... SELECT.
    Query(Box<SelectStmt>),
}

/// A SELECT statement.
///
/// A set-operation chain `A UNION B EXCEPT C` is stored on its head: `A`
/// with [`set_ops`](SelectStmt::set_ops) = `[(Union, B), (Except, C)]`,
/// applied left to right (SQL's left associativity). The
/// higher-binding INTERSECT is nested by the parser into the operand's
/// own `set_ops`. When the chain is non-empty, `order_by` / `limit` /
/// `offset` apply to the chain's result, per the standard.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    /// `WITH name AS (...)` common table expressions, in scope for the
    /// whole statement (and usable by later CTEs in the same list).
    pub with: Vec<(String, SelectStmt)>,
    /// SELECT DISTINCT?
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM clause (None = one-row dual).
    pub from: Option<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// Trailing set-operation operands, applied left to right.
    pub set_ops: Vec<(SetOpKind, SelectStmt)>,
    /// ORDER BY (expr, ascending, nulls_first).
    pub order_by: Vec<(Expr, bool, bool)>,
    /// LIMIT row count.
    pub limit: Option<u64>,
    /// OFFSET row count.
    pub offset: Option<u64>,
}

/// Set operations between SELECT bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    /// `UNION` — distinct rows of both sides.
    Union,
    /// `UNION ALL` — concatenation.
    UnionAll,
    /// `INTERSECT` — distinct common rows.
    Intersect,
    /// `EXCEPT` — distinct left rows not on the right.
    Except,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// Expression with optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// FROM-clause table reference.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table with optional alias.
    Named {
        /// Table name.
        name: String,
        /// Alias.
        alias: Option<String>,
    },
    /// Explicit join.
    Join {
        /// Left input.
        left: Box<TableRef>,
        /// Right input.
        right: Box<TableRef>,
        /// Join kind.
        kind: AstJoinKind,
        /// ON condition.
        on: Expr,
    },
    /// Derived table: `FROM (SELECT ...) alias`.
    Derived {
        /// The subquery.
        query: Box<SelectStmt>,
        /// Mandatory alias naming the derived relation.
        alias: String,
    },
    /// Comma-separated cross product (joined by WHERE predicates).
    Cross(Vec<TableRef>),
}

/// Join kinds at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstJoinKind {
    /// INNER JOIN.
    Inner,
    /// LEFT \[OUTER\] JOIN.
    Left,
}

/// Binary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// An unbound scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Possibly-qualified identifier (`t.c` → `["t","c"]`).
    Ident(Vec<String>),
    /// Literal.
    Lit(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
    /// NOT.
    Not(Box<Expr>),
    /// Function call (aggregates included; resolved by the binder).
    Func {
        /// Function name (uppercased).
        name: String,
        /// Arguments (`COUNT(*)` has a single `Wildcard`).
        args: Vec<Expr>,
    },
    /// `*` inside COUNT(*).
    Wildcard,
    /// CASE WHEN ... THEN ... [ELSE ...] END.
    Case {
        /// WHEN/THEN pairs.
        branches: Vec<(Expr, Expr)>,
        /// ELSE.
        else_expr: Option<Box<Expr>>,
    },
    /// CAST(e AS type).
    Cast {
        /// Input.
        expr: Box<Expr>,
        /// Target type.
        ty: TypeId,
    },
    /// `e IS [NOT] NULL`.
    IsNull {
        /// Input.
        expr: Box<Expr>,
        /// IS NOT NULL?
        negated: bool,
    },
    /// `e [NOT] BETWEEN lo AND hi`.
    Between {
        /// Input.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
        /// NOT BETWEEN?
        negated: bool,
    },
    /// `e [NOT] LIKE 'pattern'`.
    Like {
        /// Input.
        expr: Box<Expr>,
        /// Pattern literal.
        pattern: String,
        /// NOT LIKE?
        negated: bool,
    },
    /// `e [NOT] IN (list...)`.
    InList {
        /// Input.
        expr: Box<Expr>,
        /// List members.
        list: Vec<Expr>,
        /// NOT IN?
        negated: bool,
    },
    /// `e [NOT] IN (SELECT ...)`.
    InSubquery {
        /// Input.
        expr: Box<Expr>,
        /// Subquery.
        subquery: Box<SelectStmt>,
        /// NOT IN?
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT ...)`.
    Exists {
        /// Subquery.
        subquery: Box<SelectStmt>,
        /// NOT EXISTS?
        negated: bool,
    },
    /// `EXTRACT(field FROM e)`.
    Extract {
        /// Field name (YEAR, MONTH, ...).
        field: String,
        /// Input.
        expr: Box<Expr>,
    },
    /// Scalar subquery `(SELECT ...)` used as a value.
    Scalar(Box<SelectStmt>),
    /// `INTERVAL 'n' DAY/MONTH/YEAR` literal (only meaningful next to a
    /// date; the binder lowers `date ± interval` to date arithmetic).
    Interval {
        /// Signed magnitude.
        n: i64,
        /// Calendar unit.
        unit: IntervalUnit,
    },
}

/// Calendar unit of an INTERVAL literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalUnit {
    /// Days.
    Day,
    /// Months (end-of-month clamped arithmetic).
    Month,
    /// Years (12 months).
    Year,
}
