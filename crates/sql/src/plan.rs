//! The logical plan — the workspace's "X100 algebra".

use crate::expr::SqlExpr;
use vw_common::{Schema, TypeId, Value};
pub use vw_exec::op::AggFunc;

/// Join kinds at the plan level (cross-compiled to `vw_exec::op::JoinType`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Inner equi-join.
    Inner,
    /// Left outer join.
    Left,
    /// Left semi join (IN / EXISTS).
    Semi,
    /// Left anti join (NOT EXISTS).
    Anti,
    /// NULL-aware left anti join (NOT IN).
    NullAwareAnti,
}

/// Set operations at the plan level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    /// Distinct rows of all inputs (also `SELECT DISTINCT` with one input).
    Union,
    /// Concatenation, duplicates kept.
    UnionAll,
    /// Distinct rows present in both inputs.
    Intersect,
    /// Distinct left rows absent from the right input.
    Except,
}

/// What a correlated-subquery [`Apply`](LogicalPlan::Apply) computes. The
/// binder emits Apply nodes for correlated subqueries (and scalar
/// subqueries); the optimizer's decorrelation pass lowers every one to a
/// hash join before compilation — compile rejects surviving Apply nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyKind {
    /// `x IN (SELECT v ...)` with correlation: key 0 is the IN value,
    /// the rest are correlation equalities. Lowers to a semi join.
    In,
    /// `[NOT] EXISTS (SELECT ...)`: keys are correlation equalities.
    /// Lowers to a semi (or anti) join.
    Exists {
        /// NOT EXISTS?
        negated: bool,
    },
    /// Scalar subquery used as a value: subquery output column 0 is the
    /// value, keys match correlation (or a constant for the uncorrelated
    /// single-row case). Lowers to a left outer join + projection that
    /// appends the value column to the input.
    Scalar,
}

/// One bound aggregate call.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input expression (None for COUNT(*)).
    pub input: Option<SqlExpr>,
    /// Output type.
    pub out_ty: TypeId,
}

/// A per-column MinMax hint the optimizer pushed down to a scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanHint {
    /// Column index in the *base table* schema.
    pub col: usize,
    /// Lower bound (inclusive).
    pub lo: Option<Value>,
    /// Upper bound (inclusive).
    pub hi: Option<Value>,
}

/// The logical/algebraic plan tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base-table scan.
    Scan {
        /// Table name (resolved by the executor against the catalog).
        table: String,
        /// Projected base-table column indices.
        projection: Vec<usize>,
        /// Output schema (projected).
        schema: Schema,
        /// MinMax pruning hints (in base-table column indices).
        hints: Vec<ScanHint>,
    },
    /// Filter.
    Filter {
        /// Input.
        input: Box<LogicalPlan>,
        /// Predicate over the input's columns.
        predicate: SqlExpr,
    },
    /// Projection / computation.
    Project {
        /// Input.
        input: Box<LogicalPlan>,
        /// Output expressions.
        exprs: Vec<SqlExpr>,
        /// Output schema (names + types for `exprs`).
        schema: Schema,
    },
    /// Equi-join.
    Join {
        /// Probe side.
        left: Box<LogicalPlan>,
        /// Build side.
        right: Box<LogicalPlan>,
        /// Kind.
        kind: JoinKind,
        /// Key pairs (left expr over left schema, right expr over right).
        keys: Vec<(SqlExpr, SqlExpr)>,
        /// Output schema.
        schema: Schema,
    },
    /// Grouping + aggregation.
    Aggregate {
        /// Input.
        input: Box<LogicalPlan>,
        /// Group-by expressions over the input.
        group: Vec<SqlExpr>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
        /// Output schema: group columns then aggregates.
        schema: Schema,
    },
    /// Sort by output column indices.
    Sort {
        /// Input.
        input: Box<LogicalPlan>,
        /// (column, ascending, nulls_first).
        keys: Vec<(usize, bool, bool)>,
    },
    /// LIMIT/OFFSET.
    Limit {
        /// Input.
        input: Box<LogicalPlan>,
        /// Rows to skip.
        offset: u64,
        /// Max rows to return (u64::MAX = unbounded).
        limit: u64,
    },
    /// Set operation over schema-unified inputs (one input = DISTINCT).
    SetOp {
        /// Which operation.
        op: SetOpKind,
        /// Operands (binary for INTERSECT/EXCEPT; UNION may chain).
        inputs: Vec<LogicalPlan>,
        /// Output schema (left operand's names, promoted types).
        schema: Schema,
    },
    /// Correlated/scalar subquery awaiting decorrelation (binder-emitted,
    /// lowered to a join by `optimizer::decorrelate`, rejected by compile).
    Apply {
        /// Outer input.
        input: Box<LogicalPlan>,
        /// Subquery plan; for [`ApplyKind::Scalar`] column 0 is the value
        /// and the correlation columns follow, for In/Exists the value
        /// (if any) comes first and correlation columns follow.
        subquery: Box<LogicalPlan>,
        /// What this Apply computes.
        kind: ApplyKind,
        /// (outer-side expression, subquery output column) equality pairs.
        keys: Vec<(SqlExpr, usize)>,
        /// Output schema: the input's (plus the value column for Scalar).
        schema: Schema,
    },
    /// Literal rows.
    Values {
        /// Schema.
        schema: Schema,
        /// Rows.
        rows: Vec<Vec<Value>>,
    },
    /// Marker inserted by the rewriter: execute `input` with `dop`-way
    /// Volcano-style parallelism (Xchg). `partial_agg` records whether the
    /// rewriter already split an aggregation into partial/final.
    Exchange {
        /// The partitioned fragment.
        input: Box<LogicalPlan>,
        /// Degree of parallelism.
        dop: usize,
    },
}

impl LogicalPlan {
    /// The plan's output schema.
    pub fn schema(&self) -> &Schema {
        match self {
            LogicalPlan::Scan { schema, .. } => schema,
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Project { schema, .. } => schema,
            LogicalPlan::Join { schema, .. } => schema,
            LogicalPlan::Aggregate { schema, .. } => schema,
            LogicalPlan::SetOp { schema, .. } => schema,
            LogicalPlan::Apply { schema, .. } => schema,
            LogicalPlan::Sort { input, .. } => input.schema(),
            LogicalPlan::Limit { input, .. } => input.schema(),
            LogicalPlan::Values { schema, .. } => schema,
            LogicalPlan::Exchange { input, .. } => input.schema(),
        }
    }

    /// Children (for generic traversals).
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Exchange { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
            LogicalPlan::SetOp { inputs, .. } => inputs.iter().collect(),
            LogicalPlan::Apply { input, subquery, .. } => vec![input, subquery],
        }
    }

    /// Render an indented EXPLAIN tree (the rule-only plan format, no
    /// cardinality annotations). The cost-based pipeline renders through
    /// [`optimizer::explain_with_estimates`](crate::optimizer::explain_with_estimates)
    /// instead, which appends ` est~N` to every line and labels join
    /// children `probe:`/`build:` — the byte-exact contract both formats
    /// obey is pinned by `tests/architecture.rs` and documented in
    /// ARCHITECTURE.md ("The optimizer").
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let line = match self {
            LogicalPlan::Scan { table, projection, hints, .. } => {
                let h = if hints.is_empty() {
                    String::new()
                } else {
                    format!(" hints={}", hints.len())
                };
                format!("Scan {table} cols={projection:?}{h}")
            }
            LogicalPlan::Filter { .. } => "Select".to_string(),
            LogicalPlan::Project { exprs, .. } => format!("Project [{} exprs]", exprs.len()),
            LogicalPlan::Join { kind, keys, .. } => {
                format!("HashJoin {kind:?} on {} key(s)", keys.len())
            }
            LogicalPlan::Aggregate { group, aggs, .. } => {
                format!("Aggr groups={} aggs={}", group.len(), aggs.len())
            }
            LogicalPlan::SetOp { op, inputs, .. } => {
                format!("SetOp {op:?} [{} inputs]", inputs.len())
            }
            LogicalPlan::Apply { kind, keys, .. } => {
                format!("Apply {kind:?} on {} key(s)", keys.len())
            }
            LogicalPlan::Sort { keys, .. } => format!("Sort keys={keys:?}"),
            LogicalPlan::Limit { offset, limit, .. } => format!("Limit {limit} offset {offset}"),
            LogicalPlan::Values { rows, .. } => format!("Values [{} rows]", rows.len()),
            LogicalPlan::Exchange { dop, .. } => format!("Xchg dop={dop}"),
        };
        out.push_str(&pad);
        out.push_str(&line);
        out.push('\n');
        for c in self.children() {
            c.explain_into(depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::Field;

    #[test]
    fn explain_indents() {
        let scan = LogicalPlan::Scan {
            table: "t".into(),
            projection: vec![0],
            schema: Schema::new(vec![Field::not_null("a", TypeId::I64)]).unwrap(),
            hints: vec![],
        };
        let plan = LogicalPlan::Limit { input: Box::new(scan), offset: 0, limit: 5 };
        let text = plan.explain();
        assert!(text.starts_with("Limit 5"));
        assert!(text.contains("\n  Scan t"));
    }
}
