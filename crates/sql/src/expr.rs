//! Bound, typed SQL expressions (`SqlExpr`) — the expression language of
//! the logical plan / X100 algebra.
//!
//! `SqlExpr` is a superset of the kernel's `PhysExpr`: it may still contain
//! [`ExtFunc`] nodes (COALESCE and friends) and `IN`-lists, which the
//! rewriter expands into kernel constructs before cross-compilation.

pub use vw_exec::expr::{BinOp, CmpOp, Func as KernelFunc};

use vw_common::{Result, TypeId, Value, VwError};

/// SQL-level functions that have no kernel primitive: the rewriter expands
/// them into combinations of CASE, comparisons and kernel functions —
/// exactly the paper's "implemented in the rewriter phase" category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtFunc {
    /// `COALESCE(a, b, ...)` — first non-NULL argument.
    Coalesce,
    /// `NULLIF(a, b)` — NULL if a = b else a.
    NullIf,
    /// `IFNULL(a, b)` — b if a is NULL else a.
    IfNull,
    /// `GREATEST(a, b, ...)`.
    Greatest,
    /// `LEAST(a, b, ...)`.
    Least,
    /// `SIGN(x)` → -1, 0, 1.
    Sign,
}

impl ExtFunc {
    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            ExtFunc::Coalesce => "COALESCE",
            ExtFunc::NullIf => "NULLIF",
            ExtFunc::IfNull => "IFNULL",
            ExtFunc::Greatest => "GREATEST",
            ExtFunc::Least => "LEAST",
            ExtFunc::Sign => "SIGN",
        }
    }
}

/// A bound scalar expression over the input's column indices.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Input column.
    Col(usize, TypeId),
    /// Literal (type recorded for NULL literals too).
    Lit(Value, TypeId),
    /// Arithmetic, operands already promoted to `ty`.
    Arith {
        /// Operator.
        op: BinOp,
        /// Left.
        l: Box<SqlExpr>,
        /// Right.
        r: Box<SqlExpr>,
        /// Operand/result type.
        ty: TypeId,
    },
    /// Comparison (operands same type).
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left.
        l: Box<SqlExpr>,
        /// Right.
        r: Box<SqlExpr>,
    },
    /// Conjunction.
    And(Vec<SqlExpr>),
    /// Disjunction.
    Or(Vec<SqlExpr>),
    /// Negation.
    Not(Box<SqlExpr>),
    /// Cast.
    Cast {
        /// Input.
        input: Box<SqlExpr>,
        /// Target type.
        to: TypeId,
    },
    /// IS NULL.
    IsNull(Box<SqlExpr>),
    /// IS NOT NULL.
    IsNotNull(Box<SqlExpr>),
    /// CASE.
    Case {
        /// WHEN/THEN pairs.
        branches: Vec<(SqlExpr, SqlExpr)>,
        /// ELSE.
        else_expr: Option<Box<SqlExpr>>,
        /// Result type.
        ty: TypeId,
    },
    /// Kernel-native function.
    Func {
        /// Which kernel function.
        func: KernelFunc,
        /// Arguments.
        args: Vec<SqlExpr>,
        /// Result type.
        ty: TypeId,
    },
    /// Extended function awaiting rewriter expansion.
    Ext {
        /// Which extended function.
        func: ExtFunc,
        /// Arguments.
        args: Vec<SqlExpr>,
        /// Result type.
        ty: TypeId,
    },
    /// LIKE with constant pattern.
    Like {
        /// Input.
        input: Box<SqlExpr>,
        /// Pattern.
        pattern: String,
        /// NOT LIKE?
        negated: bool,
    },
    /// `x [NOT] IN (v1, v2, ...)` (rewriter-expanded).
    InList {
        /// Input.
        input: Box<SqlExpr>,
        /// Members (same type as input).
        list: Vec<SqlExpr>,
        /// NOT IN?
        negated: bool,
    },
}

impl SqlExpr {
    /// The expression's type.
    pub fn type_id(&self) -> TypeId {
        match self {
            SqlExpr::Col(_, ty) | SqlExpr::Lit(_, ty) => *ty,
            SqlExpr::Arith { ty, .. } => *ty,
            SqlExpr::Cmp { .. }
            | SqlExpr::And(_)
            | SqlExpr::Or(_)
            | SqlExpr::Not(_)
            | SqlExpr::IsNull(_)
            | SqlExpr::IsNotNull(_)
            | SqlExpr::Like { .. }
            | SqlExpr::InList { .. } => TypeId::Bool,
            SqlExpr::Cast { to, .. } => *to,
            SqlExpr::Case { ty, .. } => *ty,
            SqlExpr::Func { ty, .. } => *ty,
            SqlExpr::Ext { ty, .. } => *ty,
        }
    }

    /// Visit all children.
    pub fn children(&self) -> Vec<&SqlExpr> {
        match self {
            SqlExpr::Col(..) | SqlExpr::Lit(..) => vec![],
            SqlExpr::Arith { l, r, .. } | SqlExpr::Cmp { l, r, .. } => vec![l, r],
            SqlExpr::And(v) | SqlExpr::Or(v) => v.iter().collect(),
            SqlExpr::Not(e) | SqlExpr::Cast { input: e, .. } => vec![e],
            SqlExpr::IsNull(e) | SqlExpr::IsNotNull(e) => vec![e],
            SqlExpr::Case { branches, else_expr, .. } => {
                let mut out: Vec<&SqlExpr> = Vec::new();
                for (c, v) in branches {
                    out.push(c);
                    out.push(v);
                }
                if let Some(e) = else_expr {
                    out.push(e);
                }
                out
            }
            SqlExpr::Func { args, .. } | SqlExpr::Ext { args, .. } => args.iter().collect(),
            SqlExpr::Like { input, .. } => vec![input],
            SqlExpr::InList { input, list, .. } => {
                let mut out = vec![input.as_ref()];
                out.extend(list.iter());
                out
            }
        }
    }

    /// Collect referenced column indices into `out`.
    pub fn collect_cols(&self, out: &mut Vec<usize>) {
        if let SqlExpr::Col(i, _) = self {
            out.push(*i);
        }
        for c in self.children() {
            c.collect_cols(out);
        }
    }

    /// Rewrite column references through `map` (new index per old index);
    /// errors if a referenced column is not mapped.
    pub fn remap_cols(&self, map: &dyn Fn(usize) -> Option<usize>) -> Result<SqlExpr> {
        let remap_box = |e: &SqlExpr| -> Result<Box<SqlExpr>> { Ok(Box::new(e.remap_cols(map)?)) };
        let remap_vec = |v: &[SqlExpr]| -> Result<Vec<SqlExpr>> {
            v.iter().map(|e| e.remap_cols(map)).collect()
        };
        Ok(match self {
            SqlExpr::Col(i, ty) => {
                let ni = map(*i).ok_or_else(|| {
                    VwError::Plan(format!("column {i} not available after remap"))
                })?;
                SqlExpr::Col(ni, *ty)
            }
            SqlExpr::Lit(v, ty) => SqlExpr::Lit(v.clone(), *ty),
            SqlExpr::Arith { op, l, r, ty } => {
                SqlExpr::Arith { op: *op, l: remap_box(l)?, r: remap_box(r)?, ty: *ty }
            }
            SqlExpr::Cmp { op, l, r } => {
                SqlExpr::Cmp { op: *op, l: remap_box(l)?, r: remap_box(r)? }
            }
            SqlExpr::And(v) => SqlExpr::And(remap_vec(v)?),
            SqlExpr::Or(v) => SqlExpr::Or(remap_vec(v)?),
            SqlExpr::Not(e) => SqlExpr::Not(remap_box(e)?),
            SqlExpr::Cast { input, to } => SqlExpr::Cast { input: remap_box(input)?, to: *to },
            SqlExpr::IsNull(e) => SqlExpr::IsNull(remap_box(e)?),
            SqlExpr::IsNotNull(e) => SqlExpr::IsNotNull(remap_box(e)?),
            SqlExpr::Case { branches, else_expr, ty } => SqlExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| Ok((c.remap_cols(map)?, v.remap_cols(map)?)))
                    .collect::<Result<_>>()?,
                else_expr: match else_expr {
                    Some(e) => Some(remap_box(e)?),
                    None => None,
                },
                ty: *ty,
            },
            SqlExpr::Func { func, args, ty } => {
                SqlExpr::Func { func: *func, args: remap_vec(args)?, ty: *ty }
            }
            SqlExpr::Ext { func, args, ty } => {
                SqlExpr::Ext { func: *func, args: remap_vec(args)?, ty: *ty }
            }
            SqlExpr::Like { input, pattern, negated } => SqlExpr::Like {
                input: remap_box(input)?,
                pattern: pattern.clone(),
                negated: *negated,
            },
            SqlExpr::InList { input, list, negated } => SqlExpr::InList {
                input: remap_box(input)?,
                list: remap_vec(list)?,
                negated: *negated,
            },
        })
    }

    /// Shift all column references by `delta` (join input concatenation).
    pub fn shift_cols(&self, delta: usize) -> SqlExpr {
        self.remap_cols(&|i| Some(i + delta)).expect("shift never fails")
    }

    /// True if the expression references no columns (constant).
    pub fn is_const(&self) -> bool {
        let mut cols = Vec::new();
        self.collect_cols(&mut cols);
        cols.is_empty()
    }

    /// Flatten a conjunction into its conjuncts.
    pub fn conjuncts(self) -> Vec<SqlExpr> {
        match self {
            SqlExpr::And(v) => v.into_iter().flat_map(|e| e.conjuncts()).collect(),
            other => vec![other],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(i: usize) -> SqlExpr {
        SqlExpr::Col(i, TypeId::I64)
    }

    fn lit(v: i64) -> SqlExpr {
        SqlExpr::Lit(Value::I64(v), TypeId::I64)
    }

    #[test]
    fn collect_and_shift() {
        let e = SqlExpr::Arith {
            op: BinOp::Add,
            l: Box::new(col(2)),
            r: Box::new(SqlExpr::Cmp { op: CmpOp::Lt, l: Box::new(col(0)), r: Box::new(lit(5)) }),
            ty: TypeId::I64,
        };
        let mut cols = Vec::new();
        e.collect_cols(&mut cols);
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 2]);
        let shifted = e.shift_cols(10);
        let mut cols = Vec::new();
        shifted.collect_cols(&mut cols);
        cols.sort_unstable();
        assert_eq!(cols, vec![10, 12]);
    }

    #[test]
    fn remap_fails_on_missing() {
        let e = col(3);
        assert!(e.remap_cols(&|i| if i == 0 { Some(0) } else { None }).is_err());
    }

    #[test]
    fn conjunct_flattening() {
        let e = SqlExpr::And(vec![SqlExpr::And(vec![col(0), col(1)]), col(2)]);
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn const_detection() {
        assert!(lit(5).is_const());
        assert!(!col(0).is_const());
    }
}
