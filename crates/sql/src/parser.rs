//! Recursive-descent SQL parser with precedence climbing for expressions.
//!
//! The accepted grammar (statements, set-operation associativity,
//! subquery positions, INTERVAL literals) is catalogued in
//! ARCHITECTURE.md ("SQL surface"); constructs the parser accepts but
//! the engine cannot run are rejected later with a typed
//! `E_UNSUPPORTED` naming the construct.

use crate::ast::*;
use crate::lexer::{lex, Tok};
use vw_common::{Result, TypeId, Value, VwError};

/// The parser over a token stream.
pub struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

fn perr(msg: impl Into<String>) -> VwError {
    VwError::Parse(msg.into())
}

impl Parser {
    /// Lex and wrap `sql`.
    pub fn new(sql: &str) -> Result<Parser> {
        Ok(Parser { toks: lex(sql)?, pos: 0 })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    /// Is the current token the keyword `kw` (case-insensitive)?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(perr(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn at_sym(&self, s: &str) -> bool {
        matches!(self.peek(), Tok::Sym(x) if *x == s)
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.at_sym(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(perr(format!("expected '{s}', found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(perr(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Parse all statements until EOF.
    pub fn parse_statements(&mut self) -> Result<Vec<Statement>> {
        let mut out = Vec::new();
        loop {
            while self.eat_sym(";") {}
            if matches!(self.peek(), Tok::Eof) {
                break;
            }
            out.push(self.statement()?);
        }
        Ok(out)
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.at_kw("SELECT") || self.at_kw("WITH") || self.at_select_paren() {
            return Ok(Statement::Select(Box::new(self.select()?)));
        }
        if self.eat_kw("EXPLAIN") {
            if self.eat_kw("ANALYZE") {
                return Ok(Statement::ExplainAnalyze(Box::new(self.statement()?)));
            }
            return Ok(Statement::Explain(Box::new(self.statement()?)));
        }
        if self.eat_kw("INSERT") {
            self.expect_kw("INTO")?;
            let table = self.ident()?;
            let columns = if self.eat_sym("(") {
                let mut cols = vec![self.ident()?];
                while self.eat_sym(",") {
                    cols.push(self.ident()?);
                }
                self.expect_sym(")")?;
                Some(cols)
            } else {
                None
            };
            let source = if self.eat_kw("VALUES") {
                let mut rows = Vec::new();
                loop {
                    self.expect_sym("(")?;
                    let mut row = vec![self.expr()?];
                    while self.eat_sym(",") {
                        row.push(self.expr()?);
                    }
                    self.expect_sym(")")?;
                    rows.push(row);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                InsertSource::Values(rows)
            } else if self.at_kw("SELECT") {
                InsertSource::Query(Box::new(self.select()?))
            } else {
                return Err(perr("expected VALUES or SELECT after INSERT INTO"));
            };
            return Ok(Statement::Insert { table, columns, source });
        }
        if self.eat_kw("UPDATE") {
            let table = self.ident()?;
            self.expect_kw("SET")?;
            let mut sets = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect_sym("=")?;
                sets.push((col, self.expr()?));
                if !self.eat_sym(",") {
                    break;
                }
            }
            let filter = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
            return Ok(Statement::Update { table, sets, filter });
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let filter = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
            return Ok(Statement::Delete { table, filter });
        }
        if self.eat_kw("CREATE") {
            self.expect_kw("TABLE")?;
            let name = self.ident()?;
            self.expect_sym("(")?;
            let mut columns = Vec::new();
            loop {
                let col = self.ident()?;
                let ty_name = self.ident()?;
                let ty = TypeId::from_sql_name(&ty_name)
                    .ok_or_else(|| perr(format!("unknown type {ty_name}")))?;
                // Optional length like VARCHAR(20): parsed and ignored.
                if self.eat_sym("(") {
                    self.bump();
                    while self.eat_sym(",") {
                        self.bump();
                    }
                    self.expect_sym(")")?;
                }
                let mut nullable = true;
                if self.eat_kw("NOT") {
                    self.expect_kw("NULL")?;
                    nullable = false;
                } else {
                    self.eat_kw("NULL");
                }
                columns.push((col, ty, nullable));
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            let mut table_type = TableType::Vectorwise;
            if self.eat_kw("WITH") {
                self.expect_kw("TYPE")?;
                self.expect_sym("=")?;
                let t = self.ident()?;
                table_type = match t.to_ascii_uppercase().as_str() {
                    "VECTORWISE" => TableType::Vectorwise,
                    "HEAP" => TableType::Heap,
                    other => return Err(perr(format!("unknown table type {other}"))),
                };
            }
            return Ok(Statement::CreateTable { name, columns, table_type });
        }
        if self.eat_kw("DROP") {
            self.expect_kw("TABLE")?;
            let if_exists = if self.eat_kw("IF") {
                self.expect_kw("EXISTS")?;
                true
            } else {
                false
            };
            return Ok(Statement::DropTable { name: self.ident()?, if_exists });
        }
        if self.eat_kw("BEGIN") {
            self.eat_kw("TRANSACTION");
            return Ok(Statement::Begin);
        }
        if self.eat_kw("COMMIT") {
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ROLLBACK") || self.eat_kw("ABORT") {
            return Ok(Statement::Rollback);
        }
        if self.eat_kw("CHECKPOINT") {
            let table = match self.peek() {
                Tok::Ident(_) => Some(self.ident()?),
                _ => None,
            };
            return Ok(Statement::Checkpoint { table });
        }
        if self.eat_kw("KILL") {
            match self.bump() {
                Tok::Int(id) if id >= 0 => return Ok(Statement::Kill { query_id: id as u64 }),
                other => return Err(perr(format!("expected query id, found {other:?}"))),
            }
        }
        if self.eat_kw("SHOW") {
            let what = self.ident()?;
            return match what.to_ascii_uppercase().as_str() {
                "SESSIONS" => Ok(Statement::Show { what: ShowKind::Sessions }),
                "QUERIES" => Ok(Statement::Show { what: ShowKind::Queries }),
                other => Err(perr(format!("unknown SHOW view '{other}'"))),
            };
        }
        if self.eat_kw("SET") {
            let name = self.ident()?;
            self.expect_sym("=")?;
            let value = match self.bump() {
                Tok::Int(v) => Value::I64(v),
                Tok::Float(v) => Value::F64(v),
                Tok::Str(s) => Value::Str(s),
                Tok::Ident(s) if s.eq_ignore_ascii_case("true") => Value::Bool(true),
                Tok::Ident(s) if s.eq_ignore_ascii_case("false") => Value::Bool(false),
                Tok::Ident(s) => Value::Str(s),
                other => return Err(perr(format!("bad SET value {other:?}"))),
            };
            return Ok(Statement::Set { name, value });
        }
        Err(perr(format!("unexpected token {:?}", self.peek())))
    }

    /// Is the cursor at `( SELECT` / `( WITH` (a parenthesized query)?
    fn at_select_paren(&self) -> bool {
        self.at_sym("(")
            && matches!(self.toks.get(self.pos + 1),
                Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("SELECT")
                    || s.eq_ignore_ascii_case("WITH"))
    }

    /// Full query: `[WITH ...] body {UNION|INTERSECT|EXCEPT body}...
    /// [ORDER BY ...] [LIMIT ...]`. The chain is left-associative with
    /// INTERSECT binding tighter (nested into the operand's own chain);
    /// trailing ORDER BY / LIMIT / OFFSET apply to the chain result.
    fn select(&mut self) -> Result<SelectStmt> {
        let mut with = Vec::new();
        if self.eat_kw("WITH") {
            loop {
                let name = self.ident()?;
                self.expect_kw("AS")?;
                self.expect_sym("(")?;
                let q = self.select()?;
                self.expect_sym(")")?;
                with.push((name, q));
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let mut head = self.set_operand()?;
        loop {
            if (self.at_kw("UNION") || self.at_kw("INTERSECT") || self.at_kw("EXCEPT"))
                && (head.limit.is_some() || !head.order_by.is_empty())
            {
                // Only a parenthesized head can carry ORDER BY / LIMIT at
                // this point, and the standard scopes those to the chain.
                return Err(VwError::Unsupported(
                    "ORDER BY / LIMIT inside a set-operation operand (wrap it in a derived table)"
                        .into(),
                ));
            }
            let op = if self.eat_kw("UNION") {
                if self.eat_kw("ALL") {
                    SetOpKind::UnionAll
                } else {
                    SetOpKind::Union
                }
            } else if self.eat_kw("INTERSECT") {
                self.reject_set_all("INTERSECT")?;
                // INTERSECT binds tighter than UNION/EXCEPT but is itself
                // left-associative (and associative), so appending to the
                // running chain keeps the grouping correct.
                let rhs = self.chain_operand("INTERSECT")?;
                head.set_ops.push((SetOpKind::Intersect, rhs));
                continue;
            } else if self.eat_kw("EXCEPT") {
                self.reject_set_all("EXCEPT")?;
                SetOpKind::Except
            } else {
                break;
            };
            // A UNION/EXCEPT operand absorbs its own INTERSECT chain
            // first — `A UNION B INTERSECT C` is `A UNION (B ∩ C)`.
            let mut rhs = self.chain_operand("set operation")?;
            while self.eat_kw("INTERSECT") {
                self.reject_set_all("INTERSECT")?;
                let r2 = self.chain_operand("INTERSECT")?;
                rhs.set_ops.push((SetOpKind::Intersect, r2));
            }
            head.set_ops.push((op, rhs));
        }
        self.order_limit(&mut head)?;
        // Outer CTEs go first: a parenthesized head keeps its own WITH
        // list, and inner names shadow outer ones in the binder's stack.
        head.with.splice(0..0, with);
        Ok(head)
    }

    /// Error out on `INTERSECT ALL` / `EXCEPT ALL` (bag semantics are not
    /// implemented).
    fn reject_set_all(&mut self, op: &str) -> Result<()> {
        if self.at_kw("ALL") {
            Err(VwError::Unsupported(format!("{op} ALL")))
        } else {
            Ok(())
        }
    }

    /// A set-operation operand, rejecting operand-level ORDER BY / LIMIT
    /// (only the chain result may be ordered or limited).
    fn chain_operand(&mut self, op: &str) -> Result<SelectStmt> {
        let rhs = self.set_operand()?;
        if rhs.limit.is_some() || !rhs.order_by.is_empty() {
            return Err(VwError::Unsupported(format!(
                "ORDER BY / LIMIT inside a {op} operand (wrap it in a derived table)"
            )));
        }
        Ok(rhs)
    }

    /// One set-operation operand: a parenthesized query or a bare SELECT
    /// body (no ORDER BY / LIMIT — those belong to the chain).
    fn set_operand(&mut self) -> Result<SelectStmt> {
        if self.at_select_paren() {
            self.bump(); // (
            let q = self.select()?;
            self.expect_sym(")")?;
            return Ok(q);
        }
        self.select_core()
    }

    /// SELECT body: items, FROM, WHERE, GROUP BY, HAVING.
    fn select_core(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = if self.eat_kw("DISTINCT") {
            true
        } else {
            self.eat_kw("ALL");
            false
        };
        let mut items = Vec::new();
        loop {
            if self.eat_sym("*") {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS")
                    || matches!(self.peek(), Tok::Ident(s) if !is_clause_kw(s))
                {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        let from = if self.eat_kw("FROM") { Some(self.table_ref()?) } else { None };
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.expr()?);
            while self.eat_sym(",") {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw("HAVING") { Some(self.expr()?) } else { None };
        Ok(SelectStmt {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
            ..SelectStmt::default()
        })
    }

    /// Trailing ORDER BY / LIMIT / OFFSET, attached to `head` (which is
    /// the whole chain when set operations are present).
    fn order_limit(&mut self, head: &mut SelectStmt) -> Result<()> {
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let e = self.expr()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                let mut nulls_first = !asc; // SQL default: NULLS LAST for ASC
                if self.eat_kw("NULLS") {
                    if self.eat_kw("FIRST") {
                        nulls_first = true;
                    } else {
                        self.expect_kw("LAST")?;
                        nulls_first = false;
                    }
                }
                head.order_by.push((e, asc, nulls_first));
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        if self.eat_kw("LIMIT") {
            match self.bump() {
                Tok::Int(v) if v >= 0 => head.limit = Some(v as u64),
                other => return Err(perr(format!("bad LIMIT {other:?}"))),
            }
        }
        if self.eat_kw("OFFSET") {
            match self.bump() {
                Tok::Int(v) if v >= 0 => head.offset = Some(v as u64),
                other => return Err(perr(format!("bad OFFSET {other:?}"))),
            }
        }
        Ok(())
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut parts = vec![self.join_ref()?];
        while self.eat_sym(",") {
            parts.push(self.join_ref()?);
        }
        if parts.len() == 1 {
            Ok(parts.pop().unwrap())
        } else {
            Ok(TableRef::Cross(parts))
        }
    }

    fn join_ref(&mut self) -> Result<TableRef> {
        let mut left = self.base_table()?;
        loop {
            let kind = if self.eat_kw("INNER") {
                self.expect_kw("JOIN")?;
                AstJoinKind::Inner
            } else if self.eat_kw("LEFT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                AstJoinKind::Left
            } else if self.eat_kw("JOIN") {
                AstJoinKind::Inner
            } else {
                break;
            };
            let right = self.base_table()?;
            self.expect_kw("ON")?;
            let on = self.expr()?;
            left = TableRef::Join { left: Box::new(left), right: Box::new(right), kind, on };
        }
        Ok(left)
    }

    fn base_table(&mut self) -> Result<TableRef> {
        if self.eat_sym("(") {
            // Derived table: (SELECT ...) alias.
            let q = self.select()?;
            self.expect_sym(")")?;
            self.eat_kw("AS");
            let alias = match self.peek() {
                Tok::Ident(s) if !is_clause_kw(s) && !is_join_kw(s) => self.ident()?,
                other => {
                    return Err(perr(format!("derived table requires an alias, found {other:?}")))
                }
            };
            return Ok(TableRef::Derived { query: Box::new(q), alias });
        }
        let name = self.ident()?;
        let alias = if self.eat_kw("AS")
            || matches!(self.peek(), Tok::Ident(s) if !is_clause_kw(s) && !is_join_kw(s))
        {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef::Named { name, alias })
    }

    /// Expression entry point.
    pub fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut e = self.and_expr()?;
        while self.eat_kw("OR") {
            let r = self.and_expr()?;
            e = Expr::Binary { op: BinaryOp::Or, left: Box::new(e), right: Box::new(r) };
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut e = self.not_expr()?;
        while self.eat_kw("AND") {
            let r = self.not_expr()?;
            e = Expr::Binary { op: BinaryOp::And, left: Box::new(e), right: Box::new(r) };
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<Expr> {
        let e = self.additive()?;
        // IS [NOT] NULL / BETWEEN / LIKE / IN, with optional NOT.
        let negated = self.eat_kw("NOT");
        if self.eat_kw("IS") {
            if negated {
                return Err(perr("unexpected NOT before IS"));
            }
            let neg = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(e), negated: neg });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(e),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = match self.bump() {
                Tok::Str(s) => s,
                other => {
                    return Err(perr(format!("LIKE pattern must be a string, found {other:?}")))
                }
            };
            return Ok(Expr::Like { expr: Box::new(e), pattern, negated });
        }
        if self.eat_kw("IN") {
            self.expect_sym("(")?;
            if self.at_kw("SELECT") || self.at_kw("WITH") {
                let sub = self.select()?;
                self.expect_sym(")")?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(e),
                    subquery: Box::new(sub),
                    negated,
                });
            }
            let mut list = vec![self.expr()?];
            while self.eat_sym(",") {
                list.push(self.expr()?);
            }
            self.expect_sym(")")?;
            return Ok(Expr::InList { expr: Box::new(e), list, negated });
        }
        if negated {
            return Err(perr("dangling NOT"));
        }
        // Comparisons.
        for (sym, op) in [
            ("=", BinaryOp::Eq),
            ("<>", BinaryOp::Ne),
            ("<=", BinaryOp::Le),
            (">=", BinaryOp::Ge),
            ("<", BinaryOp::Lt),
            (">", BinaryOp::Gt),
        ] {
            if self.eat_sym(sym) {
                let r = self.additive()?;
                return Ok(Expr::Binary { op, left: Box::new(e), right: Box::new(r) });
            }
        }
        Ok(e)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut e = self.multiplicative()?;
        loop {
            let op = if self.eat_sym("+") {
                BinaryOp::Add
            } else if self.eat_sym("-") {
                BinaryOp::Sub
            } else {
                break;
            };
            let r = self.multiplicative()?;
            e = Expr::Binary { op, left: Box::new(e), right: Box::new(r) };
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut e = self.unary()?;
        loop {
            let op = if self.eat_sym("*") {
                BinaryOp::Mul
            } else if self.eat_sym("/") {
                BinaryOp::Div
            } else if self.eat_sym("%") {
                BinaryOp::Rem
            } else {
                break;
            };
            let r = self.unary()?;
            e = Expr::Binary { op, left: Box::new(e), right: Box::new(r) };
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_sym("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.eat_sym("+") {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Lit(Value::I64(v))),
            Tok::Float(v) => Ok(Expr::Lit(Value::F64(v))),
            Tok::Str(s) => Ok(Expr::Lit(Value::Str(s))),
            Tok::Sym("(") => {
                if self.at_kw("SELECT") || self.at_kw("WITH") {
                    // Scalar subquery used as a value.
                    let sub = self.select()?;
                    self.expect_sym(")")?;
                    return Ok(Expr::Scalar(Box::new(sub)));
                }
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Tok::Sym("*") => Ok(Expr::Wildcard),
            Tok::Ident(name) if !is_clause_kw(&name) => self.ident_expr(name),
            Tok::Ident(name) => Err(perr(format!("unexpected keyword {name} in expression"))),
            other => Err(perr(format!("unexpected token {other:?} in expression"))),
        }
    }

    fn ident_expr(&mut self, name: String) -> Result<Expr> {
        let upper = name.to_ascii_uppercase();
        match upper.as_str() {
            "TRUE" => return Ok(Expr::Lit(Value::Bool(true))),
            "FALSE" => return Ok(Expr::Lit(Value::Bool(false))),
            "NULL" => return Ok(Expr::Lit(Value::Null)),
            "DATE" => {
                // DATE 'YYYY-MM-DD' literal.
                if let Tok::Str(s) = self.peek().clone() {
                    self.bump();
                    let d = vw_common::Date::parse(&s)?;
                    return Ok(Expr::Lit(Value::Date(d)));
                }
            }
            "CASE" => {
                let mut branches = Vec::new();
                let mut operand: Option<Expr> = None;
                if !self.at_kw("WHEN") {
                    operand = Some(self.expr()?);
                }
                while self.eat_kw("WHEN") {
                    let mut cond = self.expr()?;
                    if let Some(op) = &operand {
                        cond = Expr::Binary {
                            op: BinaryOp::Eq,
                            left: Box::new(op.clone()),
                            right: Box::new(cond),
                        };
                    }
                    self.expect_kw("THEN")?;
                    let val = self.expr()?;
                    branches.push((cond, val));
                }
                let else_expr =
                    if self.eat_kw("ELSE") { Some(Box::new(self.expr()?)) } else { None };
                self.expect_kw("END")?;
                return Ok(Expr::Case { branches, else_expr });
            }
            "CAST" => {
                self.expect_sym("(")?;
                let e = self.expr()?;
                self.expect_kw("AS")?;
                let ty_name = self.ident()?;
                let ty = TypeId::from_sql_name(&ty_name)
                    .ok_or_else(|| perr(format!("unknown type {ty_name}")))?;
                if self.eat_sym("(") {
                    self.bump();
                    self.expect_sym(")")?;
                }
                self.expect_sym(")")?;
                return Ok(Expr::Cast { expr: Box::new(e), ty });
            }
            "EXTRACT" => {
                self.expect_sym("(")?;
                let field = self.ident()?;
                self.expect_kw("FROM")?;
                let e = self.expr()?;
                self.expect_sym(")")?;
                return Ok(Expr::Extract { field, expr: Box::new(e) });
            }
            "EXISTS" => {
                self.expect_sym("(")?;
                let sub = self.select()?;
                self.expect_sym(")")?;
                return Ok(Expr::Exists { subquery: Box::new(sub), negated: false });
            }
            "INTERVAL" => {
                // INTERVAL 'n' DAY/MONTH/YEAR (TPC-H's date offsets).
                if let Tok::Str(s) = self.peek().clone() {
                    self.bump();
                    let n: i64 = s.trim().parse().map_err(|_| {
                        perr(format!("INTERVAL magnitude must be an integer, got '{s}'"))
                    })?;
                    let unit_name = self.ident()?;
                    let unit = match unit_name.to_ascii_uppercase().as_str() {
                        "DAY" | "DAYS" => IntervalUnit::Day,
                        "MONTH" | "MONTHS" => IntervalUnit::Month,
                        "YEAR" | "YEARS" => IntervalUnit::Year,
                        other => {
                            return Err(VwError::Unsupported(format!(
                                "INTERVAL unit {other} (DAY, MONTH and YEAR are supported)"
                            )))
                        }
                    };
                    return Ok(Expr::Interval { n, unit });
                }
            }
            _ => {}
        }
        if self.eat_sym("(") {
            // Function call.
            if self.at_kw("DISTINCT") {
                return Err(VwError::Unsupported(format!(
                    "DISTINCT aggregates ({upper}(DISTINCT ...))"
                )));
            }
            let mut args = Vec::new();
            if !self.at_sym(")") {
                loop {
                    if self.eat_sym("*") {
                        args.push(Expr::Wildcard);
                    } else {
                        args.push(self.expr()?);
                    }
                    if !self.eat_sym(",") {
                        break;
                    }
                }
            }
            self.expect_sym(")")?;
            if self.at_kw("OVER") {
                return Err(VwError::Unsupported(format!("window functions ({upper}(...) OVER)")));
            }
            return Ok(Expr::Func { name: upper, args });
        }
        if self.eat_sym(".") {
            let col = self.ident()?;
            return Ok(Expr::Ident(vec![name, col]));
        }
        Ok(Expr::Ident(vec![name]))
    }
}

fn is_clause_kw(s: &str) -> bool {
    matches!(
        s.to_ascii_uppercase().as_str(),
        "FROM"
            | "WHERE"
            | "GROUP"
            | "HAVING"
            | "ORDER"
            | "LIMIT"
            | "OFFSET"
            | "UNION"
            | "INTERSECT"
            | "EXCEPT"
            | "ON"
            | "AND"
            | "OR"
            | "NOT"
            | "AS"
            | "ASC"
            | "DESC"
            | "NULLS"
            | "SET"
            | "VALUES"
            | "WITH"
            | "BETWEEN"
            | "LIKE"
            | "IN"
            | "IS"
            | "WHEN"
            | "THEN"
            | "ELSE"
            | "END"
    )
}

fn is_join_kw(s: &str) -> bool {
    matches!(
        s.to_ascii_uppercase().as_str(),
        "JOIN" | "INNER" | "LEFT" | "RIGHT" | "OUTER" | "CROSS"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn select_basics() {
        let stmts =
            parse("SELECT a, b + 1 AS c FROM t WHERE a > 5 ORDER BY c DESC LIMIT 10").unwrap();
        assert_eq!(stmts.len(), 1);
        let Statement::Select(s) = &stmts[0] else { panic!() };
        assert_eq!(s.items.len(), 2);
        assert!(s.where_clause.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(!s.order_by[0].1, "DESC");
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn precedence() {
        let stmts = parse("SELECT 1 + 2 * 3").unwrap();
        let Statement::Select(s) = &stmts[0] else { panic!() };
        let SelectItem::Expr { expr, .. } = &s.items[0] else { panic!() };
        // Must parse as 1 + (2*3).
        let Expr::Binary { op: BinaryOp::Add, right, .. } = expr else { panic!("got {expr:?}") };
        assert!(matches!(**right, Expr::Binary { op: BinaryOp::Mul, .. }));
    }

    #[test]
    fn joins_and_aliases() {
        let stmts =
            parse("SELECT t.a FROM t JOIN s ON t.id = s.id LEFT JOIN u ON s.k = u.k").unwrap();
        let Statement::Select(sel) = &stmts[0] else { panic!() };
        let Some(TableRef::Join { kind, left, .. }) = &sel.from else { panic!() };
        assert_eq!(*kind, AstJoinKind::Left);
        assert!(matches!(**left, TableRef::Join { kind: AstJoinKind::Inner, .. }));
    }

    #[test]
    fn group_by_having() {
        let stmts = parse("SELECT g, SUM(v) FROM t GROUP BY g HAVING SUM(v) > 100").unwrap();
        let Statement::Select(s) = &stmts[0] else { panic!() };
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
    }

    #[test]
    fn predicates() {
        let stmts = parse(
            "SELECT * FROM t WHERE a BETWEEN 1 AND 2 AND b LIKE 'x%' AND c IS NOT NULL \
             AND d IN (1,2,3) AND e NOT IN (SELECT k FROM s)",
        )
        .unwrap();
        let Statement::Select(s) = &stmts[0] else { panic!() };
        let w = s.where_clause.as_ref().unwrap();
        let dbg = format!("{w:?}");
        assert!(dbg.contains("Between"));
        assert!(dbg.contains("Like"));
        assert!(dbg.contains("IsNull"));
        assert!(dbg.contains("InList"));
        assert!(dbg.contains("InSubquery"));
        assert!(dbg.contains("negated: true"));
    }

    #[test]
    fn case_and_cast() {
        let stmts =
            parse("SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END, CAST(a AS DOUBLE) FROM t")
                .unwrap();
        let Statement::Select(s) = &stmts[0] else { panic!() };
        assert_eq!(s.items.len(), 2);
    }

    #[test]
    fn simple_case_with_operand() {
        let stmts = parse("SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t").unwrap();
        let Statement::Select(s) = &stmts[0] else { panic!() };
        let SelectItem::Expr { expr: Expr::Case { branches, .. }, .. } = &s.items[0] else {
            panic!()
        };
        assert_eq!(branches.len(), 2);
        assert!(matches!(branches[0].0, Expr::Binary { op: BinaryOp::Eq, .. }));
    }

    #[test]
    fn date_literal_and_extract() {
        let stmts =
            parse("SELECT EXTRACT(YEAR FROM d) FROM t WHERE d >= DATE '1994-01-01'").unwrap();
        let Statement::Select(s) = &stmts[0] else { panic!() };
        assert!(format!("{:?}", s.where_clause).contains("Date"));
    }

    #[test]
    fn dml_statements() {
        let stmts = parse(
            "INSERT INTO t (a,b) VALUES (1,'x'), (2,'y'); \
             UPDATE t SET a = a + 1 WHERE b = 'x'; \
             DELETE FROM t WHERE a = 2;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(
            matches!(&stmts[0], Statement::Insert { source: InsertSource::Values(rows), .. } if rows.len() == 2)
        );
        assert!(matches!(&stmts[1], Statement::Update { sets, .. } if sets.len() == 1));
        assert!(matches!(&stmts[2], Statement::Delete { .. }));
    }

    #[test]
    fn ddl_and_admin() {
        let stmts = parse(
            "CREATE TABLE t (id BIGINT NOT NULL, name VARCHAR(20), d DATE) WITH TYPE = HEAP; \
             DROP TABLE IF EXISTS t; BEGIN; COMMIT; ROLLBACK; CHECKPOINT t; KILL 42; \
             SET vector_size = 2048",
        )
        .unwrap();
        assert_eq!(stmts.len(), 8);
        let Statement::CreateTable { columns, table_type, .. } = &stmts[0] else { panic!() };
        assert_eq!(columns.len(), 3);
        assert!(!columns[0].2, "id NOT NULL");
        assert!(columns[1].2);
        assert_eq!(*table_type, TableType::Heap);
        assert!(matches!(stmts[1], Statement::DropTable { if_exists: true, .. }));
        assert!(matches!(stmts[5], Statement::Checkpoint { .. }));
        assert!(matches!(stmts[6], Statement::Kill { query_id: 42 }));
        assert!(matches!(stmts[7], Statement::Set { .. }));
    }

    #[test]
    fn explain_wraps() {
        let stmts = parse("EXPLAIN SELECT 1").unwrap();
        assert!(
            matches!(&stmts[0], Statement::Explain(inner) if matches!(**inner, Statement::Select(_)))
        );
    }

    #[test]
    fn errors_are_parse_errors() {
        for bad in ["SELECT FROM", "SELECT 1 FROM", "CREATE TABLE t", "INSERT INTO", "UPDATE t"] {
            assert!(matches!(parse(bad), Err(VwError::Parse(_))), "{bad} should fail");
        }
    }

    #[test]
    fn count_star_and_funcs() {
        let stmts = parse("SELECT COUNT(*), UPPER(name), SUBSTR(name, 1, 3) FROM t").unwrap();
        let Statement::Select(s) = &stmts[0] else { panic!() };
        let SelectItem::Expr { expr: Expr::Func { name, args }, .. } = &s.items[0] else {
            panic!()
        };
        assert_eq!(name, "COUNT");
        assert!(matches!(args[0], Expr::Wildcard));
    }
}
