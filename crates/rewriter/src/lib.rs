//! # vw-rewriter — the Vectorwise rewriter
//!
//! Figure 1's "Vectorwise Rewriter": a rule-based rewriting stage between
//! the optimizer and the execution kernel. The original used the Tom
//! pattern-matching tool; [`engine`] is the native equivalent — a
//! fixpoint driver over expression rules ("mini-Tom").
//!
//! The paper's three rewriter workloads are all here:
//!
//! * **Many functions** ([`rules`]) — SQL functions without kernel
//!   primitives are "implemented in the rewriter phase, by simplifying them
//!   or expressing as combinations of other functions": COALESCE, NULLIF,
//!   IFNULL, GREATEST, LEAST, SIGN expand into CASE/comparison trees;
//!   IN-lists expand into OR chains; double negation and constant CASE
//!   branches simplify away.
//! * **NULL handling** ([`rules::NullabilityRule`]) — the engine-wide
//!   two-column NULL representation lives in the kernel (`vw-exec`), but
//!   the rewriter uses *schema nullability* to erase NULL handling where it
//!   cannot apply: `IS NULL` on a NOT NULL column folds to FALSE, sparing
//!   the kernel the indicator work entirely.
//! * **Multi-core parallelism** ([`parallel`]) — "The Vectorwise rewriter
//!   was used to implement a Volcano-style query parallelizer": eligible
//!   plan fragments are split into DOP partitions under an Xchg operator,
//!   with aggregations decomposed into partial/final pairs (AVG becomes
//!   SUM+COUNT, re-divided in a post-projection).

pub mod engine;
pub mod parallel;
pub mod rules;

use vw_sql::plan::LogicalPlan;

/// Rewriter configuration.
#[derive(Debug, Clone)]
pub struct RewriterConfig {
    /// Target degree of parallelism (1 = no parallelization).
    pub dop: usize,
    /// Minimum estimated input rows before parallelization pays off.
    pub parallel_threshold_rows: f64,
}

impl Default for RewriterConfig {
    fn default() -> Self {
        RewriterConfig { dop: 1, parallel_threshold_rows: 10_000.0 }
    }
}

/// Run the full rewrite pipeline on an optimized logical plan.
pub fn rewrite_plan(plan: LogicalPlan, config: &RewriterConfig) -> LogicalPlan {
    let plan = rewrite_exprs_in_plan(plan);
    if config.dop > 1 {
        parallel::parallelize(plan, config)
    } else {
        plan
    }
}

/// Apply the expression rule set to every expression in the plan.
pub fn rewrite_exprs_in_plan(plan: LogicalPlan) -> LogicalPlan {
    let rules = rules::default_rules();
    map_plan_exprs(plan, &|e, nullable_inputs| engine::rewrite_fixpoint(e, &rules, nullable_inputs))
}

/// Map every expression in a plan through `f`, which also receives the
/// per-column nullability of the expression's input schema.
fn map_plan_exprs(
    plan: LogicalPlan,
    f: &dyn Fn(vw_sql::SqlExpr, &[bool]) -> vw_sql::SqlExpr,
) -> LogicalPlan {
    use LogicalPlan as P;
    fn nullability(p: &LogicalPlan) -> Vec<bool> {
        p.schema().fields.iter().map(|fl| fl.nullable).collect()
    }
    match plan {
        P::Filter { input, predicate } => {
            let input = map_plan_exprs(*input, f);
            let nulls = nullability(&input);
            P::Filter { predicate: f(predicate, &nulls), input: Box::new(input) }
        }
        P::Project { input, exprs, schema } => {
            let input = map_plan_exprs(*input, f);
            let nulls = nullability(&input);
            P::Project {
                exprs: exprs.into_iter().map(|e| f(e, &nulls)).collect(),
                input: Box::new(input),
                schema,
            }
        }
        P::Join { left, right, kind, keys, schema } => {
            let left = map_plan_exprs(*left, f);
            let right = map_plan_exprs(*right, f);
            let ln = nullability(&left);
            let rn = nullability(&right);
            P::Join {
                keys: keys.into_iter().map(|(l, r)| (f(l, &ln), f(r, &rn))).collect(),
                left: Box::new(left),
                right: Box::new(right),
                kind,
                schema,
            }
        }
        P::Aggregate { input, group, aggs, schema } => {
            let input = map_plan_exprs(*input, f);
            let nulls = nullability(&input);
            P::Aggregate {
                group: group.into_iter().map(|e| f(e, &nulls)).collect(),
                aggs: aggs
                    .into_iter()
                    .map(|a| vw_sql::plan::AggCall {
                        func: a.func,
                        input: a.input.map(|e| f(e, &nulls)),
                        out_ty: a.out_ty,
                    })
                    .collect(),
                input: Box::new(input),
                schema,
            }
        }
        P::Sort { input, keys } => P::Sort { input: Box::new(map_plan_exprs(*input, f)), keys },
        P::Limit { input, offset, limit } => {
            P::Limit { input: Box::new(map_plan_exprs(*input, f)), offset, limit }
        }
        P::Exchange { input, dop } => {
            P::Exchange { input: Box::new(map_plan_exprs(*input, f)), dop }
        }
        P::SetOp { op, inputs, schema } => P::SetOp {
            op,
            inputs: inputs.into_iter().map(|i| map_plan_exprs(i, f)).collect(),
            schema,
        },
        P::Apply { input, subquery, kind, keys, schema } => {
            let input = map_plan_exprs(*input, f);
            let subquery = map_plan_exprs(*subquery, f);
            let nulls = nullability(&input);
            P::Apply {
                keys: keys.into_iter().map(|(e, i)| (f(e, &nulls), i)).collect(),
                input: Box::new(input),
                subquery: Box::new(subquery),
                kind,
                schema,
            }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::{Field, Schema, TypeId, Value};
    use vw_sql::expr::ExtFunc;
    use vw_sql::SqlExpr;

    fn scan() -> LogicalPlan {
        LogicalPlan::Scan {
            table: "t".into(),
            projection: vec![0, 1],
            schema: Schema::new(vec![
                Field::not_null("id", TypeId::I64),
                Field::nullable("v", TypeId::I64),
            ])
            .unwrap(),
            hints: vec![],
        }
    }

    #[test]
    fn plan_expressions_are_expanded() {
        let plan = LogicalPlan::Project {
            input: Box::new(scan()),
            exprs: vec![SqlExpr::Ext {
                func: ExtFunc::Coalesce,
                args: vec![SqlExpr::Col(1, TypeId::I64), SqlExpr::Lit(Value::I64(0), TypeId::I64)],
                ty: TypeId::I64,
            }],
            schema: Schema::unchecked(vec![Field::nullable("c", TypeId::I64)]),
        };
        let rewritten = rewrite_plan(plan, &RewriterConfig::default());
        let LogicalPlan::Project { exprs, .. } = &rewritten else { panic!() };
        assert!(
            matches!(exprs[0], SqlExpr::Case { .. }),
            "COALESCE must expand to CASE, got {:?}",
            exprs[0]
        );
    }

    #[test]
    fn is_null_on_not_null_column_folds() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: SqlExpr::IsNotNull(Box::new(SqlExpr::Col(0, TypeId::I64))),
        };
        let rewritten = rewrite_plan(plan, &RewriterConfig::default());
        let LogicalPlan::Filter { predicate, .. } = &rewritten else { panic!() };
        assert_eq!(
            *predicate,
            SqlExpr::Lit(Value::Bool(true), TypeId::Bool),
            "IS NOT NULL on a NOT NULL column is always true"
        );
    }
}
