//! Volcano-style parallelization — "add turbo".
//!
//! The rewriter decides where to insert exchange (Xchg) operators. A plan
//! fragment is *partitionable* when it is a pipeline of
//! Scan → Filter* → Project* — optionally flowing through the **probe
//! side of hash joins** (the build side is compiled whole into every
//! worker, so partitioning the probe input partitions the join output
//! disjointly for every join type, NULL-aware anti included).
//!
//! The plan-time `dop` only sizes the worker pool. *Which rows a worker
//! scans* is no longer decided here: the compiler's pipeline factory gives
//! every worker clone of the fragment a shared morsel dispenser
//! (`vw-exec::morsel::MorselSource`), and workers claim
//! `morsel_rows`-sized slices at run time until the image is dry. A
//! skewed fragment therefore rebalances itself — the rewriter does not
//! need to predict skew, only whether the fragment is big enough for
//! parallelism to pay at all (the cost gate below).
//!
//! Rewrite shapes:
//!
//! * **Parallel aggregation** — `Aggr(frag)` →
//!   `Project(finalize) ∘ AggrFinal ∘ Xchg ∘ AggrPartial(frag)`, with AVG
//!   decomposed into SUM + COUNT and re-divided in the finalizing
//!   projection, COUNT re-summed, MIN/MAX re-min/maxed. Partial-build
//!   workers merge shard-wise through the final aggregation.
//! * **Parallel join** — a partitionable fragment ending in a `Join`
//!   becomes `Xchg(frag)` when its consumer is order-insensitive (the
//!   plan root, an aggregation, or anything under a Sort — which
//!   materializes anyway; a bare `Limit` pins order and blocks it).
//!
//! Whether parallelism pays off is a cost call: fragments below
//! `parallel_threshold_rows` estimated input rows are left serial (the
//! "getting the best out of modern multi-core CPUs is not simple" caveat).
//! Below the plan level, the hash operators additionally radix-partition
//! their *builds* across threads (`vw-exec::partition`) — that decision is
//! taken inside the operator, gated by `EngineConfig::partition_min_rows`.

use crate::RewriterConfig;
use vw_common::{Field, Schema, TypeId};
use vw_sql::plan::{AggCall, AggFunc, LogicalPlan};
use vw_sql::SqlExpr;

/// Insert Xchg markers where profitable. The plan root is
/// order-insensitive (SQL result order without ORDER BY is unspecified;
/// an ORDER BY compiles to a Sort, which re-materializes).
pub fn parallelize(plan: LogicalPlan, config: &RewriterConfig) -> LogicalPlan {
    rewrite(plan, config, true)
}

/// `order_ok`: may this node's output arrive in nondeterministic order?
/// `Limit` pins its input order (the first k rows must stay the first k
/// rows run-to-run); Sort and Aggregate reset the flag for their inputs.
fn rewrite(plan: LogicalPlan, config: &RewriterConfig, order_ok: bool) -> LogicalPlan {
    match plan {
        LogicalPlan::Aggregate { input, group, aggs, schema } => {
            if is_partitionable(&input) && fragment_rows(&input) >= config.parallel_threshold_rows {
                return build_parallel_aggregate(*input, group, aggs, schema, config.dop);
            }
            LogicalPlan::Aggregate {
                input: Box::new(rewrite(*input, config, true)),
                group,
                aggs,
                schema,
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            LogicalPlan::Filter { input: Box::new(rewrite(*input, config, order_ok)), predicate }
        }
        LogicalPlan::Project { input, exprs, schema } => LogicalPlan::Project {
            input: Box::new(rewrite(*input, config, order_ok)),
            exprs,
            schema,
        },
        LogicalPlan::Join { left, right, kind, keys, schema } => {
            let join = LogicalPlan::Join { left, right, kind, keys, schema };
            // Probe-side-partitionable join under an order-insensitive
            // consumer: run the whole fragment per partition (each worker
            // probes its slice against a complete build side).
            if order_ok
                && is_partitionable(&join)
                && fragment_rows(&join) >= config.parallel_threshold_rows
            {
                return LogicalPlan::Exchange { input: Box::new(join), dop: config.dop };
            }
            let LogicalPlan::Join { left, right, kind, keys, schema } = join else {
                unreachable!()
            };
            LogicalPlan::Join {
                left: Box::new(rewrite(*left, config, true)),
                right: Box::new(rewrite(*right, config, true)),
                kind,
                keys,
                schema,
            }
        }
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(rewrite(*input, config, true)), keys }
        }
        LogicalPlan::Limit { input, offset, limit } => {
            LogicalPlan::Limit { input: Box::new(rewrite(*input, config, false)), offset, limit }
        }
        LogicalPlan::SetOp { op, inputs, schema } => LogicalPlan::SetOp {
            op,
            // Deduplicating modes emit rows in first-occurrence (input)
            // order, so the consumer's order sensitivity flows through.
            inputs: inputs.into_iter().map(|i| rewrite(i, config, order_ok)).collect(),
            schema,
        },
        other => other,
    }
}

/// Scan → Filter* → Project* pipelines are partitionable, flowing through
/// the probe (left) side of any hash join — the build side is compiled
/// whole into every worker, so probe partitions produce disjoint slices of
/// the join output for every join type.
fn is_partitionable(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Scan { .. } => true,
        LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => {
            is_partitionable(input)
        }
        LogicalPlan::Join { left, .. } => is_partitionable(left),
        _ => false,
    }
}

/// Crude fragment cardinality for the profitability check (the real
/// estimate came from the optimizer; at this stage the scan row count is
/// not in the plan, so we use a structural proxy: unknown scans count as
/// large). The engine substitutes precise numbers via the optimizer's
/// estimator when available. Joins inherit their probe side's estimate.
fn fragment_rows(plan: &LogicalPlan) -> f64 {
    match plan {
        LogicalPlan::Scan { .. } => f64::INFINITY,
        LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => {
            fragment_rows(input)
        }
        LogicalPlan::Join { left, .. } => fragment_rows(left),
        _ => 0.0,
    }
}

fn build_parallel_aggregate(
    input: LogicalPlan,
    group: Vec<SqlExpr>,
    aggs: Vec<AggCall>,
    final_schema: Schema,
    dop: usize,
) -> LogicalPlan {
    // Partial aggregation: same groups; AVG splits into SUM + COUNT.
    let mut partial_aggs: Vec<AggCall> = Vec::new();
    // For each original agg: how to finalize (list of partial agg indices).
    enum Finalize {
        /// final agg at index i, passthrough.
        Direct(usize),
        /// AVG = sum(partial sums at i) / sum(partial counts at j).
        AvgOf(usize, usize),
    }
    let mut finalize: Vec<Finalize> = Vec::new();
    for a in &aggs {
        match a.func {
            AggFunc::Avg => {
                let sum_idx = partial_aggs.len();
                let sum_input = a.input.clone().map(|e| {
                    if e.type_id() == TypeId::F64 {
                        e
                    } else {
                        SqlExpr::Cast { input: Box::new(e), to: TypeId::F64 }
                    }
                });
                partial_aggs.push(AggCall {
                    func: AggFunc::Sum,
                    input: sum_input,
                    out_ty: TypeId::F64,
                });
                let cnt_idx = partial_aggs.len();
                partial_aggs.push(AggCall {
                    func: AggFunc::Count,
                    input: a.input.clone(),
                    out_ty: TypeId::I64,
                });
                finalize.push(Finalize::AvgOf(sum_idx, cnt_idx));
            }
            _ => {
                finalize.push(Finalize::Direct(partial_aggs.len()));
                partial_aggs.push(a.clone());
            }
        }
    }

    // Partial output schema: group cols + partial aggs.
    let mut partial_fields: Vec<Field> = Vec::new();
    for (i, g) in group.iter().enumerate() {
        partial_fields.push(Field { name: format!("__g{i}"), ty: g.type_id(), nullable: true });
    }
    for (i, a) in partial_aggs.iter().enumerate() {
        partial_fields.push(Field { name: format!("__p{i}"), ty: a.out_ty, nullable: true });
    }
    let partial_schema = Schema::unchecked(partial_fields);

    let partial = LogicalPlan::Aggregate {
        input: Box::new(input),
        group: group.clone(),
        aggs: partial_aggs.clone(),
        schema: partial_schema.clone(),
    };
    let exchange = LogicalPlan::Exchange { input: Box::new(partial), dop };

    // Final aggregation: group on the partial group columns; merge partial
    // aggregate states.
    let final_group: Vec<SqlExpr> =
        group.iter().enumerate().map(|(i, g)| SqlExpr::Col(i, g.type_id())).collect();
    let g = group.len();
    let final_aggs: Vec<AggCall> = partial_aggs
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let input_col = SqlExpr::Col(g + i, a.out_ty);
            let merge_func = match a.func {
                AggFunc::CountStar | AggFunc::Count => AggFunc::Sum,
                AggFunc::Sum => AggFunc::Sum,
                AggFunc::Min => AggFunc::Min,
                AggFunc::Max => AggFunc::Max,
                AggFunc::Avg => unreachable!("AVG was decomposed"),
            };
            AggCall { func: merge_func, input: Some(input_col), out_ty: a.out_ty }
        })
        .collect();
    let mut merged_fields: Vec<Field> = Vec::new();
    for (i, gexpr) in group.iter().enumerate() {
        merged_fields.push(Field { name: format!("__g{i}"), ty: gexpr.type_id(), nullable: true });
    }
    for (i, a) in final_aggs.iter().enumerate() {
        merged_fields.push(Field { name: format!("__m{i}"), ty: a.out_ty, nullable: true });
    }
    let merged_schema = Schema::unchecked(merged_fields);
    let final_agg = LogicalPlan::Aggregate {
        input: Box::new(exchange),
        group: final_group,
        aggs: final_aggs,
        schema: merged_schema,
    };

    // Finalizing projection restores the original output layout.
    let mut exprs: Vec<SqlExpr> = Vec::with_capacity(final_schema.len());
    for (i, gexpr) in group.iter().enumerate() {
        exprs.push(SqlExpr::Col(i, gexpr.type_id()));
    }
    for (a, fin) in aggs.iter().zip(&finalize) {
        match fin {
            Finalize::Direct(pi) => exprs.push(SqlExpr::Col(g + pi, a.out_ty)),
            Finalize::AvgOf(si, ci) => {
                // sum / count, NULL-safe: count 0 → NULL via CASE.
                let sum = SqlExpr::Col(g + si, TypeId::F64);
                let cnt = SqlExpr::Col(g + ci, TypeId::I64);
                let cnt_f = SqlExpr::Cast { input: Box::new(cnt.clone()), to: TypeId::F64 };
                exprs.push(SqlExpr::Case {
                    branches: vec![(
                        SqlExpr::Cmp {
                            op: vw_sql::expr::CmpOp::Gt,
                            l: Box::new(cnt),
                            r: Box::new(SqlExpr::Lit(vw_common::Value::I64(0), TypeId::I64)),
                        },
                        SqlExpr::Arith {
                            op: vw_sql::expr::BinOp::Div,
                            l: Box::new(sum),
                            r: Box::new(cnt_f),
                            ty: TypeId::F64,
                        },
                    )],
                    else_expr: Some(Box::new(SqlExpr::Lit(vw_common::Value::Null, TypeId::F64))),
                    ty: TypeId::F64,
                });
            }
        }
    }
    LogicalPlan::Project { input: Box::new(final_agg), exprs, schema: final_schema }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::Value;

    fn scan() -> LogicalPlan {
        LogicalPlan::Scan {
            table: "t".into(),
            projection: vec![0, 1],
            schema: Schema::new(vec![
                Field::nullable("k", TypeId::I32),
                Field::nullable("v", TypeId::I64),
            ])
            .unwrap(),
            hints: vec![],
        }
    }

    fn agg_plan() -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(scan()),
            group: vec![SqlExpr::Col(0, TypeId::I32)],
            aggs: vec![
                AggCall {
                    func: AggFunc::Sum,
                    input: Some(SqlExpr::Col(1, TypeId::I64)),
                    out_ty: TypeId::I64,
                },
                AggCall {
                    func: AggFunc::Avg,
                    input: Some(SqlExpr::Col(1, TypeId::I64)),
                    out_ty: TypeId::F64,
                },
                AggCall { func: AggFunc::CountStar, input: None, out_ty: TypeId::I64 },
            ],
            schema: Schema::unchecked(vec![
                Field::nullable("k", TypeId::I32),
                Field::nullable("sum", TypeId::I64),
                Field::nullable("avg", TypeId::F64),
                Field::not_null("cnt", TypeId::I64),
            ]),
        }
    }

    #[test]
    fn aggregate_parallelized_with_partial_final() {
        let cfg = RewriterConfig { dop: 4, parallel_threshold_rows: 0.0 };
        let out = parallelize(agg_plan(), &cfg);
        let text = out.explain();
        assert!(text.contains("Xchg dop=4"), "{text}");
        // Project(finalize) over Aggr(final) over Xchg over Aggr(partial).
        let mut lines = text.lines();
        assert!(lines.next().unwrap().starts_with("Project"));
        assert!(text.matches("Aggr").count() == 2, "{text}");
        // Schema preserved.
        assert_eq!(out.schema(), agg_plan().schema());
    }

    #[test]
    fn avg_decomposed_into_sum_count() {
        let cfg = RewriterConfig { dop: 2, parallel_threshold_rows: 0.0 };
        let out = parallelize(agg_plan(), &cfg);
        // Partial aggregate has 4 calls: SUM, (AVG→)SUM+COUNT, COUNT(*).
        fn find_partial(p: &LogicalPlan) -> Option<&Vec<AggCall>> {
            match p {
                LogicalPlan::Aggregate { input, aggs, .. } => {
                    if matches!(**input, LogicalPlan::Exchange { .. }) {
                        find_partial(input)
                    } else {
                        Some(aggs)
                    }
                }
                other => other.children().into_iter().find_map(find_partial),
            }
        }
        let partial = find_partial(&out).expect("partial aggregate");
        assert_eq!(partial.len(), 4);
        assert!(partial.iter().all(|a| a.func != AggFunc::Avg));
    }

    #[test]
    fn small_fragments_stay_serial() {
        // A Values input is not partitionable: no Xchg.
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Values {
                schema: Schema::unchecked(vec![Field::not_null("v", TypeId::I64)]),
                rows: vec![vec![Value::I64(1)]],
            }),
            group: vec![],
            aggs: vec![AggCall { func: AggFunc::CountStar, input: None, out_ty: TypeId::I64 }],
            schema: Schema::unchecked(vec![Field::not_null("cnt", TypeId::I64)]),
        };
        let cfg = RewriterConfig { dop: 8, parallel_threshold_rows: 0.0 };
        let out = parallelize(plan, &cfg);
        assert!(!out.explain().contains("Xchg"));
    }

    #[test]
    fn join_inputs_recurse() {
        let join = LogicalPlan::Join {
            left: Box::new(agg_plan()),
            right: Box::new(scan()),
            kind: vw_sql::plan::JoinKind::Inner,
            keys: vec![(SqlExpr::Col(0, TypeId::I32), SqlExpr::Col(0, TypeId::I32))],
            schema: agg_plan().schema().join(scan().schema()),
        };
        let cfg = RewriterConfig { dop: 2, parallel_threshold_rows: 0.0 };
        let out = parallelize(join, &cfg);
        assert!(out.explain().contains("Xchg"), "aggregate under join parallelizes");
    }

    fn scan_join_scan() -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(scan()),
            right: Box::new(scan()),
            kind: vw_sql::plan::JoinKind::Inner,
            keys: vec![(SqlExpr::Col(0, TypeId::I32), SqlExpr::Col(0, TypeId::I32))],
            schema: scan().schema().join(scan().schema()),
        }
    }

    #[test]
    fn probe_partitionable_join_gets_exchange() {
        let cfg = RewriterConfig { dop: 4, parallel_threshold_rows: 0.0 };
        let out = parallelize(scan_join_scan(), &cfg);
        let text = out.explain();
        assert!(text.starts_with("Xchg dop=4"), "join fragment wrapped: {text}");
        assert_eq!(out.schema(), scan_join_scan().schema(), "schema preserved");
    }

    #[test]
    fn aggregate_over_join_fragment_goes_partial_final() {
        // The whole Scan→Join fragment is now partitionable, so the
        // aggregate above it decomposes into partial/final instead of
        // staying serial.
        let plan = LogicalPlan::Aggregate {
            input: Box::new(scan_join_scan()),
            group: vec![SqlExpr::Col(0, TypeId::I32)],
            aggs: vec![AggCall { func: AggFunc::CountStar, input: None, out_ty: TypeId::I64 }],
            schema: Schema::unchecked(vec![
                Field::nullable("k", TypeId::I32),
                Field::not_null("cnt", TypeId::I64),
            ]),
        };
        let cfg = RewriterConfig { dop: 2, parallel_threshold_rows: 0.0 };
        let out = parallelize(plan, &cfg);
        let text = out.explain();
        assert!(text.contains("Xchg dop=2"), "{text}");
        assert_eq!(text.matches("Aggr").count(), 2, "partial + final: {text}");
    }

    #[test]
    fn limit_pins_order_and_blocks_join_exchange() {
        let plan = LogicalPlan::Limit { input: Box::new(scan_join_scan()), offset: 0, limit: 10 };
        let cfg = RewriterConfig { dop: 4, parallel_threshold_rows: 0.0 };
        let out = parallelize(plan, &cfg);
        assert!(
            !out.explain().contains("Xchg"),
            "LIMIT's first-k rows must stay deterministic: {}",
            out.explain()
        );
    }

    #[test]
    fn sort_consumer_allows_join_exchange() {
        let plan =
            LogicalPlan::Sort { input: Box::new(scan_join_scan()), keys: vec![(0, true, false)] };
        let cfg = RewriterConfig { dop: 2, parallel_threshold_rows: 0.0 };
        let out = parallelize(plan, &cfg);
        assert!(out.explain().contains("Xchg"), "sort re-materializes: {}", out.explain());
    }

    #[test]
    fn build_side_only_join_stays_serial() {
        // Partitionability flows through the probe (left) side only.
        let plan = LogicalPlan::Join {
            left: Box::new(LogicalPlan::Values {
                schema: Schema::unchecked(vec![Field::not_null("v", TypeId::I32)]),
                rows: vec![],
            }),
            right: Box::new(scan()),
            kind: vw_sql::plan::JoinKind::Inner,
            keys: vec![(SqlExpr::Col(0, TypeId::I32), SqlExpr::Col(0, TypeId::I32))],
            schema: Schema::unchecked(vec![
                Field::not_null("v", TypeId::I32),
                Field::nullable("k", TypeId::I32),
                Field::nullable("v2", TypeId::I64),
            ]),
        };
        let cfg = RewriterConfig { dop: 4, parallel_threshold_rows: 0.0 };
        let out = parallelize(plan, &cfg);
        assert!(!out.explain().contains("Xchg"), "{}", out.explain());
    }
}
