//! The "mini-Tom" rule engine: bottom-up expression rewriting to fixpoint.
//!
//! Vectorwise built its rewriter on the Tom pattern-matching tool \[5\]; the
//! native equivalent is a trait per rule (`match + build`) and a driver
//! that applies the rule set bottom-up until nothing changes. Rules carry a
//! nullability context so NULL-erasure rules can consult the input schema.

use vw_sql::SqlExpr;

/// One rewrite rule: return `Some(replacement)` when the pattern matches.
pub trait ExprRule: Send + Sync {
    /// Diagnostic name.
    fn name(&self) -> &'static str;
    /// Try to rewrite `e` (children are already rewritten).
    /// `nullable` gives per-input-column nullability.
    fn apply(&self, e: &SqlExpr, nullable: &[bool]) -> Option<SqlExpr>;
}

/// Maximum fixpoint iterations (safety net against rule ping-pong).
const MAX_PASSES: usize = 16;

/// Rewrite `e` bottom-up with `rules` until fixpoint.
pub fn rewrite_fixpoint(e: SqlExpr, rules: &[Box<dyn ExprRule>], nullable: &[bool]) -> SqlExpr {
    let mut cur = e;
    for _ in 0..MAX_PASSES {
        let (next, changed) = rewrite_once(cur, rules, nullable);
        cur = next;
        if !changed {
            break;
        }
    }
    cur
}

fn rewrite_once(e: SqlExpr, rules: &[Box<dyn ExprRule>], nullable: &[bool]) -> (SqlExpr, bool) {
    // 1. Rewrite children.
    let (mut e, mut changed) = rebuild_children(e, &mut |c| rewrite_once(c, rules, nullable));
    // 2. Apply rules at this node.
    loop {
        let mut fired = false;
        for r in rules {
            if let Some(next) = r.apply(&e, nullable) {
                e = next;
                fired = true;
                changed = true;
                break;
            }
        }
        if !fired {
            break;
        }
    }
    (e, changed)
}

fn rebuild_children(e: SqlExpr, f: &mut impl FnMut(SqlExpr) -> (SqlExpr, bool)) -> (SqlExpr, bool) {
    use SqlExpr::*;
    let mut changed = false;
    macro_rules! go {
        ($x:expr) => {{
            let (y, c) = f($x);
            changed |= c;
            Box::new(y)
        }};
    }
    macro_rules! go_vec {
        ($v:expr) => {{
            $v.into_iter()
                .map(|x| {
                    let (y, c) = f(x);
                    changed |= c;
                    y
                })
                .collect::<Vec<_>>()
        }};
    }
    let out = match e {
        Arith { op, l, r, ty } => Arith { op, l: go!(*l), r: go!(*r), ty },
        Cmp { op, l, r } => Cmp { op, l: go!(*l), r: go!(*r) },
        And(v) => And(go_vec!(v)),
        Or(v) => Or(go_vec!(v)),
        Not(x) => Not(go!(*x)),
        Cast { input, to } => Cast { input: go!(*input), to },
        IsNull(x) => IsNull(go!(*x)),
        IsNotNull(x) => IsNotNull(go!(*x)),
        Case { branches, else_expr, ty } => Case {
            branches: branches
                .into_iter()
                .map(|(c, v)| {
                    let (c2, cc) = f(c);
                    let (v2, vc) = f(v);
                    changed |= cc | vc;
                    (c2, v2)
                })
                .collect(),
            else_expr: else_expr.map(|x| go!(*x)),
            ty,
        },
        Func { func, args, ty } => Func { func, args: go_vec!(args), ty },
        Ext { func, args, ty } => Ext { func, args: go_vec!(args), ty },
        Like { input, pattern, negated } => Like { input: go!(*input), pattern, negated },
        InList { input, list, negated } => {
            InList { input: go!(*input), list: go_vec!(list), negated }
        }
        leaf @ (Col(..) | Lit(..)) => leaf,
    };
    (out, changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::{TypeId, Value};

    /// A toy rule: rewrite Not(Not(x)) → x.
    struct DoubleNot;

    impl ExprRule for DoubleNot {
        fn name(&self) -> &'static str {
            "double-not"
        }
        fn apply(&self, e: &SqlExpr, _n: &[bool]) -> Option<SqlExpr> {
            if let SqlExpr::Not(inner) = e {
                if let SqlExpr::Not(x) = inner.as_ref() {
                    return Some((**x).clone());
                }
            }
            None
        }
    }

    #[test]
    fn fixpoint_applies_nested_rules() {
        let x = SqlExpr::Lit(Value::Bool(true), TypeId::Bool);
        let wrapped = SqlExpr::Not(Box::new(SqlExpr::Not(Box::new(SqlExpr::Not(Box::new(
            SqlExpr::Not(Box::new(x.clone())),
        ))))));
        let rules: Vec<Box<dyn ExprRule>> = vec![Box::new(DoubleNot)];
        let out = rewrite_fixpoint(wrapped, &rules, &[]);
        assert_eq!(out, x);
    }

    #[test]
    fn no_rules_is_identity() {
        let e = SqlExpr::And(vec![
            SqlExpr::Lit(Value::Bool(true), TypeId::Bool),
            SqlExpr::Col(0, TypeId::Bool),
        ]);
        let out = rewrite_fixpoint(e.clone(), &[], &[true]);
        assert_eq!(out, e);
    }
}
