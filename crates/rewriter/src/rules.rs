//! The production rule set: function expansion, IN-list expansion, logical
//! simplification, and nullability-driven NULL-handling erasure.

use crate::engine::ExprRule;
use vw_common::{TypeId, Value};
use vw_sql::expr::{CmpOp, ExtFunc};
use vw_sql::SqlExpr;

/// The default rule set, in application order.
pub fn default_rules() -> Vec<Box<dyn ExprRule>> {
    vec![
        Box::new(ExpandExtFuncs),
        Box::new(ExpandInList),
        Box::new(SimplifyLogic),
        Box::new(NullabilityRule),
    ]
}

fn lit_bool(b: bool) -> SqlExpr {
    SqlExpr::Lit(Value::Bool(b), TypeId::Bool)
}

/// Expand extended functions into CASE/comparison trees.
pub struct ExpandExtFuncs;

impl ExprRule for ExpandExtFuncs {
    fn name(&self) -> &'static str {
        "expand-ext-funcs"
    }

    fn apply(&self, e: &SqlExpr, _n: &[bool]) -> Option<SqlExpr> {
        let SqlExpr::Ext { func, args, ty } = e else {
            return None;
        };
        let ty = *ty;
        Some(match func {
            ExtFunc::Coalesce => {
                // COALESCE(a, b, c) → CASE WHEN a IS NOT NULL THEN a
                //                          WHEN b IS NOT NULL THEN b ELSE c END
                let mut branches = Vec::new();
                for a in &args[..args.len() - 1] {
                    branches.push((SqlExpr::IsNotNull(Box::new(a.clone())), a.clone()));
                }
                SqlExpr::Case {
                    branches,
                    else_expr: Some(Box::new(args.last().unwrap().clone())),
                    ty,
                }
            }
            ExtFunc::IfNull => SqlExpr::Case {
                branches: vec![(SqlExpr::IsNull(Box::new(args[0].clone())), args[1].clone())],
                else_expr: Some(Box::new(args[0].clone())),
                ty,
            },
            ExtFunc::NullIf => SqlExpr::Case {
                branches: vec![(
                    SqlExpr::Cmp {
                        op: CmpOp::Eq,
                        l: Box::new(args[0].clone()),
                        r: Box::new(args[1].clone()),
                    },
                    SqlExpr::Lit(Value::Null, ty),
                )],
                else_expr: Some(Box::new(args[0].clone())),
                ty,
            },
            ExtFunc::Greatest | ExtFunc::Least => {
                let op = if *func == ExtFunc::Greatest { CmpOp::Ge } else { CmpOp::Le };
                let mut acc = args[0].clone();
                for a in &args[1..] {
                    acc = SqlExpr::Case {
                        branches: vec![(
                            SqlExpr::Cmp { op, l: Box::new(acc.clone()), r: Box::new(a.clone()) },
                            acc,
                        )],
                        else_expr: Some(Box::new(a.clone())),
                        ty,
                    };
                }
                acc
            }
            ExtFunc::Sign => {
                let zero = match args[0].type_id() {
                    TypeId::F64 => SqlExpr::Lit(Value::F64(0.0), TypeId::F64),
                    _ => SqlExpr::Lit(Value::I64(0), TypeId::I64),
                };
                SqlExpr::Case {
                    branches: vec![
                        (
                            SqlExpr::Cmp {
                                op: CmpOp::Gt,
                                l: Box::new(args[0].clone()),
                                r: Box::new(zero.clone()),
                            },
                            SqlExpr::Lit(Value::I64(1), TypeId::I64),
                        ),
                        (
                            SqlExpr::Cmp {
                                op: CmpOp::Lt,
                                l: Box::new(args[0].clone()),
                                r: Box::new(zero),
                            },
                            SqlExpr::Lit(Value::I64(-1), TypeId::I64),
                        ),
                    ],
                    else_expr: Some(Box::new(SqlExpr::Lit(Value::I64(0), TypeId::I64))),
                    ty: TypeId::I64,
                }
            }
        })
    }
}

/// Expand IN-lists into OR chains (NOT IN into a negated chain).
pub struct ExpandInList;

impl ExprRule for ExpandInList {
    fn name(&self) -> &'static str {
        "expand-in-list"
    }

    fn apply(&self, e: &SqlExpr, _n: &[bool]) -> Option<SqlExpr> {
        let SqlExpr::InList { input, list, negated } = e else {
            return None;
        };
        if list.is_empty() {
            return Some(lit_bool(*negated));
        }
        let ors = SqlExpr::Or(
            list.iter()
                .map(|m| SqlExpr::Cmp { op: CmpOp::Eq, l: input.clone(), r: Box::new(m.clone()) })
                .collect(),
        );
        Some(if *negated { SqlExpr::Not(Box::new(ors)) } else { ors })
    }
}

/// Logical simplifications: double negation, De Morgan-free comparison
/// flips, constant CASE conditions, single-branch AND/OR unwrapping.
pub struct SimplifyLogic;

impl ExprRule for SimplifyLogic {
    fn name(&self) -> &'static str {
        "simplify-logic"
    }

    fn apply(&self, e: &SqlExpr, _n: &[bool]) -> Option<SqlExpr> {
        match e {
            SqlExpr::Not(inner) => match inner.as_ref() {
                SqlExpr::Not(x) => Some((**x).clone()),
                SqlExpr::Cmp { op, l, r } => {
                    let flipped = match op {
                        CmpOp::Eq => CmpOp::Ne,
                        CmpOp::Ne => CmpOp::Eq,
                        CmpOp::Lt => CmpOp::Ge,
                        CmpOp::Le => CmpOp::Gt,
                        CmpOp::Gt => CmpOp::Le,
                        CmpOp::Ge => CmpOp::Lt,
                    };
                    Some(SqlExpr::Cmp { op: flipped, l: l.clone(), r: r.clone() })
                }
                SqlExpr::Lit(Value::Bool(b), _) => Some(lit_bool(!b)),
                _ => None,
            },
            SqlExpr::And(parts) if parts.len() == 1 => Some(parts[0].clone()),
            SqlExpr::Or(parts) if parts.len() == 1 => Some(parts[0].clone()),
            SqlExpr::Case { branches, else_expr, ty } => {
                // Drop constant-FALSE branches; collapse leading TRUE.
                if let Some((SqlExpr::Lit(Value::Bool(true), _), v)) = branches.first() {
                    return Some(v.clone());
                }
                if branches.iter().any(|(c, _)| matches!(c, SqlExpr::Lit(Value::Bool(false), _))) {
                    let kept: Vec<(SqlExpr, SqlExpr)> = branches
                        .iter()
                        .filter(|(c, _)| !matches!(c, SqlExpr::Lit(Value::Bool(false), _)))
                        .cloned()
                        .collect();
                    if kept.is_empty() {
                        return Some(match else_expr {
                            Some(x) => (**x).clone(),
                            None => SqlExpr::Lit(Value::Null, *ty),
                        });
                    }
                    return Some(SqlExpr::Case {
                        branches: kept,
                        else_expr: else_expr.clone(),
                        ty: *ty,
                    });
                }
                None
            }
            _ => None,
        }
    }
}

/// Nullability-driven erasure: NULL tests on provably non-nullable
/// expressions fold to constants, saving the kernel all indicator work —
/// the rewriter side of the paper's two-column NULL design.
pub struct NullabilityRule;

/// Can `e` ever produce NULL, given input column nullability?
pub fn maybe_null(e: &SqlExpr, nullable: &[bool]) -> bool {
    match e {
        SqlExpr::Col(i, _) => nullable.get(*i).copied().unwrap_or(true),
        SqlExpr::Lit(v, _) => v.is_null(),
        SqlExpr::Arith { l, r, .. } => maybe_null(l, nullable) || maybe_null(r, nullable),
        SqlExpr::Cmp { l, r, .. } => maybe_null(l, nullable) || maybe_null(r, nullable),
        SqlExpr::And(v) | SqlExpr::Or(v) => v.iter().any(|x| maybe_null(x, nullable)),
        SqlExpr::Not(x) | SqlExpr::Cast { input: x, .. } => maybe_null(x, nullable),
        SqlExpr::IsNull(_) | SqlExpr::IsNotNull(_) => false,
        SqlExpr::Case { branches, else_expr, .. } => {
            else_expr.is_none()
                || branches.iter().any(|(_, v)| maybe_null(v, nullable))
                || else_expr.as_ref().is_some_and(|x| maybe_null(x, nullable))
        }
        SqlExpr::Func { args, .. } | SqlExpr::Ext { args, .. } => {
            args.iter().any(|x| maybe_null(x, nullable))
        }
        SqlExpr::Like { input, .. } => maybe_null(input, nullable),
        SqlExpr::InList { input, list, .. } => {
            maybe_null(input, nullable) || list.iter().any(|x| maybe_null(x, nullable))
        }
    }
}

impl ExprRule for NullabilityRule {
    fn name(&self) -> &'static str {
        "null-erasure"
    }

    fn apply(&self, e: &SqlExpr, nullable: &[bool]) -> Option<SqlExpr> {
        match e {
            SqlExpr::IsNull(x) if !maybe_null(x, nullable) => Some(lit_bool(false)),
            SqlExpr::IsNotNull(x) if !maybe_null(x, nullable) => Some(lit_bool(true)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::rewrite_fixpoint;

    fn run(e: SqlExpr, nullable: &[bool]) -> SqlExpr {
        rewrite_fixpoint(e, &default_rules(), nullable)
    }

    fn col(i: usize) -> SqlExpr {
        SqlExpr::Col(i, TypeId::I64)
    }

    fn lit(v: i64) -> SqlExpr {
        SqlExpr::Lit(Value::I64(v), TypeId::I64)
    }

    #[test]
    fn coalesce_expands_to_case() {
        let e = SqlExpr::Ext {
            func: ExtFunc::Coalesce,
            args: vec![col(0), col(1), lit(0)],
            ty: TypeId::I64,
        };
        let out = run(e, &[true, true]);
        let SqlExpr::Case { branches, else_expr, .. } = &out else { panic!("got {out:?}") };
        assert_eq!(branches.len(), 2);
        assert!(else_expr.is_some());
    }

    #[test]
    fn coalesce_on_not_null_first_arg_collapses_entirely() {
        // COALESCE(not_null_col, 0) → CASE WHEN TRUE THEN col ... → col.
        let e =
            SqlExpr::Ext { func: ExtFunc::Coalesce, args: vec![col(0), lit(0)], ty: TypeId::I64 };
        let out = run(e, &[false]);
        assert_eq!(out, col(0), "rewriter chain should fold to the bare column");
    }

    #[test]
    fn nullif_and_ifnull() {
        let e = SqlExpr::Ext { func: ExtFunc::NullIf, args: vec![col(0), lit(5)], ty: TypeId::I64 };
        assert!(matches!(run(e, &[true]), SqlExpr::Case { .. }));
        let e = SqlExpr::Ext { func: ExtFunc::IfNull, args: vec![col(0), lit(5)], ty: TypeId::I64 };
        assert!(matches!(run(e, &[true]), SqlExpr::Case { .. }));
    }

    #[test]
    fn greatest_folds_pairwise() {
        let e = SqlExpr::Ext {
            func: ExtFunc::Greatest,
            args: vec![col(0), col(1), col(2)],
            ty: TypeId::I64,
        };
        let out = run(e, &[true; 3]);
        assert!(matches!(out, SqlExpr::Case { .. }));
    }

    #[test]
    fn in_list_expands_to_or() {
        let e =
            SqlExpr::InList { input: Box::new(col(0)), list: vec![lit(1), lit(2)], negated: false };
        let out = run(e, &[true]);
        let SqlExpr::Or(parts) = &out else { panic!("got {out:?}") };
        assert_eq!(parts.len(), 2);
        // NOT IN → the Not simplifies into flipped comparisons or stays Not(Or).
        let e = SqlExpr::InList { input: Box::new(col(0)), list: vec![lit(1)], negated: true };
        let out = run(e, &[true]);
        assert!(matches!(out, SqlExpr::Cmp { op: CmpOp::Ne, .. }), "got {out:?}");
    }

    #[test]
    fn empty_in_list_is_constant() {
        let e = SqlExpr::InList { input: Box::new(col(0)), list: vec![], negated: false };
        assert_eq!(run(e, &[true]), lit_bool(false));
    }

    #[test]
    fn double_not_and_cmp_flip() {
        let cmp = SqlExpr::Cmp { op: CmpOp::Lt, l: Box::new(col(0)), r: Box::new(lit(5)) };
        let e = SqlExpr::Not(Box::new(cmp.clone()));
        assert!(matches!(run(e, &[true]), SqlExpr::Cmp { op: CmpOp::Ge, .. }));
        let e = SqlExpr::Not(Box::new(SqlExpr::Not(Box::new(cmp.clone()))));
        assert_eq!(run(e, &[true]), cmp);
    }

    #[test]
    fn null_tests_erased_on_not_null_columns() {
        assert_eq!(run(SqlExpr::IsNull(Box::new(col(0))), &[false]), lit_bool(false));
        assert_eq!(run(SqlExpr::IsNotNull(Box::new(col(0))), &[false]), lit_bool(true));
        // On nullable columns they stay.
        assert!(matches!(run(SqlExpr::IsNull(Box::new(col(0))), &[true]), SqlExpr::IsNull(_)));
    }

    #[test]
    fn maybe_null_analysis() {
        assert!(!maybe_null(&lit(1), &[]));
        assert!(maybe_null(&SqlExpr::Lit(Value::Null, TypeId::I64), &[]));
        assert!(maybe_null(&col(0), &[true]));
        assert!(!maybe_null(&col(0), &[false]));
        // CASE without ELSE can produce NULL.
        let case = SqlExpr::Case {
            branches: vec![(lit_bool(true), lit(1))],
            else_expr: None,
            ty: TypeId::I64,
        };
        assert!(maybe_null(&case, &[]));
    }
}
