//! C1: the paper's ">10x faster than conventional engines" claim.
use std::sync::Arc;
use vw_bench::experiments::{q6_projection, q6_schema, q6_vectorized, q6_volcano, BatchSource};
use vw_bench::tpch;

fn bench(c: &mut Criterion) {
    let n = 20_000;
    let cols = q6_projection(&tpch::gen_lineitem(n, 1).into_columns());
    let rows: Arc<Vec<Vec<vw_common::Value>>> =
        Arc::new((0..n).map(|i| cols.iter().map(|c| c.get_value(i)).collect()).collect());
    let mut g = c.benchmark_group("c1");
    quick(&mut g);
    for vs in [64usize, 1024, 16384] {
        let src = BatchSource::new(q6_schema(), &cols, vs);
        g.bench_function(format!("q6_vectorized_vs{vs}"), |b| {
            b.iter(|| q6_vectorized(src.reopen(), vs))
        });
    }
    g.bench_function("q6_tuple_at_a_time", |b| b.iter(|| q6_volcano(&rows)));
    g.finish();
}

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(g: &mut criterion::BenchmarkGroup<criterion::measurement::WallTime>) {
    g.sample_size(10)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(150));
}

criterion_group!(benches, bench);
criterion_main!(benches);
