//! C15: morsel-driven scheduling vs static row-range partitioning, and the
//! batch free-list's zero-allocation guarantee.
//!
//! Two acceptance experiments:
//!
//! 1. **90/10 skewed scan at DOP 4.** The table's filter survivors (the
//!    rows that feed all downstream work) are 90% concentrated in the last
//!    10% of the row space. The old plan-time `partition_items` split —
//!    reimplemented here as the baseline — hands that whole region to one
//!    worker, collapsing the fragment to one effective core. The morsel
//!    contender shares one `MorselSource`; workers claim pack-aligned
//!    16Ki-row slices at run time (claims that straddle packs would make
//!    several workers decode the same pack) and the skew balances itself.
//!    Measured three ways:
//!    *   per-worker survivor counts (pure CPU, no simulation): the
//!        work-balance observable — max/mean collapses toward 4 for
//!        static ranges and stays near 1 for morsels;
//!    *   wall time with **stall-dominated downstream work** (a fixed
//!        per-survivor latency, modelling the memory/IO stalls that
//!        dominate joins and aggregations at scale; stalls overlap across
//!        workers even on this 1-core dev box, so the scheduling effect is
//!        measured deterministically regardless of host core count) —
//!        the ≥1.5× acceptance number;
//!    *   wall time with pure CPU work, printed honestly: on a single
//!        effective core both schemes do the same total work, so this is
//!        ~1×; on real multicore the balance win applies to CPU time too.
//!
//! 2. **Zero steady-state allocations across the full pipeline.** A serial
//!    scan→filter→project→join→agg pipeline with one `BatchPool` threaded
//!    through every operator runs ≥64 batches after a 16-batch warm-up
//!    with **zero** heap allocations (counting global allocator), operator
//!    *outputs* included — scan leases recycle through Project/Join/Agg
//!    consumption, Project outputs swap through the `VectorPool` slots,
//!    and join outputs gather into recycled buffers.

use criterion::{black_box, criterion_group, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vw_common::{ColData, Field, Result, Schema, TypeId, Value};
use vw_exec::cancel::CancelToken;
use vw_exec::expr::{BinOp, CmpOp, ExprCtx, PhysExpr};
use vw_exec::morsel::{BatchPool, MorselSource};
use vw_exec::op::{
    AggFunc, AggSpec, BoxedOp, HashAggregate, HashJoin, JoinType, Operator, Project, Select,
    Values, VectorScan, Xchg,
};
use vw_exec::program::{ExprProgram, SelectProgram};
use vw_exec::vector::Batch;
use vw_pdt::MergeItem;
use vw_storage::{BufferPool, Layout as StorageLayout, SimulatedDisk, TableStorage};

// ---------------------------------------------------------------------------
// counting allocator (steady-state allocation proof)
// ---------------------------------------------------------------------------

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------------------
// workload
// ---------------------------------------------------------------------------

const VECTOR: usize = 1024;
const DOP: usize = 4;
const GROUPS: i64 = 64;

fn schema3() -> Schema {
    Schema::new(vec![
        Field::not_null("key", TypeId::I64),
        Field::not_null("val", TypeId::I64),
        Field::not_null("hot", TypeId::I64),
    ])
    .unwrap()
}

/// Survivor placement for the skew experiment: ~10% of rows are "hot"
/// (pass the filter and feed all downstream work), with 90% of them packed
/// into the last 10% of the row space.
fn skewed_hot(n: usize) -> Vec<bool> {
    let survivors = n / 10;
    let tail_start = n - n / 10;
    let tail_hits = survivors * 9 / 10; // 90% of survivors in the tail
    let head_hits = survivors - tail_hits;
    let mut hot = vec![false; n];
    // Head: survivors thinly spread over the first 90% of rows.
    let head_stride = tail_start / head_hits.max(1);
    for k in 0..head_hits {
        hot[k * head_stride] = true;
    }
    // Tail: 9 of every 10 rows survive.
    let mut placed = 0;
    for (off, h) in hot[tail_start..].iter_mut().enumerate() {
        if placed < tail_hits && off % 10 != 9 {
            *h = true;
            placed += 1;
        }
    }
    hot
}

fn build_table(n: usize, pack: usize, hot: &[bool]) -> (Arc<TableStorage>, Arc<BufferPool>) {
    let disk = SimulatedDisk::instant();
    let pool = BufferPool::new(disk.clone(), 256 << 20);
    let mut t = TableStorage::new(disk, schema3(), StorageLayout::Dsm);
    let key = ColData::I64((0..n as i64).map(|i| i % GROUPS).collect());
    let val = ColData::I64((0..n as i64).map(|i| i % 1000).collect());
    let hotc = ColData::I64(hot.iter().map(|&h| h as i64).collect());
    t.append_columns(&[key, val, hotc], &[None, None, None], pack).unwrap();
    (Arc::new(t), pool)
}

fn ctx() -> ExprCtx {
    ExprCtx::default()
}

fn col(i: usize) -> PhysExpr {
    PhysExpr::ColRef(i, TypeId::I64)
}

fn i64lit(v: i64) -> PhysExpr {
    PhysExpr::Const(Value::I64(v), TypeId::I64)
}

fn cmp(op: CmpOp, l: PhysExpr, r: PhysExpr) -> PhysExpr {
    PhysExpr::Cmp { op, lhs: Box::new(l), rhs: Box::new(r) }
}

fn prog(e: &PhysExpr) -> ExprProgram {
    ExprProgram::compile(e, &ctx())
}

// ---------------------------------------------------------------------------
// experiment 1: 90/10 skewed scan, static ranges vs morsel claims
// ---------------------------------------------------------------------------

/// The old plan-time static split (`op/scan.rs::partition_items` before
/// this change), kept here as the baseline under measurement.
fn static_range_items(items: &[MergeItem], part: usize, nparts: usize) -> Vec<MergeItem> {
    fn rows(i: &MergeItem) -> u64 {
        match i {
            MergeItem::Stable { len, .. } => *len,
            _ => 1,
        }
    }
    let total: u64 = items.iter().map(rows).sum();
    let lo = total * part as u64 / nparts as u64;
    let hi = total * (part as u64 + 1) / nparts as u64;
    let mut out = Vec::new();
    let mut pos = 0u64;
    for item in items {
        let n = rows(item);
        let (start, end) = (pos, pos + n);
        pos = end;
        if end <= lo || start >= hi {
            continue;
        }
        match item {
            MergeItem::Stable { sid, len } => {
                let s = lo.saturating_sub(start);
                let e = (hi - start).min(*len);
                out.push(MergeItem::Stable { sid: sid + s, len: e - s });
            }
            other => out.push(other.clone()),
        }
    }
    out
}

/// Downstream-work model for the skew experiment: counts the survivor rows
/// a worker processed (the real balance observable) and optionally sleeps
/// a fixed latency per survivor (the stall-dominated model that makes the
/// schedule visible in wall time on any core count).
struct Stall {
    input: BoxedOp,
    ns_per_row: u64,
    seen: Arc<AtomicU64>,
}

impl Operator for Stall {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn name(&self) -> &'static str {
        "Stall"
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let Some(batch) = self.input.next()? else {
            return Ok(None);
        };
        let rows = batch.rows() as u64;
        self.seen.fetch_add(rows, Ordering::Relaxed);
        if self.ns_per_row > 0 {
            std::thread::sleep(Duration::from_nanos(rows * self.ns_per_row));
        }
        Ok(Some(batch))
    }
}

enum Scheme {
    StaticRanges,
    Morsel { rows: usize },
}

/// Run scan→filter(hot=1)→stall→project(key, val*2) on DOP workers under
/// an exchange; returns (wall, per-worker survivor counts, rows, checksum).
fn run_skew(
    table: &Arc<TableStorage>,
    pool: &Arc<BufferPool>,
    scheme: &Scheme,
    stall_ns: u64,
) -> (Duration, Vec<u64>, u64, i64) {
    let n = table.n_rows();
    let items = VectorScan::stable_items(n);
    let cancel = CancelToken::new();
    let shared = match scheme {
        Scheme::Morsel { rows } => Some(MorselSource::new(items.clone(), *rows, DOP)),
        Scheme::StaticRanges => None,
    };
    let counters: Vec<Arc<AtomicU64>> = (0..DOP).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let mut parts: Vec<BoxedOp> = Vec::new();
    for (w, counter) in counters.iter().enumerate() {
        let (source, consumer) = match (&shared, scheme) {
            (Some(src), _) => (src.clone(), w),
            (None, _) => (MorselSource::new(static_range_items(&items, w, DOP), usize::MAX, 1), 0),
        };
        let bp = BatchPool::new();
        let scan = VectorScan::with_source(
            table.clone(),
            pool.clone(),
            vec![0, 1, 2],
            source,
            consumer,
            VECTOR,
            cancel.clone(),
        )
        .with_batch_pool(bp.clone());
        let pred = SelectProgram::compile(&cmp(CmpOp::Eq, col(2), i64lit(1)), &ctx());
        let select = Select::new(Box::new(scan), pred, cancel.clone()).with_batch_pool(bp.clone());
        let stall = Stall { input: Box::new(select), ns_per_row: stall_ns, seen: counter.clone() };
        let out_schema = Schema::new(vec![
            Field::not_null("key", TypeId::I64),
            Field::not_null("v2", TypeId::I64),
        ])
        .unwrap();
        let v2 = PhysExpr::Arith {
            op: BinOp::Mul,
            lhs: Box::new(col(1)),
            rhs: Box::new(i64lit(2)),
            ty: TypeId::I64,
        };
        let project = Project::new(
            Box::new(stall),
            vec![prog(&col(0)), prog(&v2)],
            out_schema,
            cancel.clone(),
        )
        .with_batch_pool(bp.clone());
        parts.push(Box::new(project));
    }
    let mut x = Xchg::spawn(parts, cancel);
    if let Some(src) = &shared {
        x = x.with_sources(vec![src.clone()]);
    }
    let t0 = Instant::now();
    let (mut rows, mut checksum) = (0u64, 0i64);
    while let Some(b) = x.next().unwrap() {
        rows += b.rows() as u64;
        // Cheap order-insensitive checksum over the first column.
        if let ColData::I64(d) = &b.columns[0].data {
            for p in b.live() {
                checksum = checksum.wrapping_add(d[p]);
            }
        }
    }
    let wall = t0.elapsed();
    (wall, counters.iter().map(|c| c.load(Ordering::Relaxed)).collect(), rows, checksum)
}

fn balance(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    *counts.iter().max().unwrap() as f64 / (total as f64 / counts.len() as f64)
}

fn skew_experiment() {
    let n = 1 << 20;
    let hot = skewed_hot(n);
    // Morsel size == pack size: claims are pack-aligned, so no pack is
    // decoded by more than one worker (the engine's defaults — 16Ki
    // morsels over 16Ki packs — have the same property).
    let (table, pool) = build_table(n, 16 * 1024, &hot);
    let morsel = Scheme::Morsel { rows: 16 * 1024 };
    let expect_rows = hot.iter().filter(|&&h| h).count() as u64;

    // Pure-CPU pass. The static survivor counts are data-determined: the
    // 90/10 skew collapses the last range's worker no matter how the OS
    // schedules threads. (The pure-CPU *morsel* split is printed but not
    // asserted — with no blocking, a single-core scheduler legitimately
    // lets one worker drain many claims per time slice; the balanced
    // regime is asserted on the stall-dominated pass below.)
    let (t_static_cpu, static_counts, r1, c1) = run_skew(&table, &pool, &Scheme::StaticRanges, 0);
    let (t_morsel_cpu, morsel_counts, r2, c2) = run_skew(&table, &pool, &morsel, 0);
    assert_eq!(r1, expect_rows, "static schedule lost rows");
    assert_eq!(r2, expect_rows, "morsel schedule lost rows");
    assert_eq!(c1, c2, "schedules disagree on the answer");
    let sb = balance(&static_counts);
    println!(
        "skew (pure CPU):  static {:>6.1}ms balance {sb:.2}  {static_counts:?}\n                  morsel {:>6.1}ms balance {:.2}  {morsel_counts:?}",
        t_static_cpu.as_secs_f64() * 1e3,
        t_morsel_cpu.as_secs_f64() * 1e3,
        balance(&morsel_counts),
    );
    assert!(
        sb >= 3.0,
        "static ranges must collapse under 90/10 skew (max/mean {sb:.2}, counts {static_counts:?})"
    );

    // Stall-dominated pass: per-survivor fixed latency models the stalls
    // that dominate real downstream operators at scale; it overlaps across
    // workers on any core count, so the wall clock now measures the
    // *schedule*, not this box's core count. Best of 2 runs each.
    let stall_ns = 6_000;
    let best = |scheme: &Scheme| {
        let mut best_t = Duration::MAX;
        let mut counts = Vec::new();
        for _ in 0..2 {
            let (t, c, r, chk) = run_skew(&table, &pool, scheme, stall_ns);
            assert_eq!((r, chk), (expect_rows, c1));
            if t < best_t {
                best_t = t;
                counts = c;
            }
        }
        (best_t, counts)
    };
    let (t_static, _) = best(&Scheme::StaticRanges);
    let (t_morsel, stalled_counts) = best(&morsel);
    let mb = balance(&stalled_counts);
    let speedup = t_static.as_secs_f64() / t_morsel.as_secs_f64();
    println!(
        "skew (stall-dominated, {stall_ns}ns/survivor): static {:>7.1}ms  morsel {:>7.1}ms  \
         speedup {speedup:.2}x  morsel balance {mb:.2}  {stalled_counts:?}",
        t_static.as_secs_f64() * 1e3,
        t_morsel.as_secs_f64() * 1e3,
    );
    assert!(
        speedup >= 1.5,
        "morsel scheduling must beat static ranges >=1.5x on the 90/10 skew (got {speedup:.2}x)"
    );
    assert!(
        mb <= 2.0,
        "morsel claims must stay near-linear under skew (max/mean {mb:.2}, {stalled_counts:?})"
    );
}

// ---------------------------------------------------------------------------
// experiment 2: zero steady-state allocations across the full pipeline
// ---------------------------------------------------------------------------

const WARMUP_BATCHES: u64 = 16;

static PROBE_BATCHES: AtomicU64 = AtomicU64::new(0);
static STEADY_BASE: AtomicU64 = AtomicU64::new(0);
static STEADY_LAST: AtomicU64 = AtomicU64::new(0);

/// Pass-through operator between join and aggregation that snapshots the
/// allocation counter while the pipeline runs: the window opens when batch
/// `WARMUP_BATCHES` is served and closes at the last served batch, so it
/// covers ≥64 steady-state batches flowing through every operator (the
/// aggregation's absorption included) while excluding one-time warm-up
/// (pool sizing, pack decode, hash build, first-seen groups) and the
/// epilogue (group emission).
struct AllocProbe {
    input: BoxedOp,
}

impl Operator for AllocProbe {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn name(&self) -> &'static str {
        "AllocProbe"
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let Some(batch) = self.input.next()? else {
            return Ok(None);
        };
        let i = PROBE_BATCHES.fetch_add(1, Ordering::Relaxed);
        if i == WARMUP_BATCHES {
            STEADY_BASE.store(ALLOCS.load(Ordering::Relaxed), Ordering::Relaxed);
        } else if i > WARMUP_BATCHES {
            STEADY_LAST.store(ALLOCS.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        Ok(Some(batch))
    }
}

fn alloc_experiment() {
    let n = 84 * 1024; // 84 scan batches; one pack so steady state never re-decodes
    let hot = vec![false; n];
    let (table, pool) = build_table(n, 128 * 1024, &hot);
    let bp = BatchPool::new();
    let cancel = CancelToken::new();

    let scan = VectorScan::with_source(
        table,
        pool,
        vec![0, 1],
        MorselSource::new(VectorScan::stable_items(n as u64), 8 * 1024, 1),
        0,
        VECTOR,
        cancel.clone(),
    )
    .with_batch_pool(bp.clone());
    let pred = SelectProgram::compile(&cmp(CmpOp::Lt, col(1), i64lit(500)), &ctx());
    let select = Select::new(Box::new(scan), pred, cancel.clone()).with_batch_pool(bp.clone());
    let proj_schema =
        Schema::new(vec![Field::not_null("key", TypeId::I64), Field::not_null("v2", TypeId::I64)])
            .unwrap();
    let v2 = PhysExpr::Arith {
        op: BinOp::Mul,
        lhs: Box::new(col(1)),
        rhs: Box::new(i64lit(2)),
        ty: TypeId::I64,
    };
    let project = Project::new(
        Box::new(select),
        vec![prog(&col(0)), prog(&v2)],
        proj_schema.clone(),
        cancel.clone(),
    )
    .with_batch_pool(bp.clone());
    // Build side: one payload row per group key.
    let build_schema = Schema::new(vec![
        Field::not_null("bkey", TypeId::I64),
        Field::not_null("pay", TypeId::I64),
    ])
    .unwrap();
    let build_rows: Vec<Vec<Value>> =
        (0..GROUPS).map(|k| vec![Value::I64(k), Value::I64(k * 10)]).collect();
    let build = Values::new(build_schema.clone(), build_rows, VECTOR, cancel.clone());
    let join = HashJoin::new(
        Box::new(project),
        Box::new(build),
        vec![prog(&col(0))],
        vec![prog(&col(0))],
        JoinType::Inner,
        proj_schema.join(&build_schema),
        cancel.clone(),
    )
    .with_batch_pool(bp.clone());
    let probe = AllocProbe { input: Box::new(join) };
    let mut agg = HashAggregate::new(
        Box::new(probe),
        vec![prog(&col(0))],
        vec![
            AggSpec { func: AggFunc::CountStar, input: None, out_ty: TypeId::I64 },
            AggSpec { func: AggFunc::Sum, input: Some(prog(&col(1))), out_ty: TypeId::I64 },
            AggSpec { func: AggFunc::Sum, input: Some(prog(&col(3))), out_ty: TypeId::I64 },
        ],
        Schema::unchecked(vec![
            Field::not_null("key", TypeId::I64),
            Field::not_null("cnt", TypeId::I64),
            Field::nullable("sum_v2", TypeId::I64),
            Field::nullable("sum_pay", TypeId::I64),
        ]),
        VECTOR,
        cancel,
    )
    .unwrap()
    .with_batch_pool(bp.clone());

    let mut rows = 0usize;
    let mut got: Vec<(i64, i64, i64, i64)> = Vec::new();
    while let Some(b) = agg.next().unwrap() {
        rows += b.rows();
        for i in 0..b.rows() {
            let r = b.row_values(i);
            got.push(match (&r[0], &r[1], &r[2], &r[3]) {
                (Value::I64(k), Value::I64(c), Value::I64(s), Value::I64(p)) => (*k, *c, *s, *p),
                other => panic!("unexpected row {other:?}"),
            });
        }
    }
    assert_eq!(rows, GROUPS as usize);

    // Independent reference computed in plain Rust.
    let mut expect = vec![(0i64, 0i64, 0i64); GROUPS as usize];
    for i in 0..n as i64 {
        if i % 1000 < 500 {
            let g = (i % GROUPS) as usize;
            expect[g].0 += 1;
            expect[g].1 += 2 * (i % 1000);
            expect[g].2 += (i % GROUPS) * 10;
        }
    }
    got.sort_unstable();
    for (k, c, s, p) in got {
        let e = expect[k as usize];
        assert_eq!((c, s, p), e, "group {k} diverged from the reference");
    }

    let served = PROBE_BATCHES.load(Ordering::Relaxed);
    let steady = served - 1 - WARMUP_BATCHES;
    let allocated =
        STEADY_LAST.load(Ordering::Relaxed).saturating_sub(STEADY_BASE.load(Ordering::Relaxed));
    println!(
        "pooled pipeline: {served} batches through scan→filter→project→join→agg, \
         allocations across the {steady} steady-state batches: {allocated}"
    );
    assert!(steady >= 64, "window must cover >=64 steady-state batches, got {steady}");
    assert_eq!(allocated, 0, "steady-state pipeline must not allocate (operator outputs included)");
}

// ---------------------------------------------------------------------------
// criterion wrapper
// ---------------------------------------------------------------------------

fn bench(c: &mut Criterion) {
    alloc_experiment();
    skew_experiment();

    // Light criterion timings for the record (pure CPU, no stall model).
    let n = 1 << 19;
    let hot = skewed_hot(n);
    let (table, pool) = build_table(n, 16 * 1024, &hot);
    let mut g = c.benchmark_group("c15_morsel");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(100));
    g.bench_function("skewed_scan_static_dop4", |b| {
        b.iter(|| run_skew(black_box(&table), &pool, &Scheme::StaticRanges, 0).2)
    });
    g.bench_function("skewed_scan_morsel_dop4", |b| {
        b.iter(|| run_skew(black_box(&table), &pool, &Scheme::Morsel { rows: 16 * 1024 }, 0).2)
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    benches();
}
