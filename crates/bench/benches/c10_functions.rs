//! C10: rewriter-expanded vs kernel-native SQL functions.
use vw_bench::tpch::load_lineitem;
use vw_core::Database;

fn bench(c: &mut Criterion) {
    let db = Database::open_in_memory();
    load_lineitem(&db, 20_000, 10);
    let mut g = c.benchmark_group("c10");
    quick(&mut g);
    g.bench_function("kernel_upper_like", |b| {
        b.iter(|| {
            db.execute("SELECT COUNT(*) FROM lineitem WHERE UPPER(l_returnflag) = 'A'").unwrap()
        })
    });
    g.bench_function("rewriter_coalesce", |b| {
        b.iter(|| db.execute("SELECT SUM(COALESCE(l_quantity, 0)) FROM lineitem").unwrap())
    });
    g.finish();
}

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(g: &mut criterion::BenchmarkGroup<criterion::measurement::WallTime>) {
    g.sample_size(10)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(150));
}

criterion_group!(benches, bench);
criterion_main!(benches);
