//! C5: rewriter-parallelized aggregation (structure; 1 physical core host).
use vw_bench::tpch::load_lineitem;
use vw_core::Database;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c5");
    quick(&mut g);
    for dop in [1usize, 4] {
        let db = Database::open_in_memory();
        load_lineitem(&db, 20_000, 5);
        db.execute(&format!("SET parallelism = {dop}")).unwrap();
        g.bench_function(format!("group_agg_dop{dop}"), |b| {
            b.iter(|| {
                db.execute(
                    "SELECT l_returnflag, SUM(l_quantity) FROM lineitem GROUP BY l_returnflag",
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(g: &mut criterion::BenchmarkGroup<criterion::measurement::WallTime>) {
    g.sample_size(10)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(150));
}

criterion_group!(benches, bench);
criterion_main!(benches);
