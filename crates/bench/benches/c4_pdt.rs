//! C4: PDT positional update + merge costs.
use vw_common::Value;
use vw_pdt::{store::items, PdtStore};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c4");
    quick(&mut g);
    g.bench_function("apply_1k_updates_on_100k", |b| {
        b.iter(|| {
            let store = PdtStore::new(100_000);
            let mut t = store.begin();
            for i in 0..1000u64 {
                let pos = (i * 7919) % t.n_rows();
                match i % 3 {
                    0 => t.delete_at(pos).unwrap(),
                    1 => t.insert_at(pos, vec![Value::I64(i as i64)]).unwrap(),
                    _ => t.update_at(pos, 0, Value::I64(1)).unwrap(),
                }
            }
            store.commit(t).unwrap()
        })
    });
    let store = PdtStore::new(100_000);
    let mut t = store.begin();
    for i in 0..5000u64 {
        let pos = (i * 7919) % t.n_rows();
        t.update_at(pos, 0, Value::I64(1)).unwrap();
    }
    store.commit(t).unwrap();
    g.bench_function("merge_stream_5k_deltas", |b| {
        b.iter(|| {
            let (root, _, _) = store.snapshot();
            items(&root).len()
        })
    });
    g.finish();
}

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(g: &mut criterion::BenchmarkGroup<criterion::measurement::WallTime>) {
    g.sample_size(10)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(150));
}

criterion_group!(benches, bench);
criterion_main!(benches);
