//! C14: radix-partitioned parallel hash build vs the serial `FlatTable`
//! build — the "when more cores hurts" experiment.
//!
//! The serial baseline is PR 1's flat-table build: stream key batches,
//! hash, insert into one chain-mode table, then one `finalize()` counting
//! sort into the CSR layout. The partitioned contender is PR 3's
//! machinery: the same batches are radix-split by their hash top bits and
//! scattered to `P = 4` shard workers (`ShardSet`), each inserting into
//! and finalizing a private table `P`× smaller — so the heavy random-write
//! phases run on `P` threads over `P`× more cache-resident working sets.
//!
//! Also proves the acceptance criterion that the steady-state partitioned
//! *probe* loop (hash → radix split → per-shard fused probe) performs
//! **zero heap allocations** once warm (counting global allocator, same
//! technique as C12/C13).

use criterion::{black_box, criterion_group, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use vw_common::hash::hash_u64;
use vw_exec::cancel::CancelToken;
use vw_exec::hashtable::{FlatTable, ProbeBuf};
use vw_exec::partition::{RadixRouter, ShardSet, ShardWorker};

// ---------------------------------------------------------------------------
// counting allocator (steady-state allocation proof)
// ---------------------------------------------------------------------------

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------------------
// workload
// ---------------------------------------------------------------------------

/// Batch granularity of the build/probe streams (operator vector size ×64,
/// keeping the scatter per-batch work realistic without drowning in loop
/// overhead).
const VECTOR: usize = 1 << 14;

/// Radix partitions / worker threads ("DOP 4" in the acceptance run).
const SHARDS: usize = 4;

fn gen_keys(n: usize, domain: i64, seed: u64) -> Vec<i64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..domain)).collect()
}

fn chunks(keys: &[i64]) -> Vec<&[i64]> {
    keys.chunks(VECTOR).collect()
}

/// One partition's build side for the bench: keys + staged hashes,
/// bulk-built into the private table at finish (the operator's design).
struct BuildShard {
    keys: Vec<i64>,
    hashes: Vec<u64>,
    table: FlatTable,
}

struct Packet {
    keys: Vec<i64>,
    hashes: Vec<u64>,
}

impl ShardWorker for BuildShard {
    type Packet = Packet;
    type Output = BuildShard;

    fn absorb(&mut self, pkt: Packet) -> vw_common::Result<()> {
        self.keys.extend_from_slice(&pkt.keys);
        self.hashes.extend_from_slice(&pkt.hashes);
        Ok(())
    }

    fn finish(mut self) -> vw_common::Result<BuildShard> {
        self.table = FlatTable::build_csr(&self.hashes);
        self.hashes = Vec::new();
        Ok(self)
    }
}

/// PR 1's serial build — the baseline: stream batches through chain-mode
/// `insert_batch` (incremental directory doublings included), then one
/// `finalize()` counting sort.
fn serial_build(batches: &[&[i64]]) -> (FlatTable, Vec<i64>) {
    let mut keys: Vec<i64> = Vec::new();
    let mut table = FlatTable::new();
    let mut hashes: Vec<u64> = Vec::new();
    for b in batches {
        hashes.clear();
        hashes.extend(b.iter().map(|&k| hash_u64(k as u64)));
        keys.extend_from_slice(b);
        table.insert_batch(&hashes, None);
    }
    table.finalize();
    (table, keys)
}

/// The serial half of PR 3's redesign: stage all hashes, then one bulk
/// CSR construction (what the operator's serial path now does).
fn serial_bulk_build(batches: &[&[i64]]) -> (FlatTable, Vec<i64>) {
    let mut keys: Vec<i64> = Vec::new();
    let mut hashes: Vec<u64> = Vec::new();
    for b in batches {
        hashes.extend(b.iter().map(|&k| hash_u64(k as u64)));
        keys.extend_from_slice(b);
    }
    (FlatTable::build_csr(&hashes), keys)
}

/// PR 3's partitioned build: hash, radix-scatter to P workers, P parallel
/// bulk CSR constructions over P× smaller tables.
fn partitioned_build(batches: &[&[i64]], shards: usize) -> (RadixRouter, Vec<BuildShard>) {
    let mut router = RadixRouter::new(shards);
    let workers: Vec<BuildShard> = (0..router.partitions())
        .map(|_| BuildShard { keys: Vec::new(), hashes: Vec::new(), table: FlatTable::new() })
        .collect();
    let mut set = ShardSet::spawn(workers, &CancelToken::new());
    let mut hashes: Vec<u64> = Vec::new();
    for b in batches {
        hashes.clear();
        hashes.extend(b.iter().map(|&k| hash_u64(k as u64)));
        router.split(&hashes, None, b.len());
        for si in 0..router.partitions() {
            let sel = router.shard_sel(si);
            if sel.is_empty() {
                continue;
            }
            let pkt = Packet {
                keys: sel.iter().map(|p| b[p]).collect(),
                hashes: sel.iter().map(|p| hashes[p]).collect(),
            };
            set.send(si, pkt).unwrap();
        }
    }
    (router, set.finish().unwrap())
}

/// Reusable partitioned-probe scratch, mirroring the operator's.
#[derive(Default)]
struct ProbeScratch {
    hashes: Vec<u64>,
    flags: Vec<bool>,
    out_probe: Vec<u32>,
    out_build: Vec<u32>,
    buf: ProbeBuf,
    steps: u64,
}

/// Probe every batch partition-wise; returns total matched pairs.
fn partitioned_probe(
    router: &mut RadixRouter,
    shards: &[BuildShard],
    batches: &[&[i64]],
    s: &mut ProbeScratch,
) -> u64 {
    let mut pairs = 0u64;
    for b in batches {
        let n = b.len();
        s.hashes.clear();
        s.hashes.extend(b.iter().map(|&k| hash_u64(k as u64)));
        if s.flags.len() < n {
            s.flags.resize(n, false);
        }
        s.flags[..n].fill(false);
        s.out_probe.clear();
        s.out_build.clear();
        router.split(&s.hashes, None, n);
        for (si, shard) in shards.iter().enumerate() {
            let sel = router.shard_sel(si);
            if sel.is_empty() {
                continue;
            }
            let hashes = &s.hashes;
            let keys = &shard.keys;
            shard.table.probe_join(
                n,
                Some(sel),
                true,
                |p| hashes[p],
                |p, row| b[p] == keys[row as usize],
                &mut s.flags,
                &mut s.out_probe,
                &mut s.out_build,
                &mut s.buf,
                &mut s.steps,
            );
        }
        pairs += s.out_probe.len() as u64;
    }
    pairs
}

/// Serial reference probe over the monolithic table.
fn serial_probe(table: &FlatTable, build_keys: &[i64], batches: &[&[i64]]) -> u64 {
    let mut s = ProbeScratch::default();
    let mut pairs = 0u64;
    for b in batches {
        let n = b.len();
        s.hashes.clear();
        s.hashes.extend(b.iter().map(|&k| hash_u64(k as u64)));
        if s.flags.len() < n {
            s.flags.resize(n, false);
        }
        s.flags[..n].fill(false);
        s.out_probe.clear();
        s.out_build.clear();
        let hashes = &s.hashes;
        table.probe_join(
            n,
            None,
            true,
            |p| hashes[p],
            |p, row| b[p] == build_keys[row as usize],
            &mut s.flags,
            &mut s.out_probe,
            &mut s.out_build,
            &mut s.buf,
            &mut s.steps,
        );
        pairs += s.out_probe.len() as u64;
    }
    pairs
}

// ---------------------------------------------------------------------------
// acceptance criteria: correctness, allocation-freedom, build speedup
// ---------------------------------------------------------------------------

/// Partitioned build + probe must find exactly the pairs the serial path
/// finds, and the steady-state partitioned probe loop must not allocate.
fn correctness_and_alloc_check() {
    let n = 1 << 20;
    let build_keys = gen_keys(n, n as i64 / 2, 11);
    let probe_keys = gen_keys(1 << 18, n as i64, 13); // ~50% match rate
    let build_batches = chunks(&build_keys);
    let probe_batches = chunks(&probe_keys);

    let (table, keys) = serial_build(&build_batches);
    let (mut router, shards) = partitioned_build(&build_batches, SHARDS);
    let total: usize = shards.iter().map(|s| s.table.len()).sum();
    assert_eq!(total, n, "every build row landed in exactly one shard");

    let expect = serial_probe(&table, &keys, &probe_batches);
    let mut s = ProbeScratch::default();
    // Warm pass sizes every reused buffer (scratch, router sels, probe
    // staging) — exactly the operator's first-batch behaviour.
    let warm = partitioned_probe(&mut router, &shards, &probe_batches, &mut s);
    assert_eq!(warm, expect, "partitioned probe diverged from serial");

    let before = ALLOCS.load(Ordering::Relaxed);
    let mut pairs = 0u64;
    for _ in 0..16 {
        pairs += partitioned_probe(&mut router, &shards, &probe_batches, &mut s);
    }
    let allocated = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(pairs, expect * 16);
    assert_eq!(allocated, 0, "steady-state partitioned probe loop must not allocate");
    println!(
        "partitioned probe: {expect} pairs/pass, allocations over 16 steady-state passes: \
         {allocated} (OK)"
    );
}

/// One timed three-way comparison, printed as speedup lines (the
/// acceptance observable at 8M rows / DOP 4). Every variant runs one
/// untimed warm-up pass first so page-fault noise doesn't masquerade as a
/// parallel speedup.
fn build_speedup(n: usize, reps: usize) -> f64 {
    let build_keys = gen_keys(n, n as i64 / 2, 7);
    let batches = chunks(&build_keys);
    let time = |f: &mut dyn FnMut() -> usize| {
        black_box(f()); // warm-up: fault pages in, size the allocator pools
        let t0 = Instant::now();
        for _ in 0..reps {
            black_box(f());
        }
        t0.elapsed()
    };
    let serial = time(&mut || serial_build(&batches).0.len());
    let bulk = time(&mut || serial_bulk_build(&batches).0.len());
    let part = time(&mut || partitioned_build(&batches, SHARDS).1.len());
    let speedup = serial.as_secs_f64() / part.as_secs_f64();
    let ms = |d: Duration| d.as_secs_f64() * 1e3 / reps as f64;
    println!(
        "build {:>9} rows: serial(PR1 insert+finalize) {:>8.1}ms  serial(bulk CSR) {:>8.1}ms  \
         partitioned(x{SHARDS}) {:>8.1}ms  speedup vs PR1 {:.2}x",
        n,
        ms(serial),
        ms(bulk),
        ms(part),
        speedup
    );
    speedup
}

fn bench(c: &mut Criterion) {
    correctness_and_alloc_check();

    // The headline acceptance numbers (1M–16M rows).
    for (n, reps) in [(1 << 20, 3), (8 << 20, 1), (16 << 20, 1)] {
        build_speedup(n, reps);
    }

    let mut g = c.benchmark_group("c14_partitioned");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(100));

    for &n in &[1usize << 20, 8 << 20] {
        let build_keys = gen_keys(n, n as i64 / 2, 7);
        let batches = chunks(&build_keys);
        g.bench_function(format!("serial_build_{n}"), |b| {
            b.iter(|| serial_build(black_box(&batches)).0.len())
        });
        g.bench_function(format!("partitioned_build_x{SHARDS}_{n}"), |b| {
            b.iter(|| partitioned_build(black_box(&batches), SHARDS).1.len())
        });
    }

    // Probe comparison at 1M build rows: monolithic vs partition-wise.
    {
        let n = 1 << 20;
        let build_keys = gen_keys(n, n as i64 / 2, 7);
        let probe_keys = gen_keys(1 << 18, n as i64, 9);
        let build_batches = chunks(&build_keys);
        let probe_batches = chunks(&probe_keys);
        let (table, keys) = serial_build(&build_batches);
        let (mut router, shards) = partitioned_build(&build_batches, SHARDS);
        let mut s = ProbeScratch::default();
        g.bench_function("serial_probe_1m", |b| {
            b.iter(|| serial_probe(&table, &keys, black_box(&probe_batches)))
        });
        g.bench_function(format!("partitioned_probe_x{SHARDS}_1m"), |b| {
            b.iter(|| partitioned_probe(&mut router, &shards, black_box(&probe_batches), &mut s))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    benches();
}
