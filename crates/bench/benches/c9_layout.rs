//! C9: DSM vs PAX column-subset scans.
use std::sync::Arc;
use vw_bench::tpch::gen_lineitem;
use vw_common::{Field, Schema, TypeId};
use vw_storage::{BufferPool, Layout, SimulatedDisk, TableStorage};

fn bench(c: &mut Criterion) {
    let cols = gen_lineitem(50_000, 9).into_columns();
    let schema = Schema::new(vec![
        Field::not_null("a", TypeId::I64),
        Field::not_null("b", TypeId::I64),
        Field::not_null("q", TypeId::I64),
        Field::not_null("p", TypeId::F64),
        Field::not_null("d", TypeId::F64),
        Field::not_null("t", TypeId::F64),
        Field::not_null("rf", TypeId::Str),
        Field::not_null("ls", TypeId::Str),
        Field::not_null("sd", TypeId::Date),
    ])
    .unwrap();
    let nulls = vec![None; 9];
    let mut g = c.benchmark_group("c9");
    quick(&mut g);
    for (name, layout) in [("dsm", Layout::Dsm), ("pax", Layout::Pax)] {
        let disk = SimulatedDisk::instant();
        let mut t = TableStorage::new(disk.clone(), schema.clone(), layout);
        t.append_columns(&cols, &nulls, 16 * 1024).unwrap();
        let t = Arc::new(t);
        let pool = BufferPool::new(disk, 1 << 16);
        g.bench_function(format!("{name}_scan_1of9"), |b| {
            b.iter(|| {
                for p in 0..t.n_packs() {
                    std::hint::black_box(t.read_pack(&pool, p, &[0]).unwrap());
                }
            })
        });
    }
    g.finish();
}

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(g: &mut criterion::BenchmarkGroup<criterion::measurement::WallTime>) {
    g.sample_size(10)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(150));
}

criterion_group!(benches, bench);
criterion_main!(benches);
