//! C2: PFOR/PFOR-DELTA/PDICT compress + decompress throughput.
use vw_compress::{compress_with, decompress_into, Encoding};

fn bench(c: &mut Criterion) {
    let n = 64 * 1024;
    let sorted: Vec<i64> = (0..n as i64).map(|i| 1_000_000 + i * 7).collect();
    let small: Vec<i64> = (0..n as i64).map(|i| (i * 2654435761) % 1000).collect();
    let mut g = c.benchmark_group("c2");
    quick(&mut g);
    for (name, data, enc) in [
        ("pfor_small", &small, Encoding::Pfor),
        ("pfordelta_sorted", &sorted, Encoding::PforDelta),
        ("dict_small", &small, Encoding::Dict),
        ("raw", &small, Encoding::Raw),
    ] {
        g.bench_function(format!("compress_{name}"), |b| {
            b.iter(|| compress_with(data, enc).unwrap())
        });
        let compressed = compress_with(data, enc).unwrap();
        let mut out = Vec::new();
        g.bench_function(format!("decompress_{name}"), |b| {
            b.iter(|| decompress_into(&compressed, &mut out).unwrap())
        });
    }
    g.finish();
}

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(g: &mut criterion::BenchmarkGroup<criterion::measurement::WallTime>) {
    g.sample_size(10)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(150));
}

criterion_group!(benches, bench);
criterion_main!(benches);
