//! C13: compiled expression programs vs. the tree-walking interpreter.
//!
//! Reproduces the expression-evaluation experiment behind the `ExprProgram`
//! redesign: the interpreter re-matches every node, re-fills every constant
//! through a per-value `push_value` loop, and allocates a fresh output
//! vector per node per batch; the compiled program dispatches a flat
//! instruction list into pooled registers. Measured at 1K / 64K / 1M rows,
//! plus the fused select path, plus the acceptance-criterion proof that the
//! steady-state per-batch `run` loop performs **zero heap allocations**
//! (counting global allocator, same technique as C12).

use criterion::{black_box, criterion_group, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use vw_common::{ColData, TypeId, Value};
use vw_exec::expr::{BinOp, CmpOp, ExprCtx, PhysExpr};
use vw_exec::program::{ExprProgram, SelectProgram, VectorPool};
use vw_exec::vector::Batch;
use vw_exec::Vector;

// ---------------------------------------------------------------------------
// counting allocator (steady-state allocation proof)
// ---------------------------------------------------------------------------

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------------------
// workload
// ---------------------------------------------------------------------------

fn batch(n: usize, seed: u64) -> Batch {
    let mut rng = SmallRng::seed_from_u64(seed);
    let x: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000..1000)).collect();
    let y: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000..1000)).collect();
    Batch::new(vec![Vector::new(ColData::I64(x)), Vector::new(ColData::I64(y))])
}

fn col(i: usize) -> PhysExpr {
    PhysExpr::ColRef(i, TypeId::I64)
}

fn lit(k: i64) -> PhysExpr {
    PhysExpr::Const(Value::I64(k), TypeId::I64)
}

fn arith(op: BinOp, l: PhysExpr, r: PhysExpr) -> PhysExpr {
    PhysExpr::Arith { op, lhs: Box::new(l), rhs: Box::new(r), ty: TypeId::I64 }
}

/// The measured expression: `(x + y) * 2 + (x + y) / 7` — five interior
/// nodes in the tree; the compiled program CSEs the shared `(x + y)` and
/// folds nothing away, so both engines do the same arithmetic.
fn expr() -> PhysExpr {
    let sum = arith(BinOp::Add, col(0), col(1));
    arith(BinOp::Add, arith(BinOp::Mul, sum.clone(), lit(2)), arith(BinOp::Div, sum, lit(7)))
}

/// The measured predicate: `x > 100 AND y < 500 AND (x + y) % 3 = 0` — two
/// typed select steps plus one boolean program, chained selectively.
fn pred() -> PhysExpr {
    PhysExpr::And(vec![
        PhysExpr::Cmp { op: CmpOp::Gt, lhs: Box::new(col(0)), rhs: Box::new(lit(100)) },
        PhysExpr::Cmp { op: CmpOp::Lt, lhs: Box::new(col(1)), rhs: Box::new(lit(500)) },
        PhysExpr::Cmp {
            op: CmpOp::Eq,
            lhs: Box::new(arith(BinOp::Rem, arith(BinOp::Add, col(0), col(1)), lit(3))),
            rhs: Box::new(lit(0)),
        },
    ])
}

fn checksum(v: &Vector) -> i64 {
    v.data.as_i64().iter().fold(0i64, |a, &b| a.wrapping_add(b))
}

// ---------------------------------------------------------------------------
// acceptance criterion: zero allocations in the steady-state run loop
// ---------------------------------------------------------------------------

fn steady_state_alloc_check() {
    let e = expr();
    let ctx = ExprCtx::default();
    let prog = ExprProgram::compile(&e, &ctx);
    let b = batch(1 << 16, 42);
    let mut pool = VectorPool::new();
    // Warm the register arena, then measure 64 steady-state batches.
    let vr = prog.run(&mut pool, &b).unwrap();
    let warm = checksum(pool.get(&b, vr));
    pool.recycle();
    let before = ALLOCS.load(Ordering::Relaxed);
    let mut acc = 0i64;
    for _ in 0..64 {
        let vr = prog.run(&mut pool, &b).unwrap();
        acc = acc.wrapping_add(checksum(pool.get(&b, vr)));
        pool.recycle();
    }
    let allocated = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(acc, warm.wrapping_mul(64));
    assert_eq!(allocated, 0, "steady-state compiled expression loop must not allocate");
    println!("steady-state program.run allocations over 64 batches: {allocated} (OK)");
}

fn bench(c: &mut Criterion) {
    steady_state_alloc_check();

    let ctx = ExprCtx::default();
    let e = expr();
    let prog = ExprProgram::compile(&e, &ctx);
    let p = pred();
    let sel_prog = SelectProgram::compile(&p, &ctx);

    let mut g = c.benchmark_group("c13_exprprog");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150));

    for &n in &[1usize << 10, 1 << 16, 1 << 20] {
        let b = batch(n, 7);
        // Correctness cross-check before timing anything.
        let mut pool = VectorPool::new();
        let vr = prog.run(&mut pool, &b).unwrap();
        let want = checksum(&e.eval(&b, &ctx).unwrap());
        assert_eq!(checksum(pool.get(&b, vr)), want, "engines disagree");
        pool.recycle();

        g.bench_function(format!("tree_interp_{n}"), |bench| {
            bench.iter(|| checksum(&e.eval(black_box(&b), &ctx).unwrap()))
        });
        g.bench_function(format!("compiled_prog_{n}"), |bench| {
            bench.iter(|| {
                let vr = prog.run(&mut pool, black_box(&b)).unwrap();
                let s = checksum(pool.get(&b, vr));
                pool.recycle();
                s
            })
        });

        let interp_sel = p.eval_select(&b, &ctx).unwrap().len();
        let compiled_sel = sel_prog.run(&mut pool, &b).unwrap();
        assert_eq!(compiled_sel.len(), interp_sel, "select paths disagree");
        pool.put_sel(compiled_sel);
        pool.recycle();
        g.bench_function(format!("tree_select_{n}"), |bench| {
            bench.iter(|| p.eval_select(black_box(&b), &ctx).unwrap().len())
        });
        g.bench_function(format!("fused_select_{n}"), |bench| {
            bench.iter(|| {
                let s = sel_prog.run(&mut pool, black_box(&b)).unwrap();
                let out = s.len();
                pool.put_sel(s);
                // Release the boolean sub-program's result slot, exactly
                // as an operator would at end of batch — without this the
                // arena grows by one leased slot per iteration.
                pool.recycle();
                out
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    benches();
}
