//! C3: cooperative scan policies under concurrency.
use vw_bench::experiments::c3 as run_c3;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c3");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(200));
    g.bench_function("three_policies_16x4", |b| b.iter(|| run_c3(16, 4, 3)));
    g.finish();
}

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

criterion_group!(benches, bench);
criterion_main!(benches);
