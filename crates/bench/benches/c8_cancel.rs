//! C8: cancellation check overhead + end-to-end latency (see repro for the
//! kill-mid-join latency table).
use vw_exec::CancelToken;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c8");
    quick(&mut g);
    let t = CancelToken::new();
    g.bench_function("token_check_per_vector", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                t.check().unwrap();
            }
        })
    });
    g.finish();
}

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(g: &mut criterion::BenchmarkGroup<criterion::measurement::WallTime>) {
    g.sample_size(10)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(150));
}

criterion_group!(benches, bench);
criterion_main!(benches);
