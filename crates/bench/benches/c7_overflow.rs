//! C7: overflow-checking strategies.
use vw_common::config::CheckMode;
use vw_exec::primitives::add_i64;

fn bench(c: &mut Criterion) {
    let n = 64 * 1024;
    let a: Vec<i64> = (0..n as i64).collect();
    let bb: Vec<i64> = (0..n as i64).map(|i| i * 3).collect();
    let mut out = Vec::with_capacity(n);
    let mut g = c.benchmark_group("c7");
    quick(&mut g);
    for (name, mode) in [
        ("unchecked", CheckMode::Unchecked),
        ("naive", CheckMode::Naive),
        ("lazy_vectorized", CheckMode::Lazy),
    ] {
        g.bench_function(name, |b| b.iter(|| add_i64(&a, &bb, None, &mut out, mode).unwrap()));
    }
    g.finish();
}

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(g: &mut criterion::BenchmarkGroup<criterion::measurement::WallTime>) {
    g.sample_size(10)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(150));
}

criterion_group!(benches, bench);
criterion_main!(benches);
