//! C11: monitoring/profiling overhead per query.
use vw_bench::tpch::load_lineitem;
use vw_core::Database;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("c11");
    quick(&mut g);
    for (name, on) in [("monitoring_on", 1), ("monitoring_off", 0)] {
        let db = Database::open_in_memory();
        load_lineitem(&db, 20_000, 11);
        db.execute(&format!("SET profiling = {on}")).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                db.execute("SELECT SUM(l_quantity) FROM lineitem WHERE l_quantity < 25").unwrap()
            })
        });
    }
    g.finish();
}

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(g: &mut criterion::BenchmarkGroup<criterion::measurement::WallTime>) {
    g.sample_size(10)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(150));
}

criterion_group!(benches, bench);
criterion_main!(benches);
