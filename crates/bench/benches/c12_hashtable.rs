//! C12: flat vectorized hash table vs. the old `FxHashMap<u64, Vec<u32>>`.
//!
//! Reproduces the operator-internal data-structure experiment behind the
//! hash join / aggregation rewrite: build and probe throughput at varying
//! build cardinalities and probe match rates, old-map baseline vs. the
//! [`vw_exec::hashtable::FlatTable`]. Also proves the acceptance criterion
//! that the steady-state vectorized probe loop performs **zero heap
//! allocations** once its scratch buffers are warm, via a counting global
//! allocator.

use criterion::{black_box, criterion_group, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use vw_common::hash::{hash_u64, FxHashMap};
use vw_common::ColData;
use vw_exec::hashtable::{self, FlatTable};
use vw_exec::Vector;

// ---------------------------------------------------------------------------
// counting allocator (steady-state allocation proof)
// ---------------------------------------------------------------------------

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------------------
// workload
// ---------------------------------------------------------------------------

const VECTOR: usize = 1024;

/// Build-side keys: `n` uniform draws from a `2n` domain (≈ half distinct).
fn build_keys(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..2 * n as i64)).collect()
}

/// Probe keys with roughly `match_pct`% of lanes drawn from the build
/// domain and the rest guaranteed misses.
fn probe_keys(n_probe: usize, build_domain: i64, match_pct: usize, seed: u64) -> Vec<i64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n_probe)
        .map(|_| {
            if rng.gen_range(0..100usize) < match_pct {
                rng.gen_range(0..build_domain)
            } else {
                build_domain + rng.gen_range(0..build_domain)
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// old-map baseline: FxHashMap<u64, Vec<u32>> exactly as the old operators
// kept it — bucket Vec per distinct hash, tuple-at-a-time probe.
// ---------------------------------------------------------------------------

fn map_build(keys: &[i64]) -> FxHashMap<u64, Vec<u32>> {
    let mut table: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    for (i, &k) in keys.iter().enumerate() {
        table.entry(hash_u64(k as u64)).or_default().push(i as u32);
    }
    table
}

fn map_probe(table: &FxHashMap<u64, Vec<u32>>, build: &[i64], probe: &[i64]) -> u64 {
    let mut hits = 0u64;
    for &k in probe {
        if let Some(bucket) = table.get(&hash_u64(k as u64)) {
            for &r in bucket {
                if build[r as usize] == k {
                    hits += 1;
                }
            }
        }
    }
    hits
}

// ---------------------------------------------------------------------------
// flat table: vectorized build + probe through the real kernels
// ---------------------------------------------------------------------------

struct FlatSide {
    table: FlatTable,
    keys: Vec<Vector>,
}

fn flat_build(keys: &[i64]) -> FlatSide {
    let mut table = FlatTable::with_capacity(keys.len());
    let key_vec = vec![Vector::new(ColData::I64(keys.to_vec()))];
    let (mut lanes, mut hashes) = (Vec::new(), Vec::new());
    for chunk in keys.chunks(VECTOR) {
        let chunk_vec = vec![Vector::new(ColData::I64(chunk.to_vec()))];
        hashtable::hash_keys(&chunk_vec, chunk.len(), false, &mut lanes, &mut hashes);
        table.insert_batch(&hashes, None);
    }
    table.finalize();
    FlatSide { table, keys: key_vec }
}

/// Reusable probe scratch mirroring the operator's (allocation-free once
/// warm).
#[derive(Default)]
struct Scratch {
    buf: hashtable::ProbeBuf,
    matched_flags: Vec<bool>,
    out_probe: Vec<u32>,
    out_build: Vec<u32>,
}

/// The vectorized probe loop over pre-chunked probe vectors; the counted /
/// timed region is exactly what the operators run per batch — the fused
/// single-column i64 kernel (`FlatTable::probe_join`) with reused scratch.
fn flat_probe(side: &FlatSide, chunks: &[Vec<Vector>], s: &mut Scratch) -> u64 {
    let mut hits = 0u64;
    let mut steps = 0u64;
    let build = side.keys[0].data.as_i64();
    for chunk in chunks {
        let n = chunk[0].len();
        if s.matched_flags.len() < n {
            s.matched_flags.resize(n, false);
        }
        s.matched_flags[..n].fill(false);
        s.out_probe.clear();
        s.out_build.clear();
        let probe = chunk[0].data.as_i64();
        side.table.probe_join(
            n,
            None,
            true,
            |p| hash_u64(probe[p] as u64),
            |p, row| probe[p] == build[row as usize],
            &mut s.matched_flags,
            &mut s.out_probe,
            &mut s.out_build,
            &mut s.buf,
            &mut steps,
        );
        hits += s.out_probe.len() as u64;
    }
    hits
}

fn chunked(probe: &[i64]) -> Vec<Vec<Vector>> {
    probe.chunks(VECTOR).map(|c| vec![Vector::new(ColData::I64(c.to_vec()))]).collect()
}

/// Acceptance check: after one warm-up pass, a full probe pass over 64
/// batches must allocate nothing.
fn steady_state_alloc_check() {
    let n = 1 << 16;
    let build = build_keys(n, 1);
    let side = flat_build(&build);
    let probe = probe_keys(64 * VECTOR, 2 * n as i64, 50, 2);
    let chunks = chunked(&probe);
    let mut s = Scratch::default();
    let warm = flat_probe(&side, &chunks, &mut s); // warm the scratch
    let before = ALLOCS.load(Ordering::Relaxed);
    let hits = flat_probe(&side, &chunks, &mut s);
    let allocated = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(hits, warm);
    assert_eq!(allocated, 0, "steady-state vectorized probe loop must not allocate");
    println!("steady-state probe allocations over 64 batches: {allocated} (OK)");
}

fn bench(c: &mut Criterion) {
    steady_state_alloc_check();

    let mut g = c.benchmark_group("c12_hashtable");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150));

    for &n in &[1usize << 12, 1 << 16, 1 << 20] {
        let build = build_keys(n, 1);
        g.bench_function(format!("build_map_{n}"), |b| {
            b.iter(|| black_box(map_build(&build)).len())
        });
        g.bench_function(format!("build_flat_{n}"), |b| {
            b.iter(|| black_box(flat_build(&build)).table.len())
        });

        let map = map_build(&build);
        let flat = flat_build(&build);
        let mut s = Scratch::default();
        for &pct in &[95usize, 50, 5] {
            let probe = probe_keys(64 * VECTOR, 2 * n as i64, pct, 7);
            let chunks = chunked(&probe);
            let expect = map_probe(&map, &build, &probe);
            assert_eq!(flat_probe(&flat, &chunks, &mut s), expect, "probe results differ");
            g.bench_function(format!("probe_map_{n}_match{pct}"), |b| {
                b.iter(|| black_box(map_probe(&map, &build, &probe)))
            });
            g.bench_function(format!("probe_flat_{n}_match{pct}"), |b| {
                b.iter(|| black_box(flat_probe(&flat, &chunks, &mut s)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    benches();
}
