//! Ablation: selection vectors vs eager materialization.
use vw_common::{ColData, TypeId, Value};
use vw_exec::expr::{BinOp, CmpOp, ExprCtx, PhysExpr};
use vw_exec::{Batch, Vector};

fn bench(c: &mut Criterion) {
    let n = 64 * 1024;
    let batch = Batch::new(vec![
        Vector::new(ColData::I64((0..n as i64).collect())),
        Vector::new(ColData::I64(vec![2; n])),
    ]);
    let ctx = ExprCtx::default();
    let mul = PhysExpr::Arith {
        op: BinOp::Mul,
        lhs: Box::new(PhysExpr::ColRef(0, TypeId::I64)),
        rhs: Box::new(PhysExpr::ColRef(1, TypeId::I64)),
        ty: TypeId::I64,
    };
    let mut g = c.benchmark_group("select_ablation");
    quick(&mut g);
    for pct in [10usize, 90] {
        let pred = PhysExpr::Cmp {
            op: CmpOp::Lt,
            lhs: Box::new(PhysExpr::ColRef(0, TypeId::I64)),
            rhs: Box::new(PhysExpr::Const(Value::I64((n * pct / 100) as i64), TypeId::I64)),
        };
        g.bench_function(format!("selvec_{pct}pct"), |b| {
            b.iter(|| {
                let sel = pred.eval_select(&batch, &ctx).unwrap();
                let mut bb = batch.clone();
                bb.sel = Some(sel);
                mul.eval(&bb, &ctx).unwrap()
            })
        });
        g.bench_function(format!("materialize_{pct}pct"), |b| {
            b.iter(|| {
                let sel = pred.eval_select(&batch, &ctx).unwrap();
                let mut bb = batch.clone();
                bb.sel = Some(sel);
                let dense = bb.compact();
                mul.eval(&dense, &ctx).unwrap()
            })
        });
    }
    g.finish();
}

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(g: &mut criterion::BenchmarkGroup<criterion::measurement::WallTime>) {
    g.sample_size(10)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(150));
}

criterion_group!(benches, bench);
criterion_main!(benches);
