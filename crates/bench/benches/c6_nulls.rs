//! C6: two-column vs branchy NULL handling.
use vw_common::config::{CheckMode, NullMode};
use vw_common::{ColData, TypeId};
use vw_exec::expr::{BinOp, ExprCtx, PhysExpr};
use vw_exec::{Batch, Vector};

fn bench(c: &mut Criterion) {
    let n = 64 * 1024;
    let mask: Vec<bool> = (0..n).map(|i| i % 10 == 0).collect();
    let batch = Batch::new(vec![
        Vector::with_nulls(ColData::I64((0..n as i64).collect()), Some(mask)),
        Vector::new(ColData::I64(vec![3; n])),
    ]);
    let expr = PhysExpr::Arith {
        op: BinOp::Mul,
        lhs: Box::new(PhysExpr::ColRef(0, TypeId::I64)),
        rhs: Box::new(PhysExpr::ColRef(1, TypeId::I64)),
        ty: TypeId::I64,
    };
    let mut g = c.benchmark_group("c6");
    quick(&mut g);
    for (name, mode) in [("two_column", NullMode::TwoColumn), ("branchy", NullMode::Branchy)] {
        let ctx = ExprCtx { check: CheckMode::Lazy, null_mode: mode };
        g.bench_function(name, |b| b.iter(|| expr.eval(&batch, &ctx).unwrap()));
    }
    g.finish();
}

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick(g: &mut criterion::BenchmarkGroup<criterion::measurement::WallTime>) {
    g.sample_size(10)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(150));
}

criterion_group!(benches, bench);
criterion_main!(benches);
