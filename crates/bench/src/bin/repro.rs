//! `repro` — regenerate every experiment table from DESIGN.md §4.
//!
//! Usage: `cargo run --release -p vw-bench --bin repro [-- --exp c1]`
//! (no argument = all experiments; sizes are laptop-scale by design).

use vw_bench::experiments as ex;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let exp = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_ascii_lowercase());
    let want = |name: &str| exp.as_deref().is_none_or(|e| e == name || e == "all");

    if want("c1") {
        ex::print_table("C1: vectorized vs tuple-at-a-time (Q6-like, 200k rows)", &ex::c1(200_000));
    }
    if want("c2") {
        ex::print_table("C2: compression schemes (1M values)", &ex::c2(1_000_000));
    }
    if want("c3") {
        ex::print_table(
            "C3: cooperative scans (48 chunks, cache 12, 4 concurrent scans)",
            &ex::c3(48, 12, 4),
        );
    }
    if want("c4") {
        ex::print_table("C4: PDT deltas (100k-row table)", &ex::c4(100_000));
    }
    if want("c5") {
        ex::print_table(
            "C5: rewriter parallelization (200k rows; 1 physical core)",
            &ex::c5(200_000),
        );
    }
    if want("c6") {
        ex::print_table("C6: NULL representation (1M values)", &ex::c6(1_000_000));
    }
    if want("c7") {
        ex::print_table("C7: overflow checking (1M values)", &ex::c7(1_000_000));
    }
    if want("c8") {
        ex::print_table("C8: query cancellation latency (50k-row self-join)", &ex::c8(50_000));
    }
    if want("c9") {
        ex::print_table("C9: storage layouts, scan k of 9 columns (100k rows)", &ex::c9(100_000));
    }
    if want("c10") {
        ex::print_table("C10: SQL function battery (100k rows)", &ex::c10(100_000));
    }
    if want("c11") {
        ex::print_table("C11: monitoring overhead (50k rows, 50 queries)", &ex::c11(50_000, 50));
    }
    if want("ablation") || exp.is_none() {
        ex::print_table(
            "Ablation: selection vectors vs materialization (1M rows)",
            &ex::select_ablation(1_000_000),
        );
    }
}
