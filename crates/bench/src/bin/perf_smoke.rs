//! `perf_smoke` — the CI perf-trajectory harness.
//!
//! Runs the short deterministic measurement in
//! `vw_bench::experiments::perf_smoke` (scan→filter→agg, hash join, and a
//! skewed scan→filter→agg at DOP 1 and 4, plus a memory-governed
//! `spill_join` whose build runs ~4× over its budget at DOP 1; fixed
//! seed), the PR 8 `multi_join` scenario (lineitem ⋈ orders ⋈ customer
//! with a selective customer filter, cost-based optimizer on vs off at
//! DOP 1 and 4 — the on/off gap is the optimizer's measured win), the
//! PR 9 `dict_scan_filter_agg` scenario (low-cardinality string
//! filter + GROUP BY with `compressed_exec` on vs off at DOP 1 and 4 —
//! the on/off gap is compressed execution's measured win), then the
//! `concurrent_mix` service scenario (4 sessions sharing one engine's
//! worker pool under admission control, reported as aggregate rows/sec
//! plus p95 statement latency), and writes the numbers to a JSON file
//! CI uploads — `BENCH_pr9.json` by default — so every PR from here on
//! appends a point to the benchmark series.
//!
//! Usage: `cargo run --release -p vw-bench --bin perf_smoke [-- out.json [rows]]`
//! (default 500k rows keeps the whole run around ten seconds).

use std::fmt::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args.get(1).cloned().unwrap_or_else(|| "BENCH_pr9.json".to_string());
    let rows: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(500_000);
    let reps = 3;

    let t0 = std::time::Instant::now();
    let mut metrics = vw_bench::experiments::perf_smoke(rows, reps);
    metrics.extend(vw_bench::experiments::multi_join(rows, reps));
    metrics.extend(vw_bench::experiments::dict_scan_filter_agg(rows, reps));
    let mix = vw_bench::experiments::concurrent_mix(rows, 4);
    let wall = t0.elapsed();

    // Hand-rolled JSON (no serde in the offline image): flat and stable so
    // the artifact series stays trivially diffable across PRs.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"pr\": 9,");
    let _ = writeln!(json, "  \"harness\": \"perf_smoke\",");
    let _ = writeln!(json, "  \"rows\": {rows},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"wall_seconds\": {:.2},", wall.as_secs_f64());
    let _ = writeln!(json, "  \"rows_per_sec\": {{");
    for (i, (name, rps)) in metrics.iter().enumerate() {
        let comma = if i + 1 == metrics.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{name}\": {rps:.0}{comma}");
        println!("{name:<24} {rps:>14.0} rows/sec");
    }
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"concurrent_mix\": {{");
    let _ = writeln!(json, "    \"sessions\": {},", mix.sessions);
    let _ = writeln!(json, "    \"rows_per_sec\": {:.0},", mix.rows_per_sec);
    let _ = writeln!(json, "    \"p95_ms\": {:.2}", mix.p95_ms);
    json.push_str("  }\n}\n");
    println!(
        "concurrent_mix           {:>14.0} rows/sec  (p95 {:.1} ms, {} sessions)",
        mix.rows_per_sec, mix.p95_ms, mix.sessions
    );

    std::fs::write(&out_path, &json).expect("write perf-smoke artifact");
    println!("wrote {out_path} ({:.1}s total)", wall.as_secs_f64());
}
