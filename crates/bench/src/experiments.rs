//! One driver per DESIGN.md experiment (C1..C11). Every driver returns a
//! printable table: `(header, rows)`. The `repro` binary prints them; the
//! Criterion benches time the hot cores.

use crate::tpch::{gen_lineitem, gen_lineitem_rows, load_lineitem};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vw_common::config::{CheckMode, NullMode};
use vw_common::{ColData, Field, Schema, SelVec, TypeId, Value};
use vw_coopscan::{Abm, ChunkSource, ScanPolicy};
use vw_core::Database;
use vw_exec::expr::{BinOp, CmpOp, ExprCtx, PhysExpr};
use vw_exec::op::{drain, AggFunc, AggSpec, HashAggregate, Operator, Select};
use vw_exec::{Batch, CancelToken, Vector};
use vw_volcano::{ScalarExpr, TupleAgg, TupleAggregate, TupleFilter};

/// A printable experiment table.
pub type Table = (Vec<&'static str>, Vec<Vec<String>>);

fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// An operator source that re-serves pre-chunked batches (keeps C1's
/// vectorized measurements free of row-materialization noise).
pub struct BatchSource {
    schema: Schema,
    batches: Arc<Vec<Batch>>,
    pos: usize,
}

impl BatchSource {
    /// Chunk columns into batches of `vector_size`.
    pub fn new(schema: Schema, columns: &[ColData], vector_size: usize) -> BatchSource {
        let n = columns.first().map_or(0, |c| c.len());
        let mut batches = Vec::new();
        let mut start = 0;
        while start < n {
            let end = (start + vector_size).min(n);
            let vecs = columns
                .iter()
                .map(|c| {
                    let mut v = ColData::with_capacity(c.type_id(), end - start);
                    v.extend_from_range(c, start, end);
                    Vector::new(v)
                })
                .collect();
            batches.push(Batch::new(vecs));
            start = end;
        }
        BatchSource { schema, batches: Arc::new(batches), pos: 0 }
    }

    /// A fresh cursor over the same batches.
    pub fn reopen(&self) -> BatchSource {
        BatchSource { schema: self.schema.clone(), batches: self.batches.clone(), pos: 0 }
    }
}

impl Operator for BatchSource {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn name(&self) -> &'static str {
        "BatchSource"
    }
    fn next(&mut self) -> vw_common::Result<Option<Batch>> {
        if self.pos >= self.batches.len() {
            return Ok(None);
        }
        self.pos += 1;
        Ok(Some(self.batches[self.pos - 1].clone()))
    }
}

fn lineitem_schema() -> Schema {
    Schema::new(vec![
        Field::not_null("l_orderkey", TypeId::I64),
        Field::not_null("l_partkey", TypeId::I64),
        Field::not_null("l_quantity", TypeId::I64),
        Field::not_null("l_extendedprice", TypeId::F64),
        Field::not_null("l_discount", TypeId::F64),
        Field::not_null("l_tax", TypeId::F64),
        Field::not_null("l_returnflag", TypeId::Str),
        Field::not_null("l_linestatus", TypeId::Str),
        Field::not_null("l_shipdate", TypeId::Date),
    ])
    .unwrap()
}

fn colref(i: usize, ty: TypeId) -> PhysExpr {
    PhysExpr::ColRef(i, ty)
}

/// Q6 touches quantity, extendedprice, discount, shipdate. Both engines
/// receive exactly these columns: the scan-side projection advantage is
/// measured separately (C9); C1 isolates *execution* style.
pub fn q6_schema() -> Schema {
    Schema::new(vec![
        Field::not_null("l_quantity", TypeId::I64),
        Field::not_null("l_extendedprice", TypeId::F64),
        Field::not_null("l_discount", TypeId::F64),
        Field::not_null("l_shipdate", TypeId::Date),
    ])
    .unwrap()
}

/// Project full lineitem columns down to the Q6 subset.
pub fn q6_projection(cols: &[ColData]) -> Vec<ColData> {
    vec![cols[2].clone(), cols[3].clone(), cols[4].clone(), cols[8].clone()]
}

/// A borrowing tuple source: rows are cloned one at a time, which is the
/// honest per-tuple materialization cost of a Volcano engine.
pub struct TupleRef {
    schema: Schema,
    rows: Arc<Vec<Vec<Value>>>,
    pos: usize,
}

impl TupleRef {
    /// Iterate `rows` without an upfront bulk clone.
    pub fn new(schema: Schema, rows: Arc<Vec<Vec<Value>>>) -> TupleRef {
        TupleRef { schema, rows, pos: 0 }
    }
}

impl vw_volcano::TupleIterator for TupleRef {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn next(&mut self) -> vw_common::Result<Option<Vec<Value>>> {
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        self.pos += 1;
        Ok(Some(self.rows[self.pos - 1].clone()))
    }
}

fn f64lit(v: f64) -> PhysExpr {
    PhysExpr::Const(Value::F64(v), TypeId::F64)
}

/// Q6-like predicate + aggregate on the vectorized engine; returns revenue.
pub fn q6_vectorized(src: BatchSource, vector_size: usize) -> f64 {
    let cancel = CancelToken::new();
    let ctx = ExprCtx::default();
    let year94 = vw_common::Date::from_ymd(1994, 1, 1).unwrap().0;
    let year95 = vw_common::Date::from_ymd(1995, 1, 1).unwrap().0;
    let pred = PhysExpr::And(vec![
        PhysExpr::Cmp {
            op: CmpOp::Ge,
            lhs: Box::new(colref(3, TypeId::Date)),
            rhs: Box::new(PhysExpr::Const(Value::Date(vw_common::Date(year94)), TypeId::Date)),
        },
        PhysExpr::Cmp {
            op: CmpOp::Lt,
            lhs: Box::new(colref(3, TypeId::Date)),
            rhs: Box::new(PhysExpr::Const(Value::Date(vw_common::Date(year95)), TypeId::Date)),
        },
        PhysExpr::Cmp {
            op: CmpOp::Ge,
            lhs: Box::new(colref(2, TypeId::F64)),
            rhs: Box::new(f64lit(0.05)),
        },
        PhysExpr::Cmp {
            op: CmpOp::Le,
            lhs: Box::new(colref(2, TypeId::F64)),
            rhs: Box::new(f64lit(0.07)),
        },
        PhysExpr::Cmp {
            op: CmpOp::Lt,
            lhs: Box::new(colref(0, TypeId::I64)),
            rhs: Box::new(PhysExpr::Const(Value::I64(24), TypeId::I64)),
        },
    ]);
    let select = Select::new(
        Box::new(src),
        vw_exec::program::SelectProgram::compile(&pred, &ctx),
        cancel.clone(),
    );
    let revenue = PhysExpr::Arith {
        op: BinOp::Mul,
        lhs: Box::new(colref(1, TypeId::F64)),
        rhs: Box::new(colref(2, TypeId::F64)),
        ty: TypeId::F64,
    };
    let mut agg = HashAggregate::new(
        Box::new(select),
        vec![],
        vec![AggSpec {
            func: AggFunc::Sum,
            input: Some(vw_exec::program::ExprProgram::compile(&revenue, &ctx)),
            out_ty: TypeId::F64,
        }],
        Schema::unchecked(vec![Field::nullable("revenue", TypeId::F64)]),
        vector_size,
        cancel,
    )
    .unwrap();
    let out = drain(&mut agg).unwrap();
    match out.row_values(0)[0] {
        Value::F64(v) => v,
        Value::Null => 0.0,
        _ => unreachable!(),
    }
}

/// Q6-like on the tuple-at-a-time baseline.
pub fn q6_volcano(rows: &Arc<Vec<Vec<Value>>>) -> f64 {
    let year94 = Value::Date(vw_common::Date::from_ymd(1994, 1, 1).unwrap());
    let year95 = Value::Date(vw_common::Date::from_ymd(1995, 1, 1).unwrap());
    let c = |i| Box::new(ScalarExpr::Col(i));
    let l = |v: Value| Box::new(ScalarExpr::Lit(v));
    let pred = ScalarExpr::And(
        Box::new(ScalarExpr::And(
            Box::new(ScalarExpr::Cmp(">=", c(3), l(year94))),
            Box::new(ScalarExpr::Cmp("<", c(3), l(year95))),
        )),
        Box::new(ScalarExpr::And(
            Box::new(ScalarExpr::And(
                Box::new(ScalarExpr::Cmp(">=", c(2), l(Value::F64(0.05)))),
                Box::new(ScalarExpr::Cmp("<=", c(2), l(Value::F64(0.07)))),
            )),
            Box::new(ScalarExpr::Cmp("<", c(0), l(Value::I64(24)))),
        )),
    );
    // Materialize revenue per tuple then aggregate.
    let src = TupleRef::new(q6_schema(), rows.clone());
    let filter = TupleFilter::new(Box::new(src), pred);
    let proj = vw_volcano::TupleProject::new(
        Box::new(filter),
        vec![ScalarExpr::Arith('*', c(1), c(2))],
        Schema::unchecked(vec![Field::nullable("rev", TypeId::F64)]),
    );
    let mut agg = TupleAggregate::new(
        Box::new(proj),
        vec![],
        vec![TupleAgg::Sum(0)],
        Schema::unchecked(vec![Field::nullable("revenue", TypeId::F64)]),
    );
    let out = vw_volcano::collect_rows(&mut agg).unwrap();
    match out[0][0] {
        Value::F64(v) => v,
        Value::Null => 0.0,
        _ => unreachable!(),
    }
}

/// C1 — vectorized vs tuple-at-a-time, plus the vector-size sweep.
pub fn c1(rows_n: usize) -> Table {
    let cols = q6_projection(&gen_lineitem(rows_n, 1).into_columns());
    let rows: Arc<Vec<Vec<Value>>> =
        Arc::new((0..rows_n).map(|i| cols.iter().map(|c| c.get_value(i)).collect()).collect());
    let mut out = Vec::new();

    // Correctness cross-check first.
    let src = BatchSource::new(q6_schema(), &cols, 1024);
    let rv = q6_vectorized(src.reopen(), 1024);
    let rt = q6_volcano(&rows);
    assert!((rv - rt).abs() < 1e-6 * rv.abs().max(1.0), "engines disagree: {rv} vs {rt}");

    let t0 = Instant::now();
    let iters = 3;
    for _ in 0..iters {
        std::hint::black_box(q6_volcano(&rows));
    }
    let volcano = t0.elapsed() / iters;

    for vs in [1usize, 4, 16, 64, 256, 1024, 4096, 16384, 65536] {
        let src = BatchSource::new(q6_schema(), &cols, vs);
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(q6_vectorized(src.reopen(), vs));
        }
        let vect = t0.elapsed() / iters;
        out.push(vec![
            format!("{vs}"),
            ms(vect),
            ms(volcano),
            format!("{:.1}x", volcano.as_secs_f64() / vect.as_secs_f64()),
        ]);
    }
    (vec!["vector_size", "vectorized_ms", "tuple_ms", "speedup"], out)
}

/// C2 — compression schemes: ratio + throughput per distribution.
pub fn c2(n: usize) -> Table {
    use vw_compress::{compress_with, decompress_into, Encoding};
    let mut rng_state = 0x1234_5678_9abc_def0u64;
    let mut rng = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    let datasets: Vec<(&str, Vec<i64>)> = vec![
        ("uniform-small", (0..n).map(|_| (rng() % 1000) as i64).collect()),
        ("sorted-keys", (0..n).map(|i| 1_000_000 + (i as i64) * 7).collect()),
        ("low-cardinality", (0..n).map(|_| [3i64, 17, 99][rng() as usize % 3]).collect()),
        (
            "skewed-outliers",
            (0..n)
                .map(|i| if i % 100 == 0 { i64::MAX / 2 } else { (rng() % 256) as i64 })
                .collect(),
        ),
    ];
    let mut out = Vec::new();
    for (name, data) in &datasets {
        for enc in [
            Encoding::Raw,
            Encoding::BitPack,
            Encoding::Pfor,
            Encoding::PforDelta,
            Encoding::Dict,
            Encoding::Rle,
        ] {
            let t0 = Instant::now();
            let c = match compress_with(data, enc) {
                Ok(c) => c,
                Err(_) => continue, // scheme not applicable (dict overflow)
            };
            let comp = t0.elapsed();
            let mut back = Vec::new();
            let t0 = Instant::now();
            let reps = 5;
            for _ in 0..reps {
                decompress_into(&c, &mut back).unwrap();
            }
            let dec = t0.elapsed() / reps;
            assert_eq!(&back, data);
            let mb = (n * 8) as f64 / (1 << 20) as f64;
            out.push(vec![
                name.to_string(),
                enc.name().to_string(),
                format!("{:.2}", c.ratio()),
                format!("{:.0}", mb / comp.as_secs_f64()),
                format!("{:.0}", mb / dec.as_secs_f64()),
            ]);
        }
        let auto = vw_compress::choose_encoding(data);
        out.push(vec![
            name.to_string(),
            format!("auto={}", auto.name()),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    (vec!["distribution", "scheme", "ratio", "compress_MB/s", "decompress_MB/s"], out)
}

struct SlowSource {
    n: usize,
    delay: Duration,
}

impl ChunkSource for SlowSource {
    type Chunk = usize;
    fn n_chunks(&self) -> usize {
        self.n
    }
    fn load(&self, idx: usize) -> vw_common::Result<usize> {
        std::thread::sleep(self.delay);
        Ok(idx)
    }
}

/// C3 — cooperative scans: policies under concurrent scans.
pub fn c3(chunks: usize, cache: usize, scans: usize) -> Table {
    let mut out = Vec::new();
    for policy in [ScanPolicy::Naive, ScanPolicy::Attach, ScanPolicy::Relevance] {
        let abm =
            Abm::new(SlowSource { n: chunks, delay: Duration::from_micros(800) }, cache, policy);
        let t0 = Instant::now();
        let mut handles = Vec::new();
        for s in 0..scans {
            let abm = abm.clone();
            // Stagger arrivals: the sharing opportunity of the paper's eval.
            handles.push(std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(3 * s as u64));
                let mut h = abm.register();
                let mut seen = 0;
                while h.next_chunk().unwrap().is_some() {
                    seen += 1;
                }
                seen
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), chunks);
        }
        let elapsed = t0.elapsed();
        let (loads, cached) = abm.io_stats();
        out.push(vec![
            policy.name().to_string(),
            ms(elapsed),
            loads.to_string(),
            cached.to_string(),
            format!("{:.2}", loads as f64 / chunks as f64),
        ]);
    }
    (vec!["policy", "wall_ms", "chunk_loads", "served_cached", "table_read_multiple"], out)
}

/// C4 — PDT: update cost, merge-scan overhead vs pending deltas, checkpoint.
pub fn c4(base_rows: usize) -> Table {
    let mut out = Vec::new();
    for deltas in [0usize, 1_000, 10_000, 50_000] {
        let db = Database::open_in_memory();
        load_lineitem(&db, base_rows, 3);
        // Apply `deltas` committed single-row updates via the PDT layer.
        let t0 = Instant::now();
        if deltas > 0 {
            let cat = db.catalog.read();
            let entry = cat.get("lineitem").unwrap();
            let vw_core::catalog::TableKind::Vectorwise { pdt, .. } = &entry.kind else {
                unreachable!()
            };
            let mut txn = pdt.begin();
            for i in 0..deltas {
                let pos = (i * 7919) as u64 % txn.n_rows();
                match i % 3 {
                    0 => txn.update_at(pos, 2, Value::I64(99)).unwrap(),
                    1 => txn.delete_at(pos).unwrap(),
                    _ => {
                        let row: Vec<Value> = (0..9)
                            .map(|c| entry.schema.field(c).ty)
                            .map(Value::safe_default)
                            .collect();
                        txn.insert_at(pos, row).unwrap();
                    }
                }
            }
            pdt.commit(txn).unwrap();
        }
        let apply = t0.elapsed();

        let t0 = Instant::now();
        let r = db.execute("SELECT COUNT(*), SUM(l_quantity) FROM lineitem").unwrap();
        let scan = t0.elapsed();
        let visible = match r.rows()[0][0] {
            Value::I64(v) => v,
            _ => 0,
        };

        let t0 = Instant::now();
        db.execute("CHECKPOINT lineitem").unwrap();
        let ckpt = t0.elapsed();
        out.push(vec![deltas.to_string(), ms(apply), ms(scan), ms(ckpt), visible.to_string()]);
    }
    (vec!["pending_deltas", "apply_ms", "merge_scan_ms", "checkpoint_ms", "visible_rows"], out)
}

/// Approximate row equality: floats within 1e-9 relative error (parallel
/// partial aggregation legitimately reorders float additions).
pub fn rows_approx_eq(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(x, y)| match (x, y) {
                    (Value::F64(p), Value::F64(q)) => {
                        (p - q).abs() <= 1e-9 * p.abs().max(q.abs()).max(1.0)
                    }
                    _ => x == y,
                })
        })
}

/// C5 — rewriter-driven parallel aggregation, DOP sweep.
pub fn c5(rows: usize) -> Table {
    let mut out = Vec::new();
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for dop in [1usize, 2, 4, 8] {
        let db = Database::open_in_memory();
        load_lineitem(&db, rows, 5);
        db.execute(&format!("SET parallelism = {dop}")).unwrap();
        let sql = "SELECT l_returnflag, COUNT(*), SUM(l_quantity), AVG(l_extendedprice) \
                   FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag";
        let t0 = Instant::now();
        let r = db.execute(sql).unwrap();
        let elapsed = t0.elapsed();
        let plan = db.execute(&format!("EXPLAIN {sql}")).unwrap().text.unwrap();
        let has_xchg = plan.contains("Xchg");
        match &reference {
            None => reference = Some(r.rows().to_vec()),
            Some(exp) => assert!(
                rows_approx_eq(exp, r.rows()),
                "parallel plan changed the answer at dop {dop}"
            ),
        }
        out.push(vec![
            dop.to_string(),
            ms(elapsed),
            if dop == 1 { "serial".into() } else { format!("xchg={has_xchg}") },
        ]);
    }
    (vec!["dop", "elapsed_ms", "plan"], out)
}

/// C6 — NULL representation: two-column vs branchy, by NULL fraction.
pub fn c6(n: usize) -> Table {
    let mut out = Vec::new();
    for pct in [0usize, 10, 50] {
        let vals = ColData::I64((0..n as i64).collect());
        let mask: Vec<bool> = (0..n).map(|i| (i * 100 / n.max(1)) % 100 < pct).collect();
        let nulls = if pct == 0 { None } else { Some(mask) };
        let v = Vector::with_nulls(vals, nulls);
        let batch = Batch::new(vec![v, Vector::new(ColData::I64(vec![3; n]))]);
        let expr = PhysExpr::Arith {
            op: BinOp::Mul,
            lhs: Box::new(colref(0, TypeId::I64)),
            rhs: Box::new(colref(1, TypeId::I64)),
            ty: TypeId::I64,
        };
        let mut row = vec![format!("{pct}%")];
        for mode in [NullMode::TwoColumn, NullMode::Branchy] {
            let ctx = ExprCtx { check: CheckMode::Lazy, null_mode: mode };
            let t0 = Instant::now();
            let reps = 20;
            for _ in 0..reps {
                std::hint::black_box(expr.eval(&batch, &ctx).unwrap());
            }
            row.push(ms(t0.elapsed() / reps));
        }
        out.push(row);
    }
    (vec!["null_fraction", "two_column_ms", "branchy_ms"], out)
}

/// C7 — overflow checking strategies on clean data.
pub fn c7(n: usize) -> Table {
    let a: Vec<i64> = (0..n as i64).collect();
    let b: Vec<i64> = (0..n as i64).map(|i| i * 3 + 1).collect();
    let mut out = Vec::new();
    for (name, check) in [
        ("unchecked", CheckMode::Unchecked),
        ("naive", CheckMode::Naive),
        ("lazy-vectorized", CheckMode::Lazy),
    ] {
        let mut buf = Vec::with_capacity(n);
        let t0 = Instant::now();
        let reps = 20;
        for _ in 0..reps {
            vw_exec::primitives::add_i64(&a, &b, None, &mut buf, check).unwrap();
            std::hint::black_box(&buf);
        }
        let add = t0.elapsed() / reps;
        let t0 = Instant::now();
        for _ in 0..reps {
            vw_exec::primitives::mul_i64(&a, &b, None, &mut buf, check).unwrap();
            std::hint::black_box(&buf);
        }
        let mul = t0.elapsed() / reps;
        out.push(vec![name.to_string(), ms(add), ms(mul)]);
    }
    (vec!["check_mode", "add_ms", "mul_ms"], out)
}

/// C8 — cancellation latency vs vector size.
pub fn c8(rows: usize) -> Table {
    let mut out = Vec::new();
    for vs in [256usize, 1024, 16384, 65536] {
        let db = Database::open_in_memory();
        load_lineitem(&db, rows, 8);
        db.execute(&format!("SET vector_size = {vs}")).unwrap();
        // A long-running self-join launched on another thread.
        let db2 = db.clone();
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            let r = db2.execute(
                "SELECT COUNT(*) FROM lineitem a JOIN lineitem b ON a.l_partkey = b.l_partkey",
            );
            (started.elapsed(), r)
        });
        // Wait for it to register, then kill it.
        let qid = loop {
            let running: Vec<_> = db
                .monitor
                .list_queries()
                .into_iter()
                .filter(|q| q.state == vw_core::monitor::QueryState::Running)
                .collect();
            if let Some(q) = running.first() {
                break q.id;
            }
            std::thread::sleep(Duration::from_micros(200));
        };
        std::thread::sleep(Duration::from_millis(20));
        let t_kill = Instant::now();
        db.kill(qid).unwrap();
        let (total, result) = handle.join().unwrap();
        let latency = t_kill.elapsed();
        assert!(
            matches!(result, Err(vw_common::VwError::Cancelled)),
            "query must report cancellation"
        );
        out.push(vec![vs.to_string(), ms(latency), ms(total)]);
    }
    (vec!["vector_size", "cancel_latency_ms", "query_lifetime_ms"], out)
}

/// C9 — storage layout: I/O volume scanning k of N columns.
pub fn c9(rows: usize) -> Table {
    use vw_storage::{BufferPool, Layout, SimulatedDisk, TableStorage};
    let cols = gen_lineitem(rows, 9).into_columns();
    let schema = lineitem_schema();
    let nulls: Vec<Option<Vec<bool>>> = vec![None; cols.len()];
    let mut out = Vec::new();
    for (lname, layout) in [("DSM", Layout::Dsm), ("PAX", Layout::Pax)] {
        for k in [1usize, 4, 9] {
            let disk = SimulatedDisk::instant();
            let mut t = TableStorage::new(disk.clone(), schema.clone(), layout);
            t.append_columns(&cols, &nulls, 16 * 1024).unwrap();
            let written = disk.stats().bytes_written;
            // Tiny pool: force reads from "disk".
            let pool = BufferPool::new(disk.clone(), 1 << 16);
            let t0 = Instant::now();
            let proj: Vec<usize> = (0..k).collect();
            let mut total = 0usize;
            for p in 0..t.n_packs() {
                let chunks = t.read_pack(&pool, p, &proj).unwrap();
                total += chunks[0].0.len();
            }
            let elapsed = t0.elapsed();
            assert_eq!(total, rows);
            let read = disk.stats().bytes_read;
            out.push(vec![
                lname.to_string(),
                k.to_string(),
                (written >> 10).to_string(),
                (read >> 10).to_string(),
                format!("{:.2}", read as f64 / written as f64),
                ms(elapsed),
            ]);
        }
    }
    // NSM baseline: whole rows regardless of k.
    {
        let disk = vw_storage::SimulatedDisk::instant();
        let mut store = vw_volcano::RowStore::new(disk.clone(), schema.clone());
        store.append_rows(&gen_lineitem_rows(rows, 9)).unwrap();
        let written = disk.stats().bytes_written;
        let pool = vw_storage::BufferPool::new(disk.clone(), 1 << 16);
        for k in [1usize, 4, 9] {
            let t0 = Instant::now();
            let mut cnt = 0usize;
            for p in 0..store.n_pages() {
                cnt += store.read_page(&pool, p).unwrap().len();
            }
            assert_eq!(cnt, rows);
            let elapsed = t0.elapsed();
            let read = disk.stats().bytes_read;
            out.push(vec![
                "NSM".to_string(),
                k.to_string(),
                (written >> 10).to_string(),
                (read >> 10).to_string(),
                String::from("-"),
                ms(elapsed),
            ]);
        }
    }
    (vec!["layout", "cols_scanned", "stored_KiB", "read_KiB", "read/stored", "time_ms"], out)
}

/// C10 — the function battery: rewriter-expanded vs kernel-native.
pub fn c10(rows: usize) -> Table {
    let db = Database::open_in_memory();
    db.execute("CREATE TABLE fx (s VARCHAR, x BIGINT, y BIGINT, d DATE)").unwrap();
    let n = rows;
    let s = ColData::Str((0..n).map(|i| format!("str{:04}", i % 997)).collect());
    let x = ColData::I64((0..n as i64).collect());
    let y_vals: Vec<i64> = (0..n as i64).map(|i| i % 7).collect();
    let y_nulls: Vec<bool> = (0..n).map(|i| i % 5 == 0).collect();
    let y = ColData::I64(y_vals);
    let d = ColData::Date((0..n).map(|i| 9000 + (i as i32 % 2000)).collect());
    vw_core::bulk_load(&db, "fx", &[s, x, y, d], &[None, None, Some(y_nulls), None]).unwrap();

    // Each (label, query, kind) runs and times one function.
    let cases: Vec<(&str, String, &str)> = vec![
        ("UPPER", "SELECT COUNT(*) FROM fx WHERE UPPER(s) LIKE 'STR0%'".into(), "kernel"),
        ("SUBSTR", "SELECT COUNT(*) FROM fx WHERE SUBSTR(s, 1, 4) = 'str0'".into(), "kernel"),
        ("LENGTH", "SELECT SUM(LENGTH(s)) FROM fx".into(), "kernel"),
        ("EXTRACT", "SELECT COUNT(*) FROM fx WHERE EXTRACT(YEAR FROM d) = 1995".into(), "kernel"),
        ("ABS", "SELECT SUM(ABS(x - 500)) FROM fx".into(), "kernel"),
        ("COALESCE", "SELECT SUM(COALESCE(y, 0)) FROM fx".into(), "rewriter"),
        ("IFNULL", "SELECT SUM(IFNULL(y, -1)) FROM fx".into(), "rewriter"),
        ("NULLIF", "SELECT COUNT(NULLIF(y, 3)) FROM fx".into(), "rewriter"),
        ("GREATEST", "SELECT SUM(GREATEST(x, y, 3)) FROM fx".into(), "rewriter"),
        ("SIGN", "SELECT SUM(SIGN(x - 500)) FROM fx".into(), "rewriter"),
    ];
    let mut out = Vec::new();
    for (name, sql, kind) in cases {
        let t0 = Instant::now();
        let reps = 3;
        let mut last = None;
        for _ in 0..reps {
            last = Some(db.execute(&sql).unwrap());
        }
        let elapsed = t0.elapsed() / reps;
        let v = last.unwrap().rows()[0][0].clone();
        out.push(vec![name.to_string(), kind.to_string(), ms(elapsed), v.to_string()]);
    }
    // Semantic spot-checks of the rewriter expansions.
    let r = db.execute("SELECT COALESCE(NULL, 7)").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(7));
    let r = db.execute("SELECT NULLIF(3, 3)").unwrap();
    assert!(r.scalar().unwrap().is_null());
    let r = db.execute("SELECT GREATEST(1, 9, 4)").unwrap();
    assert_eq!(r.scalar().unwrap(), &Value::I64(9));
    (vec!["function", "implementation", "time_ms", "result"], out)
}

/// C11 — monitoring overhead: repeated queries with profiling on/off.
pub fn c11(rows: usize, reps: usize) -> Table {
    let mut out = Vec::new();
    for (label, profiling) in [("monitoring on", true), ("monitoring off", false)] {
        let db = Database::open_in_memory();
        load_lineitem(&db, rows, 11);
        db.execute(&format!("SET profiling = {}", profiling as i64)).unwrap();
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(
                db.execute("SELECT SUM(l_quantity) FROM lineitem WHERE l_quantity < 25").unwrap(),
            );
        }
        let elapsed = t0.elapsed() / reps as u32;
        let (total, failed) = db.monitor.totals();
        out.push(vec![
            label.to_string(),
            ms(elapsed),
            total.to_string(),
            failed.to_string(),
            db.monitor.events().len().to_string(),
        ]);
    }
    (vec!["mode", "per_query_ms", "queries_registered", "failed", "events_logged"], out)
}

/// Ablation — selection vectors vs eager materialization at varying
/// selectivity (DESIGN.md §5 item 2).
pub fn select_ablation(n: usize) -> Table {
    let data = ColData::I64((0..n as i64).collect());
    let mut out = Vec::new();
    for sel_pct in [1usize, 10, 50, 90] {
        let threshold = (n * sel_pct / 100) as i64;
        let batch =
            Batch::new(vec![Vector::new(data.clone()), Vector::new(ColData::I64(vec![2; n]))]);
        let pred = PhysExpr::Cmp {
            op: CmpOp::Lt,
            lhs: Box::new(colref(0, TypeId::I64)),
            rhs: Box::new(PhysExpr::Const(Value::I64(threshold), TypeId::I64)),
        };
        let mul = PhysExpr::Arith {
            op: BinOp::Mul,
            lhs: Box::new(colref(0, TypeId::I64)),
            rhs: Box::new(colref(1, TypeId::I64)),
            ty: TypeId::I64,
        };
        let ctx = ExprCtx::default();
        let reps = 20;
        // Strategy A: selection vector carried through the map.
        let t0 = Instant::now();
        for _ in 0..reps {
            let sel = pred.eval_select(&batch, &ctx).unwrap();
            let mut b = batch.clone();
            b.sel = Some(sel);
            std::hint::black_box(mul.eval(&b, &ctx).unwrap());
        }
        let with_sel = t0.elapsed() / reps;
        // Strategy B: materialize survivors densely, then map.
        let t0 = Instant::now();
        for _ in 0..reps {
            let sel = pred.eval_select(&batch, &ctx).unwrap();
            let mut b = batch.clone();
            b.sel = Some(sel);
            let dense = b.compact();
            std::hint::black_box(mul.eval(&dense, &ctx).unwrap());
        }
        let materialized = t0.elapsed() / reps;
        let _ = SelVec::new();
        out.push(vec![format!("{sel_pct}%"), ms(with_sel), ms(materialized)]);
    }
    (vec!["selectivity", "selection_vector_ms", "materialize_ms"], out)
}

/// One perf-smoke measurement: a metric name and its rows/second.
pub type SmokeMetric = (String, f64);

/// CI perf-smoke harness: a short, deterministic (fixed seed, fixed row
/// count) measurement of the three headline hot paths — scan→filter→agg,
/// hash join, and a **skewed scan→filter→agg** (the filter survivors sit
/// in the last 10% of the clustered `l_orderkey` range, so under static
/// partitioning DOP 4 used to collapse onto one worker; morsel claims keep
/// it balanced) — at DOP 1 and DOP 4, reported as input rows per second.
///
/// Runs in roughly ten seconds at the `perf_smoke` binary's default 500k
/// rows: each case is timed as best-of-`reps` after one warm-up run,
/// which is stable enough for a *trajectory* (the artifact series plotted
/// across PRs), not a rigorous benchmark — that's what the criterion
/// benches are for. DOP 4 results are cross-checked against DOP 1 so the
/// smoke run also guards parallel correctness.
pub fn perf_smoke(rows: usize, reps: usize) -> Vec<SmokeMetric> {
    let agg_sql = "SELECT l_returnflag, COUNT(*), SUM(l_quantity), AVG(l_extendedprice) \
                   FROM lineitem WHERE l_quantity < 40 GROUP BY l_returnflag"
        .to_string();
    let join_sql = "SELECT COUNT(*) FROM lineitem a JOIN lineitem b \
                    ON a.l_orderkey = b.l_orderkey AND a.l_partkey = b.l_partkey"
        .to_string();
    // Neither query has an ORDER BY, and parallel plans legitimately emit
    // groups in a different order — sort by the leading (group-key) value
    // before the approximate comparison.
    let canon = |rows: &[Vec<Value>]| {
        let mut v = rows.to_vec();
        v.sort_by_key(|r| format!("{:?}", r.first()));
        v
    };
    let mut out = Vec::new();
    let mut reference: Vec<Option<Vec<Vec<Value>>>> = vec![None, None, None];
    for dop in [1usize, 4] {
        let db = Database::open_in_memory();
        load_lineitem(&db, rows, 1994);
        db.execute(&format!("SET parallelism = {dop}")).unwrap();
        // The 90th-percentile cut of the clustered order-key range: all
        // surviving (and thus all downstream) work lives in the last 10%
        // of the row space.
        let max_key = match db.execute("SELECT MAX(l_orderkey) FROM lineitem").unwrap().scalar() {
            Ok(Value::I64(m)) => *m,
            other => panic!("unexpected MAX result {other:?}"),
        };
        let skew_sql = format!(
            "SELECT l_returnflag, COUNT(*), SUM(l_quantity), AVG(l_extendedprice) \
             FROM lineitem WHERE l_orderkey > {} GROUP BY l_returnflag",
            max_key * 9 / 10
        );
        // spill_join: the same self-join under a memory budget one quarter
        // of the build's staged bytes (two BIGINT key columns per build
        // row), so the hash build runs ~4× over budget and completes
        // grace-style through temp spill files. Answers are cross-checked
        // against the unbounded join's. DOP 1 only: at higher DOP every
        // Xchg worker replicates the build against the shared budget,
        // which measures recursion depth × contention instead of the
        // spill machinery (and would triple the harness runtime).
        let spill_budget = rows * 16 / 4;
        for (qi, (name, sql, budget)) in [
            ("scan_filter_agg", &agg_sql, 0usize),
            ("join", &join_sql, 0),
            ("skewed_scan_agg", &skew_sql, 0),
            ("spill_join", &join_sql, spill_budget),
        ]
        .into_iter()
        .enumerate()
        {
            if qi == 3 && dop != 1 {
                continue;
            }
            db.execute(&format!("SET mem_budget = {budget}")).unwrap();
            let warm = canon(db.execute(sql).unwrap().rows());
            // spill_join (qi 3) checks against the unbounded join's
            // reference (slot 1, always filled earlier in this dop pass):
            // a spilled build must not change the answer.
            let slot = if qi == 3 { 1 } else { qi };
            match &reference[slot] {
                None => reference[slot] = Some(warm),
                Some(expect) => assert!(
                    rows_approx_eq(expect, &warm),
                    "{name}: DOP {dop} / budget {budget} changed the answer"
                ),
            }
            let mut best = Duration::MAX;
            for _ in 0..reps {
                let t0 = Instant::now();
                std::hint::black_box(db.execute(sql).unwrap());
                best = best.min(t0.elapsed());
            }
            db.execute("SET mem_budget = 0").unwrap();
            out.push((format!("{name}_dop{dop}"), rows as f64 / best.as_secs_f64()));
        }
    }
    out
}

/// PR 8 multi-join scenario: a 3-table TPC-H-ish join
/// (lineitem ⋈ orders ⋈ customer, 4:1 and 40:1 key fan-in) with a
/// selective customer predicate, measured with the cost-based optimizer
/// on (`multi_join_dop*`) and off (`multi_join_noopt_dop*`) at DOP 1
/// and 4. The syntactic plan joins the two big tables first and filters
/// last; the cost-based plan pushes `c_nation = 3` into the customer
/// scan, joins smallest-first and probes with lineitem — the gap between
/// the two metric pairs is the optimizer's measured win. Answers from
/// every configuration are cross-checked.
pub fn multi_join(rows: usize, reps: usize) -> Vec<SmokeMetric> {
    let sql = "SELECT c_nation, COUNT(*), SUM(l_quantity) FROM lineitem \
               JOIN orders ON l_orderkey = o_orderkey \
               JOIN customer ON o_custkey = c_custkey \
               WHERE c_nation = 3 AND l_quantity < 40 GROUP BY c_nation";
    let db = Database::open_in_memory();
    load_lineitem(&db, rows, 1994);
    crate::tpch::load_orders_customer(&db, rows, 1994);
    let mut out = Vec::new();
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for dop in [1usize, 4] {
        db.execute(&format!("SET parallelism = {dop}")).unwrap();
        for optimizer in [1i64, 0] {
            db.execute(&format!("SET optimizer = {optimizer}")).unwrap();
            let warm = db.execute(sql).unwrap().rows().to_vec();
            match &reference {
                None => reference = Some(warm),
                Some(expect) => assert!(
                    rows_approx_eq(expect, &warm),
                    "multi_join: optimizer={optimizer} dop={dop} changed the answer"
                ),
            }
            let mut best = Duration::MAX;
            for _ in 0..reps {
                let t0 = Instant::now();
                std::hint::black_box(db.execute(sql).unwrap());
                best = best.min(t0.elapsed());
            }
            let tag = if optimizer == 1 { "" } else { "_noopt" };
            out.push((format!("multi_join{tag}_dop{dop}"), rows as f64 / best.as_secs_f64()));
        }
    }
    db.execute("SET optimizer = 1").unwrap();
    out
}

/// PR 9 compressed-execution scenario: scan a 25-value returnflag-style
/// string column, range-filter it, and GROUP BY it with a SUM — the
/// query shape the encoded path is built for (dict codes flow from the
/// pack reader through Select and HashAggregate; strings materialize
/// only at the 25-group emit boundary). Measured with `compressed_exec`
/// on (`dict_scan_filter_agg_dop*`) and off
/// (`dict_scan_filter_agg_flat_dop*` — inflate-at-scan, today's
/// baseline) at DOP 1 and 4; the gap between the pairs is compressed
/// execution's measured win. Answers from every configuration are
/// cross-checked.
pub fn dict_scan_filter_agg(rows: usize, reps: usize) -> Vec<SmokeMetric> {
    let sql = "SELECT f_flag, COUNT(*), SUM(f_qty) FROM flags \
               WHERE f_flag >= 'FLAG_05' GROUP BY f_flag";
    let canon = |rows: &[Vec<Value>]| {
        let mut v = rows.to_vec();
        v.sort_by_key(|r| format!("{:?}", r.first()));
        v
    };
    let db = Database::open_in_memory();
    crate::tpch::load_flags(&db, rows, 1994);
    let mut out = Vec::new();
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for dop in [1usize, 4] {
        db.execute(&format!("SET parallelism = {dop}")).unwrap();
        for compressed in [1i64, 0] {
            db.execute(&format!("SET compressed_exec = {compressed}")).unwrap();
            let warm = canon(db.execute(sql).unwrap().rows());
            match &reference {
                None => reference = Some(warm),
                Some(expect) => assert!(
                    rows_approx_eq(expect, &warm),
                    "dict_scan_filter_agg: compressed_exec={compressed} dop={dop} \
                     changed the answer"
                ),
            }
            let mut best = Duration::MAX;
            for _ in 0..reps {
                let t0 = Instant::now();
                std::hint::black_box(db.execute(sql).unwrap());
                best = best.min(t0.elapsed());
            }
            let tag = if compressed == 1 { "" } else { "_flat" };
            out.push((
                format!("dict_scan_filter_agg{tag}_dop{dop}"),
                rows as f64 / best.as_secs_f64(),
            ));
        }
    }
    db.execute("SET compressed_exec = 1").unwrap();
    out
}

/// Result of the [`concurrent_mix`] service scenario: aggregate scan
/// throughput across all sessions, the p95 statement latency, and the
/// session count that produced them.
pub struct ConcurrentMix {
    /// Input rows processed per second, summed over every session.
    pub rows_per_sec: f64,
    /// 95th-percentile statement latency in milliseconds.
    pub p95_ms: f64,
    pub sessions: usize,
}

/// Multi-session service throughput: `sessions` concurrent [`vw_core::
/// Session`]s each run the perf-smoke statement mix (scan→filter→agg,
/// self-join, skewed agg) twice over one shared engine — fixed worker
/// pool, admission control on — and every answer is compared against a
/// serial reference captured before the threads start. Reports aggregate
/// input rows/second and the p95 statement latency, the two numbers a
/// query service trades against each other when N queries share W
/// workers.
pub fn concurrent_mix(rows: usize, sessions: usize) -> ConcurrentMix {
    use vw_common::EngineConfig;
    use vw_storage::SimulatedDisk;

    const REPS_PER_SESSION: usize = 2;
    let cfg = EngineConfig::default().with_parallelism(4).with_global_mem(256 << 20);
    let db = Database::open_with(cfg, SimulatedDisk::instant());
    load_lineitem(&db, rows, 1994);
    let max_key = match db.execute("SELECT MAX(l_orderkey) FROM lineitem").unwrap().scalar() {
        Ok(Value::I64(m)) => *m,
        other => panic!("unexpected MAX result {other:?}"),
    };
    let stmts: Vec<String> = vec![
        "SELECT l_returnflag, COUNT(*), SUM(l_quantity), AVG(l_extendedprice) \
         FROM lineitem WHERE l_quantity < 40 GROUP BY l_returnflag"
            .into(),
        "SELECT COUNT(*) FROM lineitem a JOIN lineitem b \
         ON a.l_orderkey = b.l_orderkey AND a.l_partkey = b.l_partkey"
            .into(),
        format!(
            "SELECT l_returnflag, COUNT(*), SUM(l_quantity), AVG(l_extendedprice) \
             FROM lineitem WHERE l_orderkey > {} GROUP BY l_returnflag",
            max_key * 9 / 10
        ),
    ];
    let canon = |rows: &[Vec<Value>]| {
        let mut v = rows.to_vec();
        v.sort_by_key(|r| format!("{:?}", r.first()));
        v
    };
    // Serial reference answers, captured before any concurrency exists.
    let reference: Vec<Vec<Vec<Value>>> =
        stmts.iter().map(|s| canon(db.execute(s).unwrap().rows())).collect();

    let t0 = Instant::now();
    let handles: Vec<_> = (0..sessions)
        .map(|_| {
            let db = db.clone();
            let stmts = stmts.clone();
            let reference = reference.clone();
            std::thread::spawn(move || {
                let mut session = db.session();
                let mut latencies = Vec::with_capacity(stmts.len() * REPS_PER_SESSION);
                for _ in 0..REPS_PER_SESSION {
                    for (i, sql) in stmts.iter().enumerate() {
                        let s0 = Instant::now();
                        let r = session.execute(sql).unwrap();
                        latencies.push(s0.elapsed());
                        // Concurrency must never change an answer.
                        assert!(
                            rows_approx_eq(&reference[i], &canon(r.rows())),
                            "concurrent_mix: session answer diverged from serial on {sql:?}"
                        );
                    }
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("concurrent_mix session panicked"));
    }
    let wall = t0.elapsed();

    latencies.sort_unstable();
    let p95 = latencies[(latencies.len() * 95).div_ceil(100).saturating_sub(1)];
    let total_input_rows = (latencies.len() * rows) as f64;
    ConcurrentMix {
        rows_per_sec: total_input_rows / wall.as_secs_f64(),
        p95_ms: p95.as_secs_f64() * 1e3,
        sessions,
    }
}

/// Pretty-print a table.
pub fn print_table(title: &str, t: &Table) {
    println!("\n=== {title} ===");
    let (header, rows) = t;
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(header.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for r in rows {
        line(r.clone());
    }
}
