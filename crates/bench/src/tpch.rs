//! A deterministic TPC-H-like `lineitem` generator.
//!
//! Substitution for the real dbgen (DESIGN.md §2): same distributions that
//! matter to the experiments — clustered ascending order keys, small
//! enumerated flag domains, uniform quantities/prices, a bounded date range
//! with the classic shipdate offsets.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vw_common::{ColData, Date, Value};

/// One generated lineitem row (columnar container below).
#[derive(Debug, Clone)]
pub struct Lineitem {
    /// Order key (clustered ascending, ~4 lines per order).
    pub orderkey: i64,
    /// Part key (uniform).
    pub partkey: i64,
    /// Quantity 1..=50.
    pub quantity: i64,
    /// Extended price.
    pub extendedprice: f64,
    /// Discount 0.00..=0.10.
    pub discount: f64,
    /// Tax 0.00..=0.08.
    pub tax: f64,
    /// Return flag: A/N/R.
    pub returnflag: &'static str,
    /// Line status: O/F.
    pub linestatus: &'static str,
    /// Ship date within 1992-01-01..1998-12-01.
    pub shipdate: Date,
}

/// Columnar lineitem table.
pub struct LineitemColumns {
    /// l_orderkey.
    pub orderkey: ColData,
    /// l_partkey.
    pub partkey: ColData,
    /// l_quantity.
    pub quantity: ColData,
    /// l_extendedprice.
    pub extendedprice: ColData,
    /// l_discount.
    pub discount: ColData,
    /// l_tax.
    pub tax: ColData,
    /// l_returnflag.
    pub returnflag: ColData,
    /// l_linestatus.
    pub linestatus: ColData,
    /// l_shipdate.
    pub shipdate: ColData,
}

impl LineitemColumns {
    /// As a column vector in schema order.
    pub fn into_columns(self) -> Vec<ColData> {
        vec![
            self.orderkey,
            self.partkey,
            self.quantity,
            self.extendedprice,
            self.discount,
            self.tax,
            self.returnflag,
            self.linestatus,
            self.shipdate,
        ]
    }
}

/// The lineitem DDL used by examples/benches.
pub const LINEITEM_DDL: &str = "CREATE TABLE lineitem (\
    l_orderkey BIGINT NOT NULL, \
    l_partkey BIGINT NOT NULL, \
    l_quantity BIGINT NOT NULL, \
    l_extendedprice DOUBLE NOT NULL, \
    l_discount DOUBLE NOT NULL, \
    l_tax DOUBLE NOT NULL, \
    l_returnflag VARCHAR NOT NULL, \
    l_linestatus VARCHAR NOT NULL, \
    l_shipdate DATE NOT NULL)";

/// Generate `n` rows deterministically (seeded).
pub fn gen_lineitem(n: usize, seed: u64) -> LineitemColumns {
    let mut rng = SmallRng::seed_from_u64(seed);
    let base = Date::from_ymd(1992, 1, 1).unwrap().0;
    let span = Date::from_ymd(1998, 12, 1).unwrap().0 - base;
    let mut orderkey = Vec::with_capacity(n);
    let mut partkey = Vec::with_capacity(n);
    let mut quantity = Vec::with_capacity(n);
    let mut extendedprice = Vec::with_capacity(n);
    let mut discount = Vec::with_capacity(n);
    let mut tax = Vec::with_capacity(n);
    let mut returnflag = Vec::with_capacity(n);
    let mut linestatus = Vec::with_capacity(n);
    let mut shipdate = Vec::with_capacity(n);
    for i in 0..n {
        let ok = (i / 4 + 1) as i64;
        orderkey.push(ok);
        partkey.push(rng.gen_range(1..=(n as i64 / 4).max(10)));
        let q = rng.gen_range(1..=50i64);
        quantity.push(q);
        let price = q as f64 * rng.gen_range(900.0..=11000.0) / 10.0;
        extendedprice.push((price * 100.0).round() / 100.0);
        discount.push(rng.gen_range(0..=10) as f64 / 100.0);
        tax.push(rng.gen_range(0..=8) as f64 / 100.0);
        let day = base + rng.gen_range(0..span);
        shipdate.push(day);
        let (flag, status) = if day < base + span / 2 {
            (if rng.gen_bool(0.5) { "A" } else { "R" }, "F")
        } else {
            ("N", "O")
        };
        returnflag.push(flag.to_string());
        linestatus.push(status.to_string());
    }
    LineitemColumns {
        orderkey: ColData::I64(orderkey),
        partkey: ColData::I64(partkey),
        quantity: ColData::I64(quantity),
        extendedprice: ColData::F64(extendedprice),
        discount: ColData::F64(discount),
        tax: ColData::F64(tax),
        returnflag: ColData::Str(returnflag),
        linestatus: ColData::Str(linestatus),
        shipdate: ColData::Date(shipdate),
    }
}

/// The orders DDL used by the multi-join experiments.
pub const ORDERS_DDL: &str = "CREATE TABLE orders (\
    o_orderkey BIGINT NOT NULL, \
    o_custkey BIGINT NOT NULL, \
    o_totalprice DOUBLE NOT NULL)";

/// The customer DDL used by the multi-join experiments.
pub const CUSTOMER_DDL: &str = "CREATE TABLE customer (\
    c_custkey BIGINT NOT NULL, \
    c_nation BIGINT NOT NULL, \
    c_acctbal DOUBLE NOT NULL)";

/// Generate the orders side of [`gen_lineitem`]'s key space: one row per
/// distinct `l_orderkey` (`n_lineitem / 4` orders, clustered ascending),
/// each owned by a uniform customer out of `n_customers`.
pub fn gen_orders(n_lineitem: usize, n_customers: usize, seed: u64) -> Vec<ColData> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x08de8);
    let n = (n_lineitem / 4).max(1);
    let orderkey: Vec<i64> = (1..=n as i64).collect();
    let custkey: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=n_customers.max(1) as i64)).collect();
    let total: Vec<f64> = (0..n).map(|_| rng.gen_range(1000.0..=100_000.0)).collect();
    vec![ColData::I64(orderkey), ColData::I64(custkey), ColData::F64(total)]
}

/// Generate `n` customers over 25 nations (TPC-H's nation count), uniform.
pub fn gen_customer(n: usize, seed: u64) -> Vec<ColData> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xc057);
    let custkey: Vec<i64> = (1..=n as i64).collect();
    let nation: Vec<i64> = (0..n).map(|_| rng.gen_range(0..25i64)).collect();
    let acctbal: Vec<f64> = (0..n).map(|_| rng.gen_range(-999.0..=9999.0)).collect();
    vec![ColData::I64(custkey), ColData::I64(nation), ColData::F64(acctbal)]
}

/// Create + bulk-load the orders and customer tables sized to match a
/// `n_lineitem`-row lineitem (1:4 orders, 1:40 customers — enough key
/// skew that join order matters). Bulk load builds fresh statistics, so
/// the cost-based optimizer sees real cardinalities.
pub fn load_orders_customer(
    db: &std::sync::Arc<vw_core::Database>,
    n_lineitem: usize,
    seed: u64,
) -> (u64, u64) {
    let n_customers = (n_lineitem / 40).max(1);
    db.execute(ORDERS_DDL).expect("orders ddl");
    db.execute(CUSTOMER_DDL).expect("customer ddl");
    let ocols = gen_orders(n_lineitem, n_customers, seed);
    let ccols = gen_customer(n_customers, seed);
    let on = vw_core::bulk_load(db, "orders", &ocols, &vec![None; ocols.len()]).expect("orders");
    let cn =
        vw_core::bulk_load(db, "customer", &ccols, &vec![None; ccols.len()]).expect("customer");
    (on, cn)
}

/// The flags DDL used by the compressed-execution experiments: a
/// returnflag-style low-cardinality string column next to a quantity.
pub const FLAGS_DDL: &str = "CREATE TABLE flags (\
    f_flag VARCHAR NOT NULL, \
    f_qty BIGINT NOT NULL)";

/// Generate `n` flag rows: `f_flag` drawn uniformly from a 25-value
/// enumerated domain (`FLAG_00`..`FLAG_24` — TPC-H nation-count sized, so
/// stable storage dictionary-codes the column in every pack) and a
/// uniform `f_qty` in 1..=100.
pub fn gen_flags(n: usize, seed: u64) -> Vec<ColData> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xf1a6);
    let domain: Vec<String> = (0..25).map(|i| format!("FLAG_{i:02}")).collect();
    let flag: Vec<String> =
        (0..n).map(|_| domain[rng.gen_range(0..domain.len())].clone()).collect();
    let qty: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=100i64)).collect();
    vec![ColData::Str(flag), ColData::I64(qty)]
}

/// Create + bulk-load the flags table into a database.
pub fn load_flags(db: &std::sync::Arc<vw_core::Database>, n: usize, seed: u64) -> u64 {
    db.execute(FLAGS_DDL).expect("flags ddl");
    let cols = gen_flags(n, seed);
    vw_core::bulk_load(db, "flags", &cols, &vec![None; cols.len()]).expect("flags load")
}

/// Row-wise view for the Volcano baseline.
pub fn gen_lineitem_rows(n: usize, seed: u64) -> Vec<Vec<Value>> {
    let cols = gen_lineitem(n, seed).into_columns();
    (0..n).map(|i| cols.iter().map(|c| c.get_value(i)).collect()).collect()
}

/// Create + bulk-load lineitem into a database.
pub fn load_lineitem(db: &std::sync::Arc<vw_core::Database>, n: usize, seed: u64) -> u64 {
    db.execute(LINEITEM_DDL).expect("ddl");
    let cols = gen_lineitem(n, seed).into_columns();
    let nulls = vec![None; cols.len()];
    vw_core::bulk_load(db, "lineitem", &cols, &nulls).expect("load")
}

// ---------------------------------------------------------------------------
// Full 8-table TPC-H micro schema
// ---------------------------------------------------------------------------
//
// The golden-file harness (`tests/tpch.rs`) runs all 22 TPC-H queries
// against this pinned micro-scale instance: every table, every column the
// queries touch, deterministic under a fixed seed so expected rows can be
// committed as goldens. Scale: region 5, nation 25, supplier 10, part 100,
// partsupp 400, customer 75, orders 750, lineitem ~3000 (1–4 lines per
// order). Value domains follow dbgen's shapes (Brand#MN, container pairs,
// priority enums, comment keywords) so the queries' predicates are all
// selective but non-empty.

/// DDL for the full TPC-H micro schema, one statement per table.
pub const TPCH_DDL: &[&str] = &[
    "CREATE TABLE region (\
        r_regionkey BIGINT NOT NULL, \
        r_name VARCHAR NOT NULL, \
        r_comment VARCHAR NOT NULL)",
    "CREATE TABLE nation (\
        n_nationkey BIGINT NOT NULL, \
        n_name VARCHAR NOT NULL, \
        n_regionkey BIGINT NOT NULL, \
        n_comment VARCHAR NOT NULL)",
    "CREATE TABLE supplier (\
        s_suppkey BIGINT NOT NULL, \
        s_name VARCHAR NOT NULL, \
        s_address VARCHAR NOT NULL, \
        s_nationkey BIGINT NOT NULL, \
        s_phone VARCHAR NOT NULL, \
        s_acctbal DOUBLE NOT NULL, \
        s_comment VARCHAR NOT NULL)",
    "CREATE TABLE part (\
        p_partkey BIGINT NOT NULL, \
        p_name VARCHAR NOT NULL, \
        p_mfgr VARCHAR NOT NULL, \
        p_brand VARCHAR NOT NULL, \
        p_type VARCHAR NOT NULL, \
        p_size BIGINT NOT NULL, \
        p_container VARCHAR NOT NULL, \
        p_retailprice DOUBLE NOT NULL, \
        p_comment VARCHAR NOT NULL)",
    "CREATE TABLE partsupp (\
        ps_partkey BIGINT NOT NULL, \
        ps_suppkey BIGINT NOT NULL, \
        ps_availqty BIGINT NOT NULL, \
        ps_supplycost DOUBLE NOT NULL, \
        ps_comment VARCHAR NOT NULL)",
    "CREATE TABLE customer (\
        c_custkey BIGINT NOT NULL, \
        c_name VARCHAR NOT NULL, \
        c_address VARCHAR NOT NULL, \
        c_nationkey BIGINT NOT NULL, \
        c_phone VARCHAR NOT NULL, \
        c_acctbal DOUBLE NOT NULL, \
        c_mktsegment VARCHAR NOT NULL, \
        c_comment VARCHAR NOT NULL)",
    "CREATE TABLE orders (\
        o_orderkey BIGINT NOT NULL, \
        o_custkey BIGINT NOT NULL, \
        o_orderstatus VARCHAR NOT NULL, \
        o_totalprice DOUBLE NOT NULL, \
        o_orderdate DATE NOT NULL, \
        o_orderpriority VARCHAR NOT NULL, \
        o_clerk VARCHAR NOT NULL, \
        o_shippriority BIGINT NOT NULL, \
        o_comment VARCHAR NOT NULL)",
    "CREATE TABLE lineitem (\
        l_orderkey BIGINT NOT NULL, \
        l_partkey BIGINT NOT NULL, \
        l_suppkey BIGINT NOT NULL, \
        l_linenumber BIGINT NOT NULL, \
        l_quantity BIGINT NOT NULL, \
        l_extendedprice DOUBLE NOT NULL, \
        l_discount DOUBLE NOT NULL, \
        l_tax DOUBLE NOT NULL, \
        l_returnflag VARCHAR NOT NULL, \
        l_linestatus VARCHAR NOT NULL, \
        l_shipdate DATE NOT NULL, \
        l_commitdate DATE NOT NULL, \
        l_receiptdate DATE NOT NULL, \
        l_shipinstruct VARCHAR NOT NULL, \
        l_shipmode VARCHAR NOT NULL, \
        l_comment VARCHAR NOT NULL)",
];

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 TPC-H nations as (name, region index).
const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

const TYPE_SYLL1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_SYLL2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_SYLL3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const CONTAINER_1: [&str; 5] = ["SM", "MED", "LG", "JUMBO", "WRAP"];
const CONTAINER_2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
const COLORS: [&str; 10] =
    ["green", "blue", "red", "ivory", "salmon", "peach", "khaki", "orange", "plum", "linen"];
const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const INSTRUCTS: [&str; 4] = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];
/// Filler words for generated comments (Q13/Q16 match word patterns).
const WORDS: [&str; 12] = [
    "quick", "brown", "fox", "lazy", "ironic", "pending", "final", "bold", "silent", "express",
    "careful", "dogged",
];

/// Row counts of the pinned micro-scale instance, in DDL order.
pub const TPCH_MICRO_ROWS: [(&str, usize); 8] = [
    ("region", 5),
    ("nation", 25),
    ("supplier", 10),
    ("part", 100),
    ("partsupp", 400),
    ("customer", 75),
    ("orders", 750),
    ("lineitem", 0), // 1–4 lines per order; exact count is seed-dependent
];

fn money(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn phone(rng: &mut SmallRng, nationkey: i64) -> String {
    format!(
        "{:02}-{:03}-{:03}-{:04}",
        10 + nationkey,
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10000)
    )
}

fn comment(rng: &mut SmallRng, n: usize) -> String {
    (0..n).map(|_| WORDS[rng.gen_range(0..WORDS.len())]).collect::<Vec<_>>().join(" ")
}

/// Create and bulk-load the full micro-scale TPC-H instance. Bulk load
/// rebuilds statistics, so the cost-based optimizer sees real
/// cardinalities. Returns the lineitem row count.
pub fn load_tpch_micro(db: &std::sync::Arc<vw_core::Database>, seed: u64) -> u64 {
    for ddl in TPCH_DDL {
        db.execute(ddl).expect("tpch ddl");
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7c_b00c);
    let load = |db: &std::sync::Arc<vw_core::Database>, table: &str, cols: Vec<ColData>| {
        let nulls = vec![None; cols.len()];
        vw_core::bulk_load(db, table, &cols, &nulls).expect(table)
    };

    // region
    load(
        db,
        "region",
        vec![
            ColData::I64((0..5).collect()),
            ColData::Str(REGIONS.iter().map(|s| s.to_string()).collect()),
            ColData::Str((0..5).map(|_| comment(&mut rng, 4)).collect()),
        ],
    );

    // nation
    load(
        db,
        "nation",
        vec![
            ColData::I64((0..25).collect()),
            ColData::Str(NATIONS.iter().map(|(n, _)| n.to_string()).collect()),
            ColData::I64(NATIONS.iter().map(|&(_, r)| r).collect()),
            ColData::Str((0..25).map(|_| comment(&mut rng, 4)).collect()),
        ],
    );

    // supplier: 10 rows; ~1 in 5 comments carry the Q16 complaint marker.
    let ns = 10usize;
    let s_nation: Vec<i64> = (0..ns).map(|_| rng.gen_range(0..25i64)).collect();
    load(
        db,
        "supplier",
        vec![
            ColData::I64((1..=ns as i64).collect()),
            ColData::Str((1..=ns).map(|i| format!("Supplier#{i:09}")).collect()),
            ColData::Str((0..ns).map(|_| comment(&mut rng, 2)).collect()),
            ColData::I64(s_nation.clone()),
            ColData::Str(s_nation.iter().map(|&n| phone(&mut rng, n)).collect()),
            ColData::F64((0..ns).map(|_| money(rng.gen_range(-999.99..=9999.99))).collect()),
            ColData::Str(
                (0..ns)
                    .map(|i| {
                        if i % 5 == 0 {
                            format!("{} Customer uneasy Complaints {}", WORDS[i % 12], WORDS[i % 7])
                        } else {
                            comment(&mut rng, 5)
                        }
                    })
                    .collect(),
            ),
        ],
    );

    // part: 100 rows.
    let np = 100usize;
    load(
        db,
        "part",
        vec![
            ColData::I64((1..=np as i64).collect()),
            ColData::Str(
                (0..np)
                    .map(|_| {
                        let a = COLORS[rng.gen_range(0..COLORS.len())];
                        let b = COLORS[rng.gen_range(0..COLORS.len())];
                        format!("{a} {b}")
                    })
                    .collect(),
            ),
            ColData::Str(
                (0..np).map(|_| format!("Manufacturer#{}", rng.gen_range(1..=5))).collect(),
            ),
            ColData::Str(
                (0..np)
                    .map(|_| format!("Brand#{}{}", rng.gen_range(1..=5), rng.gen_range(1..=5)))
                    .collect(),
            ),
            ColData::Str(
                (0..np)
                    .map(|_| {
                        format!(
                            "{} {} {}",
                            TYPE_SYLL1[rng.gen_range(0..TYPE_SYLL1.len())],
                            TYPE_SYLL2[rng.gen_range(0..TYPE_SYLL2.len())],
                            TYPE_SYLL3[rng.gen_range(0..TYPE_SYLL3.len())]
                        )
                    })
                    .collect(),
            ),
            ColData::I64((0..np).map(|_| rng.gen_range(1..=50i64)).collect()),
            ColData::Str(
                (0..np)
                    .map(|_| {
                        format!(
                            "{} {}",
                            CONTAINER_1[rng.gen_range(0..CONTAINER_1.len())],
                            CONTAINER_2[rng.gen_range(0..CONTAINER_2.len())]
                        )
                    })
                    .collect(),
            ),
            ColData::F64((0..np).map(|_| money(rng.gen_range(900.0..=2000.0))).collect()),
            ColData::Str((0..np).map(|_| comment(&mut rng, 3)).collect()),
        ],
    );

    // partsupp: every part × 4 suppliers (wrapping the 10-supplier pool).
    let mut ps_part = Vec::new();
    let mut ps_supp = Vec::new();
    let mut ps_avail = Vec::new();
    let mut ps_cost = Vec::new();
    let mut ps_comment = Vec::new();
    for p in 1..=np as i64 {
        for s in 0..4i64 {
            ps_part.push(p);
            ps_supp.push((p + s * 3) % ns as i64 + 1);
            ps_avail.push(rng.gen_range(1..=9999i64));
            ps_cost.push(money(rng.gen_range(1.0..=1000.0)));
            ps_comment.push(comment(&mut rng, 3));
        }
    }
    load(
        db,
        "partsupp",
        vec![
            ColData::I64(ps_part),
            ColData::I64(ps_supp),
            ColData::I64(ps_avail),
            ColData::F64(ps_cost),
            ColData::Str(ps_comment),
        ],
    );

    // customer: 75 rows; ~1 in 8 comments carry the Q13 special-requests
    // marker.
    let nc = 75usize;
    let c_nation: Vec<i64> = (0..nc).map(|_| rng.gen_range(0..25i64)).collect();
    load(
        db,
        "customer",
        vec![
            ColData::I64((1..=nc as i64).collect()),
            ColData::Str((1..=nc).map(|i| format!("Customer#{i:09}")).collect()),
            ColData::Str((0..nc).map(|_| comment(&mut rng, 2)).collect()),
            ColData::I64(c_nation.clone()),
            ColData::Str(c_nation.iter().map(|&n| phone(&mut rng, n)).collect()),
            ColData::F64((0..nc).map(|_| money(rng.gen_range(-999.99..=9999.99))).collect()),
            ColData::Str((0..nc).map(|_| SEGMENTS[rng.gen_range(0..5)].to_string()).collect()),
            ColData::Str((0..nc).map(|_| comment(&mut rng, 5)).collect()),
        ],
    );

    // orders: 750 rows over the 1992–1998 date window.
    let base = Date::from_ymd(1992, 1, 1).unwrap().0;
    let span = Date::from_ymd(1998, 8, 2).unwrap().0 - base;
    let no = 750usize;
    let mut o_date = Vec::with_capacity(no);
    let mut o_status = Vec::with_capacity(no);
    for _ in 0..no {
        let d = base + rng.gen_range(0..span);
        o_date.push(d);
        // Orders old enough to be fully shipped are F, recent ones O.
        let cutoff = Date::from_ymd(1995, 6, 17).unwrap().0;
        o_status.push(if d < cutoff { "F" } else { "O" }.to_string());
    }
    load(
        db,
        "orders",
        vec![
            ColData::I64((1..=no as i64).collect()),
            // Like dbgen, a third of customers (custkey % 3 == 0) place no
            // orders — Q13's zero-order bucket and Q22's NOT EXISTS depend
            // on this hole.
            ColData::I64(
                (0..no)
                    .map(|_| loop {
                        let c = rng.gen_range(1..=nc as i64);
                        if c % 3 != 0 {
                            break c;
                        }
                    })
                    .collect(),
            ),
            ColData::Str(o_status),
            ColData::F64((0..no).map(|_| money(rng.gen_range(1000.0..=400_000.0))).collect()),
            ColData::Date(o_date.clone()),
            ColData::Str((0..no).map(|_| PRIORITIES[rng.gen_range(0..5)].to_string()).collect()),
            ColData::Str((0..no).map(|_| format!("Clerk#{:09}", rng.gen_range(1..=10))).collect()),
            ColData::I64(vec![0; no]),
            ColData::Str(
                (0..no)
                    .map(|i| {
                        if i % 8 == 3 {
                            format!("{} special packages requests {}", WORDS[i % 12], WORDS[i % 7])
                        } else {
                            comment(&mut rng, 6)
                        }
                    })
                    .collect(),
            ),
        ],
    );

    // lineitem: 1–4 lines per order; dates hang off the order date.
    let mut l = (
        Vec::new(),
        Vec::new(),
        Vec::new(),
        Vec::new(),
        Vec::new(),
        Vec::new(),
        Vec::new(),
        Vec::new(),
    );
    let mut l_flag = Vec::new();
    let mut l_status = Vec::new();
    let mut l_ship = Vec::new();
    let mut l_commit = Vec::new();
    let mut l_receipt = Vec::new();
    let mut l_instruct = Vec::new();
    let mut l_mode = Vec::new();
    let mut l_comment = Vec::new();
    let today = Date::from_ymd(1995, 6, 17).unwrap().0;
    for (oi, &od) in o_date.iter().enumerate() {
        let lines = rng.gen_range(1..=4usize);
        for ln in 0..lines {
            l.0.push(oi as i64 + 1);
            l.1.push(rng.gen_range(1..=np as i64));
            l.2.push(rng.gen_range(1..=ns as i64));
            l.3.push(ln as i64 + 1);
            let q = rng.gen_range(1..=50i64);
            l.4.push(q);
            l.5.push(money(q as f64 * rng.gen_range(900.0..=11000.0) / 10.0));
            l.6.push(rng.gen_range(0..=10) as f64 / 100.0);
            l.7.push(rng.gen_range(0..=8) as f64 / 100.0);
            let ship = od + rng.gen_range(1..=121);
            let commit = od + rng.gen_range(30..=90);
            let receipt = ship + rng.gen_range(1..=30);
            l_ship.push(ship);
            l_commit.push(commit);
            l_receipt.push(receipt);
            let (flag, status) = if receipt <= today {
                (if rng.gen_bool(0.5) { "R" } else { "A" }, "F")
            } else {
                ("N", "O")
            };
            l_flag.push(flag.to_string());
            l_status.push(status.to_string());
            l_instruct.push(INSTRUCTS[rng.gen_range(0..4)].to_string());
            l_mode.push(SHIPMODES[rng.gen_range(0..7)].to_string());
            l_comment.push(comment(&mut rng, 4));
        }
    }
    load(
        db,
        "lineitem",
        vec![
            ColData::I64(l.0),
            ColData::I64(l.1),
            ColData::I64(l.2),
            ColData::I64(l.3),
            ColData::I64(l.4),
            ColData::F64(l.5),
            ColData::F64(l.6),
            ColData::F64(l.7),
            ColData::Str(l_flag),
            ColData::Str(l_status),
            ColData::Date(l_ship),
            ColData::Date(l_commit),
            ColData::Date(l_receipt),
            ColData::Str(l_instruct),
            ColData::Str(l_mode),
            ColData::Str(l_comment),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_instance_is_deterministic() {
        let a = vw_core::Database::open_in_memory();
        let b = vw_core::Database::open_in_memory();
        let na = load_tpch_micro(&a, 1);
        let nb = load_tpch_micro(&b, 1);
        assert_eq!(na, nb);
        for q in [
            "SELECT COUNT(*), SUM(l_quantity) FROM lineitem",
            "SELECT COUNT(*) FROM orders WHERE o_orderdate < DATE '1995-01-01'",
            "SELECT COUNT(*) FROM part WHERE p_type LIKE 'PROMO%'",
        ] {
            let ra = a.execute(q).unwrap();
            let rb = b.execute(q).unwrap();
            assert_eq!(ra.rows(), rb.rows(), "{q}");
        }
        // Every query predicate domain is populated.
        let nonzero = |q: &str| {
            let r = a.execute(q).unwrap();
            let Value::I64(n) = r.scalar().unwrap() else { panic!("{q}") };
            assert!(*n > 0, "{q} matched nothing");
        };
        nonzero("SELECT COUNT(*) FROM part WHERE p_type LIKE 'PROMO%'");
        nonzero("SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'BUILDING'");
        nonzero("SELECT COUNT(*) FROM orders WHERE o_comment LIKE '%special%requests%'");
        nonzero("SELECT COUNT(*) FROM supplier WHERE s_comment LIKE '%Customer%Complaints%'");
        nonzero("SELECT COUNT(*) FROM lineitem WHERE l_shipmode IN ('MAIL', 'SHIP')");
        nonzero("SELECT COUNT(*) FROM lineitem WHERE l_receiptdate > l_commitdate");
    }

    #[test]
    fn deterministic() {
        let a = gen_lineitem(100, 7).into_columns();
        let b = gen_lineitem(100, 7).into_columns();
        assert_eq!(a, b);
        let c = gen_lineitem(100, 8).into_columns();
        assert_ne!(a, c);
    }

    #[test]
    fn shapes_match_tpch() {
        let cols = gen_lineitem(1000, 1);
        // Orderkeys ascending, ~4 lines per order.
        let ok = cols.orderkey.as_i64();
        assert!(ok.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(ok[999], 250);
        // Flags in the enumerated domain.
        for f in cols.returnflag.as_str() {
            assert!(["A", "N", "R"].contains(&f.as_str()));
        }
    }

    #[test]
    fn loads_into_database() {
        let db = vw_core::Database::open_in_memory();
        let n = load_lineitem(&db, 500, 42);
        assert_eq!(n, 500);
        let r = db.execute("SELECT COUNT(*) FROM lineitem").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::I64(500));
    }
}
