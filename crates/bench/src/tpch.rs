//! A deterministic TPC-H-like `lineitem` generator.
//!
//! Substitution for the real dbgen (DESIGN.md §2): same distributions that
//! matter to the experiments — clustered ascending order keys, small
//! enumerated flag domains, uniform quantities/prices, a bounded date range
//! with the classic shipdate offsets.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vw_common::{ColData, Date, Value};

/// One generated lineitem row (columnar container below).
#[derive(Debug, Clone)]
pub struct Lineitem {
    /// Order key (clustered ascending, ~4 lines per order).
    pub orderkey: i64,
    /// Part key (uniform).
    pub partkey: i64,
    /// Quantity 1..=50.
    pub quantity: i64,
    /// Extended price.
    pub extendedprice: f64,
    /// Discount 0.00..=0.10.
    pub discount: f64,
    /// Tax 0.00..=0.08.
    pub tax: f64,
    /// Return flag: A/N/R.
    pub returnflag: &'static str,
    /// Line status: O/F.
    pub linestatus: &'static str,
    /// Ship date within 1992-01-01..1998-12-01.
    pub shipdate: Date,
}

/// Columnar lineitem table.
pub struct LineitemColumns {
    /// l_orderkey.
    pub orderkey: ColData,
    /// l_partkey.
    pub partkey: ColData,
    /// l_quantity.
    pub quantity: ColData,
    /// l_extendedprice.
    pub extendedprice: ColData,
    /// l_discount.
    pub discount: ColData,
    /// l_tax.
    pub tax: ColData,
    /// l_returnflag.
    pub returnflag: ColData,
    /// l_linestatus.
    pub linestatus: ColData,
    /// l_shipdate.
    pub shipdate: ColData,
}

impl LineitemColumns {
    /// As a column vector in schema order.
    pub fn into_columns(self) -> Vec<ColData> {
        vec![
            self.orderkey,
            self.partkey,
            self.quantity,
            self.extendedprice,
            self.discount,
            self.tax,
            self.returnflag,
            self.linestatus,
            self.shipdate,
        ]
    }
}

/// The lineitem DDL used by examples/benches.
pub const LINEITEM_DDL: &str = "CREATE TABLE lineitem (\
    l_orderkey BIGINT NOT NULL, \
    l_partkey BIGINT NOT NULL, \
    l_quantity BIGINT NOT NULL, \
    l_extendedprice DOUBLE NOT NULL, \
    l_discount DOUBLE NOT NULL, \
    l_tax DOUBLE NOT NULL, \
    l_returnflag VARCHAR NOT NULL, \
    l_linestatus VARCHAR NOT NULL, \
    l_shipdate DATE NOT NULL)";

/// Generate `n` rows deterministically (seeded).
pub fn gen_lineitem(n: usize, seed: u64) -> LineitemColumns {
    let mut rng = SmallRng::seed_from_u64(seed);
    let base = Date::from_ymd(1992, 1, 1).unwrap().0;
    let span = Date::from_ymd(1998, 12, 1).unwrap().0 - base;
    let mut orderkey = Vec::with_capacity(n);
    let mut partkey = Vec::with_capacity(n);
    let mut quantity = Vec::with_capacity(n);
    let mut extendedprice = Vec::with_capacity(n);
    let mut discount = Vec::with_capacity(n);
    let mut tax = Vec::with_capacity(n);
    let mut returnflag = Vec::with_capacity(n);
    let mut linestatus = Vec::with_capacity(n);
    let mut shipdate = Vec::with_capacity(n);
    for i in 0..n {
        let ok = (i / 4 + 1) as i64;
        orderkey.push(ok);
        partkey.push(rng.gen_range(1..=(n as i64 / 4).max(10)));
        let q = rng.gen_range(1..=50i64);
        quantity.push(q);
        let price = q as f64 * rng.gen_range(900.0..=11000.0) / 10.0;
        extendedprice.push((price * 100.0).round() / 100.0);
        discount.push(rng.gen_range(0..=10) as f64 / 100.0);
        tax.push(rng.gen_range(0..=8) as f64 / 100.0);
        let day = base + rng.gen_range(0..span);
        shipdate.push(day);
        let (flag, status) = if day < base + span / 2 {
            (if rng.gen_bool(0.5) { "A" } else { "R" }, "F")
        } else {
            ("N", "O")
        };
        returnflag.push(flag.to_string());
        linestatus.push(status.to_string());
    }
    LineitemColumns {
        orderkey: ColData::I64(orderkey),
        partkey: ColData::I64(partkey),
        quantity: ColData::I64(quantity),
        extendedprice: ColData::F64(extendedprice),
        discount: ColData::F64(discount),
        tax: ColData::F64(tax),
        returnflag: ColData::Str(returnflag),
        linestatus: ColData::Str(linestatus),
        shipdate: ColData::Date(shipdate),
    }
}

/// The orders DDL used by the multi-join experiments.
pub const ORDERS_DDL: &str = "CREATE TABLE orders (\
    o_orderkey BIGINT NOT NULL, \
    o_custkey BIGINT NOT NULL, \
    o_totalprice DOUBLE NOT NULL)";

/// The customer DDL used by the multi-join experiments.
pub const CUSTOMER_DDL: &str = "CREATE TABLE customer (\
    c_custkey BIGINT NOT NULL, \
    c_nation BIGINT NOT NULL, \
    c_acctbal DOUBLE NOT NULL)";

/// Generate the orders side of [`gen_lineitem`]'s key space: one row per
/// distinct `l_orderkey` (`n_lineitem / 4` orders, clustered ascending),
/// each owned by a uniform customer out of `n_customers`.
pub fn gen_orders(n_lineitem: usize, n_customers: usize, seed: u64) -> Vec<ColData> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x08de8);
    let n = (n_lineitem / 4).max(1);
    let orderkey: Vec<i64> = (1..=n as i64).collect();
    let custkey: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=n_customers.max(1) as i64)).collect();
    let total: Vec<f64> = (0..n).map(|_| rng.gen_range(1000.0..=100_000.0)).collect();
    vec![ColData::I64(orderkey), ColData::I64(custkey), ColData::F64(total)]
}

/// Generate `n` customers over 25 nations (TPC-H's nation count), uniform.
pub fn gen_customer(n: usize, seed: u64) -> Vec<ColData> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xc057);
    let custkey: Vec<i64> = (1..=n as i64).collect();
    let nation: Vec<i64> = (0..n).map(|_| rng.gen_range(0..25i64)).collect();
    let acctbal: Vec<f64> = (0..n).map(|_| rng.gen_range(-999.0..=9999.0)).collect();
    vec![ColData::I64(custkey), ColData::I64(nation), ColData::F64(acctbal)]
}

/// Create + bulk-load the orders and customer tables sized to match a
/// `n_lineitem`-row lineitem (1:4 orders, 1:40 customers — enough key
/// skew that join order matters). Bulk load builds fresh statistics, so
/// the cost-based optimizer sees real cardinalities.
pub fn load_orders_customer(
    db: &std::sync::Arc<vw_core::Database>,
    n_lineitem: usize,
    seed: u64,
) -> (u64, u64) {
    let n_customers = (n_lineitem / 40).max(1);
    db.execute(ORDERS_DDL).expect("orders ddl");
    db.execute(CUSTOMER_DDL).expect("customer ddl");
    let ocols = gen_orders(n_lineitem, n_customers, seed);
    let ccols = gen_customer(n_customers, seed);
    let on = vw_core::bulk_load(db, "orders", &ocols, &vec![None; ocols.len()]).expect("orders");
    let cn =
        vw_core::bulk_load(db, "customer", &ccols, &vec![None; ccols.len()]).expect("customer");
    (on, cn)
}

/// The flags DDL used by the compressed-execution experiments: a
/// returnflag-style low-cardinality string column next to a quantity.
pub const FLAGS_DDL: &str = "CREATE TABLE flags (\
    f_flag VARCHAR NOT NULL, \
    f_qty BIGINT NOT NULL)";

/// Generate `n` flag rows: `f_flag` drawn uniformly from a 25-value
/// enumerated domain (`FLAG_00`..`FLAG_24` — TPC-H nation-count sized, so
/// stable storage dictionary-codes the column in every pack) and a
/// uniform `f_qty` in 1..=100.
pub fn gen_flags(n: usize, seed: u64) -> Vec<ColData> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xf1a6);
    let domain: Vec<String> = (0..25).map(|i| format!("FLAG_{i:02}")).collect();
    let flag: Vec<String> =
        (0..n).map(|_| domain[rng.gen_range(0..domain.len())].clone()).collect();
    let qty: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=100i64)).collect();
    vec![ColData::Str(flag), ColData::I64(qty)]
}

/// Create + bulk-load the flags table into a database.
pub fn load_flags(db: &std::sync::Arc<vw_core::Database>, n: usize, seed: u64) -> u64 {
    db.execute(FLAGS_DDL).expect("flags ddl");
    let cols = gen_flags(n, seed);
    vw_core::bulk_load(db, "flags", &cols, &vec![None; cols.len()]).expect("flags load")
}

/// Row-wise view for the Volcano baseline.
pub fn gen_lineitem_rows(n: usize, seed: u64) -> Vec<Vec<Value>> {
    let cols = gen_lineitem(n, seed).into_columns();
    (0..n).map(|i| cols.iter().map(|c| c.get_value(i)).collect()).collect()
}

/// Create + bulk-load lineitem into a database.
pub fn load_lineitem(db: &std::sync::Arc<vw_core::Database>, n: usize, seed: u64) -> u64 {
    db.execute(LINEITEM_DDL).expect("ddl");
    let cols = gen_lineitem(n, seed).into_columns();
    let nulls = vec![None; cols.len()];
    vw_core::bulk_load(db, "lineitem", &cols, &nulls).expect("load")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = gen_lineitem(100, 7).into_columns();
        let b = gen_lineitem(100, 7).into_columns();
        assert_eq!(a, b);
        let c = gen_lineitem(100, 8).into_columns();
        assert_ne!(a, c);
    }

    #[test]
    fn shapes_match_tpch() {
        let cols = gen_lineitem(1000, 1);
        // Orderkeys ascending, ~4 lines per order.
        let ok = cols.orderkey.as_i64();
        assert!(ok.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(ok[999], 250);
        // Flags in the enumerated domain.
        for f in cols.returnflag.as_str() {
            assert!(["A", "N", "R"].contains(&f.as_str()));
        }
    }

    #[test]
    fn loads_into_database() {
        let db = vw_core::Database::open_in_memory();
        let n = load_lineitem(&db, 500, 42);
        assert_eq!(n, 500);
        let r = db.execute("SELECT COUNT(*) FROM lineitem").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::I64(500));
    }
}
