//! # vw-bench — workload generators and the experiment harness
//!
//! Deterministic TPC-H-like data (the paper's motivating workload shape)
//! plus one driver function per experiment in DESIGN.md §4 (C1..C11). The
//! `repro` binary prints each experiment's paper-style table; the Criterion
//! benches wrap the same drivers for statistically robust timing.

pub mod experiments;
pub mod tpch;

pub use tpch::{gen_lineitem, Lineitem};
