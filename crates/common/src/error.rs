//! Error taxonomy for the whole engine.
//!
//! The paper devotes a section to *error handling and reporting*: "the
//! original X100 functions often assumed a simplified view of the world,
//! where a user never issues a query that can fail". A production system must
//! detect division by zero, incorrect function parameters, arithmetic
//! overflows, cancelled queries, conflicting transactions, and more — and it
//! must do so without wrecking per-tuple performance (see
//! `vw-exec::primitives::checked` for the vectorized lazy-checking kernels).

use std::fmt;

/// Convenience alias used across all `vw-*` crates.
pub type Result<T> = std::result::Result<T, VwError>;

/// Every error the engine can surface to a user or an embedding application.
#[derive(Debug, Clone, PartialEq)]
pub enum VwError {
    /// Integer or date arithmetic overflowed the target type.
    Overflow(&'static str),
    /// Division (or modulo) by zero in an expression.
    DivideByZero,
    /// A SQL function received an out-of-domain argument
    /// (e.g. `SUBSTRING` with negative length, `SQRT` of a negative number).
    InvalidParameter(String),
    /// Cast failed (value does not fit or cannot be parsed).
    InvalidCast(String),
    /// The query was cancelled (user `kill`, session drop, or timeout).
    Cancelled,
    /// SQL lexing/parsing failed.
    Parse(String),
    /// Name resolution / typing failed (unknown table, column, function,
    /// type mismatch...).
    Bind(String),
    /// Plan construction or rewriting failed; indicates an engine bug or an
    /// unsupported construct.
    Plan(String),
    /// Catalog manipulation failed (duplicate table, unknown table...).
    Catalog(String),
    /// Storage layer failure (block out of range, corrupted header...).
    Storage(String),
    /// A device-level I/O failure. `transient` distinguishes faults worth
    /// retrying (a failed transfer, a checksum mismatch on an in-flight
    /// read — the stored data is intact) from terminal ones (the device
    /// refused the operation outright). The storage layer retries
    /// transient faults with bounded backoff (`vw-storage::disk::retry_io`)
    /// before surfacing this error; see ARCHITECTURE.md ("Failure model").
    Io {
        /// True when a bounded retry may succeed (the failure was in
        /// flight, not in the stored state).
        transient: bool,
        /// Human-readable description of the failed operation.
        msg: String,
    },
    /// Compressed block failed validation during decode.
    Corruption(String),
    /// Transaction aborted due to a write-write conflict (PDT positional
    /// overlap) or user `ABORT`.
    TxnConflict(String),
    /// Transaction API misuse (commit of an unknown transaction, DML outside
    /// a transaction where one is required...).
    TxnState(String),
    /// The admission controller rejected the query: the bounded FIFO queue
    /// of waiting queries is full. A "busy, retry later" condition, not an
    /// execution failure — the engine is governing its global memory limit
    /// across concurrent sessions (ARCHITECTURE.md, "Life of a query").
    Admission(String),
    /// Execution-time failure not covered by a more precise variant.
    Exec(String),
    /// Feature intentionally out of scope for this reproduction.
    Unsupported(String),
}

impl VwError {
    /// Short machine-readable classification code, stable across releases;
    /// the monitoring subsystem logs these.
    pub fn code(&self) -> &'static str {
        match self {
            VwError::Overflow(_) => "E_OVERFLOW",
            VwError::DivideByZero => "E_DIV_ZERO",
            VwError::InvalidParameter(_) => "E_INVALID_PARAM",
            VwError::InvalidCast(_) => "E_INVALID_CAST",
            VwError::Cancelled => "E_CANCELLED",
            VwError::Parse(_) => "E_PARSE",
            VwError::Bind(_) => "E_BIND",
            VwError::Plan(_) => "E_PLAN",
            VwError::Catalog(_) => "E_CATALOG",
            VwError::Storage(_) => "E_STORAGE",
            VwError::Io { .. } => "E_IO",
            VwError::Corruption(_) => "E_CORRUPTION",
            VwError::TxnConflict(_) => "E_TXN_CONFLICT",
            VwError::TxnState(_) => "E_TXN_STATE",
            VwError::Admission(_) => "E_ADMISSION",
            VwError::Exec(_) => "E_EXEC",
            VwError::Unsupported(_) => "E_UNSUPPORTED",
        }
    }

    /// True for errors caused by the data/query rather than engine state;
    /// such errors fail the statement but leave the session usable.
    pub fn is_user_error(&self) -> bool {
        matches!(
            self,
            VwError::Overflow(_)
                | VwError::DivideByZero
                | VwError::InvalidParameter(_)
                | VwError::InvalidCast(_)
                | VwError::Parse(_)
                | VwError::Bind(_)
                | VwError::Catalog(_)
                | VwError::Unsupported(_)
        )
    }
}

impl fmt::Display for VwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VwError::Overflow(what) => write!(f, "{}: arithmetic overflow in {what}", self.code()),
            VwError::DivideByZero => write!(f, "{}: division by zero", self.code()),
            VwError::InvalidParameter(m) => write!(f, "{}: invalid parameter: {m}", self.code()),
            VwError::InvalidCast(m) => write!(f, "{}: invalid cast: {m}", self.code()),
            VwError::Cancelled => write!(f, "{}: query cancelled", self.code()),
            VwError::Parse(m) => write!(f, "{}: parse error: {m}", self.code()),
            VwError::Bind(m) => write!(f, "{}: binder error: {m}", self.code()),
            VwError::Plan(m) => write!(f, "{}: planner error: {m}", self.code()),
            VwError::Catalog(m) => write!(f, "{}: catalog error: {m}", self.code()),
            VwError::Storage(m) => write!(f, "{}: storage error: {m}", self.code()),
            VwError::Io { transient, msg } => {
                let kind = if *transient { "transient" } else { "terminal" };
                write!(f, "{}: {kind} i/o error: {msg}", self.code())
            }
            VwError::Corruption(m) => write!(f, "{}: corrupted data: {m}", self.code()),
            VwError::TxnConflict(m) => write!(f, "{}: transaction conflict: {m}", self.code()),
            VwError::TxnState(m) => write!(f, "{}: transaction state error: {m}", self.code()),
            VwError::Admission(m) => write!(f, "{}: admission rejected: {m}", self.code()),
            VwError::Exec(m) => write!(f, "{}: execution error: {m}", self.code()),
            VwError::Unsupported(m) => write!(f, "{}: unsupported: {m}", self.code()),
        }
    }
}

impl std::error::Error for VwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let errs = vec![
            VwError::Overflow("add"),
            VwError::DivideByZero,
            VwError::InvalidParameter("p".into()),
            VwError::InvalidCast("c".into()),
            VwError::Cancelled,
            VwError::Parse("p".into()),
            VwError::Bind("b".into()),
            VwError::Plan("p".into()),
            VwError::Catalog("c".into()),
            VwError::Storage("s".into()),
            VwError::Io { transient: true, msg: "i".into() },
            VwError::Corruption("c".into()),
            VwError::TxnConflict("t".into()),
            VwError::TxnState("t".into()),
            VwError::Admission("full".into()),
            VwError::Exec("e".into()),
            VwError::Unsupported("u".into()),
        ];
        let mut codes: Vec<&str> = errs.iter().map(|e| e.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 17, "every variant must map to a unique code");
    }

    #[test]
    fn user_errors_classified() {
        assert!(VwError::DivideByZero.is_user_error());
        assert!(VwError::Overflow("x").is_user_error());
        assert!(!VwError::Cancelled.is_user_error());
        assert!(!VwError::Storage("x".into()).is_user_error());
        assert!(!VwError::TxnConflict("x".into()).is_user_error());
        assert!(!VwError::Io { transient: true, msg: "x".into() }.is_user_error());
        assert!(
            !VwError::Admission("full".into()).is_user_error(),
            "admission rejection reflects engine load, not a bad query"
        );
    }

    #[test]
    fn io_display_carries_transience() {
        let e = VwError::Io { transient: true, msg: "injected read fault".into() };
        assert!(e.to_string().contains("E_IO"));
        assert!(e.to_string().contains("transient"));
        let e = VwError::Io { transient: false, msg: "device gone".into() };
        assert!(e.to_string().contains("terminal"));
    }

    #[test]
    fn display_contains_code() {
        let e = VwError::DivideByZero;
        assert!(e.to_string().contains("E_DIV_ZERO"));
        let e = VwError::Parse("near 'FROM'".into());
        assert!(e.to_string().contains("near 'FROM'"));
    }
}
