//! A fast, non-cryptographic hasher (FxHash-style multiply-rotate).
//!
//! Hash joins and hash aggregation hash billions of short integer keys; the
//! default SipHash is far too slow for that (see the Rust Performance Book's
//! Hashing chapter). Rather than pulling an extra dependency we implement the
//! well-known Fx algorithm: per 8-byte word, `h = (h.rotl(5) ^ w) * K`.

use std::hash::{BuildHasherDefault, Hasher};

const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx-style hasher state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            // Mix in the length so "ab" and "ab\0" differ.
            w[7] = rem.len() as u8;
            self.add_word(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// splitmix64 finalizer: full-avalanche mixing so that *both* the low bits
/// (bucket index masks) and high bits of the result are usable.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash a single 64-bit value (the vectorized hash primitives inline this).
/// Unlike the streaming [`FxHasher`], this fully avalanches, because hash
/// join / aggregation derive bucket indices from the low bits.
#[inline]
pub fn hash_u64(v: u64) -> u64 {
    mix(v ^ 0x9e37_79b9_7f4a_7c15)
}

/// Combine an existing hash with a new one (multi-column keys).
#[inline]
pub fn hash_combine(seed: u64, v: u64) -> u64 {
    mix(seed.rotate_left(5) ^ v.wrapping_mul(K))
}

/// Hash a byte slice from scratch (string keys).
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_eq!(hash_bytes(b"hello"), hash_bytes(b"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_u64(1), hash_u64(2));
        assert_ne!(hash_bytes(b"ab"), hash_bytes(b"ab\0"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = hash_combine(hash_u64(1), 2);
        let b = hash_combine(hash_u64(2), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn map_usable() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m[&500], 1000);
    }

    #[test]
    fn low_bit_spread() {
        // Sequential keys must not collide in the low bits used for bucket
        // selection: count distinct low-10-bit patterns over 1024 keys.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1024u64 {
            seen.insert(hash_u64(i) & 1023);
        }
        assert!(seen.len() > 600, "poor low-bit dispersion: {}", seen.len());
    }
}
