//! `ColData` — the typed columnar data container shared by the storage and
//! execution layers.
//!
//! A `ColData` is a dense, type-homogeneous array of non-NULL values. NULLs
//! are represented *outside* this container as a separate boolean indicator
//! column (the Vectorwise two-column scheme); NULL positions in the value
//! column hold "safe" defaults so NULL-oblivious kernels can process them
//! harmlessly.

use crate::error::{Result, VwError};
use crate::types::{Date, TypeId, Value};

/// Dense typed column values. One enum variant per supported type.
#[derive(Debug, Clone, PartialEq)]
pub enum ColData {
    /// Booleans.
    Bool(Vec<bool>),
    /// 8-bit ints.
    I8(Vec<i8>),
    /// 16-bit ints.
    I16(Vec<i16>),
    /// 32-bit ints.
    I32(Vec<i32>),
    /// 64-bit ints.
    I64(Vec<i64>),
    /// Doubles.
    F64(Vec<f64>),
    /// Strings.
    Str(Vec<String>),
    /// Dates (days since epoch).
    Date(Vec<i32>),
}

macro_rules! per_variant {
    ($self:expr, $v:ident => $e:expr) => {
        match $self {
            ColData::Bool($v) => $e,
            ColData::I8($v) => $e,
            ColData::I16($v) => $e,
            ColData::I32($v) => $e,
            ColData::I64($v) => $e,
            ColData::F64($v) => $e,
            ColData::Str($v) => $e,
            ColData::Date($v) => $e,
        }
    };
}

impl ColData {
    /// Empty column of type `ty`.
    pub fn new(ty: TypeId) -> ColData {
        ColData::with_capacity(ty, 0)
    }

    /// Empty column of type `ty` with reserved capacity.
    pub fn with_capacity(ty: TypeId, cap: usize) -> ColData {
        match ty {
            TypeId::Bool => ColData::Bool(Vec::with_capacity(cap)),
            TypeId::I8 => ColData::I8(Vec::with_capacity(cap)),
            TypeId::I16 => ColData::I16(Vec::with_capacity(cap)),
            TypeId::I32 => ColData::I32(Vec::with_capacity(cap)),
            TypeId::I64 => ColData::I64(Vec::with_capacity(cap)),
            TypeId::F64 => ColData::F64(Vec::with_capacity(cap)),
            TypeId::Str => ColData::Str(Vec::with_capacity(cap)),
            TypeId::Date => ColData::Date(Vec::with_capacity(cap)),
        }
    }

    /// The column's type.
    pub fn type_id(&self) -> TypeId {
        match self {
            ColData::Bool(_) => TypeId::Bool,
            ColData::I8(_) => TypeId::I8,
            ColData::I16(_) => TypeId::I16,
            ColData::I32(_) => TypeId::I32,
            ColData::I64(_) => TypeId::I64,
            ColData::F64(_) => TypeId::F64,
            ColData::Str(_) => TypeId::Str,
            ColData::Date(_) => TypeId::Date,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        per_variant!(self, v => v.len())
    }

    /// True if no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all values, retaining capacity.
    pub fn clear(&mut self) {
        per_variant!(self, v => v.clear())
    }

    /// Truncate to `n` values.
    pub fn truncate(&mut self, n: usize) {
        per_variant!(self, v => v.truncate(n))
    }

    /// Read position `i` as a [`Value`] (slow path: results, tests, Volcano).
    pub fn get_value(&self, i: usize) -> Value {
        match self {
            ColData::Bool(v) => Value::Bool(v[i]),
            ColData::I8(v) => Value::I8(v[i]),
            ColData::I16(v) => Value::I16(v[i]),
            ColData::I32(v) => Value::I32(v[i]),
            ColData::I64(v) => Value::I64(v[i]),
            ColData::F64(v) => Value::F64(v[i]),
            ColData::Str(v) => Value::Str(v[i].clone()),
            ColData::Date(v) => Value::Date(Date(v[i])),
        }
    }

    /// Append a [`Value`]; NULL appends the type's safe default.
    /// Errors on type mismatch.
    pub fn push_value(&mut self, val: &Value) -> Result<()> {
        let col_ty = self.type_id();
        let mismatch = move || {
            VwError::Exec(format!("cannot append {:?} to {} column", val, col_ty.sql_name()))
        };
        if val.is_null() {
            self.push_safe_default();
            return Ok(());
        }
        match (self, val) {
            (ColData::Bool(v), Value::Bool(b)) => v.push(*b),
            (ColData::I8(v), Value::I8(x)) => v.push(*x),
            (ColData::I16(v), Value::I16(x)) => v.push(*x),
            (ColData::I32(v), Value::I32(x)) => v.push(*x),
            (ColData::I64(v), Value::I64(x)) => v.push(*x),
            (ColData::F64(v), Value::F64(x)) => v.push(*x),
            (ColData::Str(v), Value::Str(s)) => v.push(s.clone()),
            (ColData::Date(v), Value::Date(d)) => v.push(d.0),
            _ => return Err(mismatch()),
        }
        Ok(())
    }

    /// Append the type's safe default (used under a NULL indicator).
    pub fn push_safe_default(&mut self) {
        match self {
            ColData::Bool(v) => v.push(false),
            ColData::I8(v) => v.push(0),
            ColData::I16(v) => v.push(0),
            ColData::I32(v) => v.push(0),
            ColData::I64(v) => v.push(0),
            ColData::F64(v) => v.push(0.0),
            ColData::Str(v) => v.push(String::new()),
            ColData::Date(v) => v.push(0),
        }
    }

    /// Append values from `other[range]`. Panics on type mismatch
    /// (callers guarantee same-typed columns).
    pub fn extend_from_range(&mut self, other: &ColData, start: usize, end: usize) {
        match (self, other) {
            (ColData::Bool(a), ColData::Bool(b)) => a.extend_from_slice(&b[start..end]),
            (ColData::I8(a), ColData::I8(b)) => a.extend_from_slice(&b[start..end]),
            (ColData::I16(a), ColData::I16(b)) => a.extend_from_slice(&b[start..end]),
            (ColData::I32(a), ColData::I32(b)) => a.extend_from_slice(&b[start..end]),
            (ColData::I64(a), ColData::I64(b)) => a.extend_from_slice(&b[start..end]),
            (ColData::F64(a), ColData::F64(b)) => a.extend_from_slice(&b[start..end]),
            (ColData::Str(a), ColData::Str(b)) => a.extend_from_slice(&b[start..end]),
            (ColData::Date(a), ColData::Date(b)) => a.extend_from_slice(&b[start..end]),
            (a, b) => panic!("extend_from_range type mismatch: {} vs {}", a.type_id(), b.type_id()),
        }
    }

    /// Gather `positions` from `other` and append them.
    pub fn extend_gather(&mut self, other: &ColData, positions: impl Iterator<Item = usize>) {
        match (self, other) {
            (ColData::Bool(a), ColData::Bool(b)) => a.extend(positions.map(|p| b[p])),
            (ColData::I8(a), ColData::I8(b)) => a.extend(positions.map(|p| b[p])),
            (ColData::I16(a), ColData::I16(b)) => a.extend(positions.map(|p| b[p])),
            (ColData::I32(a), ColData::I32(b)) => a.extend(positions.map(|p| b[p])),
            (ColData::I64(a), ColData::I64(b)) => a.extend(positions.map(|p| b[p])),
            (ColData::F64(a), ColData::F64(b)) => a.extend(positions.map(|p| b[p])),
            (ColData::Str(a), ColData::Str(b)) => a.extend(positions.map(|p| b[p].clone())),
            (ColData::Date(a), ColData::Date(b)) => a.extend(positions.map(|p| b[p])),
            (a, b) => panic!("extend_gather type mismatch: {} vs {}", a.type_id(), b.type_id()),
        }
    }

    /// Gather `idx` from `other` and append, except that lanes equal to
    /// `sentinel` append the type's safe default instead of reading `other`
    /// (the caller marks those lanes NULL — outer-join padding).
    pub fn extend_gather_padded(&mut self, other: &ColData, idx: &[u32], sentinel: u32) {
        macro_rules! gather_padded {
            ($a:expr, $b:expr, $default:expr) => {
                $a.extend(idx.iter().map(|&i| {
                    if i == sentinel {
                        $default
                    } else {
                        $b[i as usize].clone()
                    }
                }))
            };
        }
        match (self, other) {
            (ColData::Bool(a), ColData::Bool(b)) => gather_padded!(a, b, false),
            (ColData::I8(a), ColData::I8(b)) => gather_padded!(a, b, 0),
            (ColData::I16(a), ColData::I16(b)) => gather_padded!(a, b, 0),
            (ColData::I32(a), ColData::I32(b)) => gather_padded!(a, b, 0),
            (ColData::I64(a), ColData::I64(b)) => gather_padded!(a, b, 0),
            (ColData::F64(a), ColData::F64(b)) => gather_padded!(a, b, 0.0),
            (ColData::Str(a), ColData::Str(b)) => gather_padded!(a, b, String::new()),
            (ColData::Date(a), ColData::Date(b)) => gather_padded!(a, b, 0),
            (a, b) => {
                panic!("extend_gather_padded type mismatch: {} vs {}", a.type_id(), b.type_id())
            }
        }
    }

    /// Overwrite position `i` with a value (PDT merge path).
    pub fn set_value(&mut self, i: usize, val: &Value) -> Result<()> {
        if val.is_null() {
            match self {
                ColData::Bool(v) => v[i] = false,
                ColData::I8(v) => v[i] = 0,
                ColData::I16(v) => v[i] = 0,
                ColData::I32(v) => v[i] = 0,
                ColData::I64(v) => v[i] = 0,
                ColData::F64(v) => v[i] = 0.0,
                ColData::Str(v) => v[i] = String::new(),
                ColData::Date(v) => v[i] = 0,
            }
            return Ok(());
        }
        match (self, val) {
            (ColData::Bool(v), Value::Bool(b)) => v[i] = *b,
            (ColData::I8(v), Value::I8(x)) => v[i] = *x,
            (ColData::I16(v), Value::I16(x)) => v[i] = *x,
            (ColData::I32(v), Value::I32(x)) => v[i] = *x,
            (ColData::I64(v), Value::I64(x)) => v[i] = *x,
            (ColData::F64(v), Value::F64(x)) => v[i] = *x,
            (ColData::Str(v), Value::Str(s)) => v[i] = s.clone(),
            (ColData::Date(v), Value::Date(d)) => v[i] = d.0,
            (c, v) => {
                return Err(VwError::Exec(format!(
                    "cannot set {:?} into {} column",
                    v,
                    c.type_id().sql_name()
                )))
            }
        }
        Ok(())
    }

    /// Widen the content to i64s (compression input) — not for Str/F64.
    /// F64 goes through raw bit transmutation, Str through the string codec.
    pub fn to_i64s(&self, out: &mut Vec<i64>) {
        out.clear();
        match self {
            ColData::Bool(v) => out.extend(v.iter().map(|&b| b as i64)),
            ColData::I8(v) => out.extend(v.iter().map(|&x| x as i64)),
            ColData::I16(v) => out.extend(v.iter().map(|&x| x as i64)),
            ColData::I32(v) => out.extend(v.iter().map(|&x| x as i64)),
            ColData::I64(v) => out.extend_from_slice(v),
            ColData::F64(v) => out.extend(v.iter().map(|&x| x.to_bits() as i64)),
            ColData::Date(v) => out.extend(v.iter().map(|&x| x as i64)),
            ColData::Str(_) => panic!("to_i64s on string column"),
        }
    }

    /// Rebuild a column of type `ty` from widened i64s (decompression output).
    pub fn from_i64s(ty: TypeId, vals: &[i64]) -> Result<ColData> {
        let narrow_err =
            |v: i64| VwError::Corruption(format!("value {v} out of range for {}", ty.sql_name()));
        Ok(match ty {
            TypeId::Bool => ColData::Bool(vals.iter().map(|&v| v != 0).collect()),
            TypeId::I8 => ColData::I8(
                vals.iter()
                    .map(|&v| i8::try_from(v).map_err(|_| narrow_err(v)))
                    .collect::<Result<_>>()?,
            ),
            TypeId::I16 => ColData::I16(
                vals.iter()
                    .map(|&v| i16::try_from(v).map_err(|_| narrow_err(v)))
                    .collect::<Result<_>>()?,
            ),
            TypeId::I32 => ColData::I32(
                vals.iter()
                    .map(|&v| i32::try_from(v).map_err(|_| narrow_err(v)))
                    .collect::<Result<_>>()?,
            ),
            TypeId::I64 => ColData::I64(vals.to_vec()),
            TypeId::F64 => ColData::F64(vals.iter().map(|&v| f64::from_bits(v as u64)).collect()),
            TypeId::Date => ColData::Date(
                vals.iter()
                    .map(|&v| i32::try_from(v).map_err(|_| narrow_err(v)))
                    .collect::<Result<_>>()?,
            ),
            TypeId::Str => return Err(VwError::Corruption("from_i64s on string column".into())),
        })
    }

    /// Borrow as `&[i64]`; panics if not an I64 column (kernel internals).
    pub fn as_i64(&self) -> &[i64] {
        match self {
            ColData::I64(v) => v,
            other => panic!("expected I64 column, got {}", other.type_id()),
        }
    }

    /// Borrow as `&[f64]`; panics if not an F64 column (kernel internals).
    pub fn as_f64(&self) -> &[f64] {
        match self {
            ColData::F64(v) => v,
            other => panic!("expected F64 column, got {}", other.type_id()),
        }
    }

    /// Borrow as `&[String]`; panics if not a Str column.
    pub fn as_str(&self) -> &[String] {
        match self {
            ColData::Str(v) => v,
            other => panic!("expected Str column, got {}", other.type_id()),
        }
    }

    /// Borrow as `&[bool]`; panics if not a Bool column.
    pub fn as_bool(&self) -> &[bool] {
        match self {
            ColData::Bool(v) => v,
            other => panic!("expected Bool column, got {}", other.type_id()),
        }
    }

    /// Approximate heap size in bytes (buffer-pool accounting).
    pub fn byte_size(&self) -> usize {
        match self {
            ColData::Bool(v) => v.len(),
            ColData::I8(v) => v.len(),
            ColData::I16(v) => v.len() * 2,
            ColData::I32(v) | ColData::Date(v) => v.len() * 4,
            ColData::I64(v) => v.len() * 8,
            ColData::F64(v) => v.len() * 8,
            ColData::Str(v) => v.iter().map(|s| s.len() + 24).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip_all_types() {
        let vals = vec![
            Value::Bool(true),
            Value::I8(-5),
            Value::I16(300),
            Value::I32(-70000),
            Value::I64(1 << 40),
            Value::F64(2.5),
            Value::Str("hi".into()),
            Value::Date(Date(9000)),
        ];
        for v in &vals {
            let ty = v.type_id().unwrap();
            let mut col = ColData::new(ty);
            col.push_value(v).unwrap();
            assert_eq!(&col.get_value(0), v);
        }
    }

    #[test]
    fn push_mismatch_errors() {
        let mut col = ColData::new(TypeId::I32);
        assert!(col.push_value(&Value::Str("x".into())).is_err());
        assert!(col.push_value(&Value::I64(5)).is_err(), "no silent narrowing");
    }

    #[test]
    fn null_pushes_safe_default() {
        let mut col = ColData::new(TypeId::Str);
        col.push_value(&Value::Null).unwrap();
        assert_eq!(col.get_value(0), Value::Str(String::new()));
    }

    #[test]
    fn i64_widening_roundtrip() {
        for ty in [TypeId::Bool, TypeId::I8, TypeId::I16, TypeId::I32, TypeId::I64, TypeId::Date] {
            let mut col = ColData::new(ty);
            for i in -3i64..4 {
                let v = match ty {
                    TypeId::Bool => Value::Bool(i != 0),
                    TypeId::Date => Value::Date(Date(i as i32)),
                    _ => Value::I64(i).cast_to(ty).unwrap(),
                };
                col.push_value(&v).unwrap();
            }
            let mut widened = Vec::new();
            col.to_i64s(&mut widened);
            let back = ColData::from_i64s(ty, &widened).unwrap();
            assert_eq!(back, col);
        }
    }

    #[test]
    fn f64_bits_roundtrip() {
        let col = ColData::F64(vec![0.0, -1.5, f64::INFINITY, f64::MIN_POSITIVE]);
        let mut widened = Vec::new();
        col.to_i64s(&mut widened);
        let back = ColData::from_i64s(TypeId::F64, &widened).unwrap();
        assert_eq!(back, col);
    }

    #[test]
    fn from_i64s_detects_out_of_range() {
        assert!(ColData::from_i64s(TypeId::I8, &[300]).is_err());
        assert!(ColData::from_i64s(TypeId::I16, &[1 << 20]).is_err());
    }

    #[test]
    fn gather_and_range() {
        let src = ColData::I32((0..10).collect());
        let mut dst = ColData::new(TypeId::I32);
        dst.extend_from_range(&src, 2, 5);
        dst.extend_gather(&src, [9usize, 0].into_iter());
        assert_eq!(dst, ColData::I32(vec![2, 3, 4, 9, 0]));
    }

    #[test]
    fn set_value_overwrites() {
        let mut col = ColData::I32(vec![1, 2, 3]);
        col.set_value(1, &Value::I32(99)).unwrap();
        assert_eq!(col.get_value(1), Value::I32(99));
        col.set_value(0, &Value::Null).unwrap();
        assert_eq!(col.get_value(0), Value::I32(0));
        assert!(col.set_value(0, &Value::Str("no".into())).is_err());
    }
}
