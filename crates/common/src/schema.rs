//! Relational schemas: named, typed, NULLability-tracked column lists.

use crate::error::{Result, VwError};
use crate::types::TypeId;
use std::fmt;

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (case-preserved; lookups are case-insensitive).
    pub name: String,
    /// Column type.
    pub ty: TypeId,
    /// May this column contain NULLs? Drives the rewriter's NULL
    /// decomposition: non-nullable columns skip indicator handling entirely.
    pub nullable: bool,
}

impl Field {
    /// A nullable field.
    pub fn nullable(name: impl Into<String>, ty: TypeId) -> Field {
        Field { name: name.into(), ty, nullable: true }
    }

    /// A NOT NULL field.
    pub fn not_null(name: impl Into<String>, ty: TypeId) -> Field {
        Field { name: name.into(), ty, nullable: false }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}{}",
            self.name,
            self.ty.sql_name(),
            if self.nullable { "" } else { " NOT NULL" }
        )
    }
}

/// An ordered list of fields describing a table or operator output.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// The columns, in position order.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields, rejecting duplicate column names.
    pub fn new(fields: Vec<Field>) -> Result<Schema> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name.eq_ignore_ascii_case(&f.name)) {
                return Err(VwError::Catalog(format!("duplicate column name '{}'", f.name)));
            }
        }
        Ok(Schema { fields })
    }

    /// Build a schema without duplicate checking (operator outputs may have
    /// repeated/derived names, e.g. after a join of self-named columns).
    pub fn unchecked(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Is this the empty schema?
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Case-insensitive lookup by name, returning the position.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, right: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(right.fields.iter().cloned());
        Schema { fields }
    }

    /// Keep only the columns at `indices`, in the given order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema { fields: indices.iter().map(|&i| self.fields[i].clone()).collect() }
    }

    /// Rough per-row byte width, used by the optimizer's cost model.
    pub fn row_width(&self) -> usize {
        self.fields.iter().map(|f| f.ty.fixed_width()).sum()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fld}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::not_null("id", TypeId::I64),
            Field::nullable("name", TypeId::Str),
            Field::nullable("born", TypeId::Date),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_names_rejected_case_insensitively() {
        let r = Schema::new(vec![
            Field::not_null("id", TypeId::I64),
            Field::nullable("ID", TypeId::I32),
        ]);
        assert!(matches!(r, Err(VwError::Catalog(_))));
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("NAME"), Some(1));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn join_concatenates() {
        let s = sample();
        let j = s.join(&s);
        assert_eq!(j.len(), 6);
        assert_eq!(j.field(4).name, "name");
    }

    #[test]
    fn project_reorders() {
        let s = sample();
        let p = s.project(&[2, 0]);
        assert_eq!(p.field(0).name, "born");
        assert_eq!(p.field(1).name, "id");
    }

    #[test]
    fn row_width_sums() {
        let s = sample();
        assert_eq!(s.row_width(), 8 + 16 + 4);
    }

    #[test]
    fn display_formats() {
        let s = sample();
        let d = s.to_string();
        assert!(d.contains("id BIGINT NOT NULL"));
        assert!(d.contains("name VARCHAR"));
    }
}
