//! Cooperative query cancellation tokens.
//!
//! The paper calls this "one of more unexpected feature requests": killing a
//! research prototype was `Ctrl-C`; killing one query of a production
//! server must not take the process down, must interrupt long loops
//! promptly, and must unwind cleanly through parallel operators and
//! asynchronous I/O.
//!
//! The kernel's answer is *cooperative checks at vector granularity*: every
//! operator calls [`CancelToken::check`] at least once per vector it
//! produces, so cancellation latency is bounded by the cost of processing
//! one vector per pipeline stage. The token is shared across all tasks of a
//! parallel (Xchg) plan, and — since the query service landed — across the
//! admission queue and worker pool too: a token is cancellable while its
//! query is still *queued*, which is how `KILL` dequeues a waiting query.
//!
//! The token lives in `vw-common` so that the scheduling layer
//! (`vw-service`: worker pool, admission controller, deadline timer) can
//! speak cancellation without depending on the execution crate. Deadline
//! *enforcement* (the machinery that actually fires at the deadline) lives
//! upstack: `vw_exec::cancel::TimeoutGuard` (a per-query watchdog used by
//! unit tests) and `vw_service::timer::DeadlineQueue` (the shared timer the
//! engine uses, keeping thread count O(workers)).

use crate::error::{Result, VwError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared cancellation flag (plus optional deadline) for one query
/// execution.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    /// Set (only ever by deadline machinery, via [`CancelToken::
    /// mark_timed_out`]) when the cancellation was a deadline firing rather
    /// than an explicit `KILL`.
    timed_out: Arc<AtomicBool>,
    /// The statement deadline, if one was configured. Immutable after
    /// construction; the cooperative check never reads it.
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A fresh, un-cancelled token with no deadline.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A fresh token that should be cancelled at `deadline` — pair it with
    /// deadline machinery (`TimeoutGuard` or the service `DeadlineQueue`)
    /// to actually enforce it.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken { deadline: Some(deadline), ..CancelToken::default() }
    }

    /// Request cancellation (user `kill`, session close, timeout).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// The statement deadline this token carries, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// True when the cancellation was fired by a statement timeout (as
    /// opposed to an explicit `KILL` or session teardown).
    pub fn timed_out(&self) -> bool {
        self.timed_out.load(Ordering::Acquire)
    }

    /// Record that the *upcoming* [`CancelToken::cancel`] is a deadline
    /// firing, so the monitor can report `TimedOut` instead of `Cancelled`.
    /// Only deadline machinery calls this; it does not itself cancel.
    pub fn mark_timed_out(&self) {
        self.timed_out.store(true, Ordering::Release);
    }

    /// Bail out with [`VwError::Cancelled`] if cancellation was requested.
    /// Called once per vector by every operator.
    #[inline]
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            Err(VwError::Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_clear_then_trips() {
        let t = CancelToken::new();
        assert!(t.check().is_ok());
        t.cancel();
        assert!(matches!(t.check(), Err(VwError::Cancelled)));
        assert!(t.is_cancelled());
        assert!(!t.timed_out(), "a plain cancel is not a timeout");
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn timeout_marker_travels_with_clones() {
        let t = CancelToken::with_deadline(Instant::now());
        let c = t.clone();
        c.mark_timed_out();
        c.cancel();
        assert!(t.is_cancelled());
        assert!(t.timed_out());
    }

    #[test]
    fn visible_across_threads() {
        let t = CancelToken::new();
        let c = t.clone();
        let h = std::thread::spawn(move || {
            while !c.is_cancelled() {
                std::hint::spin_loop();
            }
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        t.cancel();
        assert!(h.join().unwrap());
    }
}
