//! # vw-common — shared substrate for the Vectorwise reproduction
//!
//! This crate hosts the pieces every other layer of the system needs:
//!
//! * the SQL-ish [type system](types) (`TypeId`, `Value`, `Date`),
//! * [schemas](schema) (`Field`, `Schema`),
//! * the [error taxonomy](error) the paper calls out (division by zero,
//!   arithmetic overflow, invalid function parameters, cancellation, ...),
//! * [selection vectors](sel), the X100 mechanism for processing filtered
//!   vectors without copying,
//! * a fast non-cryptographic [hasher](hash) used by hash join / aggregation,
//! * [date arithmetic](date) backing the SQL date function library,
//! * engine-wide [configuration](config) knobs (vector size above all),
//! * the cooperative [cancellation token](cancel) shared by executors and
//!   the query-service scheduling layer.
//!
//! Nothing here depends on any other crate in the workspace.

pub mod cancel;
pub mod coldata;
pub mod config;
pub mod date;
pub mod error;
pub mod hash;
pub mod schema;
pub mod sel;
pub mod types;

pub use cancel::CancelToken;
pub use coldata::ColData;
pub use config::{EngineConfig, FaultConfig};
pub use error::{Result, VwError};
pub use schema::{Field, Schema};
pub use sel::SelVec;
pub use types::{Date, TypeId, Value};

/// The default number of values processed per primitive invocation.
///
/// X100's headline design decision: work on vectors of ~1000 values, large
/// enough to amortize interpretation overhead, small enough to stay resident
/// in the CPU cache. Benchmark `c1_vectorized_vs_tuple` sweeps this knob.
pub const DEFAULT_VECTOR_SIZE: usize = 1024;
