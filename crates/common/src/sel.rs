//! Selection vectors — X100's mechanism for representing filtered data.
//!
//! A `Select` operator does not copy the surviving values into a fresh,
//! dense vector. It produces a *selection vector*: a sorted list of positions
//! into the (untouched) data vectors. Every primitive comes in a pair of
//! variants — `*_full` operating on positions `0..n`, and `*_sel` operating
//! only on the listed positions. The `select_ablation` bench measures when
//! this beats re-materialization (low selectivity) and when it does not.

/// A sorted list of selected positions within a vector of length `<= capacity`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelVec {
    positions: Vec<u32>,
}

impl SelVec {
    /// An empty selection.
    pub fn new() -> SelVec {
        SelVec { positions: Vec::new() }
    }

    /// An empty selection with room for `cap` positions.
    pub fn with_capacity(cap: usize) -> SelVec {
        SelVec { positions: Vec::with_capacity(cap) }
    }

    /// The identity selection `0..n` (used mostly by tests; the execution
    /// layer prefers `None` over an identity SelVec to avoid indirection).
    pub fn identity(n: usize) -> SelVec {
        SelVec { positions: (0..n as u32).collect() }
    }

    /// Build from raw positions. Debug-asserts they are strictly increasing,
    /// which every selection-producing primitive guarantees.
    pub fn from_positions(positions: Vec<u32>) -> SelVec {
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]), "selection must be sorted");
        SelVec { positions }
    }

    /// Number of selected positions.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Is nothing selected?
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The selected positions as a slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.positions
    }

    /// Clear, retaining the allocation (primitives reuse one SelVec per
    /// pipeline to keep the hot path allocation-free).
    pub fn clear(&mut self) {
        self.positions.clear();
    }

    /// Replace the contents with `positions` without reallocating when
    /// capacity suffices. Debug-asserts sortedness like
    /// [`SelVec::from_positions`]; the hash-table probe loop uses this to
    /// ping-pong lane sets between scratch buffers allocation-free.
    pub fn clear_and_extend_from_slice(&mut self, positions: &[u32]) {
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]), "selection must be sorted");
        self.positions.clear();
        self.positions.extend_from_slice(positions);
    }

    /// Replace the contents with the identity selection `0..n`, retaining
    /// the allocation (batch-local live sets when `Batch::sel` is `None`).
    pub fn fill_identity(&mut self, n: usize) {
        self.positions.clear();
        self.positions.extend(0..n as u32);
    }

    /// Copy the positions satisfying `keep` into `out` (cleared first).
    /// Preserves sortedness by construction; this is the narrowing step of
    /// vectorized probe loops — each re-probe round retains only the lanes
    /// that still have a candidate chain entry.
    pub fn retain_from(&self, mut keep: impl FnMut(usize) -> bool, out: &mut SelVec) {
        out.clear();
        for p in self.iter() {
            if keep(p) {
                out.positions.push(p as u32);
            }
        }
    }

    /// Append a position; caller maintains sortedness.
    #[inline]
    pub fn push(&mut self, pos: u32) {
        debug_assert!(self.positions.last().is_none_or(|&p| p < pos));
        self.positions.push(pos);
    }

    /// Iterate positions as `usize`.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.positions.iter().map(|&p| p as usize)
    }

    /// Intersect with another selection (both sorted) into `out`.
    /// Used when conjunctive predicates are evaluated branch-by-branch.
    pub fn intersect_into(&self, other: &SelVec, out: &mut SelVec) {
        out.clear();
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.positions, &other.positions);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.positions.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    /// The complement selection with respect to `0..n`, into `out`.
    /// Used by disjunction handling and NULL-aware anti join.
    pub fn complement_into(&self, n: usize, out: &mut SelVec) {
        out.clear();
        let mut next = 0u32;
        for &p in &self.positions {
            for q in next..p {
                out.positions.push(q);
            }
            next = p + 1;
        }
        for q in next..n as u32 {
            out.positions.push(q);
        }
    }
}

impl FromIterator<u32> for SelVec {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        SelVec::from_positions(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_covers_all() {
        let s = SelVec::identity(4);
        assert_eq!(s.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn intersect_sorted() {
        let a = SelVec::from_positions(vec![0, 2, 4, 6, 8]);
        let b = SelVec::from_positions(vec![1, 2, 3, 4, 9]);
        let mut out = SelVec::new();
        a.intersect_into(&b, &mut out);
        assert_eq!(out.as_slice(), &[2, 4]);
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = SelVec::from_positions(vec![0, 2]);
        let b = SelVec::from_positions(vec![1, 3]);
        let mut out = SelVec::new();
        a.intersect_into(&b, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn complement_of_edges() {
        let s = SelVec::from_positions(vec![0, 3]);
        let mut out = SelVec::new();
        s.complement_into(4, &mut out);
        assert_eq!(out.as_slice(), &[1, 2]);

        let empty = SelVec::new();
        empty.complement_into(3, &mut out);
        assert_eq!(out.as_slice(), &[0, 1, 2]);

        let full = SelVec::identity(3);
        full.complement_into(3, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn clear_retains_capacity() {
        let mut s = SelVec::with_capacity(128);
        for i in 0..100 {
            s.push(i);
        }
        let cap_before = s.positions.capacity();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.positions.capacity(), cap_before);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn unsorted_push_debug_panics() {
        let mut s = SelVec::new();
        s.push(5);
        s.push(3);
    }

    #[test]
    fn retain_from_narrows_and_stays_sorted() {
        let s = SelVec::from_positions(vec![1, 4, 5, 8, 9]);
        let mut out = SelVec::new();
        s.retain_from(|p| p % 2 == 0, &mut out);
        assert_eq!(out.as_slice(), &[4, 8]);
        assert!(out.as_slice().windows(2).all(|w| w[0] < w[1]));
        // Retaining nothing leaves an empty (still valid) selection.
        s.retain_from(|_| false, &mut out);
        assert!(out.is_empty());
        // Retaining everything is the identity on the input.
        s.retain_from(|_| true, &mut out);
        assert_eq!(out.as_slice(), s.as_slice());
    }

    #[test]
    fn clear_and_extend_from_slice_reuses_allocation() {
        let mut s = SelVec::with_capacity(64);
        s.clear_and_extend_from_slice(&[0, 3, 7]);
        assert_eq!(s.as_slice(), &[0, 3, 7]);
        let cap = s.positions.capacity();
        s.clear_and_extend_from_slice(&[2, 5]);
        assert_eq!(s.as_slice(), &[2, 5]);
        assert_eq!(s.positions.capacity(), cap, "no reallocation");
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn clear_and_extend_unsorted_debug_panics() {
        let mut s = SelVec::new();
        s.clear_and_extend_from_slice(&[5, 3]);
    }

    #[test]
    fn fill_identity_resets_contents() {
        let mut s = SelVec::from_positions(vec![9, 12]);
        s.fill_identity(3);
        assert_eq!(s.as_slice(), &[0, 1, 2]);
        s.fill_identity(0);
        assert!(s.is_empty());
    }
}
