//! Engine-wide tuning knobs, threaded from `Database` down to the kernels.
//!
//! The repo-root `ARCHITECTURE.md` ("Knobs") tabulates every knob with
//! its SET name, default, and env override; the rustdoc on each field
//! below is the authoritative description.

/// How arithmetic error checking (overflow, division by zero) is performed.
///
/// The paper: "Naive implementation for some of these would incur a
/// significant overhead, and special algorithms in the kernel had to be
/// devised." Benchmark C7 compares these modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// No checking at all — the research-prototype behaviour (wrapping).
    /// Kept only for the C7 baseline; never used by the SQL layer.
    Unchecked,
    /// Branch per value: test every operation's result immediately.
    Naive,
    /// Vectorized lazy checking: compute the whole vector with wrapping
    /// arithmetic while OR-accumulating an error flag, inspect once per
    /// vector, and only on failure re-run a slow path to pinpoint the error.
    Lazy,
}

/// How NULLs are represented during execution (benchmark C6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NullMode {
    /// Vectorwise production design: a boolean indicator column plus a value
    /// column holding safe values; kernels stay NULL-oblivious and the
    /// rewriter composes indicator propagation separately.
    TwoColumn,
    /// Strawman: every kernel checks a null mask per value (branchy).
    Branchy,
}

/// Deterministic fault-injection knobs for the simulated block device
/// (`vw-storage::disk`). All-zero (the default) means **no machinery is
/// constructed at all**: the disk carries one relaxed atomic-bool gate and
/// nothing else, so the fault-free hot path is unchanged.
///
/// Probabilities are per-operation in `0.0..=1.0`; the injector is seeded,
/// so a given (seed, operation sequence) always produces the same faults.
/// Env overrides (read by [`EngineConfig::default`], like `VW_DOP`):
///
/// * `VW_FAULT_SEED` — injector seed (default `0xF0A17`),
/// * `VW_FAULT_IO_ERR` — sets both `read_err` and `write_err`,
/// * `VW_FAULT_CORRUPT` — bit-flip/truncation probability on read,
/// * `VW_FAULT_LATENCY_US` — extra device latency per faulted operation,
/// * `VW_FAULT_NTH_WRITE` — fail the Nth write terminally (1-based).
///
/// See ARCHITECTURE.md ("Failure model") for the retry policy these faults
/// are surfaced through.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed of the injector's deterministic RNG.
    pub seed: u64,
    /// Probability a read fails with a transient [`VwError::Io`].
    ///
    /// [`VwError::Io`]: crate::VwError::Io
    pub read_err: f64,
    /// Probability a write fails with a transient [`VwError::Io`].
    ///
    /// [`VwError::Io`]: crate::VwError::Io
    pub write_err: f64,
    /// Probability a read returns corrupted bytes (a flipped bit or a
    /// truncated payload) instead of failing. Detected by block
    /// verification in the buffer pool / spill reader and retried.
    pub corrupt: f64,
    /// Extra latency charged on every operation while faults are armed
    /// (models a degrading device).
    pub latency_us: u64,
    /// Fail the Nth write (1-based, counted across the device lifetime)
    /// with a *terminal* [`VwError::Io`] that no retry absorbs.
    ///
    /// [`VwError::Io`]: crate::VwError::Io
    pub fail_nth_write: Option<u64>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xF0A17,
            read_err: 0.0,
            write_err: 0.0,
            corrupt: 0.0,
            latency_us: 0,
            fail_nth_write: None,
        }
    }
}

impl FaultConfig {
    /// True when any fault is configured; an inactive config arms nothing.
    pub fn is_active(&self) -> bool {
        self.read_err > 0.0
            || self.write_err > 0.0
            || self.corrupt > 0.0
            || self.latency_us > 0
            || self.fail_nth_write.is_some()
    }

    /// Read the `VW_FAULT_*` env overrides (all unset = inactive).
    fn from_env() -> FaultConfig {
        let io_err = env_f64("VW_FAULT_IO_ERR").unwrap_or(0.0).clamp(0.0, 1.0);
        FaultConfig {
            seed: env_u64("VW_FAULT_SEED").unwrap_or(0xF0A17),
            read_err: io_err,
            write_err: io_err,
            corrupt: env_f64("VW_FAULT_CORRUPT").unwrap_or(0.0).clamp(0.0, 1.0),
            latency_us: env_u64("VW_FAULT_LATENCY_US").unwrap_or(0),
            fail_nth_write: env_u64("VW_FAULT_NTH_WRITE"),
        }
    }
}

/// Tuning knobs for one engine instance.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Values per vector in the X100 kernel (the C1 sweep parameter).
    pub vector_size: usize,
    /// Buffer pool capacity in bytes for the storage layer.
    pub buffer_pool_bytes: usize,
    /// Default degree of parallelism the rewriter targets when inserting
    /// exchange (Xchg) operators, and that the hash operators use for
    /// radix-partitioned parallel builds. 1 disables parallelization.
    pub parallelism: usize,
    /// Radix partition count (as log2) for partitioned hash builds.
    /// `None` derives `next_pow2(parallelism)` — one shard per worker.
    pub partition_bits: Option<u32>,
    /// Build rows below which a partitioned hash build stays serial (the
    /// exec-side cost gate; thread spawn + scatter only pay off past it).
    pub partition_min_rows: usize,
    /// Rows per morsel claim from a scan's shared work dispenser
    /// (`vw-exec::morsel::MorselSource`). Exchange workers pull claims of
    /// this size until the image is dry, so run-time claims replace the
    /// old plan-time static row ranges and skewed work rebalances itself.
    /// Smaller morsels balance better but claim more often; the default
    /// (16Ki rows) makes claim overhead invisible while still splitting a
    /// skewed scan into many claims per worker. SET-able
    /// (`SET morsel_rows = n`), `VW_MORSEL_ROWS` env override (like
    /// `VW_DOP` / `VW_PARTITION_MIN_ROWS`, so CI can force many-morsel
    /// scheduling through the whole suite).
    pub morsel_rows: usize,
    /// Per-query memory budget in bytes for hash build state (join build
    /// sides, aggregation groups). `0` = unlimited — the build stays fully
    /// in memory and none of the spill machinery is even constructed, so
    /// the zero-spill hot path is byte-for-byte the allocation-free kernel
    /// path. A non-zero budget makes every hash build in the query charge
    /// a shared `MemBudget` tracker (`vw-exec::partition`) as staged shards
    /// grow; when the query exceeds the budget, the largest shards spill
    /// their staged rows to temp spill files and the affected partitions
    /// finish grace-style (probe rows routed to probe spill files, each
    /// spilled partition pair rehydrated and joined/re-aggregated with the
    /// in-memory kernels, re-partitioning on the next hash-bit stratum if
    /// a partition still does not fit). SET-able (`SET mem_budget = n`),
    /// `VW_MEM_BUDGET` env override (like `VW_DOP`, so CI can force spills
    /// through the whole suite). See ARCHITECTURE.md ("Knobs") for the
    /// full knob table.
    pub mem_budget_bytes: usize,
    /// Arithmetic checking strategy.
    pub check_mode: CheckMode,
    /// NULL representation strategy.
    pub null_mode: NullMode,
    /// Enable cooperative scans (relevance policy) instead of plain
    /// attach-style LRU scans.
    pub cooperative_scans: bool,
    /// Rows per storage pack (the compression granule).
    pub pack_size: usize,
    /// Enable per-operator profiling counters.
    pub profiling: bool,
    /// Per-query statement timeout in milliseconds; `0` disables timeouts
    /// and constructs none of the deadline machinery (no watchdog thread,
    /// no clock reads in `CancelToken::check`). When non-zero, every query
    /// carries a deadline in its cancel token and a monitor watchdog fires
    /// `Cancelled` at expiry (registry shows `TimedOut`). SET-able
    /// (`SET statement_timeout = ms`).
    pub statement_timeout_ms: u64,
    /// Ring-buffer capacity of the monitor's event log (oldest events drop
    /// at capacity, so long-lived sessions cannot grow it without bound).
    /// SET-able (`SET event_log_capacity = n`, applied immediately).
    pub event_log_capacity: usize,
    /// Size of the engine's **fixed global worker pool** (`vw-service`):
    /// parallel plan fragments from *all* concurrent queries are scheduled
    /// as tasks onto these `workers` threads, so total engine thread count
    /// stays O(workers) instead of O(queries × DOP). `0` resolves to the
    /// core count at `Database::open`. Fixed for the life of the engine
    /// (the pool cannot be resized under running queries) — `VW_WORKERS`
    /// env override, not SET-able.
    pub workers: usize,
    /// Global query-memory limit in bytes partitioned across admitted
    /// queries by the admission controller (`vw-service::admission`).
    /// `0` = no admission control at all — no controller is constructed,
    /// queries run immediately with their per-query `mem_budget`. When
    /// non-zero, each statement must be admitted before executing: its
    /// grant (its `mem_budget`, or `global / workers` when unlimited) is
    /// carved out of this limit, overflow waits in a bounded FIFO queue,
    /// and the sum of grants never exceeds the limit. Fixed at open —
    /// `VW_GLOBAL_MEM` env override, not SET-able.
    pub global_mem_bytes: u64,
    /// Bound on the admission controller's FIFO queue of *waiting*
    /// queries; arrivals beyond it are rejected with the typed
    /// `E_ADMISSION` error instead of queueing without bound. SET-able
    /// (`SET admission_queue_depth = n`, applied immediately); only
    /// meaningful when `global_mem_bytes` is non-zero.
    pub admission_queue_depth: usize,
    /// Deterministic fault injection for the simulated device (inactive by
    /// default; see [`FaultConfig`] for the `VW_FAULT_*` env overrides).
    pub faults: FaultConfig,
    /// Enable the cost-based optimizer passes (statistics-driven join
    /// ordering, filter pushdown below joins, join-aware column pruning,
    /// histogram selectivities). `false` falls back to the original
    /// rule-only pipeline — the escape hatch that keeps the pre-cost-based
    /// plans reachable for differential testing and plan triage. SET-able
    /// (`SET optimizer = 0/1`), `VW_OPTIMIZER` env override (so CI can run
    /// the whole suite against the unoptimized plans). See ARCHITECTURE.md
    /// ("The optimizer") for what each pass does.
    pub optimizer: bool,
    /// Run kernels directly on encoded column data (dictionary codes, RLE
    /// run sidecars) and late-materialize at emit, instead of inflating
    /// every pack chunk at the scan boundary. `false` restores the
    /// inflate-at-scan behavior byte-for-byte. SET-able
    /// (`SET compressed_exec = 0/1`), `VW_COMPRESSED_EXEC` env override.
    /// See ARCHITECTURE.md ("Compressed execution").
    pub compressed_exec: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        // `VW_DOP` / `VW_PARTITION_MIN_ROWS` override the defaults so CI
        // can run the whole test suite through the parallel (Xchg +
        // partitioned-build) code paths without touching every test.
        let parallelism = env_usize("VW_DOP").unwrap_or(1).max(1);
        let partition_min_rows = env_usize("VW_PARTITION_MIN_ROWS").unwrap_or(8192);
        let morsel_rows = env_usize("VW_MORSEL_ROWS").unwrap_or(16 * 1024).max(1);
        let mem_budget_bytes = env_usize("VW_MEM_BUDGET").unwrap_or(0);
        let workers = env_usize("VW_WORKERS").unwrap_or(0);
        let global_mem_bytes = env_u64("VW_GLOBAL_MEM").unwrap_or(0);
        let optimizer = env_usize("VW_OPTIMIZER").is_none_or(|v| v != 0);
        let compressed_exec = env_usize("VW_COMPRESSED_EXEC").is_none_or(|v| v != 0);
        EngineConfig {
            vector_size: crate::DEFAULT_VECTOR_SIZE,
            buffer_pool_bytes: 64 << 20,
            parallelism,
            partition_bits: None,
            partition_min_rows,
            morsel_rows,
            mem_budget_bytes,
            check_mode: CheckMode::Lazy,
            null_mode: NullMode::TwoColumn,
            cooperative_scans: false,
            pack_size: 16 * 1024,
            profiling: true,
            statement_timeout_ms: 0,
            event_log_capacity: 1024,
            workers,
            global_mem_bytes,
            admission_queue_depth: 16,
            faults: FaultConfig::from_env(),
            optimizer,
            compressed_exec,
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

impl EngineConfig {
    /// Override the vector size (builder style).
    pub fn with_vector_size(mut self, n: usize) -> Self {
        assert!(n > 0, "vector size must be positive");
        self.vector_size = n;
        self
    }

    /// Override the parallelism target (builder style).
    pub fn with_parallelism(mut self, n: usize) -> Self {
        assert!(n > 0, "parallelism must be positive");
        self.parallelism = n;
        self
    }

    /// Override the checking mode (builder style).
    pub fn with_check_mode(mut self, m: CheckMode) -> Self {
        self.check_mode = m;
        self
    }

    /// Override the morsel size (builder style).
    pub fn with_morsel_rows(mut self, n: usize) -> Self {
        assert!(n > 0, "morsel_rows must be positive");
        self.morsel_rows = n;
        self
    }

    /// Override the per-query memory budget (builder style; 0 = unlimited).
    pub fn with_mem_budget(mut self, bytes: usize) -> Self {
        self.mem_budget_bytes = bytes;
        self
    }

    /// Override the fault-injection config (builder style).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Override the statement timeout (builder style; 0 = no timeout).
    pub fn with_statement_timeout_ms(mut self, ms: u64) -> Self {
        self.statement_timeout_ms = ms;
        self
    }

    /// Override the worker-pool size (builder style; 0 = core count).
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Override the global admission memory limit (builder style;
    /// 0 = admission control off).
    pub fn with_global_mem(mut self, bytes: u64) -> Self {
        self.global_mem_bytes = bytes;
        self
    }

    /// Override the admission queue depth (builder style).
    pub fn with_admission_queue_depth(mut self, depth: usize) -> Self {
        self.admission_queue_depth = depth;
        self
    }

    /// Enable or disable the cost-based optimizer passes (builder style;
    /// `false` = original rule-only pipeline).
    pub fn with_optimizer(mut self, on: bool) -> Self {
        self.optimizer = on;
        self
    }

    /// Enable or disable compressed execution (builder style; `false` =
    /// inflate every pack chunk at the scan boundary, the pre-PR 9 path).
    pub fn with_compressed_exec(mut self, on: bool) -> Self {
        self.compressed_exec = on;
        self
    }

    /// The worker-pool size this config resolves to: the explicit
    /// `workers` override, or the machine's core count.
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }

    /// Number of radix partitions a partitioned hash build should use:
    /// the explicit `partition_bits` override, or one shard per worker
    /// (`next_pow2(parallelism)`). Capped at 2^10 — beyond that the
    /// scatter cost dwarfs any locality win.
    pub fn build_partitions(&self) -> usize {
        match self.partition_bits {
            Some(bits) => 1usize << bits.min(10),
            None => self.parallelism.next_power_of_two(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_production_shape() {
        let c = EngineConfig::default();
        assert_eq!(c.vector_size, 1024);
        assert_eq!(c.check_mode, CheckMode::Lazy);
        assert_eq!(c.null_mode, NullMode::TwoColumn);
    }

    #[test]
    fn builder_overrides() {
        let c = EngineConfig::default()
            .with_vector_size(64)
            .with_parallelism(4)
            .with_check_mode(CheckMode::Naive);
        assert_eq!(c.vector_size, 64);
        assert_eq!(c.parallelism, 4);
        assert_eq!(c.check_mode, CheckMode::Naive);
    }

    #[test]
    #[should_panic]
    fn zero_vector_size_rejected() {
        let _ = EngineConfig::default().with_vector_size(0);
    }

    #[test]
    fn morsel_rows_default_and_builder() {
        let c = EngineConfig::default();
        assert!(c.morsel_rows >= 1);
        let c = c.with_morsel_rows(64);
        assert_eq!(c.morsel_rows, 64);
    }

    #[test]
    fn mem_budget_defaults_unlimited_and_overrides() {
        let c = EngineConfig::default();
        // Default (no VW_MEM_BUDGET in the test env): unlimited.
        if std::env::var("VW_MEM_BUDGET").is_err() {
            assert_eq!(c.mem_budget_bytes, 0);
        }
        assert_eq!(c.with_mem_budget(1 << 20).mem_budget_bytes, 1 << 20);
    }

    #[test]
    fn fault_config_default_is_inactive() {
        let f = FaultConfig::default();
        assert!(!f.is_active(), "default faults must construct no machinery");
        assert!(FaultConfig { read_err: 0.01, ..Default::default() }.is_active());
        assert!(FaultConfig { latency_us: 5, ..Default::default() }.is_active());
        assert!(FaultConfig { fail_nth_write: Some(3), ..Default::default() }.is_active());
        // Engine default is inactive unless VW_FAULT_* is exported.
        if std::env::var("VW_FAULT_IO_ERR").is_err()
            && std::env::var("VW_FAULT_CORRUPT").is_err()
            && std::env::var("VW_FAULT_LATENCY_US").is_err()
            && std::env::var("VW_FAULT_NTH_WRITE").is_err()
        {
            assert!(!EngineConfig::default().faults.is_active());
        }
    }

    #[test]
    fn timeout_and_event_log_defaults() {
        let c = EngineConfig::default();
        assert_eq!(c.statement_timeout_ms, 0, "no timeout by default");
        assert_eq!(c.event_log_capacity, 1024);
        assert_eq!(c.with_statement_timeout_ms(250).statement_timeout_ms, 250);
    }

    #[test]
    fn service_knob_defaults_and_builders() {
        let c = EngineConfig::default();
        if std::env::var("VW_WORKERS").is_err() {
            assert_eq!(c.workers, 0, "default pool size derives from the core count");
        }
        assert!(c.resolved_workers() >= 1);
        if std::env::var("VW_GLOBAL_MEM").is_err() {
            assert_eq!(c.global_mem_bytes, 0, "admission control off by default");
        }
        assert_eq!(c.admission_queue_depth, 16);
        let c = c.with_workers(3).with_global_mem(1 << 20).with_admission_queue_depth(2);
        assert_eq!(c.resolved_workers(), 3);
        assert_eq!(c.global_mem_bytes, 1 << 20);
        assert_eq!(c.admission_queue_depth, 2);
    }

    #[test]
    fn optimizer_defaults_on_and_overrides() {
        let c = EngineConfig::default();
        if std::env::var("VW_OPTIMIZER").is_err() {
            assert!(c.optimizer, "cost-based planning is the default");
        }
        assert!(!c.with_optimizer(false).optimizer);
    }

    #[test]
    fn compressed_exec_defaults_on_and_overrides() {
        let c = EngineConfig::default();
        if std::env::var("VW_COMPRESSED_EXEC").is_err() {
            assert!(c.compressed_exec, "compressed execution is the default");
        }
        assert!(!c.with_compressed_exec(false).compressed_exec);
    }

    #[test]
    fn build_partitions_derives_from_dop_or_override() {
        let mut c = EngineConfig::default().with_parallelism(3);
        assert_eq!(c.build_partitions(), 4, "next_pow2(dop)");
        c.partition_bits = Some(5);
        assert_eq!(c.build_partitions(), 32, "explicit bits win");
        c.partition_bits = Some(30);
        assert_eq!(c.build_partitions(), 1024, "capped at 2^10");
    }
}
