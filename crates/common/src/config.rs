//! Engine-wide tuning knobs, threaded from `Database` down to the kernels.
//!
//! The repo-root `ARCHITECTURE.md` ("Knobs") tabulates every knob with
//! its SET name, default, and env override; the rustdoc on each field
//! below is the authoritative description.

/// How arithmetic error checking (overflow, division by zero) is performed.
///
/// The paper: "Naive implementation for some of these would incur a
/// significant overhead, and special algorithms in the kernel had to be
/// devised." Benchmark C7 compares these modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// No checking at all — the research-prototype behaviour (wrapping).
    /// Kept only for the C7 baseline; never used by the SQL layer.
    Unchecked,
    /// Branch per value: test every operation's result immediately.
    Naive,
    /// Vectorized lazy checking: compute the whole vector with wrapping
    /// arithmetic while OR-accumulating an error flag, inspect once per
    /// vector, and only on failure re-run a slow path to pinpoint the error.
    Lazy,
}

/// How NULLs are represented during execution (benchmark C6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NullMode {
    /// Vectorwise production design: a boolean indicator column plus a value
    /// column holding safe values; kernels stay NULL-oblivious and the
    /// rewriter composes indicator propagation separately.
    TwoColumn,
    /// Strawman: every kernel checks a null mask per value (branchy).
    Branchy,
}

/// Tuning knobs for one engine instance.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Values per vector in the X100 kernel (the C1 sweep parameter).
    pub vector_size: usize,
    /// Buffer pool capacity in bytes for the storage layer.
    pub buffer_pool_bytes: usize,
    /// Default degree of parallelism the rewriter targets when inserting
    /// exchange (Xchg) operators, and that the hash operators use for
    /// radix-partitioned parallel builds. 1 disables parallelization.
    pub parallelism: usize,
    /// Radix partition count (as log2) for partitioned hash builds.
    /// `None` derives `next_pow2(parallelism)` — one shard per worker.
    pub partition_bits: Option<u32>,
    /// Build rows below which a partitioned hash build stays serial (the
    /// exec-side cost gate; thread spawn + scatter only pay off past it).
    pub partition_min_rows: usize,
    /// Rows per morsel claim from a scan's shared work dispenser
    /// (`vw-exec::morsel::MorselSource`). Exchange workers pull claims of
    /// this size until the image is dry, so run-time claims replace the
    /// old plan-time static row ranges and skewed work rebalances itself.
    /// Smaller morsels balance better but claim more often; the default
    /// (16Ki rows) makes claim overhead invisible while still splitting a
    /// skewed scan into many claims per worker. SET-able
    /// (`SET morsel_rows = n`), `VW_MORSEL_ROWS` env override (like
    /// `VW_DOP` / `VW_PARTITION_MIN_ROWS`, so CI can force many-morsel
    /// scheduling through the whole suite).
    pub morsel_rows: usize,
    /// Per-query memory budget in bytes for hash build state (join build
    /// sides, aggregation groups). `0` = unlimited — the build stays fully
    /// in memory and none of the spill machinery is even constructed, so
    /// the zero-spill hot path is byte-for-byte the allocation-free kernel
    /// path. A non-zero budget makes every hash build in the query charge
    /// a shared `MemBudget` tracker (`vw-exec::partition`) as staged shards
    /// grow; when the query exceeds the budget, the largest shards spill
    /// their staged rows to temp spill files and the affected partitions
    /// finish grace-style (probe rows routed to probe spill files, each
    /// spilled partition pair rehydrated and joined/re-aggregated with the
    /// in-memory kernels, re-partitioning on the next hash-bit stratum if
    /// a partition still does not fit). SET-able (`SET mem_budget = n`),
    /// `VW_MEM_BUDGET` env override (like `VW_DOP`, so CI can force spills
    /// through the whole suite). See ARCHITECTURE.md ("Knobs") for the
    /// full knob table.
    pub mem_budget_bytes: usize,
    /// Arithmetic checking strategy.
    pub check_mode: CheckMode,
    /// NULL representation strategy.
    pub null_mode: NullMode,
    /// Enable cooperative scans (relevance policy) instead of plain
    /// attach-style LRU scans.
    pub cooperative_scans: bool,
    /// Rows per storage pack (the compression granule).
    pub pack_size: usize,
    /// Enable per-operator profiling counters.
    pub profiling: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        // `VW_DOP` / `VW_PARTITION_MIN_ROWS` override the defaults so CI
        // can run the whole test suite through the parallel (Xchg +
        // partitioned-build) code paths without touching every test.
        let parallelism = env_usize("VW_DOP").unwrap_or(1).max(1);
        let partition_min_rows = env_usize("VW_PARTITION_MIN_ROWS").unwrap_or(8192);
        let morsel_rows = env_usize("VW_MORSEL_ROWS").unwrap_or(16 * 1024).max(1);
        let mem_budget_bytes = env_usize("VW_MEM_BUDGET").unwrap_or(0);
        EngineConfig {
            vector_size: crate::DEFAULT_VECTOR_SIZE,
            buffer_pool_bytes: 64 << 20,
            parallelism,
            partition_bits: None,
            partition_min_rows,
            morsel_rows,
            mem_budget_bytes,
            check_mode: CheckMode::Lazy,
            null_mode: NullMode::TwoColumn,
            cooperative_scans: false,
            pack_size: 16 * 1024,
            profiling: true,
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

impl EngineConfig {
    /// Override the vector size (builder style).
    pub fn with_vector_size(mut self, n: usize) -> Self {
        assert!(n > 0, "vector size must be positive");
        self.vector_size = n;
        self
    }

    /// Override the parallelism target (builder style).
    pub fn with_parallelism(mut self, n: usize) -> Self {
        assert!(n > 0, "parallelism must be positive");
        self.parallelism = n;
        self
    }

    /// Override the checking mode (builder style).
    pub fn with_check_mode(mut self, m: CheckMode) -> Self {
        self.check_mode = m;
        self
    }

    /// Override the morsel size (builder style).
    pub fn with_morsel_rows(mut self, n: usize) -> Self {
        assert!(n > 0, "morsel_rows must be positive");
        self.morsel_rows = n;
        self
    }

    /// Override the per-query memory budget (builder style; 0 = unlimited).
    pub fn with_mem_budget(mut self, bytes: usize) -> Self {
        self.mem_budget_bytes = bytes;
        self
    }

    /// Number of radix partitions a partitioned hash build should use:
    /// the explicit `partition_bits` override, or one shard per worker
    /// (`next_pow2(parallelism)`). Capped at 2^10 — beyond that the
    /// scatter cost dwarfs any locality win.
    pub fn build_partitions(&self) -> usize {
        match self.partition_bits {
            Some(bits) => 1usize << bits.min(10),
            None => self.parallelism.next_power_of_two(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_production_shape() {
        let c = EngineConfig::default();
        assert_eq!(c.vector_size, 1024);
        assert_eq!(c.check_mode, CheckMode::Lazy);
        assert_eq!(c.null_mode, NullMode::TwoColumn);
    }

    #[test]
    fn builder_overrides() {
        let c = EngineConfig::default()
            .with_vector_size(64)
            .with_parallelism(4)
            .with_check_mode(CheckMode::Naive);
        assert_eq!(c.vector_size, 64);
        assert_eq!(c.parallelism, 4);
        assert_eq!(c.check_mode, CheckMode::Naive);
    }

    #[test]
    #[should_panic]
    fn zero_vector_size_rejected() {
        let _ = EngineConfig::default().with_vector_size(0);
    }

    #[test]
    fn morsel_rows_default_and_builder() {
        let c = EngineConfig::default();
        assert!(c.morsel_rows >= 1);
        let c = c.with_morsel_rows(64);
        assert_eq!(c.morsel_rows, 64);
    }

    #[test]
    fn mem_budget_defaults_unlimited_and_overrides() {
        let c = EngineConfig::default();
        // Default (no VW_MEM_BUDGET in the test env): unlimited.
        if std::env::var("VW_MEM_BUDGET").is_err() {
            assert_eq!(c.mem_budget_bytes, 0);
        }
        assert_eq!(c.with_mem_budget(1 << 20).mem_budget_bytes, 1 << 20);
    }

    #[test]
    fn build_partitions_derives_from_dop_or_override() {
        let mut c = EngineConfig::default().with_parallelism(3);
        assert_eq!(c.build_partitions(), 4, "next_pow2(dop)");
        c.partition_bits = Some(5);
        assert_eq!(c.build_partitions(), 32, "explicit bits win");
        c.partition_bits = Some(30);
        assert_eq!(c.build_partitions(), 1024, "capped at 2^10");
    }
}
