//! Proleptic-Gregorian date arithmetic on "days since 1970-01-01".
//!
//! The paper's "Many Functions" section notes that the SQL standard (and
//! migrating users) demand a plethora of date functions. Everything in the
//! SQL function library (`vw-sql::functions`) bottoms out in these routines,
//! so they are written to be branch-light and exhaustively tested.

use crate::error::{Result, VwError};

/// Days in each month of a non-leap year.
const MDAYS: [u32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// Is `y` a Gregorian leap year?
pub fn is_leap_year(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

/// Number of days in month `m` (1-based) of year `y`.
pub fn days_in_month(y: i32, m: u32) -> u32 {
    if m == 2 && is_leap_year(y) {
        29
    } else {
        MDAYS[(m - 1) as usize]
    }
}

/// Convert a civil date to days since the Unix epoch.
///
/// Uses Howard Hinnant's `days_from_civil` algorithm (public domain),
/// restricted to years 1..=9999 to match typical SQL DATE ranges.
pub fn days_from_ymd(y: i32, m: u32, d: u32) -> Result<i32> {
    if !(1..=9999).contains(&y) || !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
        return Err(VwError::InvalidParameter(format!("invalid date {y:04}-{m:02}-{d:02}")));
    }
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64; // [0, 399]
    let mp = ((m + 9) % 12) as i64; // [0, 11], March == 0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    Ok((era as i64 * 146097 + doe - 719468) as i32)
}

/// Convert days since the Unix epoch back to (year, month, day).
pub fn ymd_from_days(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + (m <= 2) as i64) as i32, m, d)
}

/// ISO day of week, 1 = Monday ... 7 = Sunday.
pub fn day_of_week(days: i32) -> u32 {
    // 1970-01-01 was a Thursday (ISO 4).
    (((days as i64 % 7 + 7) % 7 + 3) % 7 + 1) as u32
}

/// Day of year, 1-based.
pub fn day_of_year(days: i32) -> u32 {
    let (y, _, _) = ymd_from_days(days);
    let jan1 = days_from_ymd(y, 1, 1).expect("jan 1 always valid");
    (days - jan1 + 1) as u32
}

/// Add `months` to a date, clamping the day to the target month's length
/// (SQL `ADD_MONTHS` semantics: Jan 31 + 1 month = Feb 28/29).
pub fn add_months(days: i32, months: i32) -> Result<i32> {
    let (y, m, d) = ymd_from_days(days);
    let total = (y as i64) * 12 + (m as i64 - 1) + months as i64;
    let ny = (total.div_euclid(12)) as i32;
    let nm = (total.rem_euclid(12)) as u32 + 1;
    if !(1..=9999).contains(&ny) {
        return Err(VwError::Overflow("add_months"));
    }
    let nd = d.min(days_in_month(ny, nm));
    days_from_ymd(ny, nm, nd)
}

/// The EXTRACT fields supported by the SQL layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DateField {
    /// Calendar year.
    Year,
    /// Quarter of the year (1-4).
    Quarter,
    /// Month of the year (1-12).
    Month,
    /// Day of the month (1-31).
    Day,
    /// ISO day of week (1=Mon..7=Sun).
    DayOfWeek,
    /// Day of the year (1-366).
    DayOfYear,
}

impl DateField {
    /// Parse a field name as used in `EXTRACT(field FROM date)`.
    pub fn parse(s: &str) -> Option<DateField> {
        Some(match s.to_ascii_uppercase().as_str() {
            "YEAR" => DateField::Year,
            "QUARTER" => DateField::Quarter,
            "MONTH" => DateField::Month,
            "DAY" => DateField::Day,
            "DOW" | "DAYOFWEEK" => DateField::DayOfWeek,
            "DOY" | "DAYOFYEAR" => DateField::DayOfYear,
            _ => return None,
        })
    }

    /// Extract this field from a days-since-epoch value.
    pub fn extract(self, days: i32) -> i32 {
        let (y, m, d) = ymd_from_days(days);
        match self {
            DateField::Year => y,
            DateField::Quarter => ((m - 1) / 3 + 1) as i32,
            DateField::Month => m as i32,
            DateField::Day => d as i32,
            DateField::DayOfWeek => day_of_week(days) as i32,
            DateField::DayOfYear => day_of_year(days) as i32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(days_from_ymd(1970, 1, 1).unwrap(), 0);
        assert_eq!(ymd_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // TPC-H date range endpoints.
        assert_eq!(ymd_from_days(days_from_ymd(1992, 1, 1).unwrap()), (1992, 1, 1));
        assert_eq!(ymd_from_days(days_from_ymd(1998, 12, 31).unwrap()), (1998, 12, 31));
        // A couple of independently checked day numbers.
        assert_eq!(days_from_ymd(2000, 3, 1).unwrap(), 11017);
        assert_eq!(days_from_ymd(1969, 12, 31).unwrap(), -1);
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(1996));
        assert!(!is_leap_year(1997));
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
    }

    #[test]
    fn invalid_dates_rejected() {
        assert!(days_from_ymd(1996, 2, 30).is_err());
        assert!(days_from_ymd(1996, 13, 1).is_err());
        assert!(days_from_ymd(1996, 0, 1).is_err());
        assert!(days_from_ymd(0, 1, 1).is_err());
        assert!(days_from_ymd(10000, 1, 1).is_err());
    }

    #[test]
    fn roundtrip_every_day_of_four_years() {
        let start = days_from_ymd(1995, 1, 1).unwrap();
        let end = days_from_ymd(1999, 1, 1).unwrap();
        for day in start..end {
            let (y, m, d) = ymd_from_days(day);
            assert_eq!(days_from_ymd(y, m, d).unwrap(), day);
        }
    }

    #[test]
    fn weekday_progresses() {
        // 1970-01-01 = Thursday.
        assert_eq!(day_of_week(0), 4);
        assert_eq!(day_of_week(1), 5);
        assert_eq!(day_of_week(3), 7); // Sunday
        assert_eq!(day_of_week(4), 1); // Monday
        assert_eq!(day_of_week(-1), 3); // Wednesday
    }

    #[test]
    fn add_months_clamps() {
        let jan31 = days_from_ymd(1997, 1, 31).unwrap();
        assert_eq!(ymd_from_days(add_months(jan31, 1).unwrap()), (1997, 2, 28));
        let leap = days_from_ymd(1996, 1, 31).unwrap();
        assert_eq!(ymd_from_days(add_months(leap, 1).unwrap()), (1996, 2, 29));
        assert_eq!(ymd_from_days(add_months(jan31, -2).unwrap()), (1996, 11, 30));
        assert!(add_months(jan31, 12 * 20000).is_err());
    }

    #[test]
    fn extract_fields() {
        let d = days_from_ymd(1996, 3, 13).unwrap();
        assert_eq!(DateField::Year.extract(d), 1996);
        assert_eq!(DateField::Quarter.extract(d), 1);
        assert_eq!(DateField::Month.extract(d), 3);
        assert_eq!(DateField::Day.extract(d), 13);
        assert_eq!(DateField::DayOfYear.extract(d), 31 + 29 + 13);
        assert_eq!(DateField::parse("quarter"), Some(DateField::Quarter));
        assert_eq!(DateField::parse("fortnight"), None);
    }
}
